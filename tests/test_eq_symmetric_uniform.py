"""Tests for Algorithms Asymmetric (Fig. 2) and Auniform (Fig. 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AlgorithmDomainError
from repro.model.game import UncertainRoutingGame
from repro.equilibria.conditions import is_pure_nash
from repro.equilibria.symmetric import asymmetric
from repro.equilibria.uniform import auniform
from repro.generators.games import (
    random_symmetric_game,
    random_uniform_beliefs_game,
)


class TestAsymmetric:
    @pytest.mark.parametrize("seed", range(15))
    def test_returns_nash_random(self, seed):
        game = random_symmetric_game(6, 3, seed=seed)
        assert is_pure_nash(game, asymmetric(game))

    @pytest.mark.parametrize("n,m", [(2, 2), (4, 3), (9, 5), (16, 4), (25, 7)])
    def test_various_shapes(self, n, m):
        game = random_symmetric_game(n, m, seed=n * 100 + m)
        assert is_pure_nash(game, asymmetric(game))

    def test_weight_scale_invariance(self):
        """Identical weights cancel in comparisons: any common weight gives
        the same equilibrium profile."""
        a = random_symmetric_game(6, 3, weight=1.0, seed=3)
        b = UncertainRoutingGame(np.full(6, 17.5), a.beliefs)
        assert asymmetric(a) == asymmetric(b)

    def test_rejects_asymmetric_weights(self, simple_game):
        with pytest.raises(AlgorithmDomainError):
            asymmetric(simple_game)

    def test_rejects_initial_traffic(self):
        game = random_symmetric_game(4, 2, seed=0).with_initial_traffic([1.0, 0.0])
        with pytest.raises(AlgorithmDomainError):
            asymmetric(game)

    def test_point_mass_beliefs(self):
        """The KP symmetric case is covered too."""
        game = UncertainRoutingGame.kp([1.0] * 5, [1.0, 2.0, 3.0])
        assert is_pure_nash(game, asymmetric(game))

    def test_all_users_prefer_one_link(self):
        caps = np.tile([10.0, 0.1, 0.1], (4, 1))
        game = UncertainRoutingGame.from_capacities([1.0] * 4, caps)
        profile = asymmetric(game)
        assert is_pure_nash(game, profile)

    def test_deterministic(self):
        game = random_symmetric_game(7, 3, seed=9)
        assert asymmetric(game) == asymmetric(game)


class TestAuniform:
    @pytest.mark.parametrize("seed", range(15))
    def test_returns_nash_random(self, seed):
        game = random_uniform_beliefs_game(7, 3, seed=seed)
        assert is_pure_nash(game, auniform(game))

    @pytest.mark.parametrize("seed", range(15))
    def test_with_initial_traffic(self, seed):
        game = random_uniform_beliefs_game(
            6, 4, with_initial_traffic=True, seed=seed
        )
        assert is_pure_nash(game, auniform(game))

    @pytest.mark.parametrize("n,m", [(2, 2), (10, 3), (50, 5), (200, 8)])
    def test_various_shapes(self, n, m):
        game = random_uniform_beliefs_game(n, m, seed=n + m)
        assert is_pure_nash(game, auniform(game))

    def test_rejects_non_uniform(self, simple_game):
        with pytest.raises(AlgorithmDomainError):
            auniform(simple_game)

    def test_lpt_structure(self):
        """With all-equal user capacities this is exactly LPT: the heaviest
        user lands alone, loads end up balanced."""
        caps = np.ones((4, 2))
        game = UncertainRoutingGame.from_capacities([4.0, 3.0, 2.0, 1.0], caps)
        profile = auniform(game)
        loads = np.bincount(profile.links, weights=game.weights, minlength=2)
        # LPT: 4 -> A, 3 -> B, 2 -> B(3<4), 1 -> A(4<5): perfectly balanced.
        assert sorted(loads.tolist()) == [5.0, 5.0]
        assert is_pure_nash(game, profile)

    def test_equal_weights_round_robin(self):
        caps = np.ones((4, 4))
        game = UncertainRoutingGame.from_capacities([1.0] * 4, caps)
        profile = auniform(game)
        # Four users, four identical empty links: all separate.
        assert sorted(profile.as_tuple()) == [0, 1, 2, 3]

    def test_fills_least_loaded_initial_traffic(self):
        caps = np.ones((2, 3))
        game = UncertainRoutingGame.from_capacities(
            [1.0, 1.0], caps, initial_traffic=[5.0, 0.0, 3.0]
        )
        profile = auniform(game)
        assert is_pure_nash(game, profile)
        # Both users head for the emptiest links.
        assert 0 not in profile.as_tuple()

    def test_deterministic(self):
        game = random_uniform_beliefs_game(9, 3, seed=4)
        assert auniform(game) == auniform(game)

    def test_kp_identical_links_is_uniform_domain(self):
        game = UncertainRoutingGame.kp([3.0, 2.0, 1.0], [2.0, 2.0])
        assert game.has_uniform_beliefs()
        assert is_pure_nash(game, auniform(game))
