"""Tests for the player-specific congestion-game substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DimensionError, ModelError
from repro.model.game import UncertainRoutingGame
from repro.substrates.player_specific import PlayerSpecificGame


def linear_tables(n: int, m: int, total: int, caps: np.ndarray) -> np.ndarray:
    loads = np.arange(total + 1, dtype=np.float64)
    return loads[None, None, :] / caps[:, :, None]


@pytest.fixture
def small_game() -> PlayerSpecificGame:
    caps = np.array([[1.0, 2.0], [2.0, 1.0]])
    return PlayerSpecificGame(
        np.array([1, 2]), linear_tables(2, 2, 3, caps)
    )


class TestConstruction:
    def test_basic(self, small_game):
        assert small_game.num_players == 2
        assert small_game.num_links == 2
        assert small_game.total_weight == 3

    def test_rejects_non_integer_like_weights(self):
        with pytest.raises(ModelError):
            PlayerSpecificGame(np.array([0, 1]), np.zeros((2, 2, 2)))

    def test_rejects_wrong_table_shape(self):
        with pytest.raises(DimensionError):
            PlayerSpecificGame(np.array([1, 1]), np.zeros((2, 2, 5)))

    def test_rejects_decreasing_costs(self):
        tables = np.ones((2, 2, 3))
        tables[0, 0] = [2.0, 1.0, 0.5]
        with pytest.raises(ModelError, match="nondecreasing"):
            PlayerSpecificGame(np.array([1, 1]), tables)

    def test_rejects_single_link(self):
        with pytest.raises(ModelError):
            PlayerSpecificGame(np.array([1, 1]), np.ones((2, 1, 3)))

    def test_rejects_nan(self):
        tables = np.ones((2, 2, 3))
        tables[1, 1, 2] = np.nan
        with pytest.raises(ModelError):
            PlayerSpecificGame(np.array([1, 1]), tables)


class TestCosts:
    def test_loads(self, small_game):
        np.testing.assert_array_equal(small_game.loads([0, 0]), [3, 0])
        np.testing.assert_array_equal(small_game.loads([0, 1]), [1, 2])

    def test_costs_of(self, small_game):
        # player 0 (w=1) on link0 with load 1 -> 1/1; player 1 (w=2) on
        # link1 with load 2 -> 2/1.
        np.testing.assert_allclose(small_game.costs_of([0, 1]), [1.0, 2.0])

    def test_deviation_costs_diagonal(self, small_game):
        sigma = np.array([0, 1])
        dev = small_game.deviation_costs(sigma)
        np.testing.assert_allclose(
            dev[np.arange(2), sigma], small_game.costs_of(sigma)
        )

    def test_deviation_costs_off_diagonal(self, small_game):
        dev = small_game.deviation_costs([0, 1])
        # player 0 moving to link1: load 2+1=3 -> 3/2.
        assert dev[0, 1] == pytest.approx(1.5)

    def test_assignment_validation(self, small_game):
        with pytest.raises(ModelError):
            small_game.costs_of([0, 5])
        with pytest.raises(DimensionError):
            small_game.costs_of([0])


class TestEquilibria:
    def test_is_pure_nash_consistent_with_enumeration(self, small_game):
        for profile in small_game.pure_nash_profiles():
            assert small_game.is_pure_nash(profile)

    def test_exists_matches_enumeration(self, small_game):
        assert small_game.exists_pure_nash() == (
            len(small_game.pure_nash_profiles()) > 0
        )

    def test_unweighted_always_has_pne(self):
        """Milchtaich's positive result, sampled."""
        rng = np.random.default_rng(0)
        for _ in range(25):
            base = rng.uniform(0.1, 1.0, size=(3, 3, 1))
            inc = rng.exponential(1.0, size=(3, 3, 3))
            arr = np.concatenate([base, base + np.cumsum(inc, axis=2)[:, :, :2]], axis=2)
            game = PlayerSpecificGame.unweighted(arr)
            assert game.exists_pure_nash()

    def test_unweighted_best_response_converges(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            base = rng.uniform(0.1, 1.0, size=(3, 3, 1))
            inc = rng.exponential(1.0, size=(3, 3, 3))
            arr = np.concatenate([base, base + np.cumsum(inc, axis=2)[:, :, :2]], axis=2)
            game = PlayerSpecificGame.unweighted(arr)
            start = rng.integers(0, 3, size=3)
            profile, converged, _ = game.best_response_dynamics(start)
            assert converged
            assert game.is_pure_nash(profile)


class TestEmbedding:
    def test_multiplicative_embedding_preserves_nash_sets(self):
        """Our model's integer-weight games embed with identical NE."""
        caps = np.array([[1.0, 2.0, 0.5], [2.0, 1.0, 1.5], [0.7, 0.9, 2.0]])
        routing = UncertainRoutingGame.from_capacities([1.0, 2.0, 1.0], caps)
        embedded = PlayerSpecificGame.from_uncertain_game(routing)
        from repro.equilibria.enumeration import pure_nash_profiles

        ours = {p.as_tuple() for p in pure_nash_profiles(routing)}
        theirs = set(embedded.pure_nash_profiles())
        assert ours == theirs

    def test_embedding_rejects_fractional_weights(self):
        game = UncertainRoutingGame.from_capacities(
            [1.5, 2.0], np.ones((2, 2))
        )
        with pytest.raises(ModelError):
            PlayerSpecificGame.from_uncertain_game(game)

    def test_embedding_rejects_initial_traffic(self):
        game = UncertainRoutingGame.from_capacities(
            [1.0, 1.0], np.ones((2, 2)), initial_traffic=[1.0, 0.0]
        )
        with pytest.raises(ModelError):
            PlayerSpecificGame.from_uncertain_game(game)

    def test_costs_match_model_latencies(self):
        caps = np.array([[1.0, 2.0], [2.0, 1.0]])
        routing = UncertainRoutingGame.from_capacities([1.0, 2.0], caps)
        embedded = PlayerSpecificGame.from_uncertain_game(routing)
        from repro.model.latency import pure_latencies

        for sigma in ([0, 0], [0, 1], [1, 0], [1, 1]):
            np.testing.assert_allclose(
                embedded.costs_of(sigma), pure_latencies(routing, sigma)
            )
