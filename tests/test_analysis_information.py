"""Tests for the value-of-information analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.information import (
    InformationStudy,
    objective_latency,
    run_information_study,
)
from repro.model.beliefs import Belief, BeliefProfile
from repro.model.game import UncertainRoutingGame
from repro.model.profiles import PureProfile
from repro.model.state import StateSpace


@pytest.fixture
def regimes() -> StateSpace:
    return StateSpace(
        [[8.0, 2.0], [2.0, 8.0]], names=("left-fast", "right-fast")
    )


class TestObjectiveLatency:
    def test_hand_computed(self, regimes):
        beliefs = BeliefProfile.from_matrix(
            regimes, [[1.0, 0.0], [1.0, 0.0]]
        )
        game = UncertainRoutingGame([1.0, 1.0], beliefs)
        profile = PureProfile([0, 1], 2)
        truth = np.array([0.5, 0.5])
        # user 0 on link 0, load 1; E[1/c] = 0.5/8 + 0.5/2 = 0.3125.
        assert objective_latency(game, profile, truth, 0) == pytest.approx(0.3125)

    def test_scales_with_load(self, regimes):
        beliefs = BeliefProfile.from_matrix(
            regimes, [[1.0, 0.0], [1.0, 0.0]]
        )
        game = UncertainRoutingGame([1.0, 1.0], beliefs)
        both = PureProfile([0, 0], 2)
        alone = PureProfile([0, 1], 2)
        truth = np.array([0.5, 0.5])
        assert objective_latency(game, both, truth, 0) == pytest.approx(
            2 * objective_latency(game, alone, truth, 0)
        )


class TestInformationStudy:
    def test_study_runs_and_is_deterministic(self, regimes):
        truth = np.array([0.8, 0.2])
        policies = {
            "informed": Belief(truth),
            "wrong": Belief([0.1, 0.9]),
        }
        a = run_information_study(
            regimes, truth, policies, rounds=20, seed=1
        )
        b = run_information_study(
            regimes, truth, policies, rounds=20, seed=1
        )
        assert a.mean_latency == b.mean_latency
        assert a.rounds == 20

    def test_informed_beats_adversarial(self):
        """With a strongly skewed truth and a wide capacity gap, believing
        the mirror image costs real objective latency.

        (The gap matters: with mild asymmetry a contrarian can profit by
        sitting alone on the slow link while the informed crowd shares the
        fast one — a real congestion effect, not a bug.)
        """
        regimes = StateSpace([[20.0, 1.0], [1.0, 20.0]])
        truth = np.array([0.95, 0.05])
        policies = {
            "informed": Belief(truth),
            "adversarial": Belief([0.02, 0.98]),
        }
        study = run_information_study(
            regimes, truth, policies, rounds=60, seed=2
        )
        assert (
            study.mean_latency["informed"]
            < study.mean_latency["adversarial"]
        )
        assert study.advantage_of("informed", "adversarial") > 0.0

    def test_rejects_bad_distribution(self, regimes):
        with pytest.raises(ValueError):
            run_information_study(
                regimes, [0.5, 0.25, 0.25], {"x": Belief([0.5, 0.5])}, rounds=1
            )

    def test_advantage_sign_convention(self):
        study = InformationStudy(
            policies=("a", "b"), mean_latency={"a": 1.0, "b": 2.0}, rounds=1
        )
        assert study.advantage_of("a", "b") == pytest.approx(0.5)
        assert study.advantage_of("b", "a") == pytest.approx(-1.0)
