"""Differential tests for the equilibrium service.

The contract under test is the tentpole's strong one: every service
response — batched, coalesced, cached, or mixed-shape — is
*bit-identical* to what the direct ``B = 1`` single-game APIs
(`repro.equilibria`, `repro.analysis.poa`, `repro.model.social`) return
for the same game. Plus unit coverage for the request spellings, the
digest, the LRU cache, the dynamic batcher's two flush triggers, and a
full CLI ``serve`` + smoke-driver round trip in subprocesses (the exact
shape of the CI service-smoke job).
"""

from __future__ import annotations

import asyncio
import os
import re
import subprocess
import sys
from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis.poa import (
    empirical_coordination_ratios,
    poa_bound_general,
    poa_bound_uniform,
)
from repro.batch.container import GameBatch
from repro.equilibria import fully_mixed_candidate, nashify, pure_nash_profiles
from repro.errors import DimensionError
from repro.model.beliefs import BeliefProfile, StateSpace
from repro.model.game import UncertainRoutingGame
from repro.model.social import opt1, opt2
from repro.service import (
    MAX_SERVICE_PROFILES,
    DynamicBatcher,
    EquilibriumRequest,
    EquilibriumServer,
    RequestError,
    ResultCache,
    ServiceClient,
    game_digest,
    solve_requests,
)
from repro.util.rng import stable_seed


def _request(tag: str, n: int, m: int, index: int = 0) -> EquilibriumRequest:
    """One validated random-game request (general Dirichlet beliefs)."""
    seed = stable_seed("svc-test", tag, n, m, index)
    batch = GameBatch.from_seeds([seed], n, m, with_initial_traffic=index % 2 == 1)
    return EquilibriumRequest.from_arrays(
        batch.weights[0], batch.capacities[0], batch.initial_traffic[0]
    )


def _payload(request: EquilibriumRequest) -> dict:
    return {
        "weights": request.weights.tolist(),
        "capacities": request.capacities.tolist(),
        "initial_traffic": request.initial_traffic.tolist(),
    }


def _game(request: EquilibriumRequest) -> UncertainRoutingGame:
    return UncertainRoutingGame.from_capacities(
        request.weights,
        request.capacities,
        initial_traffic=request.initial_traffic,
    )


def _check_differential(request: EquilibriumRequest, response: dict) -> None:
    """Assert one response is bit-identical to the B = 1 APIs."""
    game = _game(request)
    n = game.num_users
    assert response["digest"] == request.digest
    assert response["num_users"] == n
    assert response["num_links"] == game.num_links

    pure = list(pure_nash_profiles(game))
    fm = fully_mixed_candidate(game)
    assert response["pure"]["num_pure"] == len(pure)
    assert response["pure"]["exists"] == (len(pure) > 0)

    nash = nashify(game, [0] * n)
    record = response["pure"]["nashify"]
    assert record is not None
    assert record["assignment"] == nash.profile.links.tolist()
    assert record["steps"] == nash.steps
    assert record["sc1_before"] == nash.sc1_before
    assert record["sc1"] == nash.sc1_after
    assert record["sc2_before"] == nash.sc2_before
    assert record["sc2"] == nash.sc2_after
    assert record["max_congestion_before"] == nash.max_congestion_before
    assert record["max_congestion"] == nash.max_congestion_after

    mixed = response["fully_mixed"]
    assert mixed["exists"] == fm.exists
    assert mixed["probabilities"] == fm.probabilities.tolist()
    assert mixed["latencies"] == fm.latencies.tolist()
    assert mixed["link_traffic"] == fm.link_traffic.tolist()

    assert response["social"]["opt1"] == opt1(game)
    assert response["social"]["opt2"] == opt2(game)

    poa = response["poa"]
    assert poa["bound_general"] == poa_bound_general(game)
    if game.has_uniform_beliefs():
        assert poa["bound_uniform"] == poa_bound_uniform(game)
    else:
        assert poa["bound_uniform"] is None
    num_equilibria = len(pure) + int(fm.exists)
    assert poa["num_equilibria"] == num_equilibria
    if num_equilibria:
        ratio_sc1, ratio_sc2 = empirical_coordination_ratios(game)
        assert poa["ratio_sc1"] == ratio_sc1
        assert poa["ratio_sc2"] == ratio_sc2


class TestDigest:
    def test_deterministic_and_content_addressed(self):
        a = _request("digest", 3, 3)
        b = _request("digest", 3, 3)
        assert a.digest == b.digest
        bumped = EquilibriumRequest.from_arrays(
            a.weights * 2.0, a.capacities, a.initial_traffic
        )
        assert bumped.digest != a.digest

    def test_kp_spelling_matches_model_reduction(self):
        """``link_capacities`` reduces exactly like the model's KP
        constructor (double-reciprocal included), digest and all."""
        weights = [1.0, 2.0, 3.0]
        links = [3.0, 5.0, 7.0]
        request = EquilibriumRequest.from_payload(
            {"weights": weights, "link_capacities": links}
        )
        game = UncertainRoutingGame.kp(weights, links)
        assert np.array_equal(request.capacities, game.capacities)
        assert request.digest == game_digest(
            game.weights, game.capacities, game.initial_traffic
        )

    def test_belief_spelling_matches_model_reduction(self):
        weights = [1.0, 2.0, 1.5]
        states = [[4.0, 2.0], [1.0, 3.0]]
        beliefs = [[0.25, 0.75], [0.5, 0.5], [1.0, 0.0]]
        request = EquilibriumRequest.from_payload(
            {"weights": weights, "states": states, "beliefs": beliefs}
        )
        game = UncertainRoutingGame(
            np.asarray(weights),
            BeliefProfile.from_matrix(StateSpace(states), beliefs),
        )
        assert np.array_equal(request.capacities, game.capacities)
        assert request.digest == game_digest(
            game.weights, game.capacities, game.initial_traffic
        )


class TestRequestValidation:
    def test_missing_weights(self):
        with pytest.raises(RequestError, match="weights"):
            EquilibriumRequest.from_payload({"capacities": [[1.0]]})

    def test_requires_exactly_one_spelling(self):
        base = {"weights": [1.0, 2.0]}
        with pytest.raises(RequestError, match="exactly one"):
            EquilibriumRequest.from_payload(base)
        with pytest.raises(RequestError, match="exactly one"):
            EquilibriumRequest.from_payload(
                {
                    **base,
                    "capacities": [[1.0, 1.0]] * 2,
                    "link_capacities": [1.0, 1.0],
                }
            )

    def test_states_without_beliefs(self):
        with pytest.raises(RequestError, match="beliefs"):
            EquilibriumRequest.from_payload(
                {"weights": [1.0, 2.0], "states": [[1.0, 2.0]]}
            )

    def test_beliefs_must_sum_to_one(self):
        with pytest.raises(RequestError, match="sum to 1"):
            EquilibriumRequest.from_payload(
                {
                    "weights": [1.0, 2.0],
                    "states": [[1.0, 2.0], [2.0, 1.0]],
                    "beliefs": [[0.9, 0.3], [0.5, 0.5]],
                }
            )

    def test_non_finite_rejected(self):
        with pytest.raises(RequestError, match="finite"):
            EquilibriumRequest.from_payload(
                {"weights": [1.0, float("inf")], "link_capacities": [1.0, 1.0]}
            )

    def test_wrong_dimensionality(self):
        with pytest.raises(RequestError, match="2-dimensional"):
            EquilibriumRequest.from_payload(
                {"weights": [1.0, 2.0], "capacities": [1.0, 1.0]}
            )

    def test_not_an_object(self):
        with pytest.raises(RequestError, match="JSON object"):
            EquilibriumRequest.from_payload([1, 2, 3])

    def test_profile_budget_enforced(self):
        n, m = 10, 4
        assert m**n > MAX_SERVICE_PROFILES
        with pytest.raises(RequestError, match="profiles"):
            EquilibriumRequest.from_arrays(np.ones(n), np.ones((n, m)))

    def test_model_invariants_forwarded(self):
        with pytest.raises(RequestError):
            EquilibriumRequest.from_arrays(
                np.array([1.0, -2.0]), np.ones((2, 2))
            )


class TestFromRequests:
    def test_groups_by_shape_in_first_appearance_order(self):
        requests = [
            _request("grp", 3, 3, 0),
            _request("grp", 2, 2, 1),
            _request("grp", 3, 3, 2),
        ]
        grouped = GameBatch.from_requests(requests)
        assert [indices for _, indices in grouped] == [[0, 2], [1]]
        first, _ = grouped[0]
        assert len(first) == 2
        assert np.array_equal(first.weights[1], requests[2].weights)
        assert np.array_equal(first.capacities[0], requests[0].capacities)

    def test_empty(self):
        assert GameBatch.from_requests([]) == []

    def test_rejects_non_matrix_capacities(self):
        bad = SimpleNamespace(
            weights=np.ones(2),
            capacities=np.ones(2),
            initial_traffic=np.zeros(2),
        )
        with pytest.raises(DimensionError, match="must be \\(n, m\\)"):
            GameBatch.from_requests([bad])


class TestSolveDifferential:
    """Service responses vs the direct B = 1 APIs, bit for bit."""

    @pytest.mark.parametrize(
        "n,m,index", [(2, 2, 0), (3, 3, 1), (4, 3, 2), (3, 4, 3), (2, 5, 4)]
    )
    def test_single_request_matches_direct_apis(self, n, m, index):
        request = _request("diff", n, m, index)
        _check_differential(request, solve_requests([request])[0])

    def test_uniform_beliefs_report_theorem_413(self):
        batch = GameBatch.from_seeds_uniform_beliefs(
            [stable_seed("svc-test", "u")], 3, 3
        )
        request = EquilibriumRequest.from_arrays(
            batch.weights[0], batch.capacities[0], batch.initial_traffic[0]
        )
        response = solve_requests([request])[0]
        game = _game(request)
        assert game.has_uniform_beliefs()
        assert response["poa"]["bound_uniform"] == poa_bound_uniform(game)
        _check_differential(request, response)

    def test_kp_game_with_distinct_links_is_not_uniform(self):
        """Uniform beliefs = per-user constant across links; a random KP
        game has distinct link capacities, so Theorem 4.13 must NOT be
        reported for it."""
        batch = GameBatch.from_seeds_kp([stable_seed("svc-test", "kp")], 3, 3)
        request = EquilibriumRequest.from_arrays(
            batch.weights[0], batch.capacities[0], batch.initial_traffic[0]
        )
        response = solve_requests([request])[0]
        assert not _game(request).has_uniform_beliefs()
        assert response["poa"]["bound_uniform"] is None
        _check_differential(request, response)

    def test_mixed_shape_batch_equals_singles(self):
        """The stacked mixed-shape pass vs one request at a time."""
        requests = [
            _request("mix", n, m, index)
            for index, (n, m) in enumerate(
                [(3, 3), (2, 2), (4, 3), (3, 3), (2, 5), (3, 4)]
            )
        ]
        combined = solve_requests(requests)
        singles = [solve_requests([request])[0] for request in requests]
        assert combined == singles
        for request, response in zip(requests, combined):
            _check_differential(request, response)


class TestResultCache:
    def test_lru_eviction_order(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh: b becomes oldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["size"] == stats["maxsize"] == 2

    def test_zero_size_disables(self):
        cache = ResultCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert cache.stats()["size"] == 0


class TestDynamicBatcher:
    def test_invalid_knobs(self):
        with pytest.raises(ValueError, match="max_batch"):
            DynamicBatcher(max_batch=0)
        with pytest.raises(ValueError, match="max_delay_ms"):
            DynamicBatcher(max_delay_ms=-1.0)

    def test_size_flush_coalesces_concurrent_requests(self):
        requests = [_request("size", 3, 3, i) for i in range(4)]

        async def scenario():
            batcher = DynamicBatcher(max_batch=4, max_delay_ms=10_000.0)
            results = await asyncio.gather(
                *(batcher.submit(request) for request in requests)
            )
            await batcher.close()
            return batcher, results

        batcher, results = asyncio.run(scenario())
        assert batcher.size_flushes == 1
        assert batcher.deadline_flushes == 0
        assert batcher.batches == 1
        assert batcher.batched_games == 4
        for request, response in zip(requests, results):
            _check_differential(request, response)

    def test_deadline_flush_releases_lone_request(self):
        request = _request("deadline", 2, 2)

        async def scenario():
            batcher = DynamicBatcher(max_batch=64, max_delay_ms=1.0)
            result = await batcher.submit(request)
            await batcher.close()
            return batcher, result

        batcher, result = asyncio.run(scenario())
        assert batcher.deadline_flushes == 1
        assert batcher.size_flushes == 0
        _check_differential(request, result)

    def test_duplicate_digests_ride_along(self):
        request = _request("dup", 3, 3)

        async def scenario():
            batcher = DynamicBatcher(max_batch=8, max_delay_ms=1.0)
            first, second = await asyncio.gather(
                batcher.submit(request), batcher.submit(request)
            )
            await batcher.close()
            return batcher, first, second

        batcher, first, second = asyncio.run(scenario())
        assert batcher.coalesced == 1
        assert batcher.batched_games == 1  # the duplicate never enqueued
        assert first == second
        _check_differential(request, first)

    def test_cache_hits_bypass_the_window(self):
        request = _request("cache", 3, 3)

        async def scenario():
            cache = ResultCache(8)
            batcher = DynamicBatcher(
                max_batch=8, max_delay_ms=1.0, cache=cache
            )
            first = await batcher.submit(request)
            second = await batcher.submit(request)
            await batcher.close()
            return batcher, first, second

        batcher, first, second = asyncio.run(scenario())
        assert second is first  # the cached object itself
        assert batcher.batches == 1
        assert batcher.stats()["cache"]["hits"] == 1
        _check_differential(request, first)

    def test_solver_failure_reaches_every_waiter(self):
        requests = [_request("boom", 2, 2, i) for i in range(2)]

        def exploding_solver(window):
            raise RuntimeError("kernel exploded")

        async def scenario():
            batcher = DynamicBatcher(
                exploding_solver, max_batch=2, max_delay_ms=10_000.0
            )
            results = await asyncio.gather(
                *(batcher.submit(request) for request in requests),
                return_exceptions=True,
            )
            await batcher.close()
            return results

        results = asyncio.run(scenario())
        assert len(results) == 2
        assert all(
            isinstance(r, RuntimeError) and "kernel exploded" in str(r)
            for r in results
        )

    def test_closed_batcher_rejects_submits(self):
        async def scenario():
            batcher = DynamicBatcher()
            await batcher.close()
            with pytest.raises(RuntimeError, match="closed"):
                await batcher.submit(_request("closed", 2, 2))

        asyncio.run(scenario())


async def _with_server(fn, **kwargs):
    server = EquilibriumServer(port=0, **kwargs)
    await server.start()
    try:
        return await fn(server)
    finally:
        await server.close()


class TestEquilibriumServer:
    def test_mixed_shape_concurrent_load_is_bit_identical(self):
        """The acceptance gate: a pipelined mixed-shape burst over the
        real asyncio server, every answer (cache-hit wave included)
        bit-identical to the direct B = 1 APIs."""
        requests = [
            _request("srv", n, m, index)
            for index, (n, m) in enumerate(
                [(3, 3), (2, 2), (3, 4), (3, 3), (2, 5)]
            )
        ]
        payloads = [_payload(request) for request in requests]

        async def scenario(server):
            client = await ServiceClient.connect(server.host, server.port)
            try:
                burst = await client.solve_many(payloads)
                cached = await client.solve_many(payloads)
                stats = await client.stats()
            finally:
                await client.close()
            return burst, cached, stats

        burst, cached, stats = asyncio.run(_with_server(scenario))
        assert cached == burst
        assert stats["cache"]["hits"] >= len(payloads)
        assert stats["batched_games"] == len(payloads)
        for request, response in zip(requests, burst):
            _check_differential(request, response)

    def test_protocol_errors_do_not_kill_the_connection(self):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            try:
                lines = [
                    b"this is not json\n",
                    b"[1, 2, 3]\n",
                    b'{"op": "launch-missiles"}\n',
                    b'{"op": "solve", "weights": [1.0, 2.0]}\n',
                    b'{"op": "ping"}\n',
                ]
                replies = []
                for line in lines:
                    writer.write(line)
                    await writer.drain()
                    replies.append(await reader.readline())
                return [r.decode("utf-8") for r in replies]
            finally:
                writer.close()
                await writer.wait_closed()

        replies = asyncio.run(_with_server(scenario))
        assert '"ok": false' in replies[0] and "invalid JSON" in replies[0]
        assert "JSON object" in replies[1]
        assert "unknown op" in replies[2]
        assert "exactly one" in replies[3]
        assert '"pong": true' in replies[4]

    def test_shutdown_op_stops_the_server(self):
        async def scenario():
            server = EquilibriumServer(port=0)
            await server.start()
            waiter = asyncio.ensure_future(server.serve_until_shutdown())
            client = await ServiceClient.connect(server.host, server.port)
            try:
                await client.shutdown()
            finally:
                await client.close()
            await asyncio.wait_for(waiter, timeout=10.0)

        asyncio.run(scenario())


class TestServeCLIRoundTrip:
    """The CI service-smoke job, in miniature: real subprocesses."""

    def test_serve_and_smoke_subprocesses(self):
        root = Path(__file__).resolve().parents[1]
        env = {**os.environ, "PYTHONPATH": str(root / "src")}
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            cwd=root,
            env=env,
        )
        try:
            ready = server.stdout.readline()
            match = re.search(r"serving equilibria on [^:]+:(\d+)", ready)
            assert match, f"no readiness line, got: {ready!r}"
            port = match.group(1)
            smoke = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.service.smoke",
                    "--port",
                    port,
                    "--games",
                    "9",
                ],
                capture_output=True,
                text=True,
                cwd=root,
                env=env,
                timeout=120,
            )
            assert smoke.returncode == 0, smoke.stdout + smoke.stderr
            assert "smoke ok" in smoke.stdout
            # The smoke driver's shutdown op must stop the server cleanly.
            assert server.wait(timeout=60) == 0
        finally:
            if server.poll() is None:
                server.kill()
                server.wait()
