"""Property tests: batch kernels agree elementwise with the single-game
reference APIs on randomised (B, n, m) stacks.

These are the contract tests of the batched engine: every ``batch_*``
kernel must return, slice for slice, exactly what the corresponding
single-game function returns on ``GameBatch.game(i)`` — including the
B=1 and minimal (n=2, m=2) edge shapes, and with initial traffic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import (
    GameBatch,
    batch_count_pure_nash,
    batch_deviation_latencies,
    batch_exists_pure_nash,
    batch_loads,
    batch_pure_latencies,
    batch_pure_nash_mask,
    random_game_batch,
)
from repro.batch.kernels import sweep_pure_nash_mask
from repro.equilibria.enumeration import (
    count_pure_nash,
    exists_pure_nash,
    pure_nash_mask,
)
from repro.errors import DimensionError, ModelError
from repro.generators.games import random_game
from repro.model.latency import deviation_latencies, pure_latencies
from repro.model.profiles import loads_of
from repro.model.social import enumerate_assignments
from repro.util.rng import stable_seed

SHAPES = [(1, 2, 2), (1, 5, 3), (6, 2, 2), (8, 3, 4), (5, 10, 2), (4, 8, 3)]


def make_batch(b, n, m, *, with_traffic=False, tag="kern"):
    seeds = [stable_seed(tag, b, n, m, i) for i in range(b)]
    return (
        GameBatch.from_seeds(
            seeds, n, m, with_initial_traffic=with_traffic
        ),
        seeds,
    )


def random_assignments(b, n, m, seed=0):
    return np.random.default_rng(seed).integers(0, m, size=(b, n)).astype(np.intp)


class TestGameBatch:
    def test_from_seeds_matches_random_game_bitwise(self):
        batch, seeds = make_batch(7, 4, 3, with_traffic=True)
        for i, s in enumerate(seeds):
            game = random_game(4, 3, with_initial_traffic=True, seed=s)
            assert np.array_equal(batch.weights[i], game.weights)
            assert np.array_equal(batch.capacities[i], game.capacities)
            assert np.array_equal(batch.initial_traffic[i], game.initial_traffic)

    def test_from_games_round_trip(self):
        games = [random_game(3, 2, seed=i) for i in range(4)]
        batch = GameBatch.from_games(games)
        assert len(batch) == 4
        for i, game in enumerate(batch):
            assert np.array_equal(game.capacities, games[i].capacities)
            assert np.array_equal(game.weights, games[i].weights)

    def test_shape_properties(self):
        batch, _ = make_batch(5, 3, 4)
        assert (batch.batch_size, batch.num_users, batch.num_links) == (5, 3, 4)
        assert batch.weights.shape == (5, 3)
        assert batch.capacities.shape == (5, 3, 4)
        assert batch.initial_traffic.shape == (5, 4)

    def test_subbatch_preserves_rows(self):
        batch, _ = make_batch(6, 3, 2)
        sub = batch.subbatch([4, 1])
        assert np.array_equal(sub.capacities[0], batch.capacities[4])
        assert np.array_equal(sub.weights[1], batch.weights[1])

    def test_mixed_shapes_rejected(self):
        games = [random_game(3, 2, seed=0), random_game(4, 2, seed=1)]
        with pytest.raises(DimensionError):
            GameBatch.from_games(games)

    def test_validation(self):
        with pytest.raises(DimensionError):
            GameBatch(np.ones((2, 3)), np.ones((2, 4, 2)))
        with pytest.raises(ModelError):
            GameBatch(np.ones((1, 2)), -np.ones((1, 2, 2)))
        with pytest.raises(ModelError):
            GameBatch(
                np.ones((1, 2)), np.ones((1, 2, 2)),
                initial_traffic=-np.ones((1, 2)),
            )

    def test_arrays_read_only(self):
        batch, _ = make_batch(2, 2, 2)
        with pytest.raises(ValueError):
            batch.capacities[0, 0, 0] = 1.0


class TestBatchLatencyKernels:
    @pytest.mark.parametrize("b,n,m", SHAPES)
    @pytest.mark.parametrize("with_traffic", [False, True])
    def test_loads_match_loads_of(self, b, n, m, with_traffic):
        batch, _ = make_batch(b, n, m, with_traffic=with_traffic)
        sig = random_assignments(b, n, m, seed=b * n * m)
        got = batch_loads(sig, batch.weights, m, batch.initial_traffic)
        for i in range(b):
            ref = loads_of(sig[i], batch.weights[i], m, batch.initial_traffic[i])
            assert np.array_equal(got[i], ref)

    @pytest.mark.parametrize("b,n,m", SHAPES)
    def test_pure_latencies_match(self, b, n, m):
        batch, _ = make_batch(b, n, m, with_traffic=True)
        sig = random_assignments(b, n, m, seed=b + n + m)
        got = batch_pure_latencies(
            sig, batch.weights, batch.capacities, batch.initial_traffic
        )
        assert got.shape == (b, n)
        for i in range(b):
            assert np.array_equal(got[i], pure_latencies(batch.game(i), sig[i]))

    @pytest.mark.parametrize("b,n,m", SHAPES)
    def test_deviation_latencies_match(self, b, n, m):
        batch, _ = make_batch(b, n, m, with_traffic=True)
        sig = random_assignments(b, n, m, seed=b * 7 + m)
        got = batch_deviation_latencies(
            sig, batch.weights, batch.capacities, batch.initial_traffic
        )
        assert got.shape == (b, n, m)
        for i in range(b):
            assert np.array_equal(got[i], deviation_latencies(batch.game(i), sig[i]))

    def test_single_game_is_b1_view(self):
        """The single-game API must be exactly the batch-of-one slice."""
        batch, _ = make_batch(1, 4, 3, with_traffic=True)
        game = batch.game(0)
        sig = random_assignments(1, 4, 3, seed=9)[0]
        assert np.array_equal(
            deviation_latencies(game, sig),
            batch_deviation_latencies(
                sig[None], batch.weights, batch.capacities, batch.initial_traffic
            )[0],
        )

    def test_broadcasting_profile_axis(self):
        """One game, many profiles: the enumeration call shape."""
        game = random_game(3, 3, seed=5)
        profiles = random_assignments(10, 3, 3, seed=11)
        dev = batch_deviation_latencies(profiles, game.weights, game.capacities)
        for r in range(10):
            assert np.array_equal(dev[r], deviation_latencies(game, profiles[r]))

    def test_user_mismatch_raises(self):
        batch, _ = make_batch(2, 3, 2)
        with pytest.raises(DimensionError):
            batch_deviation_latencies(
                np.zeros((2, 4), dtype=np.intp), batch.weights, batch.capacities
            )


class TestBatchNashKernels:
    @pytest.mark.parametrize("b,n,m", SHAPES)
    def test_mask_matches_single_game(self, b, n, m):
        batch, _ = make_batch(b, n, m, with_traffic=True)
        sig = random_assignments(b, n, m, seed=3 * b + m)
        got = batch_pure_nash_mask(
            sig, batch.weights, batch.capacities, batch.initial_traffic
        )
        for i in range(b):
            ref = pure_nash_mask(batch.game(i), sig[i][None, :])[0]
            assert got[i] == ref

    @pytest.mark.parametrize("b,n,m", [(1, 2, 2), (6, 2, 2), (10, 3, 3), (5, 4, 3)])
    def test_count_matches_single_game(self, b, n, m):
        batch, _ = make_batch(b, n, m)
        counts = batch_count_pure_nash(batch)
        assert counts.shape == (b,)
        for i in range(b):
            assert counts[i] == count_pure_nash(batch.game(i))

    @pytest.mark.parametrize("b,n,m", [(1, 2, 2), (6, 3, 3), (4, 5, 2)])
    def test_exists_matches_single_game(self, b, n, m):
        batch, _ = make_batch(b, n, m, with_traffic=True)
        exists = batch_exists_pure_nash(batch)
        for i in range(b):
            assert exists[i] == exists_pure_nash(batch.game(i))

    def test_count_blocking_invariant(self):
        batch, _ = make_batch(5, 4, 3)
        ref = batch_count_pure_nash(batch)
        for block in (1, 7, 81):
            assert np.array_equal(batch_count_pure_nash(batch, block_size=block), ref)

    # b=6 lands below the 65,536-element one-shot cutover (6*27*9 = 1458),
    # b=300 above it (300*27*9 = 72,900), so both the one-shot tensor path
    # and the per-user survivor loop are compared against the generic kernel.
    @pytest.mark.parametrize("b", [6, 300])
    def test_sweep_mask_equals_generic_mask(self, b):
        """The GEMM sweep (both internal paths) and the generic broadcast
        kernel must agree exactly."""
        batch = random_game_batch(b, 3, 3, with_initial_traffic=True, seed=b)
        assignments = enumerate_assignments(3, 3)
        got = sweep_pure_nash_mask(
            assignments, batch.weights, batch.capacities, batch.initial_traffic
        )
        ref = batch_pure_nash_mask(
            assignments[None, :, :],
            batch.weights[:, None, :],
            batch.capacities[:, None, :, :],
            batch.initial_traffic[:, None, :],
        )
        assert got.shape == (b, assignments.shape[0])
        assert np.array_equal(got, ref)

    def test_sweep_mask_negative_tol_rejected(self):
        batch, _ = make_batch(2, 2, 2)
        with pytest.raises(ValueError):
            sweep_pure_nash_mask(
                enumerate_assignments(2, 2), batch.weights, batch.capacities,
                tol=-1e-3,
            )


class TestRandomGameBatch:
    def test_deterministic(self):
        a = random_game_batch(20, 4, 3, seed=123)
        b = random_game_batch(20, 4, 3, seed=123)
        assert np.array_equal(a.capacities, b.capacities)
        assert np.array_equal(a.weights, b.weights)

    def test_shapes_and_positivity(self):
        batch = random_game_batch(50, 3, 4, with_initial_traffic=True, seed=1)
        assert batch.capacities.shape == (50, 3, 4)
        assert np.all(batch.capacities > 0)
        assert np.all(batch.weights > 0)
        assert np.all(batch.initial_traffic >= 0)

    def test_effective_caps_within_state_range(self):
        """Belief-harmonic capacities lie inside the drawn state range."""
        batch = random_game_batch(100, 4, 3, cap_low=0.5, cap_high=4.0, seed=2)
        assert np.all(batch.capacities >= 0.5 - 1e-9)
        assert np.all(batch.capacities <= 4.0 + 1e-9)

    @pytest.mark.parametrize("kind", ["uniform", "exponential", "lognormal", "integer"])
    def test_weight_kinds(self, kind):
        batch = random_game_batch(10, 3, 2, weight_kind=kind, seed=3)
        assert np.all(batch.weights > 0)

    def test_games_are_valid_instances(self):
        """Every slice must materialise as a well-formed game object."""
        batch = random_game_batch(5, 3, 3, seed=4)
        for game in batch:
            assert game.num_users == 3 and game.num_links == 3

    def test_invalid_arguments(self):
        with pytest.raises(ModelError):
            random_game_batch(0, 3, 3)
        with pytest.raises(ModelError):
            random_game_batch(2, 1, 3)
        with pytest.raises(ModelError):
            random_game_batch(2, 3, 3, concentration=0.0)
        with pytest.raises(ModelError):
            random_game_batch(2, 3, 3, weight_kind="gamma")
