"""Tests for FMNE dominance verification (Lemma 4.9 / Thms 4.11-4.12)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.worst_case import (
    fmne_reference_latencies,
    verify_fmne_dominance,
)
from repro.equilibria.fully_mixed import fully_mixed_candidate
from repro.generators.games import random_game, random_uniform_beliefs_game


class TestReferenceLatencies:
    def test_matches_candidate(self):
        game = random_game(3, 2, seed=0)
        np.testing.assert_allclose(
            fmne_reference_latencies(game),
            fully_mixed_candidate(game).latencies,
        )


class TestDominance:
    @pytest.mark.parametrize("seed", range(8))
    def test_lemma_4_9_holds_on_random_games(self, seed):
        game = random_game(3, 2, seed=seed)
        report = verify_fmne_dominance(game)
        assert report.holds, f"violations: {report.violations}"

    @pytest.mark.parametrize("seed", range(4))
    def test_lemma_4_9_uniform_beliefs(self, seed):
        game = random_uniform_beliefs_game(3, 2, seed=seed)
        report = verify_fmne_dominance(game)
        assert report.holds

    def test_sc_maximality_theorems(self):
        """Theorems 4.11/4.12: SC1 and SC2 of every NE are below the
        fully mixed values."""
        for seed in range(6):
            game = random_game(3, 2, seed=seed)
            report = verify_fmne_dominance(game)
            if not report.equilibria:
                continue
            assert max(report.sc1_values) <= report.fmne_sc1() * (1 + 1e-7)
            assert max(report.sc2_values) <= report.fmne_sc2() * (1 + 1e-7)

    def test_corollary_4_10_pseudo_profile(self):
        """Dominance is asserted against the closed-form latencies even
        when the fully mixed NE does not exist."""
        hits = 0
        for seed in range(20):
            game = random_game(3, 2, seed=seed)
            report = verify_fmne_dominance(game)
            if not report.fmne_exists:
                hits += 1
                assert report.holds
        assert hits > 0  # the sweep exercised the Corollary 4.10 branch

    def test_report_contents(self):
        game = random_game(2, 2, seed=3)
        report = verify_fmne_dominance(game)
        assert report.game is game
        assert report.reference_latencies.shape == (2,)
        assert isinstance(report.fmne_exists, bool)
        assert report.holds == (len(report.violations) == 0)

    def test_equilibria_found(self):
        game = random_game(2, 2, seed=4)
        report = verify_fmne_dominance(game)
        # Conjecture 3.7: at least one (pure) equilibrium must appear.
        assert len(report.equilibria) >= 1
