"""Tests for repro.model.latency — the engine everything else rests on."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.game import UncertainRoutingGame
from repro.model.latency import (
    deviation_latencies,
    expected_loads,
    min_expected_latencies,
    mixed_latency_matrix,
    pure_latencies,
    pure_latencies_by_state,
    pure_latency_of_user,
)
from repro.model.profiles import pure_to_mixed
from repro.generators.games import random_game


class TestPureLatencies:
    def test_hand_computed(self):
        # Two users on distinct links with unit beliefs.
        game = UncertainRoutingGame.from_capacities(
            [1.0, 2.0], [[1.0, 2.0], [2.0, 4.0]]
        )
        lat = pure_latencies(game, [0, 1])
        # user 0 alone on link 0: load 1 / cap 1 = 1
        # user 1 alone on link 1: load 2 / cap 4 = 0.5
        np.testing.assert_allclose(lat, [1.0, 0.5])

    def test_shared_link_includes_both(self):
        game = UncertainRoutingGame.from_capacities(
            [1.0, 2.0], [[1.0, 2.0], [2.0, 4.0]]
        )
        lat = pure_latencies(game, [0, 0])
        np.testing.assert_allclose(lat, [3.0 / 1.0, 3.0 / 2.0])

    def test_initial_traffic_added(self):
        game = UncertainRoutingGame.from_capacities(
            [1.0, 1.0], [[1.0, 1.0], [1.0, 1.0]], initial_traffic=[5.0, 0.0]
        )
        lat = pure_latencies(game, [0, 1])
        np.testing.assert_allclose(lat, [6.0, 1.0])

    def test_single_user_helper_matches(self, three_user_game):
        sigma = [0, 1, 2]
        lat = pure_latencies(three_user_game, sigma)
        for i in range(3):
            assert pure_latency_of_user(three_user_game, sigma, i) == pytest.approx(
                lat[i]
            )

    def test_belief_reduction_identity(self):
        """E[load / c_phi] over the belief == load / c_eff (the paper's
        reduction) for every user; this is the core modelling identity."""
        game = random_game(5, 3, num_states=6, seed=42)
        sigma = [0, 1, 2, 0, 1]
        by_state = pure_latencies_by_state(game, sigma)  # (n, S)
        expected = (game.beliefs.matrix * by_state).sum(axis=1)
        np.testing.assert_allclose(expected, pure_latencies(game, sigma))

    def test_by_state_shape(self, simple_game):
        out = pure_latencies_by_state(simple_game, [0, 1])
        assert out.shape == (2, 2)


class TestDeviationLatencies:
    def test_diagonal_is_current(self, three_user_game):
        sigma = np.array([0, 1, 2], dtype=np.intp)
        dev = deviation_latencies(three_user_game, sigma)
        cur = pure_latencies(three_user_game, sigma)
        np.testing.assert_allclose(dev[np.arange(3), sigma], cur)

    def test_off_diagonal_adds_own_weight(self):
        game = UncertainRoutingGame.from_capacities(
            [1.0, 2.0], [[1.0, 1.0], [1.0, 1.0]]
        )
        dev = deviation_latencies(game, [0, 0])
        # user 0 moving to empty link 1 would see just its own weight.
        assert dev[0, 1] == pytest.approx(1.0)
        # user 1 moving to link 1: its weight 2 alone.
        assert dev[1, 1] == pytest.approx(2.0)

    def test_matches_explicit_move(self, three_user_game):
        sigma = np.array([0, 0, 1], dtype=np.intp)
        dev = deviation_latencies(three_user_game, sigma)
        for user in range(3):
            for link in range(3):
                moved = sigma.copy()
                moved[user] = link
                expected = pure_latency_of_user(three_user_game, moved, user)
                assert dev[user, link] == pytest.approx(expected)


class TestMixedLatencies:
    def test_matches_paper_formula(self, simple_game):
        p = np.array([[0.3, 0.7], [0.6, 0.4]])
        lat = mixed_latency_matrix(simple_game, p)
        w = simple_game.weights
        caps = simple_game.capacities
        w_link = p.T @ w
        for i in range(2):
            for link in range(2):
                manual = ((1 - p[i, link]) * w[i] + w_link[link]) / caps[i, link]
                assert lat[i, link] == pytest.approx(manual)

    def test_degenerate_mixed_matches_pure(self, three_user_game):
        sigma = [0, 2, 1]
        mixed = pure_to_mixed(sigma, 3, 3)
        lat_matrix = mixed_latency_matrix(three_user_game, mixed)
        pure = pure_latencies(three_user_game, sigma)
        for i, link in enumerate(sigma):
            assert lat_matrix[i, link] == pytest.approx(pure[i])

    def test_degenerate_mixed_deviations_match(self, three_user_game):
        """On one-hot rows the mixed matrix IS the deviation matrix."""
        sigma = [0, 1, 2]
        mixed = pure_to_mixed(sigma, 3, 3)
        np.testing.assert_allclose(
            mixed_latency_matrix(three_user_game, mixed),
            deviation_latencies(three_user_game, sigma),
        )

    def test_min_expected_latencies(self, simple_game):
        p = np.array([[0.5, 0.5], [0.5, 0.5]])
        mins = min_expected_latencies(simple_game, p)
        full = mixed_latency_matrix(simple_game, p)
        np.testing.assert_allclose(mins, full.min(axis=1))

    def test_expected_loads(self, simple_game):
        p = np.array([[0.3, 0.7], [0.6, 0.4]])
        loads = expected_loads(simple_game, p)
        w = simple_game.weights
        np.testing.assert_allclose(
            loads, [0.3 * w[0] + 0.6 * w[1], 0.7 * w[0] + 0.4 * w[1]]
        )

    def test_expected_loads_include_initial_traffic(self):
        game = UncertainRoutingGame.from_capacities(
            [1.0, 1.0], [[1.0, 1.0], [1.0, 1.0]], initial_traffic=[2.0, 3.0]
        )
        p = np.full((2, 2), 0.5)
        np.testing.assert_allclose(expected_loads(game, p), [3.0, 4.0])

    def test_total_expected_load_conserved(self):
        game = random_game(6, 4, seed=0)
        rng = np.random.default_rng(1)
        p = rng.dirichlet(np.ones(4), size=6)
        assert expected_loads(game, p).sum() == pytest.approx(
            game.total_traffic + game.initial_traffic.sum()
        )
