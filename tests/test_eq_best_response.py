"""Tests for best-/better-response dynamics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.model.game import UncertainRoutingGame
from repro.equilibria.best_response import (
    best_response_dynamics,
    best_responses,
    better_response_dynamics,
)
from repro.equilibria.conditions import is_pure_nash
from repro.generators.games import random_game, random_kp_game


class TestBestResponses:
    def test_points_to_argmin(self, three_user_game):
        sigma = [0, 0, 0]
        br = best_responses(three_user_game, sigma)
        from repro.model.latency import deviation_latencies

        dev = deviation_latencies(three_user_game, sigma)
        np.testing.assert_array_equal(br, np.argmin(dev, axis=1))

    def test_fixed_point_is_nash(self, three_user_game):
        from repro.equilibria.enumeration import pure_nash_profiles

        for eq in pure_nash_profiles(three_user_game):
            br = best_responses(three_user_game, eq)
            # At a NE the current link attains the minimum (ties may pick a
            # lower-indexed link of equal latency).
            from repro.model.latency import deviation_latencies

            dev = deviation_latencies(three_user_game, eq)
            cur = dev[np.arange(3), eq.links]
            np.testing.assert_allclose(dev[np.arange(3), br], cur, rtol=1e-9)


class TestBestResponseDynamics:
    @pytest.mark.parametrize("schedule", ["round_robin", "max_regret", "random"])
    def test_converges_to_nash(self, schedule):
        game = random_game(5, 3, seed=8)
        result = best_response_dynamics(game, schedule=schedule, seed=0)
        assert result.converged
        assert is_pure_nash(game, result.profile)

    def test_start_respected(self, three_user_game):
        result = best_response_dynamics(three_user_game, [0, 0, 0], seed=0)
        assert result.converged

    def test_start_not_mutated(self, three_user_game):
        start = np.array([0, 0, 0], dtype=np.intp)
        best_response_dynamics(three_user_game, start, seed=0)
        np.testing.assert_array_equal(start, [0, 0, 0])

    def test_zero_steps_when_starting_at_nash(self, three_user_game):
        from repro.equilibria.enumeration import pure_nash_profiles

        eq = pure_nash_profiles(three_user_game)[0]
        result = best_response_dynamics(three_user_game, eq)
        assert result.converged
        assert result.steps == 0
        assert result.profile == eq

    def test_history_recorded(self, three_user_game):
        result = best_response_dynamics(
            three_user_game, [0, 0, 0], record_history=True
        )
        assert len(result.history) == result.steps + 1
        assert result.history[0].as_tuple() == (0, 0, 0)

    def test_history_moves_are_unilateral(self, three_user_game):
        result = best_response_dynamics(
            three_user_game, [0, 0, 0], record_history=True
        )
        for a, b in zip(result.history, result.history[1:]):
            diff = np.sum(a.links != b.links)
            assert diff == 1

    def test_budget_exhaustion_returns_unconverged(self):
        game = random_game(6, 3, seed=1)
        result = best_response_dynamics(game, [0] * 6, max_steps=0)
        assert not result.converged

    def test_budget_exhaustion_can_raise(self):
        game = random_game(6, 3, seed=1)
        # max_steps=0 cannot converge unless start is already a NE.
        if not is_pure_nash(game, [0] * 6):
            with pytest.raises(ConvergenceError):
                best_response_dynamics(
                    game, [0] * 6, max_steps=0, raise_on_budget=True
                )

    def test_deterministic_given_seed(self):
        game = random_game(5, 3, seed=3)
        a = best_response_dynamics(game, schedule="random", seed=11)
        b = best_response_dynamics(game, schedule="random", seed=11)
        assert a.profile == b.profile
        assert a.steps == b.steps

    def test_many_random_instances_converge(self):
        """The E5 evidence in miniature: dynamics always found a NE."""
        for seed in range(25):
            game = random_game(4, 3, seed=seed)
            result = best_response_dynamics(game, seed=seed)
            assert result.converged, f"instance {seed} did not converge"


class TestBetterResponseDynamics:
    def test_converges_on_kp(self):
        """Common-beliefs games have a weighted potential, so better-response
        dynamics must converge from every start."""
        for seed in range(10):
            game = random_kp_game(5, 3, seed=seed)
            result = better_response_dynamics(game, seed=seed)
            assert result.converged
            assert is_pure_nash(game, result.profile)

    def test_converged_profile_is_nash(self):
        game = random_game(4, 4, seed=2)
        result = better_response_dynamics(game, seed=5)
        if result.converged:
            assert is_pure_nash(game, result.profile)

    def test_sampled_trajectories_never_cycle(self):
        """Deterministic better-response trajectories on sampled instances
        always converge — consistent with the E6 finding that short
        improvement cycles are unrealisable in this model."""
        for seed in range(60):
            game = random_game(3, 3, concentration=0.35, seed=seed)
            result = better_response_dynamics(
                game, schedule="round_robin", max_steps=5_000, seed=seed
            )
            assert result.converged
            assert not result.cycled

    def test_cycle_detection_machinery(self):
        """Exercise the revisit detector directly: a negative tolerance
        turns ties into 'improvements', forcing an immediate revisit that
        must be reported as a cycle instead of looping to the budget."""
        game = UncertainRoutingGame.from_capacities(
            [1.0, 1.0], [[1.0, 1.0], [1.0, 1.0]]
        )
        result = better_response_dynamics(
            game,
            [0, 1],
            schedule="round_robin",
            record_history=True,
            tol=-1.0,
            max_steps=1_000,
        )
        assert result.cycled
        assert not result.converged
        assert len(result.cycle) >= 1
        assert result.cycle[0] == result.history[-1]

    def test_moves_strictly_improve(self, three_user_game):
        from repro.model.latency import pure_latency_of_user

        result = better_response_dynamics(
            three_user_game, [0, 0, 0], record_history=True
        )
        for a, b in zip(result.history, result.history[1:]):
            mover = int(np.flatnonzero(a.links != b.links)[0])
            before = pure_latency_of_user(three_user_game, a, mover)
            after = pure_latency_of_user(three_user_game, b, mover)
            assert after < before
