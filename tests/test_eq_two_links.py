"""Tests for Algorithm Atwolinks (Figure 1 / Theorem 3.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AlgorithmDomainError
from repro.model.game import UncertainRoutingGame
from repro.equilibria.conditions import is_pure_nash
from repro.equilibria.enumeration import pure_nash_profiles
from repro.equilibria.two_links import atwolinks, tolerances
from repro.generators.games import random_two_link_game


class TestTolerances:
    def test_definition_balance_equation(self):
        """alpha solves (t_j + a)/c_j == (t_{j+1} + T - a + w_i)/c_{j+1}."""
        game = random_two_link_game(4, with_initial_traffic=True, seed=0)
        alpha = tolerances(game)
        t = game.initial_traffic
        T = game.total_traffic
        for i in range(game.num_users):
            for j in (0, 1):
                o = 1 - j
                lhs = (t[j] + alpha[i, j]) / game.capacities[i, j]
                rhs = (t[o] + T - alpha[i, j] + game.weights[i]) / game.capacities[i, o]
                assert lhs == pytest.approx(rhs, rel=1e-9)

    def test_matches_figure1_closed_form(self):
        game = random_two_link_game(5, seed=1)
        alpha = tolerances(game)
        c = game.capacities
        t = game.initial_traffic
        T = game.total_traffic
        w = game.weights
        harm = c[:, 0] * c[:, 1] / (c[:, 0] + c[:, 1])
        expected0 = harm * ((t[1] + T + w) / c[:, 1] - t[0] / c[:, 0])
        np.testing.assert_allclose(alpha[:, 0], expected0)

    def test_lemma_3_2_characterisation(self):
        """User i on link j is satisfied iff load on j <= alpha_i^j."""
        for seed in range(10):
            game = random_two_link_game(4, with_initial_traffic=True, seed=seed)
            alpha = tolerances(game)
            rng = np.random.default_rng(seed)
            sigma = rng.integers(0, 2, size=4)
            loads = np.bincount(sigma, weights=game.weights, minlength=2)
            from repro.equilibria.conditions import deviation_gains

            gains = deviation_gains(game, sigma)
            for i in range(4):
                j = sigma[i]
                satisfied = gains[i, 1 - j] >= -1e-9
                lemma = loads[j] <= alpha[i, j] + 1e-9
                assert satisfied == lemma

    def test_requires_two_links(self, three_user_game):
        with pytest.raises(AlgorithmDomainError):
            tolerances(three_user_game)

    def test_subset_of_users(self):
        game = random_two_link_game(6, seed=2)
        alpha_all = tolerances(game)
        alpha_sub = tolerances(game, users=np.array([1, 4]))
        np.testing.assert_allclose(alpha_sub, alpha_all[[1, 4]])


class TestAtwolinks:
    def test_returns_nash_basic(self, simple_game):
        profile = atwolinks(simple_game)
        assert is_pure_nash(simple_game, profile)

    @pytest.mark.parametrize("seed", range(20))
    def test_returns_nash_random(self, seed):
        game = random_two_link_game(6, seed=seed)
        assert is_pure_nash(game, atwolinks(game))

    @pytest.mark.parametrize("seed", range(20))
    def test_returns_nash_with_initial_traffic(self, seed):
        game = random_two_link_game(5, with_initial_traffic=True, seed=seed)
        assert is_pure_nash(game, atwolinks(game))

    @pytest.mark.parametrize("n", [2, 3, 7, 15, 40])
    def test_scales_over_users(self, n):
        game = random_two_link_game(n, seed=n)
        assert is_pure_nash(game, atwolinks(game))

    def test_result_among_enumerated_equilibria(self):
        game = random_two_link_game(5, seed=77)
        result = atwolinks(game)
        nash_set = {p.as_tuple() for p in pure_nash_profiles(game)}
        assert result.as_tuple() in nash_set

    def test_rejects_three_links(self, three_user_game):
        with pytest.raises(AlgorithmDomainError):
            atwolinks(three_user_game)

    def test_kp_special_case(self, kp_game_fixture):
        assert is_pure_nash(kp_game_fixture, atwolinks(kp_game_fixture))

    def test_deterministic(self):
        game = random_two_link_game(8, seed=5)
        assert atwolinks(game) == atwolinks(game)

    def test_heavily_asymmetric_capacities(self):
        # One link effectively useless for everyone: all users pile on the
        # good link and that *is* the equilibrium.
        caps = np.array([[10.0, 0.01], [10.0, 0.01], [10.0, 0.01]])
        game = UncertainRoutingGame.from_capacities([1.0, 1.0, 1.0], caps)
        profile = atwolinks(game)
        assert is_pure_nash(game, profile)
        assert profile.as_tuple() == (0, 0, 0)

    def test_opposing_beliefs_split_users(self):
        # Each user is certain a different link is fast: they separate.
        caps = np.array([[10.0, 0.1], [0.1, 10.0]])
        game = UncertainRoutingGame.from_capacities([1.0, 1.0], caps)
        profile = atwolinks(game)
        assert profile.as_tuple() == (0, 1)
