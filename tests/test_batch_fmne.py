"""Differential parity tests: batched mixed kernels vs single-game APIs.

The contract of :mod:`repro.batch.mixed` is *bit* parity, not tolerance
parity: for random :class:`GameBatch` stacks, every batched result slice
must equal the corresponding single-game computation exactly
(``np.array_equal``, no ``allclose``). These tests are what allows the
E7-E11 campaigns to promise results independent of batching.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import (
    GameBatch,
    batch_fully_mixed_candidate,
    batch_is_mixed_nash,
    batch_min_expected_latencies,
    batch_mixed_latency_matrix,
    normalize_rows,
)
from repro.equilibria.conditions import is_mixed_nash
from repro.equilibria.fully_mixed import fully_mixed_candidate
from repro.errors import DimensionError
from repro.generators.games import random_uniform_beliefs_game
from repro.model.latency import min_expected_latencies, mixed_latency_matrix
from repro.model.profiles import MixedProfile
from repro.util.rng import stable_seed

SHAPES = [(1, 2, 2), (1, 5, 3), (6, 2, 2), (8, 3, 4), (5, 8, 2), (4, 6, 3)]


def make_batch(b, n, m, *, with_traffic=False, tag="fmne"):
    seeds = [stable_seed(tag, b, n, m, i) for i in range(b)]
    return GameBatch.from_seeds(seeds, n, m, with_initial_traffic=with_traffic)


def random_mixed_stack(b, n, m, seed=0):
    """A stack of *validated* row-stochastic matrices (incl. one-hot rows).

    Routed through :class:`MixedProfile` so the stack is exactly what the
    single-game APIs would see — their array path renormalises raw input,
    which would otherwise make bitwise comparison meaningless.
    """
    rng = np.random.default_rng(seed)
    probs = rng.dirichlet(np.ones(m), size=(b, n))
    onehot_rows = rng.random((b, n)) < 0.3
    sig = rng.integers(0, m, size=(b, n))
    eye = np.zeros((b, n, m))
    eye[np.arange(b)[:, None], np.arange(n)[None, :], sig] = 1.0
    raw = np.where(onehot_rows[:, :, None], eye, probs)
    profiles = [MixedProfile(raw[i]) for i in range(b)]
    return np.stack([p.matrix for p in profiles]), profiles


class TestBatchFullyMixedCandidate:
    @pytest.mark.parametrize("b,n,m", SHAPES)
    @pytest.mark.parametrize("with_traffic", [False, True])
    def test_candidate_matches_single_game_bitwise(self, b, n, m, with_traffic):
        batch = make_batch(b, n, m, with_traffic=with_traffic)
        fm = batch_fully_mixed_candidate(
            batch.weights, batch.capacities, batch.initial_traffic
        )
        assert fm.probabilities.shape == (b, n, m)
        assert fm.latencies.shape == (b, n)
        assert fm.link_traffic.shape == (b, m)
        assert fm.exists.shape == (b,)
        for i in range(b):
            ref = fully_mixed_candidate(batch.game(i))
            assert np.array_equal(fm.probabilities[i], ref.probabilities)
            assert np.array_equal(fm.latencies[i], ref.latencies)
            assert np.array_equal(fm.link_traffic[i], ref.link_traffic)
            assert bool(fm.exists[i]) == ref.exists

    def test_single_game_is_b1_view(self):
        """2-D inputs give exactly the batch-of-one slice."""
        batch = make_batch(1, 4, 3, with_traffic=True)
        flat = batch_fully_mixed_candidate(
            batch.weights[0], batch.capacities[0], batch.initial_traffic[0]
        )
        stacked = batch_fully_mixed_candidate(
            batch.weights, batch.capacities, batch.initial_traffic
        )
        assert np.array_equal(flat.probabilities, stacked.probabilities[0])
        assert np.array_equal(flat.latencies, stacked.latencies[0])
        assert flat.exists.shape == ()

    def test_boundary_tol_respected(self):
        batch = make_batch(16, 3, 3)
        loose = batch_fully_mixed_candidate(
            batch.weights, batch.capacities, boundary_tol=1e-12
        )
        # An absurdly wide boundary band rejects every candidate.
        tight = batch_fully_mixed_candidate(
            batch.weights, batch.capacities, boundary_tol=0.49
        )
        assert not tight.exists.any()
        assert np.array_equal(loose.probabilities, tight.probabilities)

    def test_dimension_errors(self):
        batch = make_batch(2, 3, 2)
        with pytest.raises(DimensionError):
            batch_fully_mixed_candidate(batch.weights[:, :2], batch.capacities)
        with pytest.raises(DimensionError):
            batch_fully_mixed_candidate(np.float64(1.0), batch.capacities)


class TestNormalizeRows:
    def test_matches_mixed_profile_validation_bitwise(self):
        batch = make_batch(32, 3, 3)
        fm = batch_fully_mixed_candidate(batch.weights, batch.capacities)
        idx = np.flatnonzero(fm.exists)
        assert idx.size > 0
        normalized = normalize_rows(fm.probabilities[idx])
        for j, i in enumerate(idx):
            ref = fully_mixed_candidate(batch.game(int(i))).profile()
            assert np.array_equal(normalized[j], ref.matrix)

    def test_clips_negatives(self):
        out = normalize_rows(np.array([[-0.25, 0.5, 0.5]]))
        assert np.array_equal(out, [[0.0, 0.5, 0.5]])


class TestBatchMixedLatency:
    @pytest.mark.parametrize("b,n,m", SHAPES)
    @pytest.mark.parametrize("with_traffic", [False, True])
    def test_latency_matrix_matches_single_game(self, b, n, m, with_traffic):
        batch = make_batch(b, n, m, with_traffic=with_traffic)
        probs, profiles = random_mixed_stack(b, n, m, seed=b * n + m)
        got = batch_mixed_latency_matrix(
            probs, batch.weights, batch.capacities, batch.initial_traffic
        )
        mins = batch_min_expected_latencies(
            probs, batch.weights, batch.capacities, batch.initial_traffic
        )
        for i in range(b):
            ref = mixed_latency_matrix(batch.game(i), profiles[i])
            assert np.array_equal(got[i], ref)
            assert np.array_equal(mins[i], ref.min(axis=1))

    def test_many_profiles_one_game_broadcast(self):
        """(E, n, m) profile stacks against a single game's (n,)/(n, m)
        arrays — the shape the E9 dominance check evaluates."""
        batch = make_batch(1, 3, 3, with_traffic=True)
        game = batch.game(0)
        probs, profiles = random_mixed_stack(7, 3, 3, seed=5)
        got = batch_min_expected_latencies(
            probs, batch.weights[0], batch.capacities[0], batch.initial_traffic[0]
        )
        for r in range(7):
            assert np.array_equal(got[r], min_expected_latencies(game, profiles[r]))

    def test_dimension_errors(self):
        batch = make_batch(2, 3, 2)
        probs, _ = random_mixed_stack(2, 3, 2)
        with pytest.raises(DimensionError):
            batch_mixed_latency_matrix(
                probs[:, :, :1], batch.weights, batch.capacities
            )
        with pytest.raises(DimensionError):
            batch_mixed_latency_matrix(
                probs, batch.weights[:, :2], batch.capacities
            )


class TestBatchIsMixedNash:
    @pytest.mark.parametrize("b,n,m", SHAPES)
    def test_verdicts_match_single_game(self, b, n, m):
        batch = make_batch(b, n, m, with_traffic=True)
        probs, profiles = random_mixed_stack(b, n, m, seed=3 * b + m)
        got = batch_is_mixed_nash(
            probs, batch.weights, batch.capacities, batch.initial_traffic
        )
        assert got.shape == (b,)
        for i in range(b):
            assert bool(got[i]) == is_mixed_nash(batch.game(i), profiles[i])

    def test_interior_candidates_are_nash(self):
        batch = make_batch(32, 3, 3)
        fm = batch_fully_mixed_candidate(batch.weights, batch.capacities)
        idx = np.flatnonzero(fm.exists)
        assert idx.size > 0
        verdict = batch_is_mixed_nash(
            normalize_rows(fm.probabilities[idx]),
            batch.weights[idx],
            batch.capacities[idx],
            tol=1e-7,
        )
        assert verdict.all()


class TestFromSeedsUniformBeliefs:
    @pytest.mark.parametrize("with_traffic", [False, True])
    def test_matches_generator_bitwise(self, with_traffic):
        seeds = [stable_seed("ub", i) for i in range(9)]
        batch = GameBatch.from_seeds_uniform_beliefs(
            seeds, 4, 3, with_initial_traffic=with_traffic
        )
        for i, s in enumerate(seeds):
            game = random_uniform_beliefs_game(
                4, 3, with_initial_traffic=with_traffic, seed=s
            )
            assert np.array_equal(batch.weights[i], game.weights)
            assert np.array_equal(batch.capacities[i], game.capacities)
            assert np.array_equal(batch.initial_traffic[i], game.initial_traffic)

    @pytest.mark.parametrize("kind", ["uniform", "exponential", "lognormal"])
    def test_weight_kinds_match(self, kind):
        seeds = [stable_seed("ub-kind", kind, i) for i in range(4)]
        batch = GameBatch.from_seeds_uniform_beliefs(seeds, 3, 2, weight_kind=kind)
        for i, s in enumerate(seeds):
            game = random_uniform_beliefs_game(3, 2, weight_kind=kind, seed=s)
            assert np.array_equal(batch.weights[i], game.weights)
            assert np.array_equal(batch.capacities[i], game.capacities)

    def test_capacity_columns_constant(self):
        batch = GameBatch.from_seeds_uniform_beliefs([1, 2, 3], 3, 4)
        assert np.all(batch.capacities == batch.capacities[:, :, :1])

    def test_rejects_degenerate_shapes(self):
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            GameBatch.from_seeds_uniform_beliefs([1], 1, 3)
