"""Tests for repro.model.social — SC1/SC2, optima, coordination ratios."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.game import UncertainRoutingGame
from repro.model.latency import pure_latencies
from repro.model.profiles import MixedProfile
from repro.model.social import (
    all_pure_costs,
    coordination_ratios,
    enumerate_assignments,
    individual_costs,
    opt1,
    opt2,
    optimum,
    sc1,
    sc2,
    social_costs_of_pure,
)
from repro.generators.games import random_game


class TestEnumerateAssignments:
    def test_count(self):
        assert enumerate_assignments(3, 2).shape == (8, 3)

    def test_all_distinct(self):
        rows = enumerate_assignments(3, 3)
        assert len({tuple(r) for r in rows}) == 27

    def test_mixed_radix_order(self):
        rows = enumerate_assignments(2, 2)
        assert rows.tolist() == [[0, 0], [0, 1], [1, 0], [1, 1]]

    def test_limit_enforced(self):
        with pytest.raises(ModelError):
            enumerate_assignments(30, 4)


class TestSocialCosts:
    def test_sc1_is_sum_of_latencies(self, three_user_game):
        sigma = [0, 1, 2]
        assert sc1(three_user_game, sigma) == pytest.approx(
            pure_latencies(three_user_game, sigma).sum()
        )

    def test_sc2_is_max_of_latencies(self, three_user_game):
        sigma = [0, 1, 2]
        assert sc2(three_user_game, sigma) == pytest.approx(
            pure_latencies(three_user_game, sigma).max()
        )

    def test_social_costs_of_pure_pair(self, three_user_game):
        s1, s2 = social_costs_of_pure(three_user_game, [0, 0, 1])
        assert s1 == pytest.approx(sc1(three_user_game, [0, 0, 1]))
        assert s2 == pytest.approx(sc2(three_user_game, [0, 0, 1]))

    def test_mixed_profile_uses_min_latency(self, simple_game):
        p = MixedProfile([[0.5, 0.5], [0.5, 0.5]])
        costs = individual_costs(simple_game, p)
        assert costs.shape == (2,)
        assert sc1(simple_game, p) == pytest.approx(costs.sum())
        assert sc2(simple_game, p) == pytest.approx(costs.max())

    def test_sc2_le_sc1(self, three_user_game):
        for sigma in [[0, 0, 0], [0, 1, 2], [2, 2, 1]]:
            assert sc2(three_user_game, sigma) <= sc1(three_user_game, sigma)


class TestAllPureCosts:
    def test_agrees_with_direct_evaluation(self, three_user_game):
        assignments, lat = all_pure_costs(three_user_game)
        for idx in [0, 5, 13, 26]:
            np.testing.assert_allclose(
                lat[idx], pure_latencies(three_user_game, assignments[idx])
            )

    def test_shapes(self, three_user_game):
        assignments, lat = all_pure_costs(three_user_game)
        assert assignments.shape == (27, 3)
        assert lat.shape == (27, 3)


class TestOptimum:
    def test_exhaustive_sum_is_global_min(self, three_user_game):
        result = optimum(three_user_game, "sum", method="exhaustive")
        _, lat = all_pure_costs(three_user_game)
        assert result.value == pytest.approx(lat.sum(axis=1).min())

    def test_exhaustive_max_is_global_min(self, three_user_game):
        result = optimum(three_user_game, "max", method="exhaustive")
        _, lat = all_pure_costs(three_user_game)
        assert result.value == pytest.approx(lat.max(axis=1).min())

    def test_assignment_achieves_value(self, three_user_game):
        result = optimum(three_user_game, "sum")
        assert sc1(three_user_game, result.assignment) == pytest.approx(result.value)

    def test_bb_matches_exhaustive_sum(self):
        for seed in range(5):
            game = random_game(5, 3, seed=seed)
            ex = optimum(game, "sum", method="exhaustive").value
            bb = optimum(game, "sum", method="branch_and_bound").value
            assert bb == pytest.approx(ex, rel=1e-9)

    def test_bb_matches_exhaustive_max(self):
        for seed in range(5):
            game = random_game(5, 3, seed=seed)
            ex = optimum(game, "max", method="exhaustive").value
            bb = optimum(game, "max", method="branch_and_bound").value
            assert bb == pytest.approx(ex, rel=1e-9)

    def test_bb_with_initial_traffic(self):
        game = random_game(4, 3, with_initial_traffic=True, seed=3)
        ex = optimum(game, "sum", method="exhaustive").value
        bb = optimum(game, "sum", method="branch_and_bound").value
        assert bb == pytest.approx(ex, rel=1e-9)

    def test_rejects_unknown_objective(self, three_user_game):
        with pytest.raises(ModelError):
            optimum(three_user_game, "median")  # type: ignore[arg-type]

    def test_rejects_unknown_method(self, three_user_game):
        with pytest.raises(ModelError):
            optimum(three_user_game, "sum", method="magic")  # type: ignore[arg-type]

    def test_opt_helpers(self, three_user_game):
        assert opt1(three_user_game) == optimum(three_user_game, "sum").value
        assert opt2(three_user_game) == optimum(three_user_game, "max").value

    def test_result_unpacking(self, three_user_game):
        value, sigma = optimum(three_user_game, "sum")
        assert value > 0
        assert len(sigma) == 3


class TestCoordinationRatios:
    def test_at_least_one(self, three_user_game):
        """No profile can beat the optimum, so ratios are >= 1."""
        for sigma in [[0, 1, 2], [0, 0, 0], [2, 1, 0]]:
            r1, r2 = coordination_ratios(three_user_game, sigma)
            assert r1 >= 1.0 - 1e-12
            assert r2 >= 1.0 - 1e-12

    def test_optimal_assignment_gives_one(self, three_user_game):
        best = optimum(three_user_game, "sum").assignment
        r1, _ = coordination_ratios(three_user_game, best)
        assert r1 == pytest.approx(1.0)
