"""Tests for the conjecture campaign and the scaling fits."""

from __future__ import annotations

import pytest

from repro.analysis.conjecture import CampaignResult, run_conjecture_campaign
from repro.analysis.scaling import THEORETICAL_EXPONENTS, measure_scaling
from repro.analysis.cycles import (
    abstract_move_graph,
    realize_cycle,
    search_improvement_cycle_instance,
)
from repro.generators.suites import GridCell


class TestConjectureCampaign:
    def test_small_campaign_supports_conjecture(self):
        grid = [GridCell(2, 2, 5), GridCell(3, 3, 5)]
        result = run_conjecture_campaign(grid, label="test-camp")
        assert result.conjecture_supported
        assert result.total_instances == 10
        assert result.counterexamples == 0

    def test_cells_carry_statistics(self):
        grid = [GridCell(3, 2, 4)]
        result = run_conjecture_campaign(grid, label="test-camp2")
        cell = result.cells[0]
        assert cell.instances == 4
        assert cell.with_pure_nash == 4
        assert cell.min_equilibria >= 1
        assert cell.max_equilibria >= cell.min_equilibria
        assert cell.brd_always_converged

    def test_table_renders(self):
        grid = [GridCell(2, 2, 2)]
        result = run_conjecture_campaign(grid, label="test-camp3")
        text = result.to_table().render()
        assert "Conjecture" in text
        assert "PNE" in text

    def test_deterministic(self):
        grid = [GridCell(3, 2, 3)]
        a = run_conjecture_campaign(grid, label="same-label")
        b = run_conjecture_campaign(grid, label="same-label")
        assert a.cells[0].mean_equilibria == b.cells[0].mean_equilibria


class TestScaling:
    def test_atwolinks_scaling_fit(self):
        obs = measure_scaling("atwolinks", sizes=[16, 32, 64, 128], repeats=1)
        assert len(obs.seconds) == 4
        assert all(s > 0 for s in obs.seconds)
        # Vectorisation can flatten the curve, but growth must not exceed
        # the stated O(n^2) class materially.
        assert obs.exponent <= THEORETICAL_EXPONENTS["atwolinks"] + 0.6

    def test_auniform_scaling_fit(self):
        obs = measure_scaling("auniform", sizes=[128, 256, 512, 1024], repeats=1)
        assert obs.exponent <= 2.0

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            measure_scaling("quantum")


class TestCycleMachinery:
    def test_abstract_move_graph_shape(self):
        g = abstract_move_graph(2, 2)
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 8  # each state: 2 users x 1 alt link

    def test_two_user_two_link_cycles_unrealisable(self):
        """The library-level proof sketch: the canonical 4-cycle cannot be
        realised by any capacities (the move inequalities multiply to a
        contradiction)."""
        states = [(0, 0), (1, 0), (1, 1), (0, 1), (0, 0)]
        for w in ([1.0, 1.0], [1.0, 3.0], [2.5, 0.4]):
            assert realize_cycle(states, w, 2) is None

    def test_open_walks_rejected(self):
        assert realize_cycle([(0, 0), (1, 0)], [1.0, 1.0], 2) is None

    def test_non_unilateral_steps_rejected(self):
        states = [(0, 0), (1, 1), (0, 0)]
        assert realize_cycle(states, [1.0, 1.0], 2) is None

    def test_search_small_budget_runs(self):
        result = search_improvement_cycle_instance(
            max_cycle_length=4, weight_draws=3, max_cycles=200, seed=0
        )
        assert result.cycles_tested > 0
        # Length-4 cycles are provably unrealisable.
        assert not result.found
