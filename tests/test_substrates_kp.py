"""Tests for the KP-model substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AlgorithmDomainError
from repro.model.game import UncertainRoutingGame
from repro.model.profiles import MixedProfile, pure_to_mixed
from repro.equilibria.conditions import is_pure_nash
from repro.substrates.kp import (
    expected_max_congestion,
    kp_game,
    kp_greedy_nash,
    kp_price_of_anarchy,
    opt_max_congestion,
)
from repro.generators.games import random_kp_game


class TestKpGame:
    def test_builds_kp(self):
        game = kp_game([1.0, 2.0], [1.0, 3.0])
        assert game.is_kp()

    def test_requires_kp_for_classic_routines(self, simple_game):
        with pytest.raises(AlgorithmDomainError):
            kp_greedy_nash(simple_game)
        with pytest.raises(AlgorithmDomainError):
            expected_max_congestion(simple_game, [0, 1])


class TestGreedyNash:
    @pytest.mark.parametrize("seed", range(15))
    def test_returns_nash(self, seed):
        game = random_kp_game(6, 3, seed=seed)
        assert is_pure_nash(game, kp_greedy_nash(game))

    def test_identical_links_balances(self):
        game = kp_game([3.0, 3.0, 2.0, 2.0], [1.0, 1.0])
        profile = kp_greedy_nash(game)
        loads = np.bincount(profile.links, weights=game.weights, minlength=2)
        assert sorted(loads.tolist()) == [5.0, 5.0]

    def test_respects_initial_traffic(self):
        game = kp_game([1.0, 1.0], [1.0, 1.0], initial_traffic=[10.0, 0.0])
        profile = kp_greedy_nash(game)
        assert profile.as_tuple() == (1, 1)


class TestExpectedMaxCongestion:
    def test_pure_profile_direct(self):
        game = kp_game([1.0, 2.0], [1.0, 2.0])
        # sigma = [0, 1]: congestion = max(1/1, 2/2) = 1.
        assert expected_max_congestion(game, [0, 1]) == pytest.approx(1.0)

    def test_degenerate_mixed_matches_pure(self):
        game = random_kp_game(4, 2, seed=0)
        sigma = [0, 1, 0, 1]
        exact = expected_max_congestion(game, pure_to_mixed(sigma, 4, 2))
        assert exact == pytest.approx(expected_max_congestion(game, sigma))

    def test_exact_expectation_hand_case(self):
        """Two unit users mixing uniformly on two unit links:
        P(collide) = 1/2 -> E[max congestion] = 0.5*2 + 0.5*1 = 1.5."""
        game = kp_game([1.0, 1.0], [1.0, 1.0])
        p = MixedProfile(np.full((2, 2), 0.5))
        assert expected_max_congestion(game, p) == pytest.approx(1.5)

    def test_monte_carlo_close_to_exact(self):
        game = random_kp_game(5, 2, seed=1)
        rng = np.random.default_rng(0)
        p = MixedProfile(rng.dirichlet(np.ones(2), size=5))
        exact = expected_max_congestion(game, p)
        mc = expected_max_congestion(
            game, p, exact_limit=0, num_samples=60_000, seed=2
        )
        assert mc == pytest.approx(exact, rel=0.03)

    def test_fully_mixed_worse_than_pure_nash(self):
        """The classic fully-mixed intuition: mixing increases expected
        maximum congestion versus a pure NE."""
        game = kp_game([1.0, 1.0], [1.0, 1.0])
        pure_cost = expected_max_congestion(game, [0, 1])
        mixed_cost = expected_max_congestion(game, MixedProfile(np.full((2, 2), 0.5)))
        assert mixed_cost > pure_cost


class TestOptAndPoA:
    def test_opt_max_congestion(self):
        game = kp_game([1.0, 1.0], [1.0, 1.0])
        value, sigma = opt_max_congestion(game)
        assert value == pytest.approx(1.0)
        assert len(set(sigma.as_tuple())) == 2

    def test_poa_at_least_one(self):
        for seed in range(5):
            game = random_kp_game(4, 2, seed=seed)
            profile = kp_greedy_nash(game)
            assert kp_price_of_anarchy(game, profile) >= 1.0 - 1e-9

    def test_mixed_poa_identical_links_bounded(self):
        """For m=2 identical links the tight PoA is 3/2 (Koutsoupias-
        Papadimitriou); the uniform mix on two unit users achieves it."""
        game = kp_game([1.0, 1.0], [1.0, 1.0])
        ratio = kp_price_of_anarchy(game, MixedProfile(np.full((2, 2), 0.5)))
        assert ratio == pytest.approx(1.5)
