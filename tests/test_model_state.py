"""Tests for repro.model.state."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DimensionError, ModelError
from repro.model.state import StateSpace


class TestConstruction:
    def test_basic(self):
        s = StateSpace([[1.0, 2.0], [2.0, 1.0]])
        assert s.num_states == 2
        assert s.num_links == 2

    def test_default_names(self):
        s = StateSpace([[1.0, 2.0]])
        assert s.names == ("phi0",)

    def test_custom_names(self):
        s = StateSpace([[1.0, 2.0]], names=["calm"])
        assert s.names == ("calm",)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ModelError, match="unique"):
            StateSpace([[1.0, 2.0], [2.0, 1.0]], names=["a", "a"])

    def test_wrong_name_count_rejected(self):
        with pytest.raises(DimensionError):
            StateSpace([[1.0, 2.0]], names=["a", "b"])

    def test_rejects_zero_capacity(self):
        with pytest.raises(ModelError):
            StateSpace([[1.0, 0.0]])

    def test_rejects_1d(self):
        with pytest.raises(DimensionError):
            StateSpace([1.0, 2.0])

    def test_capacities_read_only(self):
        s = StateSpace([[1.0, 2.0]])
        with pytest.raises(ValueError):
            s.capacities[0, 0] = 5.0

    def test_does_not_alias_input(self):
        src = np.array([[1.0, 2.0]])
        s = StateSpace(src)
        src[0, 0] = 99.0
        assert s.capacities[0, 0] == 1.0


class TestConstructors:
    def test_single(self):
        s = StateSpace.single([3.0, 4.0])
        assert s.num_states == 1
        assert s.names == ("certain",)
        np.testing.assert_array_equal(s.state(0), [3.0, 4.0])

    def test_from_states(self):
        s = StateSpace.from_states([[1.0, 2.0], [3.0, 4.0]])
        assert s.num_states == 2

    def test_from_states_rejects_ragged(self):
        with pytest.raises(DimensionError):
            StateSpace.from_states([[1.0, 2.0], [3.0]])

    def test_from_states_rejects_empty(self):
        with pytest.raises(ModelError):
            StateSpace.from_states([])

    def test_random_shape_and_range(self):
        s = StateSpace.random(5, 3, low=1.0, high=2.0, seed=0)
        assert s.capacities.shape == (5, 3)
        assert np.all(s.capacities >= 1.0)
        assert np.all(s.capacities < 2.0)

    def test_random_deterministic(self):
        a = StateSpace.random(3, 2, seed=7)
        b = StateSpace.random(3, 2, seed=7)
        assert a == b

    def test_random_rejects_bad_bounds(self):
        with pytest.raises(ModelError):
            StateSpace.random(2, 2, low=2.0, high=1.0)

    def test_random_rejects_zero_states(self):
        with pytest.raises(ModelError):
            StateSpace.random(0, 2)

    def test_perturbations(self):
        s = StateSpace.perturbations([1.0, 2.0], factors=(0.5, 1.0, 2.0))
        assert s.num_states == 3
        np.testing.assert_allclose(s.state(0), [0.5, 1.0])
        np.testing.assert_allclose(s.state(2), [2.0, 4.0])

    def test_perturbations_names(self):
        s = StateSpace.perturbations([1.0, 1.0], factors=(0.5, 2.0))
        assert s.names == ("x0.5", "x2")


class TestAccessors:
    def test_len(self):
        assert len(StateSpace([[1.0, 2.0], [2.0, 1.0]])) == 2

    def test_index_of(self):
        s = StateSpace([[1.0, 2.0]], names=["only"])
        assert s.index_of("only") == 0

    def test_index_of_missing_raises_keyerror(self):
        s = StateSpace([[1.0, 2.0]])
        with pytest.raises(KeyError):
            s.index_of("nope")

    def test_equality_and_hash(self):
        a = StateSpace([[1.0, 2.0]])
        b = StateSpace([[1.0, 2.0]])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_different_caps(self):
        assert StateSpace([[1.0, 2.0]]) != StateSpace([[2.0, 1.0]])

    def test_eq_not_implemented_for_other_types(self):
        assert StateSpace([[1.0, 2.0]]).__eq__(42) is NotImplemented

    def test_repr(self):
        assert "num_states=1" in repr(StateSpace([[1.0, 2.0]]))
