"""Differential and property tests for the stacked support enumeration.

``batch_enumerate_mixed_nash`` must agree slice by slice with the
sequential ``enumerate_mixed_nash`` (its ``B = 1`` view) on random small
games — same equilibrium count, same matrices, same canonical order —
and both must keep satisfying the paper-level invariants the old
per-game enumerator satisfied (every result verifies as Nash, every
pure NE is recovered, at most one fully mixed point).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.container import GameBatch
from repro.batch.support import (
    MAX_SUPPORT_PROFILES,
    batch_enumerate_for,
    batch_enumerate_mixed_nash,
)
from repro.equilibria.conditions import is_mixed_nash
from repro.equilibria.enumeration import pure_nash_profiles
from repro.equilibria.support_enum import enumerate_mixed_nash
from repro.errors import DimensionError, ModelError
from repro.generators.games import random_game
from repro.model.game import UncertainRoutingGame
from repro.util.rng import stable_seed


def _stack(seeds, n, m):
    return GameBatch.from_seeds(list(seeds), n, m)


class TestBatchedAgainstSequential:
    @settings(max_examples=40, deadline=None)
    @given(
        b=st.integers(1, 5),
        n=st.integers(2, 3),
        m=st.integers(2, 3),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_per_slice_agreement(self, b, n, m, seed):
        """Satellite property: the batched enumeration agrees per slice
        with the sequential enumerate_mixed_nash on random small games."""
        batch = _stack([stable_seed("hyp-support", seed, i) for i in range(b)], n, m)
        stacked = batch_enumerate_mixed_nash(
            batch.weights, batch.capacities, batch.initial_traffic
        )
        assert len(stacked) == b
        for i in range(b):
            game = UncertainRoutingGame.from_capacities(
                batch.weights[i],
                batch.capacities[i],
                initial_traffic=batch.initial_traffic[i],
            )
            single = batch_enumerate_mixed_nash(
                batch.weights[i][None],
                batch.capacities[i][None],
                batch.initial_traffic[i][None],
            )[0]
            assert len(stacked[i]) == len(single)
            for eq_b, eq_s in zip(stacked[i], single):
                np.testing.assert_array_equal(eq_b.matrix, eq_s.matrix)
            # And against the public single-game API on the
            # reconstructed game object (tolerance: the reconstruction
            # replays effective capacities through the belief layer).
            via_game = enumerate_mixed_nash(game)
            assert len(stacked[i]) == len(via_game)
            for eq_b, eq_g in zip(stacked[i], via_game):
                np.testing.assert_allclose(
                    eq_b.matrix, eq_g.matrix, atol=1e-7
                )

    @settings(max_examples=25, deadline=None)
    @given(
        b=st.integers(2, 4),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_all_results_are_nash(self, b, seed):
        batch = _stack([stable_seed("hyp-nash", seed, i) for i in range(b)], 3, 2)
        for i, equilibria in enumerate(
            batch_enumerate_mixed_nash(
                batch.weights, batch.capacities, batch.initial_traffic
            )
        ):
            game = batch.game(i)
            assert equilibria, "Conjecture 3.7 would be refuted"
            for eq in equilibria:
                assert is_mixed_nash(game, eq, tol=1e-6)

    def test_recovers_every_pure_nash(self):
        batch = _stack([stable_seed("pure-rec", i) for i in range(4)], 3, 2)
        all_eqs = batch_enumerate_mixed_nash(
            batch.weights, batch.capacities, batch.initial_traffic
        )
        for i, equilibria in enumerate(all_eqs):
            game = batch.game(i)
            pure = {p.as_tuple() for p in pure_nash_profiles(game)}
            recovered = {
                eq.to_pure().as_tuple()
                for eq in equilibria
                if eq.is_pure(atol=1e-9)
            }
            assert pure <= recovered

    def test_at_most_one_fully_mixed(self):
        """Theorem 4.6 cross-check at the stack level."""
        batch = _stack([stable_seed("fm-unique", i) for i in range(12)], 3, 2)
        for equilibria in batch_enumerate_mixed_nash(
            batch.weights, batch.capacities, batch.initial_traffic
        ):
            fully_mixed = [
                eq for eq in equilibria if eq.is_fully_mixed(atol=1e-9)
            ]
            assert len(fully_mixed) <= 1

    def test_degenerate_identical_game_stack(self):
        """Identical users on identical links: singular support systems
        must fall back to the min-norm representative and still find the
        two split pure NE plus the uniform fully mixed point."""
        caps = np.ones((3, 2, 2))
        weights = np.ones((3, 2))
        for equilibria in batch_enumerate_mixed_nash(weights, caps):
            pure = {
                eq.to_pure().as_tuple()
                for eq in equilibria
                if eq.is_pure(atol=1e-9)
            }
            mixed = [eq for eq in equilibria if eq.is_fully_mixed(atol=1e-9)]
            assert pure == {(0, 1), (1, 0)}
            assert len(mixed) == 1
            np.testing.assert_allclose(mixed[0].matrix, 0.5, atol=1e-9)


class TestApiGuards:
    def test_shape_errors(self):
        with pytest.raises(DimensionError):
            batch_enumerate_mixed_nash(np.ones((2, 2)), np.ones((2, 2)))
        with pytest.raises(DimensionError):
            batch_enumerate_mixed_nash(np.ones((1, 3)), np.ones((1, 2, 2)))
        with pytest.raises(DimensionError):
            batch_enumerate_mixed_nash(
                np.ones((1, 2)), np.ones((1, 2, 2)), np.ones((1, 3))
            )

    def test_profile_limit_enforced(self):
        with pytest.raises(ModelError, match="support profiles"):
            batch_enumerate_mixed_nash(np.ones((1, 8)), np.ones((1, 8, 4)))
        assert (2**4 - 1) ** 8 > MAX_SUPPORT_PROFILES

    def test_batch_enumerate_for_subsets(self):
        batch = _stack([stable_seed("subset", i) for i in range(3)], 2, 2)
        full = batch_enumerate_for(batch)
        subset = batch_enumerate_for(batch, indices=[2, 0])
        assert len(full) == 3 and len(subset) == 2
        for eq_a, eq_b in zip(subset[0], full[2]):
            np.testing.assert_array_equal(eq_a.matrix, eq_b.matrix)
        for eq_a, eq_b in zip(subset[1], full[0]):
            np.testing.assert_array_equal(eq_a.matrix, eq_b.matrix)


class TestSequentialViewStillHolds:
    """The pre-existing single-game behaviours, via the B = 1 view."""

    def test_initial_traffic_games(self):
        game = random_game(2, 2, with_initial_traffic=True, seed=5)
        for eq in enumerate_mixed_nash(game):
            assert is_mixed_nash(game, eq, tol=1e-7)

    def test_dedupe_by_rounding(self):
        game = random_game(2, 2, seed=3)
        eqs = enumerate_mixed_nash(game)
        seen = {np.round(e.matrix, 6).tobytes() for e in eqs}
        assert len(seen) == len(eqs)
