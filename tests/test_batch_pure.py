"""Differential and property tests for the batched pure-strategy kernels.

Every kernel in ``repro.batch.pure`` promises bit-parity with its
single-game counterpart: same trajectories, same tie-breaks, same
floats. These tests pin that promise slice by slice — the single-game
functions used as references are themselves the ``B = 1`` views, so the
real independent reference is the vendored sequential implementation in
``benchmarks/pure_seed_baseline.py``, which the frozen-baseline tests
exercise; here the focus is batch-vs-slice agreement, masks, edge
cases and the census machinery.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.container import GameBatch
from repro.batch.pure import (
    batch_asymmetric,
    batch_atwolinks,
    batch_auniform,
    batch_nashify,
    batch_nashify_common_beliefs,
    batch_ordinal_potential_symmetric,
    batch_response_cycle_census,
    batch_sampled_cycle_gaps,
    batch_verify_ordinal_potential_symmetric,
    batch_verify_weighted_potential,
    batch_weighted_potential,
)
from repro.batch.kernels import batch_pure_nash_mask
from repro.equilibria.conditions import is_pure_nash
from repro.equilibria.game_graph import (
    best_response_graph,
    better_response_graph,
    find_response_cycle,
)
from repro.equilibria.potential import (
    exact_potential_cycle_gap,
    has_better_response_cycle,
    ordinal_potential_symmetric,
    verify_ordinal_potential_symmetric,
    verify_weighted_potential,
    weighted_potential_common_beliefs,
)
from repro.equilibria.symmetric import asymmetric
from repro.equilibria.two_links import atwolinks
from repro.equilibria.uniform import auniform
from repro.errors import AlgorithmDomainError, ModelError
from repro.generators.games import (
    random_game,
    random_kp_game,
    random_symmetric_game,
    random_two_link_game,
    random_uniform_beliefs_game,
)
from repro.util.rng import as_generator, stable_seed


def _seeds(tag, count):
    return [stable_seed("batch-pure", tag, i) for i in range(count)]


class TestParityGenerators:
    def test_from_seeds_symmetric_matches_generator_bitwise(self):
        seeds = _seeds("sym", 9)
        batch = GameBatch.from_seeds_symmetric(seeds, 5, 3)
        for i, s in enumerate(seeds):
            game = random_symmetric_game(5, 3, seed=s)
            assert np.array_equal(batch.weights[i], game.weights)
            assert np.array_equal(batch.capacities[i], game.capacities)
            assert np.all(batch.initial_traffic[i] == 0.0)

    def test_from_seeds_kp_matches_generator_bitwise(self):
        seeds = _seeds("kp", 9)
        batch = GameBatch.from_seeds_kp(seeds, 4, 3)
        for i, s in enumerate(seeds):
            game = random_kp_game(4, 3, seed=s)
            assert np.array_equal(batch.weights[i], game.weights)
            assert np.array_equal(batch.capacities[i], game.capacities)

    def test_validation(self):
        with pytest.raises(ModelError):
            GameBatch.from_seeds_symmetric([0, 1], 1, 3)
        with pytest.raises(ModelError):
            GameBatch.from_seeds_symmetric([0, 1], 4, 3, weight=0.0)
        with pytest.raises(ModelError):
            GameBatch.from_seeds_kp([0, 1], 4, 1)


class TestLockstepSolvers:
    def test_atwolinks_slicewise(self):
        seeds = _seeds("e1", 14)
        batch = GameBatch.from_seeds(seeds, 6, 2, with_initial_traffic=True)
        profiles = batch_atwolinks(batch)
        for i, s in enumerate(seeds):
            game = random_two_link_game(6, with_initial_traffic=True, seed=s)
            assert np.array_equal(profiles[i], atwolinks(game).links)

    def test_asymmetric_slicewise(self):
        seeds = _seeds("e2", 14)
        batch = GameBatch.from_seeds_symmetric(seeds, 6, 3)
        profiles = batch_asymmetric(batch)
        for i, s in enumerate(seeds):
            game = random_symmetric_game(6, 3, seed=s)
            assert np.array_equal(profiles[i], asymmetric(game).links)

    def test_auniform_slicewise(self):
        seeds = _seeds("e3", 14)
        batch = GameBatch.from_seeds_uniform_beliefs(
            seeds, 7, 4, with_initial_traffic=True
        )
        profiles = batch_auniform(batch)
        for i, s in enumerate(seeds):
            game = random_uniform_beliefs_game(
                7, 4, with_initial_traffic=True, seed=s
            )
            assert np.array_equal(profiles[i], auniform(game).links)

    def test_all_profiles_are_nash(self):
        seeds = _seeds("nash", 10)
        batch = GameBatch.from_seeds(seeds, 5, 2, with_initial_traffic=True)
        profiles = batch_atwolinks(batch)
        mask = batch_pure_nash_mask(
            profiles, batch.weights, batch.capacities, batch.initial_traffic
        )
        assert mask.all()
        for i in range(len(batch)):
            assert is_pure_nash(batch.game(i), profiles[i])

    def test_domain_errors(self):
        three_links = GameBatch.from_seeds(_seeds("d", 2), 3, 3)
        with pytest.raises(AlgorithmDomainError):
            batch_atwolinks(three_links)
        with pytest.raises(AlgorithmDomainError):
            batch_asymmetric(three_links)  # unequal weights
        with pytest.raises(AlgorithmDomainError):
            batch_auniform(three_links)  # non-uniform beliefs


class TestPotentialKernels:
    def test_weighted_potential_slicewise(self):
        seeds = _seeds("wp", 12)
        batch = GameBatch.from_seeds_kp(seeds, 5, 3)
        rng = as_generator(0)
        sigma = rng.integers(0, 3, size=(12, 5))
        phi = batch_weighted_potential(batch, sigma)
        for i, s in enumerate(seeds):
            game = random_kp_game(5, 3, seed=s)
            assert phi[i] == weighted_potential_common_beliefs(game, sigma[i])

    def test_ordinal_potential_slicewise(self):
        seeds = _seeds("op", 12)
        batch = GameBatch.from_seeds_symmetric(seeds, 5, 3)
        rng = as_generator(1)
        sigma = rng.integers(0, 3, size=(12, 5))
        phi = batch_ordinal_potential_symmetric(batch, sigma)
        for i in range(12):
            assert phi[i] == ordinal_potential_symmetric(batch.game(i), sigma[i])

    def test_verify_kernels_slicewise(self):
        seeds = _seeds("vf", 12)
        kp = GameBatch.from_seeds_kp(seeds, 4, 3)
        sym = GameBatch.from_seeds_symmetric(seeds, 4, 3)
        rng = as_generator(2)
        sigma = rng.integers(0, 3, size=(12, 4))
        users = rng.integers(0, 4, size=12).astype(np.intp)
        links = rng.integers(0, 3, size=12).astype(np.intp)
        got_kp = batch_verify_weighted_potential(kp, sigma, users, links)
        got_sym = batch_verify_ordinal_potential_symmetric(
            sym, sigma, users, links
        )
        for i, s in enumerate(seeds):
            assert got_kp[i] == verify_weighted_potential(
                random_kp_game(4, 3, seed=s),
                sigma[i], int(users[i]), int(links[i]),
            )
            assert got_sym[i] == verify_ordinal_potential_symmetric(
                random_symmetric_game(4, 3, seed=s),
                sigma[i], int(users[i]), int(links[i]),
            )

    def test_verify_identities_hold(self):
        """The structural facts themselves: both identities verify on
        their whole domains."""
        seeds = _seeds("vt", 20)
        kp = GameBatch.from_seeds_kp(seeds, 5, 4)
        sym = GameBatch.from_seeds_symmetric(seeds, 5, 4)
        rng = as_generator(3)
        sigma = rng.integers(0, 4, size=(20, 5))
        users = rng.integers(0, 5, size=20).astype(np.intp)
        links = rng.integers(0, 4, size=20).astype(np.intp)
        assert batch_verify_weighted_potential(kp, sigma, users, links).all()
        assert batch_verify_ordinal_potential_symmetric(
            sym, sigma, users, links
        ).all()

    def test_domain_errors(self):
        general = GameBatch.from_seeds(_seeds("dg", 3), 4, 3)
        sigma = np.zeros((3, 4), dtype=np.intp)
        with pytest.raises(AlgorithmDomainError):
            batch_weighted_potential(general, sigma)
        with pytest.raises(AlgorithmDomainError):
            batch_ordinal_potential_symmetric(general, sigma)

    def test_sampled_gaps_slicewise(self):
        seeds = _seeds("gap", 8)
        batch = GameBatch.from_seeds(seeds, 3, 3)
        worst = batch_sampled_cycle_gaps(batch, seeds, num_samples=60)
        for i, s in enumerate(seeds):
            game = random_game(3, 3, seed=s)
            assert worst[i] == exact_potential_cycle_gap(
                game, num_samples=60, seed=s
            )

    def test_exhaustive_gap_agrees_with_wide_sampling(self):
        """The exhaustive enumeration upper-bounds any sampled estimate
        of the same game and is reached in the small (3, 3) cell."""
        game = random_game(3, 3, seed=7)
        exhaustive = exact_potential_cycle_gap(game)
        sampled = exact_potential_cycle_gap(game, num_samples=4_000, seed=0)
        assert sampled <= exhaustive + 1e-12
        assert exhaustive > 1e-9  # no exact potential

    def test_gap_zero_for_equal_weight_kp(self):
        """Equal-weight common-beliefs games admit an *exact* potential
        (the weighted potential divided by the common weight), so every
        four-cycle sum must vanish — the positive control for the
        Monderer-Shapley criterion."""
        from repro.model.game import UncertainRoutingGame

        game = UncertainRoutingGame.kp([2.0, 2.0, 2.0], [1.5, 2.5, 3.0])
        assert exact_potential_cycle_gap(game) < 1e-9


class TestResponseCycleCensus:
    def test_matches_graph_census_slicewise(self):
        seeds = _seeds("census", 16)
        batch = GameBatch.from_seeds(seeds, 3, 3)
        best = batch_response_cycle_census(batch, kind="best")
        better = batch_response_cycle_census(batch, kind="better")
        for i in range(16):
            game = batch.game(i)
            assert best[i] == (
                find_response_cycle(best_response_graph(game)) is not None
            )
            assert better[i] == (
                find_response_cycle(better_response_graph(game)) is not None
            )

    def test_cycle_positive_path(self):
        """A negative tolerance turns ties into 'improvements', forcing
        cycles — the positive branch of the census must agree with the
        graph search game by game."""
        batch = GameBatch.from_seeds(_seeds("cyc", 8), 3, 3)
        got = batch_response_cycle_census(batch, kind="better", tol=-0.05)
        assert got.all()
        for i in range(8):
            graph = better_response_graph(batch.game(i), tol=-0.05)
            assert find_response_cycle(graph) is not None

    def test_block_size_invariance(self):
        batch = GameBatch.from_seeds(_seeds("blk", 6), 3, 3)
        reference = batch_response_cycle_census(batch, kind="better", tol=-0.05)
        for block in (1, 5, 16):
            got = batch_response_cycle_census(
                batch, kind="better", tol=-0.05, block_size=block
            )
            assert np.array_equal(got, reference)

    def test_has_better_response_cycle_view(self):
        game = random_game(3, 3, seed=3)
        assert has_better_response_cycle(game) is False

    def test_state_space_guard(self):
        big = GameBatch.from_seeds([0], 18, 2)
        with pytest.raises(ModelError):
            batch_response_cycle_census(big)
        with pytest.raises(ModelError):
            batch_response_cycle_census(big, kind="nope")

    def test_combined_node_guard(self):
        """Per-game smallness is not enough: a wide batch of large games
        must fail cleanly before the peel allocates B * m^n nodes."""
        wide = GameBatch.from_seeds(list(range(16)), 16, 2)  # 16 * 65536 > 1M
        with pytest.raises(ModelError, match="split the batch"):
            batch_response_cycle_census(wide)


class TestLockstepNashify:
    def test_common_beliefs_slicewise(self):
        seeds = _seeds("nkp", 12)
        batch = GameBatch.from_seeds_kp(seeds, 6, 3)
        rng = as_generator(4)
        starts = rng.integers(0, 3, size=(12, 6))
        result = batch_nashify_common_beliefs(batch, starts)
        from repro.equilibria.nashify import nashify_common_beliefs

        for i, s in enumerate(seeds):
            ref = nashify_common_beliefs(random_kp_game(6, 3, seed=s), starts[i])
            assert np.array_equal(result.profiles[i], ref.profile.links)
            assert result.steps[i] == ref.steps
            assert result.sc1_before[i] == ref.sc1_before
            assert result.sc1_after[i] == ref.sc1_after
            assert result.sc2_before[i] == ref.sc2_before
            assert result.sc2_after[i] == ref.sc2_after
            assert result.max_congestion_before[i] == ref.max_congestion_before
            assert result.max_congestion_after[i] == ref.max_congestion_after

    def test_general_slicewise(self):
        seeds = _seeds("ngen", 12)
        batch = GameBatch.from_seeds(seeds, 5, 3)
        rng = as_generator(5)
        starts = rng.integers(0, 3, size=(12, 5))
        result = batch_nashify(batch, starts)
        from repro.equilibria.nashify import nashify

        for i in range(12):
            ref = nashify(batch.game(i), starts[i])
            assert np.array_equal(result.profiles[i], ref.profile.links)
            assert result.steps[i] == ref.steps
            assert result.sc1_after[i] == ref.sc1_after

    def test_classic_guarantee_holds_stackwide(self):
        seeds = _seeds("ng", 40)
        batch = GameBatch.from_seeds_kp(seeds, 8, 4)
        rng = as_generator(6)
        starts = rng.integers(0, 4, size=(40, 8))
        result = batch_nashify_common_beliefs(batch, starts)
        assert result.preserved_max_congestion.all()
        mask = batch_pure_nash_mask(
            result.profiles, batch.weights, batch.capacities,
            batch.initial_traffic,
        )
        assert mask.all()

    def test_start_validation(self):
        batch = GameBatch.from_seeds_kp(_seeds("nv", 3), 4, 3)
        with pytest.raises(ModelError):
            batch_nashify_common_beliefs(batch, np.zeros((2, 4), dtype=int))
        with pytest.raises(ModelError):
            batch_nashify_common_beliefs(
                batch, np.full((3, 4), 7, dtype=int)
            )

    def test_common_beliefs_required(self):
        general = GameBatch.from_seeds(_seeds("ncb", 3), 4, 3)
        with pytest.raises(AlgorithmDomainError):
            batch_nashify_common_beliefs(general, np.zeros((3, 4), dtype=int))


class TestHypothesisProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        num_users=st.integers(2, 6),
        seed=st.integers(0, 2**31),
        batch_size=st.integers(1, 8),
    )
    def test_atwolinks_batch_equals_slices(self, num_users, seed, batch_size):
        seeds = [stable_seed("hyp-e1", seed, i) for i in range(batch_size)]
        batch = GameBatch.from_seeds(
            seeds, num_users, 2, with_initial_traffic=True
        )
        profiles = batch_atwolinks(batch)
        for i in range(batch_size):
            assert np.array_equal(
                profiles[i], atwolinks(batch.game(i)).links
            )

    @settings(max_examples=25, deadline=None)
    @given(
        num_users=st.integers(2, 5),
        num_links=st.integers(2, 4),
        seed=st.integers(0, 2**31),
    )
    def test_census_agrees_with_dynamics_convergence(
        self, num_users, num_links, seed
    ):
        """A best-response-acyclic game must let best-response dynamics
        converge from every start (the paper's Section 3 argument)."""
        from repro.batch.dynamics import batch_best_response_dynamics

        seeds = [stable_seed("hyp-census", seed, i) for i in range(4)]
        batch = GameBatch.from_seeds(seeds, num_users, num_links)
        has_cycle = batch_response_cycle_census(batch, kind="best")
        dyn = batch_best_response_dynamics(batch, seeds=seeds)
        assert np.all(dyn.converged[~has_cycle])
