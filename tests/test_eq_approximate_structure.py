"""Tests for approximate equilibria and the equilibrium-set census."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.game import UncertainRoutingGame
from repro.equilibria.approximate import (
    best_epsilon_pure,
    epsilon_mixed,
    epsilon_pure,
    rounded_fully_mixed,
)
from repro.equilibria.enumeration import pure_nash_profiles
from repro.equilibria.fully_mixed import fully_mixed_candidate
from repro.equilibria.structure import equilibrium_set
from repro.generators.games import random_game


class TestEpsilonPure:
    def test_zero_at_nash(self):
        game = random_game(3, 3, seed=0)
        for eq in pure_nash_profiles(game):
            assert epsilon_pure(game, eq) == pytest.approx(0.0, abs=1e-12)

    def test_positive_off_nash(self):
        game = UncertainRoutingGame.from_capacities(
            [1.0, 1.0], np.ones((2, 2))
        )
        # Colocated users each pay 2; moving pays 1 -> epsilon = 1.
        assert epsilon_pure(game, [0, 0]) == pytest.approx(1.0)

    def test_scale_invariant(self):
        """Multiplicative epsilon is invariant to capacity rescaling."""
        game = random_game(4, 3, seed=1)
        scaled = UncertainRoutingGame.from_capacities(
            game.weights, game.capacities * 7.0
        )
        sigma = [0, 1, 2, 0]
        assert epsilon_pure(game, sigma) == pytest.approx(
            epsilon_pure(scaled, sigma), rel=1e-9
        )


class TestEpsilonMixed:
    def test_zero_at_fully_mixed_nash(self):
        for seed in range(20):
            game = random_game(3, 3, concentration=5.0, seed=seed)
            cand = fully_mixed_candidate(game)
            if cand.exists:
                assert epsilon_mixed(game, cand.profile()) < 1e-9
                return
        pytest.skip("no interior candidate found in the sweep")

    def test_positive_for_bad_support(self):
        game = UncertainRoutingGame.from_capacities(
            [1.0, 1.0], [[2.0, 1.0], [2.0, 1.0]]
        )
        from repro.model.profiles import MixedProfile

        p = MixedProfile([[0.5, 0.5], [0.0, 1.0]])
        assert epsilon_mixed(game, p) > 0


class TestRoundedFullyMixed:
    def test_interior_candidate_rounds_to_itself(self):
        for seed in range(25):
            game = random_game(3, 3, concentration=5.0, seed=seed)
            cand = fully_mixed_candidate(game)
            if cand.exists:
                rounded = rounded_fully_mixed(game)
                assert rounded.was_interior
                assert rounded.epsilon < 1e-6
                np.testing.assert_allclose(
                    rounded.profile.matrix, cand.probabilities, atol=1e-9
                )
                return
        pytest.skip("no interior candidate found")

    def test_noninterior_candidate_projected(self):
        caps = np.array([[100.0, 0.01], [100.0, 0.01]])
        game = UncertainRoutingGame.from_capacities([1.0, 1.0], caps)
        rounded = rounded_fully_mixed(game)
        assert not rounded.was_interior
        assert rounded.profile.is_fully_mixed(atol=1e-12)
        assert rounded.epsilon > 0  # genuinely not an equilibrium

    def test_rows_are_distributions(self):
        game = random_game(4, 3, seed=9)
        rounded = rounded_fully_mixed(game)
        np.testing.assert_allclose(
            rounded.profile.matrix.sum(axis=1), 1.0, atol=1e-12
        )


class TestBestEpsilonPure:
    def test_zero_when_pure_nash_exists(self):
        game = random_game(3, 3, seed=2)
        eps, sigma = best_epsilon_pure(game)
        assert eps == pytest.approx(0.0, abs=1e-12)
        from repro.equilibria.conditions import is_pure_nash

        assert is_pure_nash(game, sigma)


class TestEquilibriumSet:
    def test_census_consistency(self):
        game = random_game(3, 2, seed=4)
        census = equilibrium_set(game)
        assert census.num_pure == len(pure_nash_profiles(game))
        assert census.num_pure >= 1
        assert len(census.mixed) >= census.num_pure

    def test_cost_ranges_ordered(self):
        game = random_game(3, 2, seed=5)
        census = equilibrium_set(game)
        lo1, hi1 = census.cost_range_sc1()
        lo2, hi2 = census.cost_range_sc2()
        assert lo1 <= hi1 and lo2 <= hi2

    def test_worst_vs_best(self):
        from repro.model.social import sc1

        game = random_game(3, 2, seed=6)
        census = equilibrium_set(game)
        worst = census.worst_equilibrium("sum")
        best = census.best_equilibrium("sum")
        assert sc1(game, best) <= sc1(game, worst) + 1e-12

    def test_support_histogram_total(self):
        game = random_game(2, 2, seed=7)
        census = equilibrium_set(game)
        hist = census.support_size_histogram()
        assert sum(hist.values()) == len(census.mixed)
        # Pure equilibria contribute support size exactly n.
        if census.num_pure:
            assert hist.get(2, 0) >= census.num_pure

    def test_fully_mixed_flag_matches_candidate(self):
        game = random_game(3, 2, seed=8)
        census = equilibrium_set(game)
        assert census.fully_mixed_exists == fully_mixed_candidate(game).exists
