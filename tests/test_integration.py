"""End-to-end integration tests: build -> solve -> analyse pipelines."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BeliefProfile,
    StateSpace,
    UncertainRoutingGame,
    coordination_ratios,
    enumerate_mixed_nash,
    fully_mixed_candidate,
    is_mixed_nash,
    is_pure_nash,
    kp_game,
    opt1,
    opt2,
    poa_bound_general,
    sc1,
    sc2,
    solve_pure_nash,
    verify_fmne_dominance,
)
from repro.model.beliefs import Belief, point_mass_belief
from repro.substrates.kp import expected_max_congestion, kp_greedy_nash


class TestIspScenario:
    """The paper's motivating story: users with different information
    sources routing over links whose capacity depends on transient
    congestion states."""

    @pytest.fixture
    def scenario(self) -> UncertainRoutingGame:
        base = np.array([10.0, 6.0, 4.0])
        states = StateSpace.perturbations(base, factors=(0.25, 1.0, 1.5))
        beliefs = BeliefProfile.from_matrix(
            states,
            [
                [0.7, 0.2, 0.1],  # pessimist: expects congestion
                [0.1, 0.8, 0.1],  # well-informed
                [0.05, 0.15, 0.8],  # optimist
                [1 / 3, 1 / 3, 1 / 3],  # ignorant
            ],
        )
        return UncertainRoutingGame([4.0, 2.0, 2.0, 1.0], beliefs)

    def test_full_pipeline(self, scenario):
        profile, method = solve_pure_nash(scenario, seed=0)
        assert is_pure_nash(scenario, profile)
        s1 = sc1(scenario, profile)
        s2 = sc2(scenario, profile)
        assert s2 <= s1
        r1, r2 = coordination_ratios(scenario, profile)
        assert 1.0 - 1e-9 <= r1 <= poa_bound_general(scenario)
        assert 1.0 - 1e-9 <= r2 <= poa_bound_general(scenario)

    def test_fmne_pipeline(self, scenario):
        cand = fully_mixed_candidate(scenario)
        np.testing.assert_allclose(cand.probabilities.sum(axis=1), 1.0)
        if cand.exists:
            assert is_mixed_nash(scenario, cand.profile(), tol=1e-7)
            assert sc1(scenario, cand.profile()) == pytest.approx(
                float(cand.latencies.sum()), rel=1e-9
            )

    def test_belief_spread_changes_equilibrium_cost(self, scenario):
        """Replacing everyone's belief with the truth (state 1) changes
        subjective costs — uncertainty is load-bearing in the model."""
        truth = StateSpace.perturbations(
            np.array([10.0, 6.0, 4.0]), factors=(0.25, 1.0, 1.5)
        )
        informed = BeliefProfile(
            truth, [point_mass_belief(3, 1)] * scenario.num_users
        )
        kp_version = UncertainRoutingGame(scenario.weights, informed)
        p1, _ = solve_pure_nash(scenario, seed=0)
        p2, _ = solve_pure_nash(kp_version, seed=0)
        assert is_pure_nash(kp_version, p2)
        # The equilibria live in different subjective economies; both exist.
        assert sc1(scenario, p1) > 0 and sc1(kp_version, p2) > 0


class TestKpBackwardsCompatibility:
    """The model must collapse to the KP-model exactly."""

    def test_kp_equivalence_of_latencies(self):
        weights = [2.0, 1.0, 1.5]
        caps = [1.0, 2.0]
        game = kp_game(weights, caps)
        from repro.model.latency import pure_latencies

        sigma = [0, 1, 0]
        lat = pure_latencies(game, sigma)
        np.testing.assert_allclose(lat, [3.5 / 1.0, 1.0 / 2.0, 3.5 / 1.0])

    def test_greedy_and_dispatch_agree_on_nashhood(self):
        game = kp_game([3.0, 2.0, 2.0, 1.0], [2.0, 1.0])
        greedy = kp_greedy_nash(game)
        dispatched, _ = solve_pure_nash(game)
        assert is_pure_nash(game, greedy)
        assert is_pure_nash(game, dispatched)

    def test_classic_social_cost_vs_subjective(self):
        game = kp_game([1.0, 1.0], [1.0, 1.0])
        profile = [0, 1]
        # With complete information SC2 equals the classic max congestion.
        assert sc2(game, profile) == pytest.approx(
            expected_max_congestion(game, profile)
        )


class TestCrossSolverConsistency:
    def test_all_solvers_find_equilibria_of_same_game(self):
        """A symmetric two-link uniform-beliefs game is in every special
        case's domain; all three algorithms must return (possibly
        different) pure NE of it."""
        from repro.equilibria.symmetric import asymmetric
        from repro.equilibria.two_links import atwolinks
        from repro.equilibria.uniform import auniform

        caps = np.repeat(np.full((4, 1), 2.0), 2, axis=1)
        game = UncertainRoutingGame.from_capacities([1.0] * 4, caps)
        for solver in (atwolinks, asymmetric, auniform):
            assert is_pure_nash(game, solver(game))

    def test_enumeration_confirms_solver_outputs(self):
        from repro.equilibria.enumeration import pure_nash_profiles
        from repro.generators.games import random_game

        game = random_game(4, 3, seed=17)
        report = solve_pure_nash(game, seed=1)
        nash_set = {p.as_tuple() for p in pure_nash_profiles(game)}
        assert report.profile.as_tuple() in nash_set

    def test_optimum_below_equilibrium_costs(self):
        from repro.generators.games import random_game

        game = random_game(4, 2, seed=23)
        report = solve_pure_nash(game, seed=2)
        assert opt1(game) <= sc1(game, report.profile) + 1e-9
        assert opt2(game) <= sc2(game, report.profile) + 1e-9

    def test_dominance_pipeline_on_verified_game(self):
        from repro.generators.games import random_game

        game = random_game(3, 2, seed=31)
        report = verify_fmne_dominance(game)
        assert report.holds
        eqs = enumerate_mixed_nash(game)
        assert len(eqs) == len(report.equilibria)
