"""Tests for repro.util.tables and repro.util.timing."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.util.tables import Table, format_float
from repro.util.timing import ScalingFit, fit_power_law, time_callable


class TestFormatFloat:
    def test_integer_valued(self):
        assert format_float(3.0) == "3"

    def test_moderate(self):
        assert format_float(1.2345678) == "1.235"

    def test_tiny_uses_scientific(self):
        assert "e" in format_float(1.5e-7)

    def test_huge_uses_scientific(self):
        assert "e" in format_float(2.3e9)

    def test_nan(self):
        assert format_float(float("nan")) == "nan"

    def test_inf(self):
        assert format_float(float("inf")) == "inf"
        assert format_float(float("-inf")) == "-inf"

    def test_bool_passthrough(self):
        assert format_float(True) == "True"


class TestTable:
    def test_render_contains_title_and_headers(self):
        t = Table(["n", "ratio"], title="demo")
        t.add_row([4, 1.25])
        text = t.render()
        assert "demo" in text
        assert "n" in text and "ratio" in text
        assert "1.25" in text

    def test_row_length_mismatch_raises(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_alignment_consistent(self):
        t = Table(["col"], title="")
        t.add_row(["short"])
        t.add_row(["much-longer-cell"])
        lines = t.render().splitlines()
        assert len({len(line) for line in lines if "-" in line}) >= 1

    def test_floats_formatted(self):
        t = Table(["x"])
        t.add_row([0.123456789])
        assert "0.1235" in t.render()

    def test_str_matches_render(self):
        t = Table(["x"])
        t.add_row([1])
        assert str(t) == t.render()

    def test_empty_table_renders(self):
        t = Table(["a", "b"], title="empty")
        text = t.render()
        assert "empty" in text


class TestTimeCallable:
    def test_positive_duration(self):
        assert time_callable(lambda: sum(range(1000))) > 0

    def test_repeats_validation(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)

    def test_min_estimator(self):
        calls = []

        def fn():
            calls.append(1)

        time_callable(fn, repeats=4)
        assert len(calls) == 4


class TestFitPowerLaw:
    def test_exact_quadratic(self):
        xs = np.array([10, 20, 40, 80], dtype=float)
        ts = 3.0 * xs**2
        fit = fit_power_law(xs, ts)
        assert fit.exponent == pytest.approx(2.0, abs=1e-9)
        assert fit.coeff == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_exact_linear(self):
        xs = [1.0, 2.0, 4.0]
        fit = fit_power_law(xs, [5.0, 10.0, 20.0])
        assert fit.exponent == pytest.approx(1.0, abs=1e-9)

    def test_predict_roundtrip(self):
        fit = ScalingFit(exponent=2.0, coeff=0.5, r_squared=1.0)
        assert fit.predict(10.0) == pytest.approx(50.0)

    def test_noise_reduces_r_squared(self):
        rng = np.random.default_rng(0)
        xs = np.geomspace(10, 1000, 8)
        ts = xs**1.5 * np.exp(rng.normal(0, 0.3, size=8))
        fit = fit_power_law(xs, ts)
        assert 0.5 < fit.r_squared < 1.0
        assert fit.exponent == pytest.approx(1.5, abs=0.5)

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0], [0.0, 1.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0], [1.0, 2.0, 3.0])

    def test_constant_times_r2_is_one(self):
        fit = fit_power_law([1.0, 2.0, 4.0], [7.0, 7.0, 7.0])
        assert fit.exponent == pytest.approx(0.0, abs=1e-12)
        assert fit.r_squared == pytest.approx(1.0)
