"""Tests for the fully mixed NE closed form (Section 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import NotFullyMixedError
from repro.model.game import UncertainRoutingGame
from repro.model.latency import mixed_latency_matrix
from repro.equilibria.conditions import is_mixed_nash
from repro.equilibria.fully_mixed import (
    fully_mixed_candidate,
    fully_mixed_nash,
    has_fully_mixed_nash,
)
from repro.generators.games import random_game, random_uniform_beliefs_game


class TestClosedForm:
    def test_rows_sum_to_one_always(self):
        """Remark 4.4: the candidate rows sum to one even off the simplex."""
        for seed in range(20):
            game = random_game(4, 3, seed=seed)
            cand = fully_mixed_candidate(game)
            np.testing.assert_allclose(
                cand.probabilities.sum(axis=1), 1.0, atol=1e-9
            )

    def test_lemma_4_1_latency_formula(self):
        game = random_game(3, 4, seed=1)
        cand = fully_mixed_candidate(game)
        s = game.capacities.sum(axis=1)
        expected = ((game.num_links - 1) * game.weights + game.total_traffic) / s
        np.testing.assert_allclose(cand.latencies, expected)

    def test_lemma_4_2_link_traffic_conservation(self):
        """Expected link traffics must sum to the total traffic."""
        for seed in range(10):
            game = random_game(4, 3, seed=seed)
            cand = fully_mixed_candidate(game)
            assert cand.link_traffic.sum() == pytest.approx(game.total_traffic)

    def test_link_traffic_consistent_with_probabilities(self):
        game = random_game(3, 3, concentration=5.0, seed=6)
        cand = fully_mixed_candidate(game)
        implied = cand.probabilities.T @ game.weights
        np.testing.assert_allclose(implied, cand.link_traffic, atol=1e-9)

    def test_equalised_latencies_when_interior(self):
        """At the FMNE every user is indifferent across all links and the
        common value equals Lemma 4.1's lambda_i."""
        found = 0
        for seed in range(40):
            game = random_game(3, 3, concentration=5.0, seed=seed)
            cand = fully_mixed_candidate(game)
            if not cand.exists:
                continue
            found += 1
            lat = mixed_latency_matrix(game, cand.profile())
            np.testing.assert_allclose(
                lat, np.broadcast_to(cand.latencies[:, None], lat.shape), rtol=1e-9
            )
        assert found >= 5

    def test_candidate_is_nash_iff_interior(self):
        for seed in range(40):
            game = random_game(3, 3, seed=seed)
            cand = fully_mixed_candidate(game)
            if cand.exists:
                assert is_mixed_nash(game, cand.profile(), tol=1e-7)

    def test_o_nm_evaluation_is_fast(self):
        """Corollary 4.7: closed form scales to big games trivially."""
        game = random_game(200, 50, seed=0)
        cand = fully_mixed_candidate(game)
        assert cand.probabilities.shape == (200, 50)


class TestExistence:
    def test_fully_mixed_nash_raises_when_absent(self):
        # Extreme capacity asymmetry destroys interiority.
        caps = np.array([[100.0, 0.01], [100.0, 0.01]])
        game = UncertainRoutingGame.from_capacities([1.0, 1.0], caps)
        cand = fully_mixed_candidate(game)
        assert not cand.exists
        with pytest.raises(NotFullyMixedError):
            fully_mixed_nash(game)

    def test_has_fully_mixed_consistent(self):
        for seed in range(15):
            game = random_game(3, 3, seed=seed)
            cand = fully_mixed_candidate(game)
            assert has_fully_mixed_nash(game) == cand.exists

    def test_profile_returned_when_exists(self):
        game = random_uniform_beliefs_game(3, 3, seed=0)
        profile = fully_mixed_nash(game)
        assert profile.is_fully_mixed()

    def test_error_message_reports_range(self):
        caps = np.array([[100.0, 0.01], [100.0, 0.01]])
        game = UncertainRoutingGame.from_capacities([1.0, 1.0], caps)
        with pytest.raises(NotFullyMixedError, match="span"):
            fully_mixed_nash(game)


class TestTheorem48:
    """Uniform user beliefs force the equiprobable fully mixed NE."""

    @pytest.mark.parametrize("n,m", [(2, 2), (3, 3), (4, 2), (5, 5), (7, 3)])
    def test_equiprobable(self, n, m):
        game = random_uniform_beliefs_game(n, m, seed=n * 10 + m)
        cand = fully_mixed_candidate(game)
        assert cand.exists
        np.testing.assert_allclose(cand.probabilities, 1.0 / m, atol=1e-12)

    def test_kp_identical_links_equiprobable(self):
        game = UncertainRoutingGame.kp([1.0, 2.0, 3.0], [2.0, 2.0])
        cand = fully_mixed_candidate(game)
        np.testing.assert_allclose(cand.probabilities, 0.5, atol=1e-12)


class TestWithInitialTraffic:
    """The library generalises the closed form to carry initial traffic."""

    def test_rows_still_sum_to_one(self):
        game = random_game(4, 3, with_initial_traffic=True, seed=9)
        cand = fully_mixed_candidate(game)
        np.testing.assert_allclose(cand.probabilities.sum(axis=1), 1.0, atol=1e-9)

    def test_still_nash_when_interior(self):
        hits = 0
        for seed in range(40):
            game = random_game(3, 3, with_initial_traffic=True, seed=seed)
            cand = fully_mixed_candidate(game)
            if cand.exists:
                hits += 1
                assert is_mixed_nash(game, cand.profile(), tol=1e-7)
        assert hits > 0

    def test_zero_traffic_matches_paper_form(self):
        game_zero = random_game(3, 3, seed=12)
        cand = fully_mixed_candidate(game_zero)
        s = game_zero.capacities.sum(axis=1)
        lam = ((3 - 1) * game_zero.weights + game_zero.total_traffic) / s
        np.testing.assert_allclose(cand.latencies, lam)
