"""Tests for repro.util.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.rng import as_generator, spawn_generators, stable_seed


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).random(8)
        b = as_generator(42).random(8)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).random(8)
        b = as_generator(2).random(8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5

    def test_children_are_independent_streams(self):
        a, b = spawn_generators(0, 2)
        assert not np.array_equal(a.random(16), b.random(16))

    def test_deterministic_given_seed(self):
        a1, b1 = spawn_generators(3, 2)
        a2, b2 = spawn_generators(3, 2)
        np.testing.assert_array_equal(a1.random(4), a2.random(4))
        np.testing.assert_array_equal(b1.random(4), b2.random(4))

    def test_spawn_from_generator_does_not_consume_parent(self):
        parent = np.random.default_rng(9)
        before = parent.bit_generator.state
        spawn_generators(parent, 3)
        assert parent.bit_generator.state == before

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("E5", 3, 4) == stable_seed("E5", 3, 4)

    def test_sensitive_to_parts(self):
        assert stable_seed("E5", 3, 4) != stable_seed("E5", 4, 3)

    def test_sensitive_to_label(self):
        assert stable_seed("a", 1) != stable_seed("b", 1)

    def test_non_negative_63_bit(self):
        for parts in [("x",), (1, 2, 3), ("y", -5)]:
            s = stable_seed(*parts)
            assert 0 <= s < 2**63

    def test_usable_as_numpy_seed(self):
        gen = np.random.default_rng(stable_seed("any", "label"))
        gen.random()
