"""Tests for the sharded campaign runtime: plan, merge, digest, CLI.

The sharding contract under test is the one ``docs/STORE_FORMAT.md``
specifies: for a fixed spec, *any* shard count, *any* shard completion
order, and kill-resume inside a shard all merge to the same
canonical-record digest as the single-host store — and a ``K = 1``
merge is byte-identical to it. File-byte equality of the merged store
is deliberately **not** the cross-shard contract (canonical-record
equality is), but the round-robin interleave makes it hold anyway for
complete single-spec campaigns, which the suite pins as a stronger
bonus where it applies.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StoreMergeError
from repro.generators.suites import GridCell
from repro.runtime import (
    ResultStore,
    ShardPlan,
    SweepSpec,
    canonical_record_digest,
    discover_shard_stores,
    merge_shard_stores,
    run_sweep,
    shard_store_path,
)
from repro.util.parallel import ReplicationChunk


def _echo_kernel(chunk: ReplicationChunk) -> dict:
    seeds = chunk.seeds()
    return {
        "label": chunk.label,
        "n": chunk.num_users,
        "m": chunk.num_links,
        "lo": chunk.rep_lo,
        "hi": chunk.rep_hi,
        "seed_sum": sum(seeds),
    }


def _spec(label: str = "shard-test") -> SweepSpec:
    return SweepSpec(
        experiment="RT",
        label=label,
        cells=(GridCell(2, 2, 5), GridCell(3, 2, 4), GridCell(3, 3, 3)),
        kernel=_echo_kernel,
    )


def _record(key_label: str, lo: int, payload) -> dict:
    return {
        "experiment": "RT", "label": key_label, "n": 2, "m": 2,
        "rep_lo": lo, "rep_hi": lo + 1, "payload": payload,
    }


def _run_shards(spec, base, order, count, batch_size=1, seed=None):
    """Run every shard of a count-way plan in the given completion order."""
    for k in order:
        run_sweep(
            spec,
            batch_size=batch_size,
            seed=seed,
            store=shard_store_path(base, k),
            shard=ShardPlan(k, count),
        )


class TestShardPlan:
    def test_parse_round_trip(self):
        plan = ShardPlan.parse("1/3")
        assert (plan.index, plan.count) == (1, 3)
        assert str(plan) == "1/3"
        assert ShardPlan.parse(str(plan)) == plan

    @pytest.mark.parametrize("text", ["", "3", "a/b", "1/", "/3", "1/3/5"])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ValueError, match="k/K"):
            ShardPlan.parse(text)

    @pytest.mark.parametrize("index,count", [(0, 0), (-1, 2), (2, 2), (3, 2)])
    def test_validation(self, index, count):
        with pytest.raises(ValueError):
            ShardPlan(index, count)

    @pytest.mark.parametrize("count", [1, 2, 3, 5, 12, 17])
    def test_shards_partition_the_chunk_list(self, count):
        """Every chunk is owned by exactly one shard, and concatenating
        the shards' slices is a permutation of the full list."""
        items = list(range(12))
        slices = [ShardPlan(k, count).select(items) for k in range(count)]
        flat = [x for s in slices for x in s]
        assert sorted(flat) == items
        for k, part in enumerate(slices):
            assert all(ShardPlan(k, count).owns(i) for i in part)

    def test_spec_chunks_shard_union(self):
        spec = _spec()
        full, full_cells = spec.chunks(batch_size=2)
        seen = []
        seen_cells = []
        for k in range(3):
            chunks, cells = spec.chunks(batch_size=2, shard=ShardPlan(k, 3))
            seen.extend(chunks)
            seen_cells.extend(cells)
        assert sorted(map(repr, seen)) == sorted(map(repr, full))
        assert sorted(seen_cells) == sorted(full_cells)


class TestShardInvariance:
    """The tentpole contract: any K, any completion order, kill-resume
    inside a shard — all merge to the single-host canonical digest."""

    @pytest.fixture()
    def single_host(self, tmp_path):
        path = tmp_path / "single.jsonl"
        run_sweep(_spec(), batch_size=1, store=path)
        return ResultStore(path)

    @pytest.mark.parametrize("count", [1, 2, 3, 5, 20])
    def test_any_shard_count_merges_to_single_host_digest(
        self, tmp_path, single_host, count
    ):
        base = tmp_path / f"sharded-{count}.jsonl"
        _run_shards(_spec(), base, range(count), count)
        result = merge_shard_stores(discover_shard_stores(base), base)
        assert result.digest == single_host.canonical_digest()
        assert result.duplicates == 0

    def test_completion_order_is_irrelevant(self, tmp_path, single_host):
        reference = single_host.canonical_digest()
        for i, order in enumerate(itertools.permutations(range(3))):
            base = tmp_path / f"order-{i}.jsonl"
            _run_shards(_spec(), base, order, 3)
            result = merge_shard_stores(discover_shard_stores(base), base)
            assert result.digest == reference

    def test_k1_merge_is_byte_identical_to_single_host(
        self, tmp_path, single_host
    ):
        base = tmp_path / "k1.jsonl"
        _run_shards(_spec(), base, [0], 1)
        merge_shard_stores(discover_shard_stores(base), base)
        assert base.read_bytes() == single_host.path.read_bytes()

    def test_complete_single_spec_merge_is_byte_identical(
        self, tmp_path, single_host
    ):
        """Stronger than the contract: for a complete single-spec
        campaign the round-robin interleave reconstructs canonical
        chunk order exactly, so even the bytes agree."""
        base = tmp_path / "k3.jsonl"
        _run_shards(_spec(), base, [2, 0, 1], 3)
        merge_shard_stores(discover_shard_stores(base), base)
        assert base.read_bytes() == single_host.path.read_bytes()

    def test_oversharded_campaign_with_empty_shards(self, tmp_path, single_host):
        """K larger than the chunk count: trailing shards own nothing
        and never create a file; the merge still reproduces the store."""
        count = 40  # > 12 chunks
        base = tmp_path / "over.jsonl"
        _run_shards(_spec(), base, range(count), count)
        found = discover_shard_stores(base)
        assert len(found) == 12  # one non-empty shard per chunk
        result = merge_shard_stores(found, base)
        assert result.digest == single_host.canonical_digest()

    @settings(max_examples=15, deadline=None)
    @given(
        count=st.integers(1, 5),
        victim=st.integers(0, 4),
        cut_fraction=st.floats(0.05, 0.95),
    )
    def test_kill_resume_inside_a_shard(
        self, tmp_path_factory, count, victim, cut_fraction
    ):
        """Tear a shard store at an arbitrary byte, resume that shard,
        merge: canonical digest and shard bytes both converge."""
        victim %= count
        tmp_path = tmp_path_factory.mktemp("shard-kill")
        spec = _spec()
        single = tmp_path / "single.jsonl"
        run_sweep(spec, batch_size=1, store=single)

        base = tmp_path / "sharded.jsonl"
        _run_shards(spec, base, range(count), count)
        victim_path = shard_store_path(base, victim)
        healthy = victim_path.read_bytes()
        victim_path.write_bytes(healthy[: int(len(healthy) * cut_fraction)])

        resumed = run_sweep(
            spec,
            batch_size=1,
            store=victim_path,
            shard=ShardPlan(victim, count),
            resume=True,
        )
        assert resumed.computed_chunks + resumed.resumed_chunks == len(
            resumed.chunk_payloads
        )
        assert victim_path.read_bytes() == healthy
        result = merge_shard_stores(discover_shard_stores(base), base)
        assert result.digest == ResultStore(single).canonical_digest()

    def test_multi_spec_campaign_digest(self, tmp_path):
        """Two specs sharing one store (the E6 shape): shard each spec
        independently into the same shard files, merge, compare the
        canonical digest against the single-host two-spec store."""
        specs = [_spec("shard-a"), _spec("shard-b")]
        single = tmp_path / "single.jsonl"
        for spec in specs:
            run_sweep(spec, batch_size=2, store=single)

        base = tmp_path / "sharded.jsonl"
        for k in (1, 0, 2):
            for spec in specs:
                run_sweep(
                    spec,
                    batch_size=2,
                    store=shard_store_path(base, k),
                    shard=ShardPlan(k, 3),
                )
        result = merge_shard_stores(discover_shard_stores(base), base)
        assert result.digest == ResultStore(single).canonical_digest()

    def test_seed_override_changes_digest(self, tmp_path, single_host):
        base = tmp_path / "seeded.jsonl"
        _run_shards(_spec(), base, range(2), 2, seed=7)
        result = merge_shard_stores(discover_shard_stores(base), base)
        assert result.digest != single_host.canonical_digest()


class TestMerge:
    def test_conflicting_records_raise(self, tmp_path):
        a = ResultStore(tmp_path / "s.shard-0.jsonl")
        b = ResultStore(tmp_path / "s.shard-1.jsonl")
        a.append(_record("x", 0, [1.0]))
        b.append(_record("x", 0, [2.0]))
        with pytest.raises(StoreMergeError, match="disagree"):
            merge_shard_stores([a, b], tmp_path / "s.jsonl")
        assert not (tmp_path / "s.jsonl").exists()

    def test_equal_duplicates_collapse(self, tmp_path):
        a = ResultStore(tmp_path / "s.shard-0.jsonl")
        b = ResultStore(tmp_path / "s.shard-1.jsonl")
        a.append(_record("x", 0, [1.0]))
        b.append(_record("x", 0, [1.0]))
        b.append(_record("x", 1, [2.0]))
        result = merge_shard_stores([a, b], tmp_path / "s.jsonl")
        assert result.records == 2
        assert result.duplicates == 1

    def test_existing_destination_requires_force(self, tmp_path):
        shard = ResultStore(tmp_path / "s.shard-0.jsonl")
        shard.append(_record("x", 0, 1))
        dest = tmp_path / "s.jsonl"
        dest.write_text("precious\n")
        with pytest.raises(StoreMergeError, match="force"):
            merge_shard_stores([shard], dest)
        assert dest.read_text() == "precious\n"
        result = merge_shard_stores([shard], dest, force=True)
        assert result.records == 1

    def test_destination_must_not_be_an_input(self, tmp_path):
        shard = ResultStore(tmp_path / "s.shard-0.jsonl")
        shard.append(_record("x", 0, 1))
        with pytest.raises(StoreMergeError, match="itself a shard input"):
            merge_shard_stores([shard], shard.path)

    def test_empty_shard_list_raises(self, tmp_path):
        with pytest.raises(StoreMergeError, match="no shard stores"):
            merge_shard_stores([], tmp_path / "s.jsonl")

    def test_merge_repairs_shard_tails(self, tmp_path):
        """A shard killed between its final record and the newline must
        contribute that record to the merge (the load_records fix)."""
        shard_path = tmp_path / "s.shard-0.jsonl"
        shard = ResultStore(shard_path)
        shard.append(_record("x", 0, 1))
        shard.append(_record("x", 1, 2))
        shard_path.write_bytes(shard_path.read_bytes().rstrip(b"\n"))
        result = merge_shard_stores([shard], tmp_path / "s.jsonl")
        assert result.records == 2

    def test_discovery_sorts_numerically(self, tmp_path):
        base = tmp_path / "s.jsonl"
        for k in (10, 2, 0):
            store = ResultStore(shard_store_path(base, k))
            store.append(_record("x", k, k))
        found = discover_shard_stores(base)
        assert [s.path.name for s in found] == [
            "s.shard-0.jsonl", "s.shard-2.jsonl", "s.shard-10.jsonl",
        ]

    def test_discovery_ignores_unrelated_files(self, tmp_path):
        base = tmp_path / "s.jsonl"
        (tmp_path / "s.shard-x.jsonl").write_text("")
        (tmp_path / "other.shard-0.jsonl").write_text("")
        (tmp_path / "s.shard-0.jsonl.bak").write_text("")
        assert discover_shard_stores(base) == []

    def test_shard_store_path_spelling(self, tmp_path):
        assert shard_store_path("store.jsonl", 3).name == "store.shard-3.jsonl"
        assert shard_store_path(tmp_path / "a.b.jsonl", 0).name == (
            "a.b.shard-0.jsonl"
        )
        with pytest.raises(ValueError, match=">= 0"):
            shard_store_path("store.jsonl", -1)


class TestCanonicalDigest:
    def test_order_and_formatting_independent(self):
        a = _record("x", 0, [1.5])
        b = _record("x", 1, [2.5])
        scrambled_b = dict(reversed(list(b.items())))
        assert canonical_record_digest([a, b]) == canonical_record_digest(
            [scrambled_b, a]
        )
        assert canonical_record_digest([a]) != canonical_record_digest([b])

    def test_payload_changes_digest(self):
        assert canonical_record_digest(
            [_record("x", 0, [1.0])]
        ) != canonical_record_digest([_record("x", 0, [1.0 + 1e-15])])

    def test_store_digest_ignores_append_order(self, tmp_path):
        a, b = _record("x", 0, 1), _record("x", 1, 2)
        first = ResultStore(tmp_path / "ab.jsonl")
        first.append(a), first.append(b)
        second = ResultStore(tmp_path / "ba.jsonl")
        second.append(b), second.append(a)
        assert first.canonical_digest() == second.canonical_digest()
        assert first.path.read_bytes() != second.path.read_bytes()


class TestShardCli:
    def test_run_shard_requires_store(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "E8", "--quick", "--shard", "0/2"])
        assert "--shard requires --store" in capsys.readouterr().err

    def test_malformed_shard_flag(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "E8", "--quick", "--shard", "2", "--store", "s.jsonl"])
        assert "k/K" in capsys.readouterr().err

    def test_sharded_campaign_end_to_end(self, tmp_path, capsys):
        """run --shard x2, merge, digest gate against single host, then
        replay the verdict from the merged store with --resume."""
        from repro.cli import main

        single = tmp_path / "single.jsonl"
        assert main(["run", "E8", "--quick", "--store", str(single)]) == 0
        capsys.readouterr()  # drain the single-host verdict output

        base = tmp_path / "sharded.jsonl"
        for k in (1, 0):
            assert main([
                "run", "E8", "--quick",
                "--shard", f"{k}/2", "--store", str(base),
            ]) == 0
        out = capsys.readouterr().out
        assert "shard 1/2 complete" in out and "shard 0/2 complete" in out
        assert "PASS" not in out  # shards compute stores, not verdicts

        assert main(["merge", "--store", str(base)]) == 0
        merged_out = capsys.readouterr().out
        assert "canonical digest:" in merged_out

        assert main(["digest", str(base)]) == 0
        digest_a = capsys.readouterr().out.strip()
        assert main(["digest", str(single)]) == 0
        digest_b = capsys.readouterr().out.strip()
        assert digest_a == digest_b

        before = base.read_bytes()
        assert main([
            "run", "E8", "--quick", "--store", str(base), "--resume",
        ]) == 0
        assert "PASS" in capsys.readouterr().out
        assert base.read_bytes() == before  # replay computed nothing new

    def test_merge_without_shards_fails(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["merge", "--store", str(tmp_path / "none.jsonl")]) == 1
        assert "no shard stores found" in capsys.readouterr().err

    def test_merge_conflict_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        ResultStore(tmp_path / "s.shard-0.jsonl").append(_record("x", 0, 1))
        ResultStore(tmp_path / "s.shard-1.jsonl").append(_record("x", 0, 2))
        assert main(["merge", "--store", str(tmp_path / "s.jsonl")]) == 1
        assert "merge failed" in capsys.readouterr().err

    def test_merge_explicit_shard_paths(self, tmp_path, capsys):
        from repro.cli import main

        shard = tmp_path / "elsewhere.jsonl"
        ResultStore(shard).append(_record("x", 0, 1))
        assert main([
            "merge", "--store", str(tmp_path / "s.jsonl"),
            "--shards", str(shard),
        ]) == 0
        assert "1 record(s)" in capsys.readouterr().out
