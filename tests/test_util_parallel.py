"""Tests for the chunked process-pool helpers."""

from __future__ import annotations

import pytest

from repro.util.parallel import chunk_ranges, resolve_jobs, run_tasks


def _square(x: int) -> int:
    """Module-level so the process pool can pickle it."""
    return x * x


class TestChunkRanges:
    def test_none_is_single_chunk(self):
        assert chunk_ranges(10) == [(0, 10)]

    def test_exact_division(self):
        assert chunk_ranges(6, 2) == [(0, 2), (2, 4), (4, 6)]

    def test_ragged_tail(self):
        assert chunk_ranges(7, 3) == [(0, 3), (3, 6), (6, 7)]

    def test_oversized_chunk(self):
        assert chunk_ranges(4, 100) == [(0, 4)]

    def test_empty(self):
        assert chunk_ranges(0) == []
        assert chunk_ranges(0, 5) == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            chunk_ranges(-1)
        with pytest.raises(ValueError):
            chunk_ranges(5, 0)


class TestResolveJobs:
    def test_explicit(self):
        assert resolve_jobs(3) == 3

    def test_zero_means_all_cpus(self):
        assert resolve_jobs(0) >= 1

    def test_zero_with_undetectable_cpu_count_falls_back_to_one(self, monkeypatch):
        # os.cpu_count() may return None (the stdlib documents it); the
        # "all CPUs" spelling must degrade to inline execution, not crash
        # or build a 0-worker pool.
        monkeypatch.setattr("repro.util.parallel.os.cpu_count", lambda: None)
        assert resolve_jobs(0) == 1

    def test_none_stays_inline(self):
        assert resolve_jobs(None) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestRunTasks:
    def test_inline(self):
        assert run_tasks(_square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_pool_preserves_order(self):
        tasks = list(range(20))
        assert run_tasks(_square, tasks, jobs=2) == [x * x for x in tasks]

    def test_single_task_stays_inline(self):
        assert run_tasks(_square, [5], jobs=8) == [25]

    def test_empty(self):
        assert run_tasks(_square, [], jobs=4) == []
