"""Tests for the campaign runtime: spec, store, scheduler, resume.

The resume contract under test is the strong one the runtime promises:
kill a run at *any* chunk boundary, resume with the same flags, and the
final store file is byte-identical to an uninterrupted run — while the
aggregated payloads are identical for every jobs/batch-size/resume
combination.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators.suites import GridCell
from repro.runtime import (
    ResultStore,
    SweepSpec,
    canonical_dumps,
    canonical_payload,
    run_sweep,
)
from repro.util.parallel import ReplicationChunk


def _echo_kernel(chunk: ReplicationChunk) -> dict:
    """A deterministic kernel: fingerprints the chunk's seed stream."""
    seeds = chunk.seeds()
    return {
        "label": chunk.label,
        "n": chunk.num_users,
        "m": chunk.num_links,
        "lo": chunk.rep_lo,
        "hi": chunk.rep_hi,
        "seed_sum": sum(seeds),
        "first": seeds[0] if seeds else None,
    }


def _spec(label: str = "rt-test") -> SweepSpec:
    return SweepSpec(
        experiment="RT",
        label=label,
        cells=(GridCell(2, 2, 5), GridCell(3, 2, 4), GridCell(3, 3, 3)),
        kernel=_echo_kernel,
    )


class TestSweepSpec:
    def test_chunks_cover_grid(self):
        spec = _spec()
        chunks, cell_of_chunk = spec.chunks(batch_size=2)
        assert len(chunks) == 3 + 2 + 2  # ceil(5/2) + ceil(4/2) + ceil(3/2)
        assert cell_of_chunk == [0, 0, 0, 1, 1, 2, 2]
        assert spec.total_replications == 12

    def test_seeded_label_default_identity(self):
        spec = _spec()
        assert spec.seeded_label(None) == spec.label
        assert spec.seeded_label(7) != spec.label
        assert spec.seeded_label(7) == spec.seeded_label(7)

    def test_seed_override_changes_streams(self):
        spec = _spec()
        base = run_sweep(spec).chunk_payloads
        other = run_sweep(spec, seed=7).chunk_payloads
        again = run_sweep(spec, seed=7).chunk_payloads
        assert base != other
        assert other == again


class TestResultStore:
    def test_round_trip_and_last_wins(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        record = {
            "experiment": "RT", "label": "x", "n": 2, "m": 2,
            "rep_lo": 0, "rep_hi": 4, "payload": [1, 2.5, True],
        }
        store.append(record)
        store.append({**record, "payload": [9]})
        payloads = store.load_payloads()
        assert payloads[("RT", "x", 2, 2, 0, 4)] == [9]

    def test_missing_file_is_empty(self, tmp_path):
        assert ResultStore(tmp_path / "absent.jsonl").load_payloads() == {}

    def test_damaged_tail_ignored(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.append(
            {"experiment": "RT", "label": "x", "n": 2, "m": 2,
             "rep_lo": 0, "rep_hi": 4, "payload": 1}
        )
        with path.open("a") as fh:
            fh.write('{"experiment": "RT", "label": "x", "n": 2,')  # kill mid-write
        assert len(store.load_payloads()) == 1

    def test_coerce(self, tmp_path):
        path = tmp_path / "s.jsonl"
        assert ResultStore.coerce(None) is None
        store = ResultStore(path)
        assert ResultStore.coerce(store) is store
        assert ResultStore.coerce(str(path)).path == path


class TestLoadRepairsTail:
    """Satellite fix: ``load_records`` repairs the tail before reading,
    so *every* reader (resume, shard merge, digest) heals a killed
    store instead of relying on the next append to do it."""

    RECORD = {
        "experiment": "RT", "label": "x", "n": 2, "m": 2,
        "rep_lo": 0, "rep_hi": 4, "payload": 1,
    }

    def test_unterminated_valid_tail_is_kept_and_healed(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.append(self.RECORD)
        store.append({**self.RECORD, "rep_lo": 4, "rep_hi": 8})
        healthy = path.read_bytes()
        path.write_bytes(healthy.rstrip(b"\n"))  # kill between record and \n
        records = store.load_records()
        assert len(records) == 2  # the last record is not dropped
        assert path.read_bytes() == healthy  # and the file is healed

    def test_torn_fragment_is_dropped_and_truncated(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.append(self.RECORD)
        healthy = path.read_bytes()
        with path.open("ab") as fh:
            fh.write(b'{"experiment": "RT", "label"')  # kill mid-write
        assert len(store.load_records()) == 1
        assert path.read_bytes() == healthy  # fragment truncated away

    def test_read_only_store_is_still_readable(self, tmp_path, monkeypatch):
        """A store that cannot be opened for writing (archived artifact)
        is read as-is; the valid unterminated tail still parses."""
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.append(self.RECORD)
        damaged = path.read_bytes().rstrip(b"\n")
        path.write_bytes(damaged)

        def refuse_repair(self):
            raise PermissionError("read-only filesystem")

        monkeypatch.setattr(ResultStore, "repair_tail", refuse_repair)
        assert len(store.load_records()) == 1
        assert path.read_bytes() == damaged  # no healing attempted


class TestScheduler:
    def test_jobs_and_batch_size_invariance(self):
        """Per-cell aggregates must not depend on chunking or workers
        (chunk *payloads* naturally differ in shape with batch_size)."""

        def cell_totals(result):
            return [
                sum(p["seed_sum"] for p in group)
                for group in result.payloads_by_cell
            ]

        spec = _spec()
        ref = cell_totals(run_sweep(spec))
        assert cell_totals(run_sweep(spec, batch_size=1)) == ref
        assert cell_totals(run_sweep(spec, batch_size=2)) == ref
        assert cell_totals(run_sweep(spec, jobs=2, batch_size=2)) == ref

    def test_store_writes_one_line_per_chunk(self, tmp_path):
        path = tmp_path / "s.jsonl"
        result = run_sweep(_spec(), batch_size=2, store=path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == result.computed_chunks == 7
        keys = [ResultStore.record_key(json.loads(line)) for line in lines]
        assert len(set(keys)) == len(keys)

    def test_resume_skips_completed_chunks(self, tmp_path):
        path = tmp_path / "s.jsonl"
        spec = _spec()
        fresh = run_sweep(spec, batch_size=2, store=path)
        assert fresh.resumed_chunks == 0
        resumed = run_sweep(spec, batch_size=2, store=path, resume=True)
        assert resumed.computed_chunks == 0
        assert resumed.resumed_chunks == 7
        assert resumed.chunk_payloads == fresh.chunk_payloads
        # Nothing was re-appended.
        assert len(path.read_text().strip().splitlines()) == 7

    def test_resume_requires_store(self):
        with pytest.raises(ValueError, match="resume"):
            run_sweep(_spec(), resume=True)

    def test_resume_ignores_other_labels(self, tmp_path):
        path = tmp_path / "s.jsonl"
        run_sweep(_spec("other-label"), batch_size=2, store=path)
        resumed = run_sweep(_spec(), batch_size=2, store=path, resume=True)
        assert resumed.resumed_chunks == 0
        assert resumed.computed_chunks == 7

    def test_payloads_by_cell_geometry(self):
        spec = _spec()
        result = run_sweep(spec, batch_size=2)
        by_cell = result.payloads_by_cell
        assert [len(group) for group in by_cell] == [3, 2, 2]
        for cell, group in zip(spec.cells, by_cell):
            assert all(p["n"] == cell.num_users for p in group)
            assert [p["lo"] for p in group] == sorted(p["lo"] for p in group)

    def test_fresh_payloads_are_json_canonical(self):
        """A kernel returning tuples must aggregate as lists, so fresh
        and resumed runs are indistinguishable to the aggregation."""

        result = run_sweep(
            SweepSpec("RT", "rt-tuple", (GridCell(2, 2, 2),), _tuple_kernel)
        )
        assert result.chunk_payloads == [[2, [0, 1]]]


def _tuple_kernel(chunk: ReplicationChunk) -> tuple:
    return (chunk.num_users, tuple(range(chunk.rep_lo, chunk.rep_hi)))


def _nonfinite_kernel(chunk: ReplicationChunk) -> dict:
    """A kernel whose payloads contain every non-finite float."""
    return {
        "lo": chunk.rep_lo,
        "worst_ratio": math.inf,
        "series": [1.5, -math.inf, math.nan],
    }


class TestNonFiniteSentinel:
    """Satellite fix: non-finite floats must survive the store round
    trip via the ``__nonfinite__`` sentinel instead of crashing the
    historical ``allow_nan=False`` encoder mid-campaign."""

    def test_canonical_payload_round_trips_nonfinite(self):
        payload = {"a": math.inf, "b": [-math.inf, 1.5], "c": math.nan}
        out = canonical_payload(payload)
        assert out["a"] == math.inf
        assert out["b"] == [-math.inf, 1.5]
        assert math.isnan(out["c"])

    def test_encoded_line_is_strict_json(self):
        """The wire form parses under strict JSON (no bare Infinity)."""
        line = canonical_dumps({"x": math.inf, "y": [math.nan]})
        assert json.loads(line) == {
            "x": {"__nonfinite__": "inf"},
            "y": [{"__nonfinite__": "nan"}],
        }

    def test_unknown_sentinel_value_decodes_unchanged(self):
        """The decode hook only rewrites the three known spellings."""
        from repro.runtime import canonical_loads

        assert canonical_loads('{"__nonfinite__": 3}') == {"__nonfinite__": 3}

    def test_reserved_key_rejected_before_disk(self, tmp_path):
        path = tmp_path / "s.jsonl"
        record = {
            "experiment": "RT", "label": "x", "n": 2, "m": 2,
            "rep_lo": 0, "rep_hi": 4,
            "payload": {"__nonfinite__": "not really"},
        }
        with pytest.raises(ValueError, match="reserved"):
            ResultStore(path).append(record)
        assert not path.exists()

    def test_fresh_store_run_survives_nonfinite_payloads(self, tmp_path):
        """The historical crash: a degenerate chunk mid-campaign."""
        spec = SweepSpec("RT", "rt-inf", (GridCell(2, 2, 4),), _nonfinite_kernel)
        result = run_sweep(spec, batch_size=1, store=tmp_path / "s.jsonl")
        assert result.computed_chunks == 4
        for payload in result.chunk_payloads:
            assert payload["worst_ratio"] == math.inf
            assert payload["series"][1] == -math.inf
            assert math.isnan(payload["series"][2])

    def test_resume_preserves_nonfinite_bytes(self, tmp_path):
        """Fresh and ``--resume`` paths agree byte for byte with
        non-finite payloads on both sides of the kill point."""
        spec = SweepSpec("RT", "rt-inf", (GridCell(2, 2, 4),), _nonfinite_kernel)
        full_path = tmp_path / "full.jsonl"
        full = run_sweep(spec, batch_size=1, store=full_path)
        full_bytes = full_path.read_bytes()

        lines = full_bytes.splitlines(keepends=True)
        killed_path = tmp_path / "killed.jsonl"
        killed_path.write_bytes(b"".join(lines[:2]))
        resumed = run_sweep(spec, batch_size=1, store=killed_path, resume=True)

        assert resumed.resumed_chunks == 2
        assert resumed.computed_chunks == 2
        assert killed_path.read_bytes() == full_bytes
        # NaN breaks ``==`` on raw payloads; compare canonical bytes
        # (sorted keys: resumed payloads come back from sorted lines).
        assert canonical_dumps(
            resumed.chunk_payloads, sort_keys=True
        ) == canonical_dumps(full.chunk_payloads, sort_keys=True)


class TestResumeAfterKill:
    """Satellite property: resume-after-kill reproduces the store byte
    for byte, for every kill point and chunking."""

    @settings(max_examples=25, deadline=None)
    @given(
        batch_size=st.one_of(st.none(), st.integers(1, 5)),
        kill_after=st.integers(0, 12),
    )
    def test_store_byte_identical(self, tmp_path_factory, batch_size, kill_after):
        tmp_path = tmp_path_factory.mktemp("resume-kill")
        spec = _spec()
        full_path = tmp_path / "full.jsonl"
        full = run_sweep(spec, batch_size=batch_size, store=full_path)
        full_bytes = full_path.read_bytes()

        # Simulate a kill after `kill_after` completed chunks: the store
        # holds a prefix of the canonical line sequence.
        lines = full_bytes.splitlines(keepends=True)
        kill_after = min(kill_after, len(lines))
        killed_path = tmp_path / "killed.jsonl"
        killed_path.write_bytes(b"".join(lines[:kill_after]))

        resumed = run_sweep(
            spec, batch_size=batch_size, store=killed_path, resume=True
        )
        assert resumed.resumed_chunks == kill_after
        assert resumed.computed_chunks == len(lines) - kill_after
        assert killed_path.read_bytes() == full_bytes
        assert resumed.chunk_payloads == full.chunk_payloads

    @settings(max_examples=25, deadline=None)
    @given(
        batch_size=st.one_of(st.none(), st.integers(1, 5)),
        cut_fraction=st.floats(0.0, 1.0),
    )
    def test_store_byte_identical_mid_line_kill(
        self, tmp_path_factory, batch_size, cut_fraction
    ):
        """A kill can also land *mid-write*, leaving a torn final line.

        The torn fragment must not poison subsequent appends (the
        recomputed chunk's record must stay parseable) and the healed,
        resumed store must still converge to the uninterrupted bytes."""
        tmp_path = tmp_path_factory.mktemp("resume-tear")
        spec = _spec()
        full_path = tmp_path / "full.jsonl"
        full = run_sweep(spec, batch_size=batch_size, store=full_path)
        full_bytes = full_path.read_bytes()

        cut = int(len(full_bytes) * cut_fraction)
        killed_path = tmp_path / "killed.jsonl"
        killed_path.write_bytes(full_bytes[:cut])

        resumed = run_sweep(
            spec, batch_size=batch_size, store=killed_path, resume=True
        )
        assert killed_path.read_bytes() == full_bytes
        assert resumed.chunk_payloads == full.chunk_payloads
        # And a second resume recomputes nothing: the store converged.
        again = run_sweep(
            spec, batch_size=batch_size, store=killed_path, resume=True
        )
        assert again.computed_chunks == 0
        assert killed_path.read_bytes() == full_bytes
