"""Tests for the Milchtaich counterexample machinery (E12 core)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.substrates.milchtaich import (
    WITNESS_TABLES,
    WITNESS_WEIGHTS,
    canonical_counterexample,
    multiplicative_pne_sweep,
    search_no_pne_instance,
)
from repro.substrates.player_specific import PlayerSpecificGame


class TestStoredWitness:
    def test_witness_verifies(self):
        report = canonical_counterexample()
        assert report.verify()

    def test_witness_has_no_pure_nash_exhaustively(self):
        game = canonical_counterexample().game
        assert game.pure_nash_profiles() == []

    def test_every_profile_has_a_strict_defector(self):
        game = canonical_counterexample().game
        from repro.model.social import enumerate_assignments

        for row in enumerate_assignments(3, 3):
            dev = game.deviation_costs(row)
            current = dev[np.arange(3), row]
            assert (dev.min(axis=1) < current - 1e-12).any()

    def test_witness_tables_monotone(self):
        for player_tables in WITNESS_TABLES:
            for link_costs in player_tables:
                assert list(link_costs) == sorted(link_costs)

    def test_witness_weights(self):
        assert WITNESS_WEIGHTS == (1, 2, 3)

    def test_best_response_dynamics_never_converges(self):
        """No PNE means dynamics must run out of budget from any start."""
        game = canonical_counterexample().game
        for start in ([0, 0, 0], [1, 2, 0], [2, 2, 2]):
            _, converged, _ = game.best_response_dynamics(start, max_steps=500)
            assert not converged

    def test_cached(self):
        assert canonical_counterexample() is canonical_counterexample()


class TestConstraintSearch:
    def test_rederives_a_witness(self):
        """The exact search reproduces a no-PNE instance from scratch.

        seed=2 with 6s restarts reaches a satisfying witness selection in
        about 6 restarts (calibrated; the search is exact but restart
        order is luck-sensitive).
        """
        report = search_no_pne_instance(
            time_budget=150.0, restart_budget=6.0, seed=2
        )
        assert report.verify()
        assert report.tries >= 1
        np.testing.assert_array_equal(
            report.game.weights, np.asarray(WITNESS_WEIGHTS)
        )


class TestMultiplicativeSweep:
    def test_all_multiplicative_instances_have_pne(self):
        """The separation: the paper's cost family never loses pure NE."""
        assert multiplicative_pne_sweep(num_instances=120, seed=0) == 120

    def test_deterministic(self):
        a = multiplicative_pne_sweep(num_instances=30, seed=4)
        b = multiplicative_pne_sweep(num_instances=30, seed=4)
        assert a == b

    def test_matches_witness_shape(self):
        """Same weights/links as the witness — only the cost family differs."""
        hits = multiplicative_pne_sweep(
            num_instances=40, weights=WITNESS_WEIGHTS, num_links=3, seed=1
        )
        assert hits == 40
