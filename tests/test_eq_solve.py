"""Tests for the dispatching pure-NE solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.game import UncertainRoutingGame
from repro.equilibria.conditions import is_pure_nash
from repro.equilibria.solve import solve_pure_nash
from repro.generators.games import (
    random_game,
    random_symmetric_game,
    random_two_link_game,
    random_uniform_beliefs_game,
)


class TestDispatch:
    def test_two_links_uses_atwolinks(self):
        game = random_two_link_game(5, seed=0)
        report = solve_pure_nash(game)
        assert report.method == "atwolinks"
        assert is_pure_nash(game, report.profile)

    def test_uniform_beliefs_uses_auniform(self):
        game = random_uniform_beliefs_game(6, 3, seed=1)
        report = solve_pure_nash(game)
        assert report.method == "auniform"
        assert is_pure_nash(game, report.profile)

    def test_symmetric_uses_asymmetric(self):
        game = random_symmetric_game(5, 3, seed=2)
        report = solve_pure_nash(game)
        assert report.method == "asymmetric"
        assert is_pure_nash(game, report.profile)

    def test_general_uses_dynamics(self):
        game = random_game(4, 3, seed=3)
        report = solve_pure_nash(game, seed=0)
        assert report.method.startswith("brd")
        assert is_pure_nash(game, report.profile)

    def test_two_links_beats_other_dispatch(self):
        # m=2 takes precedence even for symmetric users.
        game = random_symmetric_game(4, 2, seed=4)
        report = solve_pure_nash(game)
        assert report.method == "atwolinks"

    def test_symmetric_with_initial_traffic_falls_back(self):
        game = random_symmetric_game(4, 3, seed=5).with_initial_traffic(
            [1.0, 0.0, 0.5]
        )
        report = solve_pure_nash(game, seed=0)
        assert report.method != "asymmetric"
        assert is_pure_nash(game, report.profile)


class TestRobustness:
    @pytest.mark.parametrize("seed", range(20))
    def test_always_finds_equilibrium(self, seed):
        game = random_game(4, 3, seed=seed, with_initial_traffic=seed % 2 == 0)
        report = solve_pure_nash(game, seed=seed)
        assert is_pure_nash(game, report.profile)

    def test_report_unpacking(self):
        game = random_two_link_game(3, seed=7)
        profile, method = solve_pure_nash(game)
        assert method == "atwolinks"
        assert is_pure_nash(game, profile)

    def test_enumeration_fallback(self):
        """With zero restarts the solver goes straight to enumeration."""
        game = random_game(3, 3, seed=9)
        report = solve_pure_nash(game, restarts=0, max_steps=0, seed=0)
        # restarts=0 still attempts one run with max_steps=0 which cannot
        # converge from a random non-NE start; enumeration then kicks in.
        assert report.method in ("enumeration", "brd[round_robin]")
        assert is_pure_nash(game, report.profile)
