"""Lockstep dynamics parity: batched runs must replay the single-game
trajectories exactly — steps, convergence, final profiles and cycle
flags — for every deterministic schedule and both response modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import (
    GameBatch,
    batch_best_response_dynamics,
    batch_better_response_dynamics,
)
from repro.equilibria.best_response import (
    best_response_dynamics,
    better_response_dynamics,
)
from repro.errors import ModelError
from repro.util.rng import stable_seed

SINGLE = {"best": best_response_dynamics, "better": better_response_dynamics}
BATCHED = {"best": batch_best_response_dynamics, "better": batch_better_response_dynamics}


def make_batch(b, n, m, *, with_traffic=False, tag="dyn"):
    seeds = [stable_seed(tag, b, n, m, i) for i in range(b)]
    return GameBatch.from_seeds(seeds, n, m, with_initial_traffic=with_traffic), seeds


class TestLockstepParity:
    @pytest.mark.parametrize("schedule", ["round_robin", "max_regret"])
    @pytest.mark.parametrize("mode", ["best", "better"])
    @pytest.mark.parametrize("b,n,m", [(1, 2, 2), (9, 4, 3), (6, 6, 2)])
    def test_trajectory_parity(self, schedule, mode, b, n, m):
        batch, seeds = make_batch(b, n, m, with_traffic=True)
        result = BATCHED[mode](batch, seeds=seeds, schedule=schedule, max_steps=500)
        for i, s in enumerate(seeds):
            ref = SINGLE[mode](
                batch.game(i), schedule=schedule, max_steps=500, seed=s
            )
            assert result.steps[i] == ref.steps
            assert result.converged[i] == ref.converged
            assert result.cycled[i] == ref.cycled
            assert np.array_equal(result.profiles[i], ref.profile.links)

    def test_explicit_start_parity(self):
        batch, _ = make_batch(5, 3, 3)
        start = np.random.default_rng(0).integers(0, 3, size=(5, 3))
        result = batch_best_response_dynamics(batch, start=start.copy())
        for i in range(5):
            ref = best_response_dynamics(batch.game(i), start=start[i])
            assert result.steps[i] == ref.steps
            assert np.array_equal(result.profiles[i], ref.profile.links)

    def test_converged_profiles_are_nash(self):
        from repro.equilibria.conditions import is_pure_nash

        batch, seeds = make_batch(8, 4, 2)
        result = batch_best_response_dynamics(batch, seeds=seeds)
        assert result.all_converged
        for i in range(8):
            assert is_pure_nash(batch.game(i), result.profiles[i])

    def test_budget_exhaustion_parity(self):
        """max_steps cuts every still-active game at the same count as the
        single-game implementation."""
        batch, seeds = make_batch(6, 5, 3)
        result = batch_best_response_dynamics(batch, seeds=seeds, max_steps=2)
        for i, s in enumerate(seeds):
            ref = best_response_dynamics(batch.game(i), max_steps=2, seed=s)
            assert result.steps[i] == ref.steps
            assert result.converged[i] == ref.converged
            assert np.array_equal(result.profiles[i], ref.profile.links)

    def test_cycle_detection_parity(self):
        """A negative tolerance makes equilibria look improvable, forcing
        the self-loop revisit that exercises the cycle detector in both
        engines identically."""
        batch, seeds = make_batch(7, 3, 3)
        result = batch_best_response_dynamics(
            batch, seeds=seeds, tol=-0.05, max_steps=300
        )
        assert result.cycled.any()
        for i, s in enumerate(seeds):
            ref = best_response_dynamics(
                batch.game(i), tol=-0.05, max_steps=300, seed=s
            )
            assert result.cycled[i] == ref.cycled
            assert result.steps[i] == ref.steps
            assert np.array_equal(result.profiles[i], ref.profile.links)

    def test_detect_cycles_off_runs_to_budget(self):
        batch, seeds = make_batch(3, 3, 3)
        result = batch_best_response_dynamics(
            batch, seeds=seeds, tol=-0.05, max_steps=40, detect_cycles=False
        )
        assert not result.cycled.any()
        assert np.all(result.steps[~result.converged] == 40)


class TestLockstepApi:
    def test_random_schedule_rejected(self):
        batch, seeds = make_batch(2, 2, 2)
        with pytest.raises(ModelError, match="deterministic"):
            batch_best_response_dynamics(batch, seeds=seeds, schedule="random")

    def test_seed_count_mismatch(self):
        batch, _ = make_batch(3, 2, 2)
        with pytest.raises(ModelError):
            batch_best_response_dynamics(batch, seeds=[1, 2])

    def test_bad_start_shape(self):
        batch, _ = make_batch(3, 2, 2)
        with pytest.raises(ModelError):
            batch_best_response_dynamics(batch, start=np.zeros((2, 2), dtype=int))
        with pytest.raises(ModelError):
            batch_best_response_dynamics(
                batch, start=np.full((3, 2), 5, dtype=int)
            )

    def test_shared_seed_start_is_deterministic(self):
        batch, _ = make_batch(4, 3, 2)
        a = batch_best_response_dynamics(batch, seed=11)
        b = batch_best_response_dynamics(batch, seed=11)
        assert np.array_equal(a.profiles, b.profiles)
        assert np.array_equal(a.steps, b.steps)

    def test_result_len(self):
        batch, seeds = make_batch(5, 2, 2)
        assert len(batch_best_response_dynamics(batch, seeds=seeds)) == 5
