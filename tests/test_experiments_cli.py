"""Tests for the experiment registry, quick runners and the CLI."""

from __future__ import annotations

import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment
from repro.cli import build_parser, main
from repro.util.tables import Table


class TestRegistry:
    def test_all_twelve_registered(self):
        assert list(EXPERIMENTS) == [f"E{i}" for i in range(1, 13)]

    def test_get_experiment_case_insensitive(self):
        assert get_experiment("e5") is EXPERIMENTS["E5"][1]

    def test_unknown_raises_with_guidance(self):
        with pytest.raises(KeyError, match="valid ids"):
            get_experiment("E99")


class TestQuickRunners:
    """Every experiment must run and pass in quick mode. These are the
    reproduction's integration tests: a failure here means a paper claim
    no longer holds in the implementation."""

    @pytest.mark.parametrize("experiment_id", list(EXPERIMENTS))
    def test_quick_run_passes(self, experiment_id):
        result = run_experiment(experiment_id, quick=True)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == experiment_id
        assert result.passed, result.render()
        assert result.tables
        for table in result.tables:
            assert isinstance(table, Table)

    def test_render_contains_verdict(self):
        result = run_experiment("E8", quick=True)
        assert "PASS" in result.render()


class TestCli:
    def test_parser_list(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_parser_run(self):
        args = build_parser().parse_args(["run", "E1", "E2", "--quick"])
        assert args.ids == ["E1", "E2"]
        assert args.quick

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E12" in out

    def test_run_command_quick(self, capsys):
        assert main(["run", "E8", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "all experiments passed" in out

    def test_run_requires_ids(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])
