"""Tests for the experiment registry, quick runners and the CLI."""

from __future__ import annotations

import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import (
    EXPERIMENTS,
    UNIVERSAL_OPTIONS,
    get_experiment,
    get_experiment_specs,
    run_experiment,
)
from repro.cli import build_parser, expand_ids, main
from repro.runtime import SweepSpec
from repro.util.tables import Table


class TestRegistry:
    def test_all_thirteen_registered(self):
        assert list(EXPERIMENTS) == [f"E{i}" for i in range(1, 14)]

    def test_get_experiment_case_insensitive(self):
        assert get_experiment("e5") is EXPERIMENTS["E5"][1]

    def test_unknown_raises_with_guidance(self):
        with pytest.raises(KeyError, match="valid ids"):
            get_experiment("E99")

    @pytest.mark.parametrize("experiment_id", list(EXPERIMENTS))
    def test_every_entry_carries_specs(self, experiment_id):
        """The registry's sweep metadata: every experiment declares at
        least one spec whose kernel is a picklable module-level
        callable and whose experiment id matches the registry key."""
        for quick in (True, False):
            specs = get_experiment_specs(experiment_id, quick=quick)
            assert specs, experiment_id
            for spec in specs:
                assert isinstance(spec, SweepSpec)
                assert spec.experiment == experiment_id
                assert spec.cells
                assert spec.total_replications > 0
                # Picklability contract for the process-pool fan-out.
                import pickle

                pickle.loads(pickle.dumps(spec.kernel))

    def test_distinct_labels_within_an_experiment(self):
        """Multi-spec experiments must not share seed labels (store
        keys and streams would collide)."""
        for experiment_id in EXPERIMENTS:
            labels = [
                s.label for s in get_experiment_specs(experiment_id, quick=True)
            ]
            assert len(labels) == len(set(labels))


class TestRunExperimentOptions:
    def test_universal_options_filtered_per_signature(self):
        result = run_experiment("E8", quick=True, jobs=1, batch_size=7)
        assert result.passed

    def test_unknown_option_raises(self):
        """The silent-drop bug: a misspelled option must raise, not
        masquerade as a successful run."""
        with pytest.raises(TypeError, match="unknown option"):
            run_experiment("E8", quick=True, batchsize=3)

    def test_unknown_option_message_names_the_option(self):
        with pytest.raises(TypeError, match="replications"):
            run_experiment("e5", quick=True, replications=9)

    def test_universal_options_stay_universal(self):
        assert UNIVERSAL_OPTIONS == {
            "jobs", "batch_size", "seed", "store", "resume",
        }


class TestQuickRunners:
    """Every experiment must run and pass in quick mode. These are the
    reproduction's integration tests: a failure here means a paper claim
    no longer holds in the implementation."""

    @pytest.mark.parametrize("experiment_id", list(EXPERIMENTS))
    def test_quick_run_passes(self, experiment_id):
        result = run_experiment(experiment_id, quick=True)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == experiment_id
        assert result.passed, result.render()
        assert result.tables
        for table in result.tables:
            assert isinstance(table, Table)

    def test_render_contains_verdict(self):
        result = run_experiment("E8", quick=True)
        assert "PASS" in result.render()


class TestCli:
    def test_parser_list(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_parser_run(self):
        args = build_parser().parse_args(["run", "E1", "E2", "--quick"])
        assert args.ids == ["E1", "E2"]
        assert args.quick

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E13" in out

    def test_run_command_quick(self, capsys):
        assert main(["run", "E8", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "all experiments passed" in out

    def test_run_requires_ids(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_expand_ids_dedupes_preserving_order(self):
        assert expand_ids(["E5", "E5", "e5"]) == ["E5"]
        assert expand_ids(["E5", "E5", "all"]) == (
            ["E5"] + [f"E{i}" for i in range(1, 14) if i != 5]
        )
        assert expand_ids(["e8", "E2", "e8"]) == ["E8", "E2"]

    def test_run_dedupes_ids(self, capsys):
        assert main(["run", "E8", "e8", "E8", "--quick"]) == 0
        out = capsys.readouterr().out
        assert out.count("[E8]") == 1

    def test_seed_flag_changes_results(self):
        base = run_experiment("E5", quick=True)
        seeded = run_experiment("E5", quick=True, seed=123)
        again = run_experiment("E5", quick=True, seed=123)
        assert seeded.passed and again.passed
        assert seeded.details == again.details
        # A different stream family: the BRD step statistics differ
        # (pure-NE existence itself holds for every family).
        assert seeded.details != base.details or seeded.tables[0].render() != base.tables[0].render()

    def test_resume_requires_store(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "E8", "--quick", "--resume"])
        assert "--resume requires --store" in capsys.readouterr().err

    def test_report_resume_requires_store(self, capsys, tmp_path):
        # The same guard must cover the report subcommand — a silently
        # ignored --resume would quietly re-run every experiment.
        with pytest.raises(SystemExit):
            main([
                "report", "-o", str(tmp_path / "out.md"), "--quick", "--resume",
            ])
        assert "--resume requires --store" in capsys.readouterr().err

    def test_run_with_store_and_resume(self, tmp_path, capsys):
        store = tmp_path / "store.jsonl"
        assert main(["run", "E8", "--quick", "--store", str(store)]) == 0
        first = store.read_bytes()
        assert first
        assert main(
            ["run", "E8", "--quick", "--store", str(store), "--resume"]
        ) == 0
        assert store.read_bytes() == first
        out = capsys.readouterr().out
        assert out.count("PASS") >= 2
