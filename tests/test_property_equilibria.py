"""Property-based tests (hypothesis) for equilibrium invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.model.game import UncertainRoutingGame
from repro.equilibria.conditions import is_pure_nash, pure_regrets
from repro.equilibria.fully_mixed import fully_mixed_candidate
from repro.equilibria.two_links import atwolinks, tolerances
from repro.equilibria.uniform import auniform

positive = st.floats(min_value=0.05, max_value=20.0, allow_nan=False)


@st.composite
def two_link_games(draw, max_users: int = 6):
    n = draw(st.integers(2, max_users))
    caps = draw(arrays(np.float64, (n, 2), elements=positive))
    weights = draw(arrays(np.float64, (n,), elements=positive))
    traffic = draw(
        st.one_of(
            st.none(),
            arrays(
                np.float64,
                (2,),
                elements=st.floats(min_value=0.0, max_value=5.0),
            ),
        )
    )
    return UncertainRoutingGame.from_capacities(
        weights, caps, initial_traffic=traffic
    )


@st.composite
def uniform_belief_games(draw, max_users: int = 7, max_links: int = 5):
    n = draw(st.integers(2, max_users))
    m = draw(st.integers(2, max_links))
    per_user = draw(arrays(np.float64, (n,), elements=positive))
    weights = draw(arrays(np.float64, (n,), elements=positive))
    caps = np.repeat(per_user[:, None], m, axis=1)
    return UncertainRoutingGame.from_capacities(weights, caps)


class TestAtwolinksProperties:
    @settings(max_examples=120, deadline=None)
    @given(two_link_games())
    def test_always_returns_pure_nash(self, game):
        """Theorem 3.3 as a universal property over arbitrary instances."""
        assert is_pure_nash(game, atwolinks(game))

    @settings(max_examples=80, deadline=None)
    @given(two_link_games())
    def test_tolerance_balance_equation(self, game):
        alpha = tolerances(game)
        t = game.initial_traffic
        T = game.total_traffic
        for j in (0, 1):
            o = 1 - j
            lhs = (t[j] + alpha[:, j]) / game.capacities[:, j]
            rhs = (t[o] + T - alpha[:, j] + game.weights) / game.capacities[:, o]
            np.testing.assert_allclose(lhs, rhs, rtol=1e-8)


class TestAuniformProperties:
    @settings(max_examples=120, deadline=None)
    @given(uniform_belief_games())
    def test_always_returns_pure_nash(self, game):
        """Theorem 3.6 as a universal property."""
        assert is_pure_nash(game, auniform(game))

    @settings(max_examples=60, deadline=None)
    @given(uniform_belief_games(max_users=5, max_links=3))
    def test_regrets_vanish(self, game):
        profile = auniform(game)
        assert pure_regrets(game, profile).max() <= 1e-9 * max(
            1.0, float(game.total_traffic)
        )


class TestFullyMixedProperties:
    @settings(max_examples=120, deadline=None)
    @given(
        st.integers(2, 5),
        st.integers(2, 4),
        st.integers(0, 100_000),
    )
    def test_candidate_rows_always_sum_to_one(self, n, m, seed):
        rng = np.random.default_rng(seed)
        game = UncertainRoutingGame.from_capacities(
            rng.uniform(0.1, 5.0, size=n), rng.uniform(0.1, 5.0, size=(n, m))
        )
        cand = fully_mixed_candidate(game)
        np.testing.assert_allclose(cand.probabilities.sum(axis=1), 1.0, atol=1e-8)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(2, 5), st.integers(2, 4), st.integers(0, 100_000))
    def test_link_traffic_conservation(self, n, m, seed):
        rng = np.random.default_rng(seed)
        game = UncertainRoutingGame.from_capacities(
            rng.uniform(0.1, 5.0, size=n), rng.uniform(0.1, 5.0, size=(n, m))
        )
        cand = fully_mixed_candidate(game)
        np.testing.assert_allclose(
            cand.link_traffic.sum(), game.total_traffic, rtol=1e-9
        )

    @settings(max_examples=80, deadline=None)
    @given(st.integers(2, 4), st.integers(2, 4), st.integers(0, 100_000))
    def test_interior_candidate_is_nash(self, n, m, seed):
        from repro.equilibria.conditions import is_mixed_nash

        rng = np.random.default_rng(seed)
        game = UncertainRoutingGame.from_capacities(
            rng.uniform(0.5, 2.0, size=n), rng.uniform(0.5, 2.0, size=(n, m))
        )
        cand = fully_mixed_candidate(game)
        if cand.exists:
            assert is_mixed_nash(game, cand.profile(), tol=1e-6)


class TestConjectureProperty:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(2, 4), st.integers(2, 3), st.integers(0, 100_000))
    def test_random_games_have_pure_nash(self, n, m, seed):
        """Conjecture 3.7 as a hypothesis property: exhaustive existence
        on arbitrary reduced forms (not just the generators' families)."""
        from repro.equilibria.enumeration import exists_pure_nash

        rng = np.random.default_rng(seed)
        game = UncertainRoutingGame.from_capacities(
            rng.uniform(0.05, 10.0, size=n), rng.uniform(0.05, 10.0, size=(n, m))
        )
        assert exists_pure_nash(game)
