"""Tests for the error hierarchy and the markdown report generator."""

from __future__ import annotations

import pytest

from repro.errors import (
    AlgorithmDomainError,
    BeliefError,
    ConvergenceError,
    DimensionError,
    ModelError,
    NoEquilibriumError,
    NotFullyMixedError,
    ReproError,
    SolverError,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.report import (
    DEVIATIONS,
    PAPER_CLAIMS,
    ReportRun,
    render_markdown,
    run_all,
)
from repro.util.tables import Table


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            ModelError, DimensionError, BeliefError, AlgorithmDomainError,
            SolverError, NoEquilibriumError, NotFullyMixedError,
            ConvergenceError,
        ):
            assert issubclass(exc, ReproError)

    def test_model_errors_are_value_errors(self):
        assert issubclass(ModelError, ValueError)
        assert issubclass(DimensionError, ModelError)
        assert issubclass(BeliefError, ModelError)

    def test_solver_errors_are_runtime_errors(self):
        assert issubclass(SolverError, RuntimeError)
        assert issubclass(NotFullyMixedError, NoEquilibriumError)
        assert issubclass(ConvergenceError, SolverError)

    def test_catchability(self):
        with pytest.raises(ReproError):
            raise NotFullyMixedError("x")
        with pytest.raises(ValueError):
            raise DimensionError("x")


class TestReport:
    def test_paper_claims_cover_all_experiments(self):
        from repro.experiments.registry import EXPERIMENTS

        assert set(PAPER_CLAIMS) == set(EXPERIMENTS)

    def test_deviations_subset_of_experiments(self):
        from repro.experiments.registry import EXPERIMENTS

        assert set(DEVIATIONS) <= set(EXPERIMENTS)

    def test_run_all_subset(self):
        run = run_all(quick=True, ids=["E8"])
        assert len(run.results) == 1
        assert run.results[0].experiment_id == "E8"
        assert run.all_passed
        assert "E8" in run.elapsed

    def test_render_markdown_structure(self):
        table = Table(["a"], title="t")
        table.add_row([1])
        run = ReportRun(
            results=[
                ExperimentResult(
                    "E6", "demo", passed=True, tables=[table],
                    details={"k": 1},
                )
            ],
            elapsed={"E6": 1.25},
        )
        text = render_markdown(run)
        assert "# EXPERIMENTS" in text
        assert "| E6 | demo | PASS | 1.2 |" in text or "PASS" in text
        assert "```" in text
        assert "Deviation / substitution note" in text  # E6 has one
        assert "k=1" in text

    def test_render_fail_verdict(self):
        run = ReportRun(
            results=[ExperimentResult("E1", "demo", passed=False)],
            elapsed={"E1": 0.1},
        )
        text = render_markdown(run)
        assert "FAIL" in text
        assert not run.all_passed

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        code = main(["report", "-o", str(out), "--quick", "--ids", "E8"])
        assert code == 0
        content = out.read_text()
        assert "E8" in content
        assert "PASS" in content
