"""Differential parity tests: batched PoA engine vs single-game APIs.

For random :class:`GameBatch` stacks, the batched bounds, exhaustive
social optima, equilibrium stacks and worst empirical ratios must match
the per-game ``poa_bound_*`` / ``opt1``/``opt2`` /
``pure_nash_profiles`` / ``empirical_coordination_ratios`` outputs
exactly — the bit-parity contract the E10/E11 campaigns rest on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.poa import (
    empirical_coordination_ratios,
    poa_bound_general,
    poa_bound_uniform,
)
from repro.batch import (
    GameBatch,
    batch_all_pure_latencies,
    batch_empirical_ratios,
    batch_equilibrium_profiles,
    batch_poa_bound_general,
    batch_poa_bound_uniform,
    batch_social_optima,
)
from repro.batch.poa import MAX_EXHAUSTIVE_PROFILES
from repro.equilibria.enumeration import pure_nash_profiles
from repro.equilibria.fully_mixed import fully_mixed_candidate
from repro.errors import ModelError
from repro.model.social import MAX_EXHAUSTIVE_PROFILES as SOCIAL_LIMIT
from repro.model.social import all_pure_costs, opt1, opt2
from repro.util.rng import stable_seed

SHAPES = [(1, 2, 2), (6, 3, 3), (8, 2, 4), (5, 4, 3), (4, 5, 2)]


def make_batch(b, n, m, *, with_traffic=False, uniform=False, tag="poa"):
    seeds = [stable_seed(tag, b, n, m, i) for i in range(b)]
    if uniform:
        return GameBatch.from_seeds_uniform_beliefs(
            seeds, n, m, with_initial_traffic=with_traffic
        )
    return GameBatch.from_seeds(seeds, n, m, with_initial_traffic=with_traffic)


class TestBatchBounds:
    @pytest.mark.parametrize("b,n,m", SHAPES)
    def test_uniform_bound_matches_single_game(self, b, n, m):
        batch = make_batch(b, n, m, uniform=True)
        got = batch_poa_bound_uniform(batch.capacities)
        assert got.shape == (b,)
        for i in range(b):
            assert float(got[i]) == poa_bound_uniform(batch.game(i))

    @pytest.mark.parametrize("b,n,m", SHAPES)
    def test_general_bound_matches_single_game(self, b, n, m):
        batch = make_batch(b, n, m)
        got = batch_poa_bound_general(batch.capacities)
        for i in range(b):
            assert float(got[i]) == poa_bound_general(batch.game(i))

    def test_single_game_is_b1_view(self):
        batch = make_batch(1, 3, 2)
        flat = batch_poa_bound_general(batch.capacities[0])
        assert flat.shape == ()
        assert float(flat) == float(batch_poa_bound_general(batch.capacities)[0])


class TestBatchOptima:
    @pytest.mark.parametrize("b,n,m", SHAPES)
    @pytest.mark.parametrize("with_traffic", [False, True])
    def test_pure_latency_tensor_matches_all_pure_costs(self, b, n, m, with_traffic):
        batch = make_batch(b, n, m, with_traffic=with_traffic)
        sig, lat = batch_all_pure_latencies(batch)
        assert lat.shape == (b, sig.shape[0], n)
        for i in range(b):
            ref_sig, ref_lat = all_pure_costs(batch.game(i))
            assert np.array_equal(sig, ref_sig)
            assert np.array_equal(lat[i], ref_lat)

    @pytest.mark.parametrize("b,n,m", SHAPES)
    def test_optima_match_opt1_opt2(self, b, n, m):
        batch = make_batch(b, n, m, with_traffic=True)
        o1, o2 = batch_social_optima(batch)
        for i in range(b):
            game = batch.game(i)
            assert float(o1[i]) == opt1(game)
            assert float(o2[i]) == opt2(game)

    def test_exhaustive_limit_enforced(self):
        batch = GameBatch(np.ones((1, 2)), np.ones((1, 2, 2000)))
        assert 2000**2 > MAX_EXHAUSTIVE_PROFILES
        with pytest.raises(ModelError):
            batch_social_optima(batch)

    def test_limit_constant_matches_model_layer(self):
        assert MAX_EXHAUSTIVE_PROFILES == SOCIAL_LIMIT


class TestBatchEquilibriumStack:
    @pytest.mark.parametrize("b,n,m", SHAPES)
    def test_pure_nash_set_matches_enumerator(self, b, n, m):
        batch = make_batch(b, n, m, with_traffic=True)
        stack = batch_equilibrium_profiles(batch)
        for i in range(b):
            game = batch.game(i)
            ref_pure = pure_nash_profiles(game)
            assert int(stack.num_pure[i]) == len(ref_pure)
            fm = fully_mixed_candidate(game)
            assert bool(stack.fmne_exists[i]) == fm.exists
            rows = np.flatnonzero(stack.game_index == i)
            mats = stack.probabilities[rows]
            for j, eq in enumerate(ref_pure):
                onehot = np.zeros((n, m))
                onehot[np.arange(n), eq.links] = 1.0
                assert np.array_equal(mats[j], onehot)
            if fm.exists:
                assert np.array_equal(mats[-1], fm.profile().matrix)

    def test_counts_are_consistent(self):
        batch = make_batch(12, 3, 3)
        stack = batch_equilibrium_profiles(batch)
        assert np.array_equal(
            stack.num_equilibria,
            np.bincount(stack.game_index, minlength=len(batch)),
        )
        assert np.all(np.diff(stack.game_index) >= 0)  # grouped by game

    def test_exhaustive_limit_enforced(self):
        batch = GameBatch(np.ones((1, 2)), np.ones((1, 2, 2000)))
        with pytest.raises(ModelError):
            batch_equilibrium_profiles(batch)


class TestBatchEmpiricalRatios:
    @pytest.mark.parametrize("b,n,m", SHAPES)
    @pytest.mark.parametrize("uniform", [False, True])
    def test_ratios_match_single_game(self, b, n, m, uniform):
        batch = make_batch(b, n, m, uniform=uniform)
        result = batch_empirical_ratios(batch)
        for i in range(b):
            r1, r2 = empirical_coordination_ratios(batch.game(i))
            assert float(result.ratio_sc1[i]) == r1
            assert float(result.ratio_sc2[i]) == r2

    def test_num_equilibria_counts_fmne(self):
        batch = make_batch(10, 3, 2)
        result = batch_empirical_ratios(batch)
        stack = batch_equilibrium_profiles(batch)
        assert np.array_equal(
            result.num_equilibria,
            stack.num_pure + stack.fmne_exists.astype(np.int64),
        )

    def test_explicit_equilibria_path_matches_default(self):
        """The single-game API's two paths (batched default vs explicit
        equilibrium list) must agree exactly."""
        batch = make_batch(5, 3, 3, tag="poa-exp")
        for i in range(5):
            game = batch.game(i)
            eqs = list(pure_nash_profiles(game))
            fm = fully_mixed_candidate(game)
            if fm.exists:
                eqs.append(fm.profile())
            assert empirical_coordination_ratios(game) == (
                empirical_coordination_ratios(game, eqs)
            )

    def test_no_equilibria_raises(self):
        game = make_batch(1, 2, 2).game(0)
        with pytest.raises(ValueError):
            empirical_coordination_ratios(game, [])
