"""Tests for repro.model.profiles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DimensionError, ModelError
from repro.model.profiles import (
    MixedProfile,
    PureProfile,
    as_assignment,
    as_mixed_matrix,
    loads_of,
    profile_from_support_sets,
    pure_to_mixed,
)


class TestPureProfile:
    def test_basic(self):
        p = PureProfile([0, 1, 0], 2)
        assert p.num_users == 3
        assert p.link_of(1) == 1

    def test_rejects_out_of_range(self):
        with pytest.raises(ModelError):
            PureProfile([0, 2], 2)

    def test_rejects_negative(self):
        with pytest.raises(ModelError):
            PureProfile([0, -1], 2)

    def test_rejects_matrix(self):
        with pytest.raises(DimensionError):
            PureProfile([[0, 1]], 2)

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            PureProfile([], 2)

    def test_does_not_freeze_caller_array(self):
        src = np.array([0, 1], dtype=np.intp)
        PureProfile(src, 2)
        src[0] = 1  # must still be writable

    def test_with_move(self):
        p = PureProfile([0, 0], 2)
        q = p.with_move(1, 1, 2)
        assert q.as_tuple() == (0, 1)
        assert p.as_tuple() == (0, 0)

    def test_users_on(self):
        p = PureProfile([0, 1, 0], 2)
        np.testing.assert_array_equal(p.users_on(0), [0, 2])
        np.testing.assert_array_equal(p.users_on(1), [1])

    def test_equality_hash(self):
        assert PureProfile([0, 1], 2) == PureProfile([0, 1], 2)
        assert hash(PureProfile([0, 1], 2)) == hash(PureProfile([0, 1], 2))
        assert PureProfile([0, 1], 2) != PureProfile([1, 0], 2)

    def test_iter_and_len(self):
        p = PureProfile([1, 0, 1], 2)
        assert list(p) == [1, 0, 1]
        assert len(p) == 3

    def test_links_read_only(self):
        p = PureProfile([0, 1], 2)
        with pytest.raises(ValueError):
            p.links[0] = 1


class TestMixedProfile:
    def test_basic(self):
        m = MixedProfile([[0.5, 0.5], [1.0, 0.0]])
        assert m.num_users == 2
        assert m.num_links == 2

    def test_rejects_bad_rows(self):
        with pytest.raises(Exception):
            MixedProfile([[0.5, 0.6]])

    def test_support_of(self):
        m = MixedProfile([[0.5, 0.5, 0.0]])
        np.testing.assert_array_equal(m.support_of(0), [0, 1])

    def test_is_fully_mixed(self):
        assert MixedProfile([[0.5, 0.5], [0.3, 0.7]]).is_fully_mixed()
        assert not MixedProfile([[1.0, 0.0], [0.3, 0.7]]).is_fully_mixed()

    def test_is_pure_and_to_pure(self):
        m = MixedProfile([[1.0, 0.0], [0.0, 1.0]])
        assert m.is_pure()
        assert m.to_pure().as_tuple() == (0, 1)

    def test_to_pure_rejects_mixed(self):
        with pytest.raises(ModelError):
            MixedProfile([[0.5, 0.5]]).to_pure()

    def test_equality(self):
        assert MixedProfile([[0.5, 0.5]]) == MixedProfile([[0.5, 0.5]])

    def test_matrix_read_only(self):
        m = MixedProfile([[0.5, 0.5]])
        with pytest.raises(ValueError):
            m.matrix[0, 0] = 1.0


class TestNormalisers:
    def test_as_assignment_from_profile(self):
        arr = as_assignment(PureProfile([0, 1], 2), 2, 2)
        np.testing.assert_array_equal(arr, [0, 1])

    def test_as_assignment_from_list(self):
        arr = as_assignment([1, 0], 2, 2)
        assert arr.dtype == np.intp

    def test_as_assignment_wrong_users(self):
        with pytest.raises(DimensionError):
            as_assignment([0, 1, 0], 2, 2)

    def test_as_assignment_bad_link(self):
        with pytest.raises(ModelError):
            as_assignment([0, 5], 2, 2)

    def test_as_mixed_matrix_shape_check(self):
        with pytest.raises(DimensionError):
            as_mixed_matrix(MixedProfile([[0.5, 0.5]]), 2, 2)


class TestLoads:
    def test_loads_of(self):
        sigma = np.array([0, 1, 0], dtype=np.intp)
        w = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(loads_of(sigma, w, 2), [4.0, 2.0])

    def test_loads_with_initial_traffic(self):
        sigma = np.array([0, 0], dtype=np.intp)
        w = np.array([1.0, 1.0])
        t = np.array([5.0, 7.0])
        np.testing.assert_allclose(loads_of(sigma, w, 2, t), [7.0, 7.0])

    def test_loads_cover_empty_links(self):
        sigma = np.array([0, 0], dtype=np.intp)
        w = np.array([1.0, 1.0])
        loads = loads_of(sigma, w, 3)
        np.testing.assert_allclose(loads, [2.0, 0.0, 0.0])


class TestConversions:
    def test_pure_to_mixed_one_hot(self):
        m = pure_to_mixed([1, 0], 2, 2)
        np.testing.assert_array_equal(m.matrix, [[0.0, 1.0], [1.0, 0.0]])

    def test_profile_from_support_sets(self):
        m = profile_from_support_sets(
            [(0, 1), (2,)], [[0.25, 0.75], [1.0]], 3
        )
        np.testing.assert_allclose(m.matrix[0], [0.25, 0.75, 0.0])
        np.testing.assert_allclose(m.matrix[1], [0.0, 0.0, 1.0])

    def test_profile_from_support_sets_mismatch(self):
        with pytest.raises(DimensionError):
            profile_from_support_sets([(0,)], [[0.5], [0.5]], 2)

    def test_profile_from_support_probability_mismatch(self):
        with pytest.raises(DimensionError):
            profile_from_support_sets([(0, 1)], [[1.0]], 2)
