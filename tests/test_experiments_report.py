"""Round-trip coverage for the EXPERIMENTS.md report pipeline.

Runs the real ``report`` command end to end in quick mode and asserts
the generated document is complete: every registry id has its section,
the summary table covers all experiments, and the overall verdict line
is present. A second test pins the store/resume path through the report
command.
"""

from __future__ import annotations

from repro.cli import main
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.report import PAPER_CLAIMS, render_markdown, run_all


class TestReportRoundTrip:
    def test_quick_report_covers_every_experiment(self, tmp_path, capsys):
        out = tmp_path / "EXPERIMENTS.md"
        rc = main(["report", "-o", str(out), "--quick"])
        assert rc == 0
        text = out.read_text()
        for experiment_id in EXPERIMENTS:
            assert f"## {experiment_id} — " in text, experiment_id
            assert f"| {experiment_id} |" in text  # summary table row
        assert "**Overall verdict:** ALL PASS (13/13 experiments)." in text
        assert "(quick mode)" in text
        stdout = capsys.readouterr().out
        assert "all passed" in stdout

    def test_report_subset_with_store_resume(self, tmp_path):
        out = tmp_path / "R.md"
        store = tmp_path / "store.jsonl"
        rc = main(
            ["report", "-o", str(out), "--quick", "--ids", "E8", "e8",
             "--store", str(store)]
        )
        assert rc == 0
        first = store.read_bytes()
        assert first  # chunks were checkpointed
        text = out.read_text()
        assert "## E8 — " in text
        assert "## E7 — " not in text  # duplicate ids collapsed to one run
        # Resuming recomputes nothing and leaves the store untouched.
        rc = main(
            ["report", "-o", str(out), "--quick", "--ids", "E8",
             "--store", str(store), "--resume"]
        )
        assert rc == 0
        assert store.read_bytes() == first


class TestRenderMarkdown:
    def test_failure_renders_failures_present(self, tmp_path):
        run = run_all(quick=True, ids=["E8"])
        run.results[0].passed = False
        text = render_markdown(run, quick=True)
        assert "**Overall verdict:** FAILURES PRESENT (0/1 experiments)." in text
        assert "FAIL" in text

    def test_every_registry_id_has_a_claim(self):
        assert set(PAPER_CLAIMS) == set(EXPERIMENTS)
