"""Tests for nashification (Feldmann et al. [4], adapted)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AlgorithmDomainError
from repro.model.game import UncertainRoutingGame
from repro.equilibria.conditions import is_pure_nash
from repro.equilibria.nashify import nashify, nashify_common_beliefs
from repro.generators.games import random_game, random_kp_game
from repro.util.rng import as_generator


class TestCommonBeliefs:
    @pytest.mark.parametrize("seed", range(12))
    def test_returns_pure_nash(self, seed):
        game = random_kp_game(6, 3, seed=seed)
        rng = as_generator(seed)
        start = rng.integers(0, 3, size=6)
        result = nashify_common_beliefs(game, start)
        assert is_pure_nash(game, result.profile)

    @pytest.mark.parametrize("seed", range(12))
    def test_never_increases_max_congestion(self, seed):
        """The classic guarantee: objective congestion only improves."""
        game = random_kp_game(6, 3, seed=100 + seed)
        rng = as_generator(seed)
        start = rng.integers(0, 3, size=6)
        result = nashify_common_beliefs(game, start)
        assert result.preserved_max_congestion
        assert result.max_congestion_after <= result.max_congestion_before + 1e-12

    def test_already_nash_zero_steps(self):
        game = random_kp_game(5, 2, seed=0)
        from repro.substrates.kp import kp_greedy_nash

        equilibrium = kp_greedy_nash(game)
        result = nashify_common_beliefs(game, equilibrium)
        assert result.steps == 0
        assert result.profile == equilibrium

    def test_rejects_distinct_beliefs(self, simple_game):
        with pytest.raises(AlgorithmDomainError):
            nashify_common_beliefs(simple_game, [0, 1])

    def test_worst_start_improves(self):
        """All users piled on the slowest link must spread out."""
        game = UncertainRoutingGame.kp([1.0, 1.0, 1.0, 1.0], [4.0, 1.0])
        result = nashify_common_beliefs(game, [1, 1, 1, 1])
        assert result.max_congestion_after < result.max_congestion_before
        assert is_pure_nash(game, result.profile)


class TestGeneralNashify:
    @pytest.mark.parametrize("seed", range(10))
    def test_returns_pure_nash(self, seed):
        game = random_game(5, 3, seed=seed)
        rng = as_generator(seed)
        start = rng.integers(0, 3, size=5)
        result = nashify(game, start)
        assert is_pure_nash(game, result.profile)

    def test_records_costs(self):
        game = random_game(4, 3, seed=3)
        result = nashify(game, [0, 0, 0, 0])
        assert result.sc1_before > 0 and result.sc1_after > 0
        assert result.sc2_before > 0 and result.sc2_after > 0
        assert result.steps >= 0

    def test_congestion_guarantee_usually_but_not_always(self):
        """Without common beliefs the Feldmann-style guarantee is not a
        theorem; we only require the field to be populated."""
        game = random_game(4, 3, seed=11)
        result = nashify(game, [0, 1, 2, 0])
        assert result.max_congestion_after > 0
