"""Tests for nashification (Feldmann et al. [4], adapted)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch.container import GameBatch
from repro.batch.pure import batch_nashify_common_beliefs
from repro.errors import AlgorithmDomainError, ConvergenceError
from repro.model.game import UncertainRoutingGame
from repro.equilibria.conditions import is_pure_nash
from repro.equilibria.nashify import nashify, nashify_common_beliefs
from repro.generators.games import random_game, random_kp_game
from repro.util.rng import as_generator


class TestCommonBeliefs:
    @pytest.mark.parametrize("seed", range(12))
    def test_returns_pure_nash(self, seed):
        game = random_kp_game(6, 3, seed=seed)
        rng = as_generator(seed)
        start = rng.integers(0, 3, size=6)
        result = nashify_common_beliefs(game, start)
        assert is_pure_nash(game, result.profile)

    @pytest.mark.parametrize("seed", range(12))
    def test_never_increases_max_congestion(self, seed):
        """The classic guarantee: objective congestion only improves."""
        game = random_kp_game(6, 3, seed=100 + seed)
        rng = as_generator(seed)
        start = rng.integers(0, 3, size=6)
        result = nashify_common_beliefs(game, start)
        assert result.preserved_max_congestion
        assert result.max_congestion_after <= result.max_congestion_before + 1e-12

    def test_already_nash_zero_steps(self):
        game = random_kp_game(5, 2, seed=0)
        from repro.substrates.kp import kp_greedy_nash

        equilibrium = kp_greedy_nash(game)
        result = nashify_common_beliefs(game, equilibrium)
        assert result.steps == 0
        assert result.profile == equilibrium

    def test_rejects_distinct_beliefs(self, simple_game):
        with pytest.raises(AlgorithmDomainError):
            nashify_common_beliefs(simple_game, [0, 1])

    def test_worst_start_improves(self):
        """All users piled on the slowest link must spread out."""
        game = UncertainRoutingGame.kp([1.0, 1.0, 1.0, 1.0], [4.0, 1.0])
        result = nashify_common_beliefs(game, [1, 1, 1, 1])
        assert result.max_congestion_after < result.max_congestion_before
        assert is_pure_nash(game, result.profile)


class TestEdgeCases:
    def test_already_nash_start_zero_steps_everywhere(self):
        """An equilibrium start must be returned untouched — single game
        and whole stacks alike — with identical before/after records."""
        from repro.substrates.kp import kp_greedy_nash

        games = [random_kp_game(5, 3, seed=200 + s) for s in range(6)]
        starts = np.stack(
            [np.asarray(kp_greedy_nash(g).links) for g in games]
        )
        result = batch_nashify_common_beliefs(GameBatch.from_games(games), starts)
        assert np.all(result.steps == 0)
        assert np.array_equal(result.profiles, starts)
        assert np.array_equal(result.sc1_before, result.sc1_after)
        assert np.array_equal(result.sc2_before, result.sc2_after)
        assert np.array_equal(
            result.max_congestion_before, result.max_congestion_after
        )

    def test_minimal_two_user_two_link_game(self):
        """The smallest legal instance: both users piled on one link of a
        lopsided network must split."""
        game = UncertainRoutingGame.kp([1.0, 1.0], [10.0, 0.1])
        result = nashify_common_beliefs(game, [1, 1])
        assert is_pure_nash(game, result.profile)
        assert result.preserved_max_congestion
        # The fast link must carry at least one user afterwards.
        assert 0 in list(result.profile.links)

    def test_tiny_step_cap_raises_convergence_error(self):
        """A start needing more moves than the cap must raise — never
        silently return a non-equilibrium."""
        game = UncertainRoutingGame.kp(
            [1.0, 1.0, 1.0, 1.0, 1.0], [4.0, 2.0, 1.0]
        )
        with pytest.raises(ConvergenceError):
            nashify_common_beliefs(game, [2, 2, 2, 2, 2], max_steps=1)
        with pytest.raises(ConvergenceError):
            nashify(game, [2, 2, 2, 2, 2], max_steps=1)

    def test_tiny_step_cap_raises_for_stacks(self):
        """The lockstep engine applies the same per-game budget: one
        unconverged slice fails the whole call loudly."""
        seeds = list(range(4))
        batch = GameBatch.from_seeds_kp(seeds, 6, 3)
        starts = np.full((4, 6), 2, dtype=np.intp)
        with pytest.raises(ConvergenceError):
            batch_nashify_common_beliefs(batch, starts, max_steps=1)

    def test_exact_budget_still_requires_equilibrium_check(self):
        """Converging on the very last allowed move still raises, because
        the mover-free check never ran — the sequential loop's exact
        budget semantics, preserved by the batch engine."""
        game = UncertainRoutingGame.kp([1.0, 1.0], [10.0, 0.1])
        needed = nashify_common_beliefs(game, [1, 1]).steps
        assert needed > 0
        with pytest.raises(ConvergenceError):
            nashify_common_beliefs(game, [1, 1], max_steps=needed)
        # One extra step of headroom admits the convergence check.
        ok = nashify_common_beliefs(game, [1, 1], max_steps=needed + 1)
        assert ok.steps == needed


class TestGeneralNashify:
    @pytest.mark.parametrize("seed", range(10))
    def test_returns_pure_nash(self, seed):
        game = random_game(5, 3, seed=seed)
        rng = as_generator(seed)
        start = rng.integers(0, 3, size=5)
        result = nashify(game, start)
        assert is_pure_nash(game, result.profile)

    def test_records_costs(self):
        game = random_game(4, 3, seed=3)
        result = nashify(game, [0, 0, 0, 0])
        assert result.sc1_before > 0 and result.sc1_after > 0
        assert result.sc2_before > 0 and result.sc2_after > 0
        assert result.steps >= 0

    def test_congestion_guarantee_usually_but_not_always(self):
        """Without common beliefs the Feldmann-style guarantee is not a
        theorem; we only require the field to be populated."""
        game = random_game(4, 3, seed=11)
        result = nashify(game, [0, 1, 2, 0])
        assert result.max_congestion_after > 0
