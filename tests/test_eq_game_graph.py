"""Tests for game graphs (best-/better-response edge structure)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.game import UncertainRoutingGame
from repro.equilibria.enumeration import pure_nash_profiles
from repro.equilibria.game_graph import (
    best_response_graph,
    better_response_graph,
    find_response_cycle,
    sink_states,
)
from repro.generators.games import random_game


class TestGraphStructure:
    def test_node_count(self, three_user_game):
        graph = better_response_graph(three_user_game)
        assert graph.number_of_nodes() == 27

    def test_best_edges_subset_of_better(self, three_user_game):
        best = best_response_graph(three_user_game)
        better = better_response_graph(three_user_game)
        assert set(best.edges) <= set(better.edges)

    def test_edges_are_unilateral_moves(self, three_user_game):
        graph = better_response_graph(three_user_game)
        for u, v in graph.edges:
            assert sum(a != b for a, b in zip(u, v)) == 1

    def test_edges_strictly_improve(self, three_user_game):
        from repro.model.latency import pure_latency_of_user

        graph = better_response_graph(three_user_game)
        for u, v, data in graph.edges(data=True):
            mover = data["user"]
            before = pure_latency_of_user(three_user_game, list(u), mover)
            after = pure_latency_of_user(three_user_game, list(v), mover)
            assert after < before

    def test_best_response_edges_reach_row_minimum(self, three_user_game):
        from repro.model.latency import deviation_latencies

        graph = best_response_graph(three_user_game)
        for u, v, data in graph.edges(data=True):
            mover = data["user"]
            dev = deviation_latencies(three_user_game, list(u))
            assert dev[mover, v[mover]] == pytest.approx(dev[mover].min())

    def test_limit_enforced(self):
        big = UncertainRoutingGame.from_capacities(np.ones(20), np.ones((20, 3)))
        with pytest.raises(ModelError):
            better_response_graph(big)


class TestSinks:
    def test_sinks_are_exactly_pure_nash(self):
        for seed in range(10):
            game = random_game(3, 3, seed=seed)
            graph = better_response_graph(game)
            sinks = {p.as_tuple() for p in sink_states(graph)}
            nash = {p.as_tuple() for p in pure_nash_profiles(game)}
            assert sinks == nash

    def test_best_response_sinks_match_too(self):
        game = random_game(3, 2, seed=3)
        graph = best_response_graph(game)
        sinks = {p.as_tuple() for p in sink_states(graph)}
        nash = {p.as_tuple() for p in pure_nash_profiles(game)}
        assert sinks == nash


class TestCycles:
    def test_find_cycle_none_on_dag(self):
        dag = nx.DiGraph([(0, 1), (1, 2)])
        assert find_response_cycle(dag) is None

    def test_find_cycle_detects(self):
        cyc = nx.DiGraph([(0, 1), (1, 2), (2, 0)])
        cycle = find_response_cycle(cyc)
        assert cycle is not None
        assert cycle[0] == cycle[-1]

    def test_sampled_instances_have_acyclic_best_response_graphs(self):
        """The n=3 existence proof rests on no best-response cycles; random
        instances agree."""
        for seed in range(15):
            game = random_game(3, 3, seed=seed)
            graph = best_response_graph(game)
            assert find_response_cycle(graph) is None

    def test_every_state_reaches_a_sink(self):
        """With an acyclic response graph every trajectory ends at a NE."""
        game = random_game(3, 2, seed=8)
        graph = best_response_graph(game)
        sinks = {p.as_tuple() for p in sink_states(graph)}
        for node in graph.nodes:
            reachable = nx.descendants(graph, node) | {node}
            assert reachable & sinks
