"""Tests for repro.equilibria.conditions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.game import UncertainRoutingGame
from repro.model.profiles import MixedProfile, pure_to_mixed
from repro.equilibria.conditions import (
    deviation_gains,
    epsilon_of_profile,
    is_mixed_nash,
    is_pure_nash,
    mixed_regrets,
    pure_regrets,
)
from repro.equilibria.fully_mixed import fully_mixed_candidate
from repro.generators.games import random_game


@pytest.fixture
def identical_game() -> UncertainRoutingGame:
    """Two identical users, two identical links — split profiles are NE."""
    return UncertainRoutingGame.from_capacities(
        [1.0, 1.0], [[1.0, 1.0], [1.0, 1.0]]
    )


class TestPureNash:
    def test_split_is_nash(self, identical_game):
        assert is_pure_nash(identical_game, [0, 1])
        assert is_pure_nash(identical_game, [1, 0])

    def test_colocated_is_not_nash(self, identical_game):
        assert not is_pure_nash(identical_game, [0, 0])
        assert not is_pure_nash(identical_game, [1, 1])

    def test_regrets_zero_at_nash(self, identical_game):
        np.testing.assert_allclose(pure_regrets(identical_game, [0, 1]), 0.0)

    def test_regret_positive_off_nash(self, identical_game):
        regrets = pure_regrets(identical_game, [0, 0])
        assert regrets.max() > 0
        # Moving to the empty link halves latency from 2 to 1.
        np.testing.assert_allclose(regrets, [1.0, 1.0])

    def test_deviation_gains_diagonal_zero(self, three_user_game):
        sigma = np.array([0, 1, 2], dtype=np.intp)
        gains = deviation_gains(three_user_game, sigma)
        np.testing.assert_allclose(gains[np.arange(3), sigma], 0.0, atol=1e-12)

    def test_gain_sign_matches_regret(self, three_user_game):
        sigma = [0, 0, 0]
        gains = deviation_gains(three_user_game, sigma)
        regrets = pure_regrets(three_user_game, sigma)
        for i in range(3):
            assert regrets[i] == pytest.approx(max(0.0, -gains[i].min()))

    def test_tolerance_accepts_near_ties(self, identical_game):
        # A user indifferent between links must not be flagged as defector.
        game = UncertainRoutingGame.from_capacities(
            [1.0, 1.0], [[1.0, 1.0], [1.0, 1.0]], initial_traffic=[1.0, 0.0]
        )
        # user 0 on link 1 (load 2: t=1? no); craft exact tie:
        # sigma=[1,0]: user0 sees load 1 on link1 => 1; moving to link0 sees 1+1+...
        assert is_pure_nash(identical_game, [0, 1])


class TestMixedNash:
    def test_uniform_mix_on_identical_game(self, identical_game):
        p = MixedProfile([[0.5, 0.5], [0.5, 0.5]])
        assert is_mixed_nash(identical_game, p)
        np.testing.assert_allclose(mixed_regrets(identical_game, p), 0.0)

    def test_pure_embedding_agrees_with_pure_check(self, three_user_game):
        from repro.equilibria.enumeration import pure_nash_profiles

        for profile in pure_nash_profiles(three_user_game):
            mixed = pure_to_mixed(profile, 3, 3)
            assert is_mixed_nash(three_user_game, mixed)

    def test_non_nash_mixed_detected(self, simple_game):
        # An arbitrary interior point is almost surely not an equilibrium.
        p = MixedProfile([[0.9, 0.1], [0.9, 0.1]])
        fm = fully_mixed_candidate(simple_game)
        if fm.exists and np.allclose(fm.probabilities, p.matrix):
            pytest.skip("degenerate coincidence")
        assert not is_mixed_nash(simple_game, p) or mixed_regrets(
            simple_game, p
        ).max() < 1e-9

    def test_fmne_candidate_is_mixed_nash_when_interior(self):
        hits = 0
        for seed in range(30):
            game = random_game(3, 3, concentration=5.0, seed=seed)
            cand = fully_mixed_candidate(game)
            if cand.exists:
                hits += 1
                assert is_mixed_nash(game, cand.profile(), tol=1e-7)
        assert hits > 0  # the sweep must actually exercise the check

    def test_regret_detects_support_violation(self, identical_game):
        # User 1 pure on the slow link while the fast link is lighter:
        # its single support link is strictly suboptimal.
        game = UncertainRoutingGame.from_capacities(
            [1.0, 1.0], [[2.0, 1.0], [2.0, 1.0]]
        )
        p = MixedProfile([[0.5, 0.5], [0.0, 1.0]])
        assert mixed_regrets(game, p)[1] > 0


class TestEpsilon:
    def test_zero_at_pure_nash(self, identical_game):
        assert epsilon_of_profile(identical_game, [0, 1]) == pytest.approx(0.0)

    def test_positive_off_nash(self, identical_game):
        assert epsilon_of_profile(identical_game, [0, 0]) > 0

    def test_mixed_profile_accepted(self, identical_game):
        p = MixedProfile([[0.5, 0.5], [0.5, 0.5]])
        assert epsilon_of_profile(identical_game, p) == pytest.approx(0.0)
