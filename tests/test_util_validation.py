"""Tests for repro.util.validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import BeliefError, DimensionError, ModelError
from repro.util.validation import (
    check_positive_array,
    check_probability_matrix,
    check_probability_vector,
    check_shape,
)


class TestCheckPositiveArray:
    def test_accepts_positive(self):
        out = check_positive_array([1.0, 2.0], name="w")
        np.testing.assert_array_equal(out, [1.0, 2.0])

    def test_output_is_float64_contiguous(self):
        out = check_positive_array([[1, 2], [3, 4]], name="c")
        assert out.dtype == np.float64
        assert out.flags.c_contiguous

    def test_copies_input(self):
        src = np.array([1.0, 2.0])
        out = check_positive_array(src, name="w")
        out_addr = out.__array_interface__["data"][0]
        src_addr = src.__array_interface__["data"][0]
        assert out_addr != src_addr

    def test_rejects_zero(self):
        with pytest.raises(ModelError, match="strictly positive"):
            check_positive_array([1.0, 0.0], name="w")

    def test_rejects_negative(self):
        with pytest.raises(ModelError):
            check_positive_array([-1.0], name="w")

    def test_rejects_nan(self):
        with pytest.raises(ModelError, match="non-finite"):
            check_positive_array([1.0, np.nan], name="w")

    def test_rejects_inf(self):
        with pytest.raises(ModelError, match="non-finite"):
            check_positive_array([np.inf], name="w")

    def test_rejects_empty(self):
        with pytest.raises(ModelError, match="non-empty"):
            check_positive_array([], name="w")

    def test_ndim_enforced(self):
        with pytest.raises(DimensionError):
            check_positive_array([1.0, 2.0], name="w", ndim=2)

    def test_error_message_includes_name(self):
        with pytest.raises(ModelError, match="traffic"):
            check_positive_array([0.0], name="traffic")


class TestCheckProbabilityVector:
    def test_accepts_distribution(self):
        out = check_probability_vector([0.25, 0.75], name="b")
        np.testing.assert_allclose(out, [0.25, 0.75])

    def test_renormalises_tiny_drift(self):
        out = check_probability_vector([0.5 + 1e-12, 0.5], name="b")
        assert out.sum() == pytest.approx(1.0, abs=1e-15)

    def test_rejects_bad_sum(self):
        with pytest.raises(BeliefError, match="sum to 1"):
            check_probability_vector([0.5, 0.6], name="b")

    def test_rejects_negative(self):
        with pytest.raises(BeliefError, match="negative"):
            check_probability_vector([1.2, -0.2], name="b")

    def test_rejects_matrix(self):
        with pytest.raises(DimensionError):
            check_probability_vector([[0.5, 0.5]], name="b")

    def test_rejects_empty(self):
        with pytest.raises(BeliefError):
            check_probability_vector([], name="b")

    def test_rejects_nan(self):
        with pytest.raises(BeliefError):
            check_probability_vector([np.nan, 1.0], name="b")

    def test_point_mass_ok(self):
        out = check_probability_vector([0.0, 1.0, 0.0], name="b")
        np.testing.assert_array_equal(out, [0.0, 1.0, 0.0])


class TestCheckProbabilityMatrix:
    def test_accepts_row_stochastic(self):
        out = check_probability_matrix([[0.5, 0.5], [1.0, 0.0]], name="P")
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_rejects_bad_row(self):
        with pytest.raises(BeliefError, match="row 1"):
            check_probability_matrix([[0.5, 0.5], [0.7, 0.5]], name="P")

    def test_rejects_vector(self):
        with pytest.raises(DimensionError):
            check_probability_matrix([0.5, 0.5], name="P")

    def test_rejects_negative_entry(self):
        with pytest.raises(BeliefError):
            check_probability_matrix([[1.5, -0.5]], name="P")

    def test_rejects_nan(self):
        with pytest.raises(BeliefError):
            check_probability_matrix([[np.nan, 1.0]], name="P")


class TestCheckShape:
    def test_accepts_exact(self):
        arr = np.zeros((2, 3))
        assert check_shape(arr, (2, 3), name="x") is arr

    def test_rejects_mismatch(self):
        with pytest.raises(DimensionError, match="shape"):
            check_shape(np.zeros(3), (2,), name="x")
