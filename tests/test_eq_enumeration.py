"""Tests for exhaustive pure-NE enumeration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.game import UncertainRoutingGame
from repro.model.social import enumerate_assignments
from repro.equilibria.conditions import is_pure_nash
from repro.equilibria.enumeration import (
    count_pure_nash,
    exists_pure_nash,
    pure_nash_mask,
    pure_nash_profiles,
)
from repro.generators.games import random_game


class TestPureNashMask:
    def test_agrees_with_scalar_check(self):
        game = random_game(4, 3, seed=0)
        assignments = enumerate_assignments(4, 3)
        mask = pure_nash_mask(game, assignments)
        for idx in range(assignments.shape[0]):
            assert mask[idx] == is_pure_nash(game, assignments[idx])

    def test_agrees_with_initial_traffic(self):
        game = random_game(3, 3, with_initial_traffic=True, seed=5)
        assignments = enumerate_assignments(3, 3)
        mask = pure_nash_mask(game, assignments)
        for idx in range(assignments.shape[0]):
            assert mask[idx] == is_pure_nash(game, assignments[idx])

    def test_block_size_invariance(self):
        game = random_game(4, 3, seed=1)
        assignments = enumerate_assignments(4, 3)
        a = pure_nash_mask(game, assignments, block_size=7)
        b = pure_nash_mask(game, assignments, block_size=100_000)
        np.testing.assert_array_equal(a, b)

    def test_rejects_wrong_width(self):
        game = random_game(3, 2, seed=0)
        with pytest.raises(ModelError):
            pure_nash_mask(game, np.zeros((4, 5), dtype=np.intp))


class TestEnumeration:
    def test_profiles_are_nash(self):
        game = random_game(3, 3, seed=2)
        for profile in pure_nash_profiles(game):
            assert is_pure_nash(game, profile)

    def test_count_matches_profiles(self):
        game = random_game(3, 3, seed=3)
        assert count_pure_nash(game) == len(pure_nash_profiles(game))

    def test_exists_consistent(self):
        game = random_game(3, 3, seed=4)
        assert exists_pure_nash(game) == (count_pure_nash(game) > 0)

    def test_identical_two_user_game_has_two_split_equilibria(self):
        game = UncertainRoutingGame.from_capacities(
            [1.0, 1.0], [[1.0, 1.0], [1.0, 1.0]]
        )
        profiles = {p.as_tuple() for p in pure_nash_profiles(game)}
        assert profiles == {(0, 1), (1, 0)}

    def test_every_sampled_game_has_a_pure_nash(self):
        """Conjecture 3.7 in miniature — the library-level regression."""
        for seed in range(40):
            game = random_game(3, 3, seed=seed)
            assert exists_pure_nash(game), f"counterexample at seed {seed}?!"

    def test_limit_enforced(self):
        game = random_game(2, 2, seed=0)
        big = UncertainRoutingGame.from_capacities(
            np.ones(22), np.ones((22, 4))
        )
        with pytest.raises(ModelError):
            pure_nash_profiles(big)
        with pytest.raises(ModelError):
            exists_pure_nash(big)

    def test_dominant_link_single_equilibrium(self):
        # One link vastly better for everyone and capacity gap so large
        # that sharing still beats switching: all users on link 0.
        caps = np.tile([100.0, 0.01, 0.01], (3, 1))
        game = UncertainRoutingGame.from_capacities([1.0, 1.0, 1.0], caps)
        profiles = pure_nash_profiles(game)
        assert len(profiles) == 1
        assert profiles[0].as_tuple() == (0, 0, 0)
