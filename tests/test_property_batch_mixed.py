"""Property-based tests (hypothesis) for the batched mixed kernels.

Pins the paper-level invariants of the closed form on randomly drawn
game stacks:

* Remark 4.4 — every candidate row sums to one, interior or not;
* Theorem 4.8 — uniform-beliefs stacks collapse to ``p^l_i = 1/m``;
* Theorem 4.6 — every interior candidate verifies as a mixed Nash
  equilibrium, and agrees with the single-game closed form slice by
  slice.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import (
    GameBatch,
    batch_fully_mixed_candidate,
    batch_is_mixed_nash,
    normalize_rows,
    random_game_batch,
)
from repro.equilibria.fully_mixed import fully_mixed_candidate


@st.composite
def batch_shapes(draw, max_b: int = 8, max_users: int = 6, max_links: int = 5):
    b = draw(st.integers(1, max_b))
    n = draw(st.integers(2, max_users))
    m = draw(st.integers(2, max_links))
    seed = draw(st.integers(0, 2**31 - 1))
    return b, n, m, seed


class TestClosedFormProperties:
    @settings(max_examples=80, deadline=None)
    @given(batch_shapes())
    def test_rows_sum_to_one(self, shape):
        """Remark 4.4: candidate rows are affine combinations summing to 1
        by construction — whether or not they stay inside (0, 1)."""
        b, n, m, seed = shape
        batch = random_game_batch(b, n, m, seed=seed)
        fm = batch_fully_mixed_candidate(batch.weights, batch.capacities)
        sums = fm.probabilities.sum(axis=-1)
        assert np.allclose(sums, 1.0, atol=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(batch_shapes())
    def test_uniform_beliefs_collapse_to_equiprobable(self, shape):
        """Theorem 4.8: under uniform beliefs the closed form is 1/m."""
        b, n, m, seed = shape
        seeds = [seed + i for i in range(b)]
        batch = GameBatch.from_seeds_uniform_beliefs(seeds, n, m)
        fm = batch_fully_mixed_candidate(batch.weights, batch.capacities)
        assert np.abs(fm.probabilities - 1.0 / m).max() < 1e-9
        assert fm.exists.all()

    @settings(max_examples=60, deadline=None)
    @given(batch_shapes())
    def test_interior_candidates_are_mixed_nash(self, shape):
        """Theorem 4.6: interiority certifies the candidate as the unique
        fully mixed NE — so it must pass the Nash conditions."""
        b, n, m, seed = shape
        batch = random_game_batch(b, n, m, seed=seed)
        fm = batch_fully_mixed_candidate(batch.weights, batch.capacities)
        idx = np.flatnonzero(fm.exists)
        if idx.size == 0:
            return
        verdict = batch_is_mixed_nash(
            normalize_rows(fm.probabilities[idx]),
            batch.weights[idx],
            batch.capacities[idx],
            tol=1e-7,
        )
        assert verdict.all()

    @settings(max_examples=40, deadline=None)
    @given(batch_shapes(max_b=4))
    def test_slices_match_single_game_bitwise(self, shape):
        """Batching must never change a result: every slice equals the
        single-game closed form exactly."""
        b, n, m, seed = shape
        batch = random_game_batch(b, n, m, with_initial_traffic=True, seed=seed)
        fm = batch_fully_mixed_candidate(
            batch.weights, batch.capacities, batch.initial_traffic
        )
        for i in range(b):
            ref = fully_mixed_candidate(batch.game(i))
            assert np.array_equal(fm.probabilities[i], ref.probabilities)
            assert bool(fm.exists[i]) == ref.exists
