"""Differential and property tests for the fixed-point solver.

The contract under test is ISSUE PR 9's strong one:

* at every enumerable width the fixpoint solver's equilibrium is one of
  the equilibria support enumeration finds, within tolerance — across
  the batched path, the ``B = 1`` view and the service op;
* every returned profile is certified by the public mixed-Nash oracle
  at :data:`~repro.batch.fixpoint.CERT_TOL` or explicitly flagged;
* convergence masks are monotone in the round budget and converged
  trajectories are frozen (longer budgets replay shorter ones exactly);
* results are bit-invariant to batch padding, batch order, and the
  campaign runtime's ``jobs`` / ``batch_size`` / ``resume`` knobs
  (the E13 chunking contract).
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.container import GameBatch
from repro.batch.fixpoint import (
    CERT_TOL,
    BatchFixpointResult,
    batch_fixpoint_mixed_nash,
)
from repro.batch.mixed import batch_is_mixed_nash
from repro.batch.support import batch_enumerate_mixed_nash
from repro.equilibria import FixpointSolution, fixpoint_mixed_nash
from repro.errors import ConvergenceError, ModelError
from repro.experiments.registry import get_experiment_specs, run_experiment
from repro.model.game import UncertainRoutingGame
from repro.runtime import run_sweep
from repro.service import (
    EquilibriumRequest,
    EquilibriumServer,
    ServiceClient,
    solve_fixpoint_requests,
)
from repro.util.rng import stable_seed

#: Distance at which a fixpoint profile "is" an enumerated equilibrium.
#: The solver converges to residual 1e-10; observed distances to the
#: matching enumerated profile stay below ~2e-12.
MATCH_ATOL = 1e-6

#: Enumerable widths for the differential leg.
_SMALL_GRID = [(2, 2), (3, 2), (3, 3), (4, 3), (5, 3)]


def _seeded_batch(
    tag: str, n: int, m: int, count: int, **kwargs
) -> GameBatch:
    seeds = [stable_seed("fixpoint-test", tag, n, m, i) for i in range(count)]
    return GameBatch.from_seeds(seeds, n, m, **kwargs)


def _solve(batch: GameBatch, **kwargs) -> BatchFixpointResult:
    return batch_fixpoint_mixed_nash(
        batch.weights, batch.capacities, batch.initial_traffic, **kwargs
    )


def _matches_an_enumerated_equilibrium(
    probabilities: np.ndarray, equilibria
) -> bool:
    return any(
        float(np.abs(eq.matrix - probabilities).max()) <= MATCH_ATOL
        for eq in equilibria
    )


class TestDifferentialAgainstEnumeration:
    """The solver's one equilibrium is in enumeration's complete set."""

    @pytest.mark.parametrize(("n", "m"), _SMALL_GRID)
    def test_batched_profile_is_an_enumerated_equilibrium(self, n, m):
        batch = _seeded_batch("diff", n, m, 6)
        result = _solve(batch)
        assert bool(result.converged.all()), result.residuals
        assert bool(result.certified.all())
        all_equilibria = batch_enumerate_mixed_nash(
            batch.weights, batch.capacities, batch.initial_traffic
        )
        for b, equilibria in enumerate(all_equilibria):
            assert _matches_an_enumerated_equilibrium(
                result.probabilities[b], equilibria
            ), f"game {b} of ({n}, {m}) not in the enumerated set"

    @pytest.mark.parametrize(("n", "m"), _SMALL_GRID)
    def test_with_initial_traffic(self, n, m):
        batch = _seeded_batch("diff-t", n, m, 4, with_initial_traffic=True)
        result = _solve(batch)
        assert bool(result.converged.all())
        all_equilibria = batch_enumerate_mixed_nash(
            batch.weights, batch.capacities, batch.initial_traffic
        )
        for b, equilibria in enumerate(all_equilibria):
            assert _matches_an_enumerated_equilibrium(
                result.probabilities[b], equilibria
            )

    def test_b1_view_is_bit_identical_to_batched_row(self):
        batch = _seeded_batch("b1", 4, 3, 5)
        result = _solve(batch)
        for b in range(len(batch)):
            game = UncertainRoutingGame.from_capacities(
                batch.weights[b],
                batch.capacities[b],
                initial_traffic=batch.initial_traffic[b],
            )
            solution = fixpoint_mixed_nash(game)
            assert isinstance(solution, FixpointSolution)
            assert np.array_equal(
                solution.profile.matrix, result.probabilities[b]
            )
            assert solution.rounds == int(result.rounds[b])
            assert solution.residual == float(result.residuals[b])
            assert solution.certified == bool(result.certified[b])

    def test_service_op_is_bit_identical_to_batched_solve(self):
        batch = _seeded_batch("svc", 3, 3, 4)
        requests = [
            EquilibriumRequest.from_arrays(
                batch.weights[b],
                batch.capacities[b],
                batch.initial_traffic[b],
            )
            for b in range(len(batch))
        ]
        responses = solve_fixpoint_requests(requests)
        result = _solve(batch)
        for b, response in enumerate(responses):
            assert response["digest"] == requests[b].digest
            assert response["converged"] is True
            assert response["certified"] is True
            assert response["rounds"] == int(result.rounds[b])
            assert response["residual"] == float(result.residuals[b])
            assert np.array_equal(
                np.array(response["probabilities"]), result.probabilities[b]
            )

    def test_service_op_mixed_shapes_and_width_relaxation(self):
        small = _seeded_batch("mix", 3, 3, 2)
        wide = _seeded_batch("mix", 20, 5, 1)  # 5^20 pure profiles
        requests = [
            EquilibriumRequest.from_arrays(
                b.weights[i], b.capacities[i], b.initial_traffic[i],
                check_width=False,
            )
            for b in (small, wide)
            for i in range(len(b))
        ]
        responses = solve_fixpoint_requests(requests)
        assert [r["num_users"] for r in responses] == [3, 3, 20]
        for request, response in zip(requests, responses):
            assert response["digest"] == request.digest
            assert response["converged"] and response["certified"]
            probabilities = np.array(response["probabilities"])
            assert bool(
                batch_is_mixed_nash(
                    probabilities[None],
                    request.weights[None],
                    request.capacities[None],
                    request.initial_traffic[None],
                    tol=CERT_TOL,
                )[0]
            )


class TestFlaggingAndErrors:
    def test_exhausted_budget_is_flagged_not_fatal(self):
        batch = _seeded_batch("flag", 5, 3, 3)
        result = _solve(batch, max_rounds=2)
        assert not bool(result.converged.any())
        assert not bool(result.stalled.any())
        assert bool((result.rounds == 2).all())
        # Uncertified profiles are still returned, flagged.
        assert result.probabilities.shape == (3, 5, 3)
        np.testing.assert_allclose(result.probabilities.sum(axis=-1), 1.0)

    def test_certified_recomputed_through_public_oracle(self):
        batch = _seeded_batch("cert", 4, 3, 4)
        for max_rounds in (0, 3, 4000):
            result = _solve(batch, max_rounds=max_rounds)
            oracle = batch_is_mixed_nash(
                result.probabilities,
                batch.weights,
                batch.capacities,
                batch.initial_traffic,
                tol=CERT_TOL,
            )
            assert np.array_equal(result.certified, np.asarray(oracle))
            # converged => certified (tol is 100x tighter than CERT_TOL)
            assert bool((~result.converged | result.certified).all())

    def test_b1_view_raises_convergence_error(self):
        batch = _seeded_batch("raise", 4, 3, 1)
        game = UncertainRoutingGame.from_capacities(
            batch.weights[0], batch.capacities[0]
        )
        with pytest.raises(ConvergenceError, match="round budget exhausted"):
            fixpoint_mixed_nash(game, max_rounds=1)

    @pytest.mark.parametrize(
        "kwargs",
        [{"beta_max": 3}, {"beta_max": 0}, {"eta": 0.0}, {"eta": 1.5},
         {"max_rounds": -1}, {"stall_rounds": 0}],
    )
    def test_invalid_parameters_raise(self, kwargs):
        batch = _seeded_batch("bad", 3, 2, 1)
        with pytest.raises(ModelError):
            _solve(batch, **kwargs)

    def test_width_guard_still_applies_by_default(self):
        batch = _seeded_batch("guard", 20, 5, 1)
        with pytest.raises(Exception, match="pure profiles"):
            EquilibriumRequest.from_arrays(
                batch.weights[0], batch.capacities[0]
            )


@st.composite
def _game_shapes(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    m = draw(st.integers(min_value=2, max_value=4))
    count = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return n, m, count, seed


class TestProperties:
    @given(_game_shapes())
    @settings(max_examples=20, deadline=None)
    def test_certified_iff_oracle_accepts(self, shape):
        n, m, count, seed = shape
        batch = GameBatch.from_seeds(
            [seed + i for i in range(count)], n, m
        )
        result = _solve(batch)
        oracle = batch_is_mixed_nash(
            result.probabilities,
            batch.weights,
            batch.capacities,
            batch.initial_traffic,
            tol=CERT_TOL,
        )
        assert np.array_equal(result.certified, np.asarray(oracle))

    @given(_game_shapes())
    @settings(max_examples=15, deadline=None)
    def test_convergence_masks_monotone_in_budget(self, shape):
        n, m, count, seed = shape
        batch = GameBatch.from_seeds(
            [seed + i for i in range(count)], n, m
        )
        budgets = (5, 40, 400, 4000)
        results = [_solve(batch, max_rounds=budget) for budget in budgets]
        for short, long in zip(results, results[1:]):
            # Monotone: a game converged under the short budget stays
            # converged under the long one...
            assert bool((~short.converged | long.converged).all())
            # ...and its trajectory is frozen: probabilities, round
            # count and residual replay exactly.
            for b in np.flatnonzero(short.converged):
                assert np.array_equal(
                    short.probabilities[b], long.probabilities[b]
                )
                assert short.rounds[b] == long.rounds[b]
                assert short.residuals[b] == long.residuals[b]

    @given(_game_shapes())
    @settings(max_examples=15, deadline=None)
    def test_batch_padding_and_order_invariance(self, shape):
        n, m, count, seed = shape
        batch = GameBatch.from_seeds(
            [seed + i for i in range(count)], n, m
        )
        together = _solve(batch)
        # Each game alone (maximal "padding" change) is bit-identical.
        for b in range(count):
            alone = _solve(batch.subbatch([b]))
            assert np.array_equal(
                alone.probabilities[0], together.probabilities[b]
            )
            assert alone.rounds[0] == together.rounds[b]
            assert alone.residuals[0] == together.residuals[b]
            assert alone.converged[0] == together.converged[b]
        # Reversed batch order too.
        reversed_batch = batch.subbatch(list(range(count))[::-1])
        reversed_result = _solve(reversed_batch)
        assert np.array_equal(
            reversed_result.probabilities, together.probabilities[::-1]
        )
        assert np.array_equal(
            reversed_result.rounds, together.rounds[::-1]
        )


class TestE13Chunking:
    """The campaign-runtime invariance contract for the new tier."""

    def test_jobs_and_batch_size_invariance(self):
        spec, uniform_spec = get_experiment_specs("E13", quick=True)
        baseline = run_sweep(spec, jobs=1, batch_size=None)
        for jobs, batch_size in [(1, 1), (2, 1), (2, 2)]:
            other = run_sweep(spec, jobs=jobs, batch_size=batch_size)
            # Payloads may be chunked differently; per-cell aggregation
            # must agree exactly.
            def totals(sweep, cells):
                acc = [[0, 0, 0, 0, 0, 0.0, 0] for _ in cells]
                for index, payload in zip(
                    sweep.cell_of_chunk, sweep.chunk_payloads
                ):
                    for j in range(5):
                        acc[index][j] += payload[j]
                    acc[index][5] = max(acc[index][5], payload[5])
                    acc[index][6] += payload[6]
                return acc

            assert totals(other, spec.cells) == totals(baseline, spec.cells)

    def test_fresh_and_resumed_stores_are_byte_identical(self, tmp_path):
        spec, _ = get_experiment_specs("E13", quick=True)
        fresh_path = tmp_path / "fresh.jsonl"
        fresh = run_sweep(spec, batch_size=1, store=fresh_path)
        assert fresh.resumed_chunks == 0
        resumed_path = tmp_path / "resumed.jsonl"
        # Seed the resume store with a prefix of the fresh run, then
        # resume: the final file must be byte-identical to the fresh one.
        lines = fresh_path.read_bytes().splitlines(keepends=True)
        resumed_path.write_bytes(b"".join(lines[: len(lines) // 2]))
        resumed = run_sweep(
            spec, batch_size=1, store=resumed_path, resume=True
        )
        assert resumed.resumed_chunks == len(lines) // 2
        assert resumed.chunk_payloads == fresh.chunk_payloads
        assert resumed_path.read_bytes() == fresh_path.read_bytes()

    def test_quick_tier_passes_end_to_end(self):
        result = run_experiment("E13", quick=True)
        assert result.passed, result.render()
        assert any(
            cell["dominance_checked"] > 0
            for cell in result.details["cells"]
        )

    @pytest.mark.slow
    def test_full_tier_beyond_enumeration_widths(self):
        result = run_experiment("E13", quick=False)
        assert result.passed, result.render()
        widths = {(cell["n"], cell["m"]) for cell in result.details["cells"]}
        assert (100, 10) in widths


class TestServerFixpointOp:
    """The ``fixpoint`` wire op: width relaxation, separate cache."""

    def test_fixpoint_op_over_tcp(self):
        wide = _seeded_batch("tcp", 20, 5, 1)  # past MAX_SERVICE_PROFILES
        payload = {
            "weights": wide.weights[0].tolist(),
            "capacities": wide.capacities[0].tolist(),
            "initial_traffic": wide.initial_traffic[0].tolist(),
        }

        async def scenario():
            server = EquilibriumServer(port=0)
            await server.start()
            try:
                client = await ServiceClient.connect(
                    server.host, server.port
                )
                try:
                    first = await client.request(
                        {"op": "fixpoint", **payload}
                    )
                    again = await client.request(
                        {"op": "fixpoint", **payload}
                    )
                    census = await client.request(
                        {"op": "solve", **payload}
                    )
                    stats = await client.request({"op": "stats"})
                finally:
                    await client.close()
            finally:
                await server.close()
            return first, again, census, stats

        first, again, census, stats = asyncio.run(scenario())
        assert first["ok"], first
        result = first["result"]
        assert result["converged"] and result["certified"]
        assert len(result["probabilities"]) == 20
        # Same game, same digest — but the census op must still refuse
        # it (its own guard, its own cache), while the fixpoint cache
        # serves the replay.
        assert again == first
        assert not census["ok"] and "pure profiles" in census["error"]
        assert stats["stats"]["fixpoint"]["cache"]["hits"] == 1
