"""Tests for repro.model.game."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DimensionError, ModelError
from repro.model.beliefs import Belief, BeliefProfile, point_mass_belief
from repro.model.game import UncertainRoutingGame
from repro.model.state import StateSpace


class TestConstruction:
    def test_basic(self, simple_game):
        assert simple_game.num_users == 2
        assert simple_game.num_links == 2
        assert simple_game.total_traffic == pytest.approx(3.0)

    def test_rejects_single_user(self, two_state_space):
        profile = BeliefProfile.from_matrix(two_state_space, [[1.0, 0.0]])
        with pytest.raises(ModelError, match="n > 1"):
            UncertainRoutingGame([1.0], profile)

    def test_rejects_single_link(self):
        states = StateSpace([[1.0]])
        profile = BeliefProfile.from_matrix(states, [[1.0], [1.0]])
        with pytest.raises(ModelError, match="m > 1"):
            UncertainRoutingGame([1.0, 1.0], profile)

    def test_rejects_weight_mismatch(self, two_state_space):
        profile = BeliefProfile.from_matrix(
            two_state_space, [[1.0, 0.0], [1.0, 0.0]]
        )
        with pytest.raises(DimensionError):
            UncertainRoutingGame([1.0, 1.0, 1.0], profile)

    def test_rejects_nonpositive_weights(self, two_state_space):
        profile = BeliefProfile.from_matrix(
            two_state_space, [[1.0, 0.0], [1.0, 0.0]]
        )
        with pytest.raises(ModelError):
            UncertainRoutingGame([1.0, 0.0], profile)

    def test_default_initial_traffic_zero(self, simple_game):
        np.testing.assert_array_equal(simple_game.initial_traffic, [0.0, 0.0])

    def test_initial_traffic_wrong_shape(self, two_state_space):
        profile = BeliefProfile.from_matrix(
            two_state_space, [[1.0, 0.0], [1.0, 0.0]]
        )
        with pytest.raises(DimensionError):
            UncertainRoutingGame([1.0, 1.0], profile, initial_traffic=[1.0])

    def test_initial_traffic_negative(self, two_state_space):
        profile = BeliefProfile.from_matrix(
            two_state_space, [[1.0, 0.0], [1.0, 0.0]]
        )
        with pytest.raises(ModelError):
            UncertainRoutingGame([1.0, 1.0], profile, initial_traffic=[-1.0, 0.0])

    def test_arrays_read_only(self, simple_game):
        with pytest.raises(ValueError):
            simple_game.weights[0] = 9.0
        with pytest.raises(ValueError):
            simple_game.capacities[0, 0] = 9.0


class TestReducedForm:
    def test_effective_capacities_computed(self, two_state_space):
        profile = BeliefProfile.from_matrix(
            two_state_space, [[1.0, 0.0], [0.0, 1.0]]
        )
        game = UncertainRoutingGame([1.0, 1.0], profile)
        np.testing.assert_allclose(game.capacities, [[1.0, 2.0], [2.0, 1.0]])

    def test_from_capacities_roundtrip(self):
        caps = np.array([[1.0, 2.0], [3.0, 4.0]])
        game = UncertainRoutingGame.from_capacities([1.0, 2.0], caps)
        np.testing.assert_allclose(game.capacities, caps)

    def test_from_capacities_rejects_row_mismatch(self):
        with pytest.raises(DimensionError):
            UncertainRoutingGame.from_capacities(
                [1.0, 2.0, 3.0], [[1.0, 2.0], [3.0, 4.0]]
            )

    def test_kp_constructor(self):
        game = UncertainRoutingGame.kp([1.0, 2.0], [1.0, 3.0])
        assert game.is_kp()
        np.testing.assert_allclose(game.capacities, [[1.0, 3.0], [1.0, 3.0]])


class TestPredicates:
    def test_is_kp(self, kp_game_fixture, simple_game):
        assert kp_game_fixture.is_kp()
        assert not simple_game.is_kp()

    def test_common_beliefs(self, two_state_space):
        profile = BeliefProfile(
            two_state_space, [Belief([0.4, 0.6])] * 3
        )
        game = UncertainRoutingGame([1.0, 1.0, 1.0], profile)
        assert game.has_common_beliefs()
        assert not game.is_kp()

    def test_uniform_beliefs(self, uniform_beliefs_game, simple_game):
        assert uniform_beliefs_game.has_uniform_beliefs()
        assert not simple_game.has_uniform_beliefs()

    def test_kp_with_equal_caps_is_uniform(self):
        game = UncertainRoutingGame.kp([1.0, 2.0], [2.0, 2.0, 2.0])
        assert game.has_uniform_beliefs()

    def test_symmetric_users(self, two_state_space):
        profile = BeliefProfile.random(two_state_space, 3, seed=0)
        game = UncertainRoutingGame([2.0, 2.0, 2.0], profile)
        assert game.has_symmetric_users()

    def test_not_symmetric(self, simple_game):
        assert not simple_game.has_symmetric_users()


class TestTransformations:
    def test_with_initial_traffic(self, simple_game):
        new = simple_game.with_initial_traffic([1.0, 2.0])
        np.testing.assert_array_equal(new.initial_traffic, [1.0, 2.0])
        np.testing.assert_array_equal(simple_game.initial_traffic, [0.0, 0.0])

    def test_subgame_preserves_rows(self, three_user_game):
        sub = three_user_game.subgame([0, 2])
        assert sub.num_users == 2
        np.testing.assert_allclose(
            sub.capacities, three_user_game.capacities[[0, 2]]
        )
        np.testing.assert_allclose(
            sub.weights, three_user_game.weights[[0, 2]]
        )

    def test_subgame_too_small(self, three_user_game):
        with pytest.raises(ModelError):
            three_user_game.subgame([1])


class TestRepr:
    def test_tags_kp(self, kp_game_fixture):
        assert "kp" in repr(kp_game_fixture)

    def test_tags_uniform(self, uniform_beliefs_game):
        assert "uniform-beliefs" in repr(uniform_beliefs_game)

    def test_plain(self, three_user_game):
        text = repr(three_user_game)
        assert "n=3" in text and "m=3" in text
