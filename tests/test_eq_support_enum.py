"""Tests for the support-enumeration mixed-NE solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.game import UncertainRoutingGame
from repro.equilibria.conditions import is_mixed_nash
from repro.equilibria.enumeration import pure_nash_profiles
from repro.equilibria.fully_mixed import fully_mixed_candidate
from repro.equilibria.support_enum import enumerate_mixed_nash, support_profiles
from repro.generators.games import random_game


class TestSupportProfiles:
    def test_count_two_users_two_links(self):
        assert len(list(support_profiles(2, 2))) == 9  # (2^2-1)^2

    def test_count_three_users_two_links(self):
        assert len(list(support_profiles(3, 2))) == 27

    def test_all_supports_nonempty(self):
        for profile in support_profiles(2, 3):
            assert all(len(s) >= 1 for s in profile)


class TestEnumerateMixedNash:
    def test_all_results_are_nash(self):
        game = random_game(3, 2, seed=0)
        for eq in enumerate_mixed_nash(game):
            assert is_mixed_nash(game, eq, tol=1e-7)

    def test_includes_every_pure_nash(self):
        game = random_game(3, 2, seed=1)
        pure = {p.as_tuple() for p in pure_nash_profiles(game)}
        mixed = enumerate_mixed_nash(game)
        recovered = {
            eq.to_pure().as_tuple() for eq in mixed if eq.is_pure(atol=1e-9)
        }
        assert pure <= recovered

    def test_finds_fully_mixed_when_it_exists(self):
        hits = 0
        for seed in range(25):
            game = random_game(2, 2, concentration=5.0, seed=seed)
            cand = fully_mixed_candidate(game)
            if not cand.exists:
                continue
            hits += 1
            fm = [e for e in enumerate_mixed_nash(game) if e.is_fully_mixed(atol=1e-9)]
            assert len(fm) == 1
            np.testing.assert_allclose(
                fm[0].matrix, cand.probabilities, atol=1e-7
            )
        assert hits >= 3

    def test_uniqueness_of_fully_mixed(self):
        """Theorem 4.6 cross-check: never two distinct fully mixed NE."""
        for seed in range(15):
            game = random_game(3, 2, seed=seed)
            fm = [e for e in enumerate_mixed_nash(game) if e.is_fully_mixed(atol=1e-9)]
            assert len(fm) <= 1

    def test_identical_game_has_pure_and_mixed_equilibria(self):
        """Two identical users on identical links: the split profiles are
        pure NE and the uniform mix is the (unique) fully mixed NE."""
        caps = np.ones((2, 2))
        game = UncertainRoutingGame.from_capacities([1.0, 1.0], caps)
        eqs = enumerate_mixed_nash(game)
        pure = {eq.to_pure().as_tuple() for eq in eqs if eq.is_pure(atol=1e-9)}
        mixed = [eq for eq in eqs if eq.is_fully_mixed(atol=1e-9)]
        assert pure == {(0, 1), (1, 0)}
        assert len(mixed) == 1
        np.testing.assert_allclose(mixed[0].matrix, 0.5, atol=1e-9)

    def test_deduplication(self):
        game = random_game(2, 2, seed=3)
        eqs = enumerate_mixed_nash(game)
        seen = {np.round(e.matrix, 6).tobytes() for e in eqs}
        assert len(seen) == len(eqs)

    def test_limit_enforced(self):
        game = UncertainRoutingGame.from_capacities(
            np.ones(8), np.ones((8, 4))
        )
        with pytest.raises(ModelError):
            enumerate_mixed_nash(game)

    def test_with_initial_traffic(self):
        game = random_game(2, 2, with_initial_traffic=True, seed=5)
        for eq in enumerate_mixed_nash(game):
            assert is_mixed_nash(game, eq, tol=1e-7)
