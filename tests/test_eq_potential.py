"""Tests for potential-function analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AlgorithmDomainError
from repro.model.game import UncertainRoutingGame
from repro.equilibria.potential import (
    exact_potential_cycle_gap,
    verify_weighted_potential,
    weighted_potential_common_beliefs,
)
from repro.generators.games import random_game, random_kp_game


class TestExactPotentialGap:
    def test_kp_game_weighted_not_exact(self):
        """Even common-beliefs games are only *weighted* potential games:
        exact 4-cycle sums are generally nonzero when weights differ."""
        game = UncertainRoutingGame.kp([1.0, 3.0], [1.0, 2.0])
        gap = exact_potential_cycle_gap(game)
        assert gap > 1e-9

    def test_unweighted_identical_links_exact(self):
        """Equal weights + common beliefs + identical links: the game is an
        exact potential game (Rosenthal), so all 4-cycle sums vanish."""
        game = UncertainRoutingGame.kp([1.0, 1.0, 1.0], [2.0, 2.0])
        assert exact_potential_cycle_gap(game) == pytest.approx(0.0, abs=1e-12)

    def test_general_games_fail_exactness(self):
        """The reproduction's E6 point: the belief game admits no exact
        potential — sampled games show nonzero cycle sums."""
        gaps = [
            exact_potential_cycle_gap(random_game(3, 3, seed=s)) for s in range(5)
        ]
        assert max(gaps) > 1e-6

    def test_sampled_mode_deterministic(self):
        game = random_game(4, 3, seed=1)
        a = exact_potential_cycle_gap(game, num_samples=100, seed=7)
        b = exact_potential_cycle_gap(game, num_samples=100, seed=7)
        assert a == b

    def test_exhaustive_covers_sampled(self):
        game = random_game(3, 2, seed=2)
        exhaustive = exact_potential_cycle_gap(game)
        sampled = exact_potential_cycle_gap(game, num_samples=400, seed=0)
        assert sampled <= exhaustive + 1e-12


class TestWeightedPotential:
    def test_requires_common_beliefs(self, simple_game):
        with pytest.raises(AlgorithmDomainError):
            weighted_potential_common_beliefs(simple_game, [0, 1])

    def test_value_hand_computed(self):
        game = UncertainRoutingGame.kp([1.0, 2.0], [1.0, 2.0])
        # sigma = [0, 1]: link0 load 1, link1 load 2.
        # Phi = (1 + 1)/(2*1) + (4 + 4)/(2*2) = 1 + 2 = 3
        assert weighted_potential_common_beliefs(game, [0, 1]) == pytest.approx(3.0)

    @pytest.mark.parametrize("seed", range(10))
    def test_identity_on_random_kp_games(self, seed):
        game = random_kp_game(4, 3, seed=seed)
        rng = np.random.default_rng(seed)
        sigma = rng.integers(0, 3, size=4)
        user = int(rng.integers(4))
        link = int(rng.integers(3))
        assert verify_weighted_potential(game, sigma, user, link)

    def test_identity_with_initial_traffic(self):
        game = UncertainRoutingGame.kp(
            [1.0, 2.0, 0.5], [1.0, 3.0], initial_traffic=[0.7, 0.1]
        )
        for user in range(3):
            for link in range(2):
                assert verify_weighted_potential(game, [0, 1, 0], user, link)

    def test_potential_decreases_along_improvement_move(self):
        """Improving moves strictly decrease Phi (scaled by w_i > 0)."""
        from repro.model.latency import pure_latency_of_user

        game = random_kp_game(4, 3, seed=3)
        sigma = np.zeros(4, dtype=np.intp)
        phi0 = weighted_potential_common_beliefs(game, sigma)
        before = pure_latency_of_user(game, sigma, 0)
        from repro.equilibria.best_response import best_responses

        target = best_responses(game, sigma)[0]
        moved = sigma.copy()
        moved[0] = target
        after = pure_latency_of_user(game, moved, 0)
        phi1 = weighted_potential_common_beliefs(game, moved)
        if after < before:
            assert phi1 < phi0
