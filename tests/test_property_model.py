"""Property-based tests (hypothesis) for the model layer's invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.model.beliefs import Belief
from repro.model.game import UncertainRoutingGame
from repro.model.latency import (
    deviation_latencies,
    mixed_latency_matrix,
    pure_latencies,
    pure_latencies_by_state,
)
from repro.model.profiles import pure_to_mixed
from repro.model.state import StateSpace

positive = st.floats(min_value=0.05, max_value=20.0, allow_nan=False)


@st.composite
def games(draw, max_users: int = 5, max_links: int = 4):
    n = draw(st.integers(2, max_users))
    m = draw(st.integers(2, max_links))
    caps = draw(
        arrays(np.float64, (n, m), elements=positive)
    )
    weights = draw(arrays(np.float64, (n,), elements=positive))
    return UncertainRoutingGame.from_capacities(weights, caps)


@st.composite
def games_with_assignments(draw):
    game = draw(games())
    sigma = draw(
        st.lists(
            st.integers(0, game.num_links - 1),
            min_size=game.num_users,
            max_size=game.num_users,
        )
    )
    return game, sigma


class TestLatencyProperties:
    @settings(max_examples=80, deadline=None)
    @given(games_with_assignments())
    def test_latencies_strictly_positive(self, game_sigma):
        game, sigma = game_sigma
        assert np.all(pure_latencies(game, sigma) > 0)

    @settings(max_examples=80, deadline=None)
    @given(games_with_assignments())
    def test_deviation_diagonal_equals_current(self, game_sigma):
        game, sigma = game_sigma
        dev = deviation_latencies(game, sigma)
        cur = pure_latencies(game, sigma)
        np.testing.assert_allclose(
            dev[np.arange(game.num_users), sigma], cur, rtol=1e-12
        )

    @settings(max_examples=80, deadline=None)
    @given(games_with_assignments())
    def test_pure_profile_embeds_into_mixed_engine(self, game_sigma):
        """The one-hot embedding of a pure profile must reproduce the pure
        deviation matrix exactly — the two latency paths agree."""
        game, sigma = game_sigma
        mixed = pure_to_mixed(sigma, game.num_users, game.num_links)
        np.testing.assert_allclose(
            mixed_latency_matrix(game, mixed),
            deviation_latencies(game, sigma),
            rtol=1e-12,
        )

    @settings(max_examples=60, deadline=None)
    @given(games_with_assignments())
    def test_adding_traffic_never_reduces_latency(self, game_sigma):
        game, sigma = game_sigma
        heavier = game.with_initial_traffic(np.ones(game.num_links))
        assert np.all(
            pure_latencies(heavier, sigma) >= pure_latencies(game, sigma) - 1e-12
        )

    @settings(max_examples=60, deadline=None)
    @given(games_with_assignments(), st.floats(min_value=0.1, max_value=10.0))
    def test_capacity_scaling_inversely_scales_latency(self, game_sigma, factor):
        game, sigma = game_sigma
        scaled = UncertainRoutingGame.from_capacities(
            game.weights, game.capacities * factor
        )
        np.testing.assert_allclose(
            pure_latencies(scaled, sigma),
            pure_latencies(game, sigma) / factor,
            rtol=1e-9,
        )


class TestBeliefReduction:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(2, 4),
        st.integers(2, 4),
        st.integers(1, 5),
        st.integers(0, 10_000),
    )
    def test_reduction_identity(self, n, m, num_states, seed):
        """E_b[latency by state] == latency through effective capacities."""
        rng = np.random.default_rng(seed)
        states = StateSpace(rng.uniform(0.1, 5.0, size=(num_states, m)))
        from repro.model.beliefs import BeliefProfile

        beliefs = BeliefProfile.random(states, n, seed=rng)
        game = UncertainRoutingGame(rng.uniform(0.1, 3.0, size=n), beliefs)
        sigma = rng.integers(0, m, size=n)
        by_state = pure_latencies_by_state(game, sigma)
        np.testing.assert_allclose(
            (game.beliefs.matrix * by_state).sum(axis=1),
            pure_latencies(game, sigma),
            rtol=1e-9,
        )

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 6), st.integers(2, 5), st.integers(0, 10_000))
    def test_effective_capacity_within_state_range(self, num_states, m, seed):
        """The belief-harmonic capacity lies between the extreme state
        capacities of each link."""
        rng = np.random.default_rng(seed)
        caps = rng.uniform(0.1, 5.0, size=(num_states, m))
        states = StateSpace(caps)
        belief = Belief(rng.dirichlet(np.ones(num_states)))
        eff = belief.effective_capacities(states)
        assert np.all(eff <= caps.max(axis=0) + 1e-9)
        assert np.all(eff >= caps.min(axis=0) - 1e-9)
