"""Shared fixtures: canonical small games used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.beliefs import Belief, BeliefProfile
from repro.model.game import UncertainRoutingGame
from repro.model.state import StateSpace


@pytest.fixture
def two_state_space() -> StateSpace:
    """Two states over two links with mirrored capacities."""
    return StateSpace([[1.0, 2.0], [2.0, 1.0]], names=("fast-right", "fast-left"))


@pytest.fixture
def simple_game(two_state_space: StateSpace) -> UncertainRoutingGame:
    """Two users with opposing beliefs on the mirrored two-link network."""
    beliefs = BeliefProfile.from_matrix(
        two_state_space, [[0.9, 0.1], [0.2, 0.8]]
    )
    return UncertainRoutingGame([1.0, 2.0], beliefs)


@pytest.fixture
def three_user_game() -> UncertainRoutingGame:
    """Three users, three links, distinct deterministic reduced forms."""
    caps = np.array(
        [
            [1.0, 2.0, 3.0],
            [3.0, 1.0, 2.0],
            [2.0, 3.0, 1.0],
        ]
    )
    return UncertainRoutingGame.from_capacities([1.0, 1.5, 2.5], caps)


@pytest.fixture
def kp_game_fixture() -> UncertainRoutingGame:
    """A classic complete-information KP instance."""
    return UncertainRoutingGame.kp([2.0, 1.0, 1.0], [2.0, 1.0])


@pytest.fixture
def uniform_beliefs_game() -> UncertainRoutingGame:
    """Four users who each believe all three links equally fast."""
    caps = np.repeat(np.array([[1.0], [2.0], [0.5], [1.5]]), 3, axis=1)
    return UncertainRoutingGame.from_capacities([3.0, 2.0, 2.0, 1.0], caps)
