"""Tests for the pluggable array-backend seam (``repro.batch.backend``).

Covers the registry and resolution machinery (unknown names list the
registered choices, env-var vs explicit-selection precedence, the
register/replace/unregister round trip), the protocol completeness
check, backend provenance in the result store and the service ``info``
op, the CLI ``--backend`` flag, and — where the optional packages are
installed — tolerance-based differential tests certifying the numba
JIT backend against the NumPy reference, including a hypothesis
property test that the nashification and dynamics steppers agree with
the reference trajectory state for state. On hosts without numba /
cupy / jax those classes skip with a visible reason instead of
failing.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.backend import (
    DEFAULT_BACKEND,
    ENV_VAR,
    FUSED_HOOKS,
    OPTIONAL_BACKENDS,
    PROTOCOL_OPS,
    ArrayBackend,
    available_backends,
    backend_names,
    check_protocol,
    get_backend,
    register_backend,
    set_backend,
    unregister_backend,
    use_backend,
)
from repro.batch.container import GameBatch
from repro.batch.dynamics import batch_best_response_dynamics
from repro.batch.fixpoint import batch_fixpoint_mixed_nash
from repro.batch.kernels import (
    batch_count_pure_nash,
    batch_exists_pure_nash,
    batch_loads,
)
from repro.batch.pure import (
    batch_nashify_common_beliefs,
    batch_response_cycle_census,
)
from repro.errors import BackendError
from repro.generators.suites import GridCell
from repro.runtime import SweepSpec, run_sweep
from repro.runtime.store import ResultStore

NUMBA_AVAILABLE = available_backends().get("numba", False)
needs_numba = pytest.mark.skipif(
    not NUMBA_AVAILABLE,
    reason="numba not installed — JIT backend unavailable "
    "(pip install 'repro-network-uncertainty[jit]')",
)


@pytest.fixture(autouse=True)
def _pristine_backend_state(monkeypatch):
    """Every test starts and ends on default resolution (no explicit
    selection, no env var) with no leftover test registrations."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    set_backend(None)
    yield
    set_backend(None)
    # ``main --backend`` exports the env var; monkeypatch only restores
    # what it touched, so drop any value a test left behind.
    os.environ.pop(ENV_VAR, None)
    for name in backend_names():
        if name not in (DEFAULT_BACKEND, *OPTIONAL_BACKENDS):
            unregister_backend(name)


def _mirror_factory() -> ArrayBackend:
    """A distinguishable backend that is numerically the reference."""
    return ArrayBackend(module=np, name="mirror")


# ---------------------------------------------------------------------- #
# resolution precedence
# ---------------------------------------------------------------------- #


class TestResolution:
    def test_default_is_numpy(self):
        backend = get_backend()
        assert backend.name == "numpy"
        assert backend.module is np
        assert backend.bincount is np.bincount  # delegation, not a copy

    def test_unknown_name_lists_registered_choices(self):
        with pytest.raises(BackendError) as excinfo:
            get_backend("fortran77")
        message = str(excinfo.value)
        assert "unknown array backend 'fortran77'" in message
        for name in backend_names():
            assert name in message

    def test_env_var_selects_backend(self, monkeypatch):
        register_backend("mirror", _mirror_factory)
        monkeypatch.setenv(ENV_VAR, "mirror")
        assert get_backend().name == "mirror"

    def test_explicit_selection_beats_env_var(self, monkeypatch):
        register_backend("mirror", _mirror_factory)
        monkeypatch.setenv(ENV_VAR, "mirror")
        set_backend("numpy")
        assert get_backend().name == "numpy"
        # Clearing the explicit choice returns resolution to the env var.
        set_backend(None)
        assert get_backend().name == "mirror"

    def test_set_backend_fails_eagerly_and_keeps_selection(self):
        with pytest.raises(BackendError, match="unknown array backend"):
            set_backend("not-a-backend")
        assert get_backend().name == "numpy"

    def test_use_backend_restores_previous_selection(self):
        register_backend("mirror", _mirror_factory)
        set_backend("mirror")
        with use_backend("numpy") as backend:
            assert backend.name == "numpy"
            assert get_backend().name == "numpy"
        assert get_backend().name == "mirror"

    def test_instances_are_cached(self):
        assert get_backend("numpy") is get_backend("numpy")


# ---------------------------------------------------------------------- #
# registry round trip and protocol
# ---------------------------------------------------------------------- #


class TestRegistry:
    def test_register_unregister_round_trip(self):
        register_backend("mirror", _mirror_factory)
        assert "mirror" in backend_names()
        assert available_backends()["mirror"] is True
        first = get_backend("mirror")
        assert first is get_backend("mirror")

        with pytest.raises(BackendError, match="already registered"):
            register_backend("mirror", _mirror_factory)
        # replace=True swaps the factory and drops the cached instance.
        register_backend("mirror", _mirror_factory, replace=True)
        assert get_backend("mirror") is not first

        unregister_backend("mirror")
        assert "mirror" not in backend_names()
        with pytest.raises(BackendError, match="unknown array backend"):
            get_backend("mirror")

    def test_numpy_cannot_be_unregistered(self):
        with pytest.raises(BackendError, match="cannot be removed"):
            unregister_backend("numpy")
        assert "numpy" in backend_names()

    def test_optional_backends_always_reported(self):
        status = available_backends()
        for name in OPTIONAL_BACKENDS:
            assert name in status
        import importlib.util

        for gpu in ("cupy", "jax"):
            if importlib.util.find_spec(gpu) is None:
                assert status[gpu] is False

    def test_probe_controls_availability(self):
        register_backend("mirror", _mirror_factory, probe=lambda: False)
        assert available_backends()["mirror"] is False
        # An unavailable probe does not block instantiation by name —
        # availability is a report, the factory is the gate.
        assert get_backend("mirror").name == "mirror"

    def test_numpy_backend_protocol_complete(self):
        assert check_protocol(get_backend("numpy")) == []

    def test_fused_hooks_default_to_generic_path(self):
        backend = get_backend("numpy")
        for hook in FUSED_HOOKS:
            assert getattr(backend, hook) is None

    def test_protocol_detects_missing_ops(self):
        class Hollow:
            pass

        missing = check_protocol(ArrayBackend(module=Hollow(), name="hollow"))
        assert set(PROTOCOL_OPS) <= set(missing)
        assert "linalg" in missing


# ---------------------------------------------------------------------- #
# store provenance and resume guard
# ---------------------------------------------------------------------- #


def _echo_kernel(chunk):
    return {"n": chunk.num_users, "lo": chunk.rep_lo}


def _provenance_spec() -> SweepSpec:
    return SweepSpec(
        experiment="BK",
        label="bk-prov",
        cells=(GridCell(2, 2, 4),),
        kernel=_echo_kernel,
    )


class TestStoreProvenance:
    def test_chunk_records_carry_backend_name(self, tmp_path):
        path = tmp_path / "store.jsonl"
        run_sweep(_provenance_spec(), batch_size=2, store=path)
        records = ResultStore(path).load_records()
        assert len(records) == 2
        for record in records.values():
            assert record["backend"] == "numpy"
            assert record["payload"]["n"] == 2

    def test_resume_rejects_backend_mismatch(self, tmp_path):
        register_backend("mirror", _mirror_factory)
        path = tmp_path / "store.jsonl"
        with use_backend("mirror"):
            run_sweep(_provenance_spec(), batch_size=2, store=path)
        with pytest.raises(BackendError) as excinfo:
            run_sweep(
                _provenance_spec(), batch_size=2, store=path, resume=True
            )
        message = str(excinfo.value)
        assert "computed under backend 'mirror'" in message
        assert "--backend mirror" in message

    def test_resume_matching_backend_skips_chunks(self, tmp_path):
        register_backend("mirror", _mirror_factory)
        path = tmp_path / "store.jsonl"
        with use_backend("mirror"):
            run_sweep(_provenance_spec(), batch_size=2, store=path)
            resumed = run_sweep(
                _provenance_spec(), batch_size=2, store=path, resume=True
            )
        assert resumed.resumed_chunks == 2
        assert resumed.computed_chunks == 0

    def test_resume_accepts_legacy_records_without_backend(self, tmp_path):
        """Pre-provenance stores (no ``backend`` field) were all NumPy
        and must keep resuming under any backend name."""
        path = tmp_path / "store.jsonl"
        fresh = run_sweep(_provenance_spec(), batch_size=2, store=path)
        stripped = []
        for line in path.read_text().splitlines():
            record = json.loads(line)
            record.pop("backend")
            stripped.append(json.dumps(record))
        path.write_text("\n".join(stripped) + "\n")
        resumed = run_sweep(
            _provenance_spec(), batch_size=2, store=path, resume=True
        )
        assert resumed.resumed_chunks == 2
        assert resumed.chunk_payloads == fresh.chunk_payloads


# ---------------------------------------------------------------------- #
# service info op
# ---------------------------------------------------------------------- #


class TestServiceInfo:
    def test_info_reports_backend_and_host_offerings(self):
        import asyncio

        from repro.service.client import ServiceClient
        from repro.service.server import EquilibriumServer

        async def scenario():
            server = EquilibriumServer(port=0)
            await server.start()
            try:
                client = await ServiceClient.connect(port=server.port)
                try:
                    return await client.info(), await client.stats()
                finally:
                    await client.close()
            finally:
                await server.close()

        info, stats = asyncio.run(scenario())
        assert info["backend"] == "numpy"
        assert info["backends"]["numpy"] is True
        for name in OPTIONAL_BACKENDS:
            assert name in info["backends"]
        assert stats["backend"] == "numpy"


# ---------------------------------------------------------------------- #
# CLI flag
# ---------------------------------------------------------------------- #


class TestCliBackendFlag:
    def test_unknown_backend_is_a_usage_error(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "E8", "--quick", "--backend", "bogus"])
        err = capsys.readouterr().err
        assert "unknown array backend 'bogus'" in err
        assert "numpy" in err

    def test_backend_flag_selects_and_exports(self, capsys):
        from repro.cli import main

        assert main(["run", "E8", "--quick", "--backend", "numpy"]) == 0
        # Explicit selection for this process, env export for workers.
        assert get_backend().name == "numpy"
        assert os.environ.get(ENV_VAR) == "numpy"
        assert "PASS" in capsys.readouterr().out

    def test_serve_parser_accepts_backend(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--backend", "numpy"]
        )
        assert args.backend == "numpy"


# ---------------------------------------------------------------------- #
# NumPy-vs-JIT differential certification (skips without numba)
# ---------------------------------------------------------------------- #


@st.composite
def small_games(draw):
    """A small random batch: shape plus seeds for the generators."""
    b = draw(st.integers(min_value=1, max_value=4))
    n = draw(st.integers(min_value=2, max_value=4))
    m = draw(st.integers(min_value=2, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return b, n, m, seed


def _random_start(b: int, n: int, m: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, m, size=(b, n)).astype(np.intp)


@needs_numba
class TestNumbaDifferential:
    """Tolerance-gated certification of the JIT backend.

    The numba hooks promise the generic path's *verdicts* (and, for the
    steppers, its per-game trajectories); these tests compare both
    backends on the same random games. They run wherever the ``[jit]``
    extra is installed (the CI ``backend-parity`` job) and skip with a
    visible reason elsewhere.
    """

    def test_numba_backend_protocol_complete(self):
        backend = get_backend("numba")
        assert backend.name == "numba"
        assert check_protocol(backend) == []
        for hook in (
            "scatter_loads",
            "count_pure_nash",
            "exists_pure_nash",
            "nashify_common_loop",
            "dynamics_loop",
            "census_cycle",
            "fixpoint_loop",
        ):
            assert callable(getattr(backend, hook))

    @settings(max_examples=25, deadline=None)
    @given(small_games())
    def test_loads_and_census_agree(self, shape):
        b, n, m, seed = shape
        batch = GameBatch.from_seeds(
            [seed + i for i in range(b)], n, m, with_initial_traffic=True
        )
        sigma = _random_start(b, n, m, seed)

        def snapshot():
            return (
                batch_loads(sigma, batch.weights, m, batch.initial_traffic),
                batch_count_pure_nash(batch),
                batch_exists_pure_nash(batch),
            )

        reference = snapshot()
        with use_backend("numba"):
            jit = snapshot()
        np.testing.assert_allclose(jit[0], reference[0], rtol=1e-12)
        np.testing.assert_array_equal(jit[1], reference[1])
        np.testing.assert_array_equal(jit[2], reference[2])

    @settings(max_examples=15, deadline=None)
    @given(small_games())
    def test_response_cycle_census_agrees(self, shape):
        b, n, m, seed = shape
        batch = GameBatch.from_seeds([seed + i for i in range(b)], n, m)
        for kind in ("best", "better"):
            reference = batch_response_cycle_census(batch, kind=kind)
            with use_backend("numba"):
                jit = batch_response_cycle_census(batch, kind=kind)
            np.testing.assert_array_equal(jit, reference)

    @settings(max_examples=15, deadline=None)
    @given(small_games())
    def test_dynamics_traces_agree_state_for_state(self, shape):
        """Best-response dynamics: identical per-game trajectories.

        ``max_steps=k`` truncates the stepper after ``k`` per-game
        moves, so comparing the truncated runs for every ``k`` up to
        the reference's own step count pins the whole trajectory, not
        just the endpoint."""
        b, n, m, seed = shape
        batch = GameBatch.from_seeds([seed + i for i in range(b)], n, m)
        start = _random_start(b, n, m, seed)
        reference = batch_best_response_dynamics(batch, start, max_steps=200)
        horizon = int(reference.steps.max()) + 1
        for k in range(1, min(horizon, 12) + 1):
            ref_k = batch_best_response_dynamics(batch, start, max_steps=k)
            with use_backend("numba"):
                jit_k = batch_best_response_dynamics(batch, start, max_steps=k)
            np.testing.assert_array_equal(jit_k.profiles, ref_k.profiles)
            np.testing.assert_array_equal(jit_k.converged, ref_k.converged)
            np.testing.assert_array_equal(jit_k.steps, ref_k.steps)
            np.testing.assert_array_equal(jit_k.cycled, ref_k.cycled)

    @settings(max_examples=15, deadline=None)
    @given(small_games())
    def test_fixpoint_traces_agree_state_for_state(self, shape):
        """Fixed-point solver: the fused hook replays the generic
        trajectory bit for bit.

        ``max_rounds=k`` truncates the iteration after ``k`` rounds, so
        equality of the full result tuple at every budget pins each
        intermediate probability tensor, residual and mask — not just
        the converged endpoint."""
        b, n, m, seed = shape
        batch = GameBatch.from_seeds(
            [seed + i for i in range(b)], n, m, with_initial_traffic=True
        )

        def solve(budget):
            return batch_fixpoint_mixed_nash(
                batch.weights,
                batch.capacities,
                batch.initial_traffic,
                max_rounds=budget,
            )

        for budget in (0, 1, 2, 7, 40, 4000):
            reference = solve(budget)
            with use_backend("numba"):
                jit = solve(budget)
            np.testing.assert_array_equal(
                jit.probabilities, reference.probabilities
            )
            np.testing.assert_array_equal(jit.rounds, reference.rounds)
            np.testing.assert_array_equal(jit.residuals, reference.residuals)
            np.testing.assert_array_equal(jit.converged, reference.converged)
            np.testing.assert_array_equal(jit.stalled, reference.stalled)
            np.testing.assert_array_equal(jit.certified, reference.certified)

    @settings(max_examples=10, deadline=None)
    @given(small_games())
    def test_fixpoint_stall_path_agrees(self, shape):
        """The stall detector's bookkeeping (best/since counters) must
        match across backends too — a tight window forces it to fire."""
        b, n, m, seed = shape
        batch = GameBatch.from_seeds([seed + i for i in range(b)], n, m)

        def solve():
            return batch_fixpoint_mixed_nash(
                batch.weights,
                batch.capacities,
                batch.initial_traffic,
                stall_rounds=5,
            )

        reference = solve()
        with use_backend("numba"):
            jit = solve()
        np.testing.assert_array_equal(jit.stalled, reference.stalled)
        np.testing.assert_array_equal(jit.rounds, reference.rounds)
        np.testing.assert_array_equal(
            jit.probabilities, reference.probabilities
        )

    @settings(max_examples=15, deadline=None)
    @given(small_games())
    def test_nashify_traces_agree_state_for_state(self, shape):
        """Common-beliefs nashification: the JIT stepper walks the
        reference trajectory.

        Endpoint equality alone would accept a stepper that reaches the
        same equilibrium by different moves. Instead, every truncated
        JIT state (the fused hook after ``k`` moves) is handed back to
        the *reference* stepper, which must finish in exactly the
        remaining ``steps - k`` moves at the reference equilibrium —
        i.e. each intermediate JIT state lies on the reference
        trajectory at position ``k``."""
        b, n, m, seed = shape
        batch = GameBatch.from_seeds_kp([seed + i for i in range(b)], n, m)
        start = _random_start(b, n, m, seed)

        reference = batch_nashify_common_beliefs(batch, start)
        with use_backend("numba"):
            jit = batch_nashify_common_beliefs(batch, start)
        np.testing.assert_array_equal(jit.profiles, reference.profiles)
        np.testing.assert_array_equal(jit.steps, reference.steps)
        for name in (
            "sc1_before", "sc1_after", "sc2_before", "sc2_after",
            "max_congestion_before", "max_congestion_after",
        ):
            np.testing.assert_allclose(
                getattr(jit, name), getattr(reference, name), rtol=1e-12
            )

        hook = get_backend("numba").nashify_common_loop
        caps_row = batch.capacities[:, 0, :]
        for k in range(1, int(reference.steps.max()) + 1):
            partial, steps_k, _converged = hook(
                start.copy(),
                batch.weights,
                batch.capacities,
                caps_row,
                batch.initial_traffic,
                k,
            )
            np.testing.assert_array_equal(
                steps_k, np.minimum(reference.steps, k)
            )
            rest = batch_nashify_common_beliefs(batch, partial)
            np.testing.assert_array_equal(rest.profiles, reference.profiles)
            np.testing.assert_array_equal(
                rest.steps, np.maximum(reference.steps - k, 0)
            )

    def test_dynamics_hook_declines_huge_radix(self):
        """Cycle detection needs ``m**n`` profile codes in int64; past
        that the hook must decline so the generic path runs."""
        backend = get_backend("numba")
        b, n, m = 1, 41, 3  # 3**41 > 2**63
        sigma = np.zeros((b, n), dtype=np.intp)
        weights = np.ones((b, n))
        capacities = np.ones((b, n, m))
        traffic = np.zeros((b, m))
        declined = backend.dynamics_loop(
            sigma, weights, capacities, traffic, True, False, 5, 1e-9, True
        )
        assert declined is None


@pytest.mark.skipif(
    not available_backends().get("cupy", False),
    reason="cupy not installed — GPU backend unregistered on this host",
)
class TestCupyDifferential:  # pragma: no cover - needs CUDA host
    def test_loads_agree_within_tolerance(self):
        batch = GameBatch.from_seeds([0, 1], 3, 3)
        sigma = _random_start(2, 3, 3, 0)
        reference = batch_loads(sigma, batch.weights, 3)
        with use_backend("cupy"):
            gpu = np.asarray(batch_loads(sigma, batch.weights, 3))
        np.testing.assert_allclose(gpu, reference, rtol=1e-10)


@pytest.mark.skipif(
    not available_backends().get("jax", False),
    reason="jax not installed — GPU backend unregistered on this host",
)
class TestJaxDifferential:  # pragma: no cover - needs jax install
    def test_loads_agree_within_tolerance(self):
        batch = GameBatch.from_seeds([0, 1], 3, 3)
        sigma = _random_start(2, 3, 3, 0)
        reference = batch_loads(sigma, batch.weights, 3)
        with use_backend("jax"):
            accel = np.asarray(batch_loads(sigma, batch.weights, 3))
        np.testing.assert_allclose(accel, reference, rtol=1e-6)
