"""Smoke tests: the fast example scripts must run end to end.

(The two long-running examples — conjecture_hunt and isp_uncertainty —
are exercised indirectly: their library entry points have dedicated
tests; running them here would dominate suite time.)
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.skipif(not EXAMPLES.exists(), reason="examples not present")
class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "pure NE via atwolinks" in out
        assert "SC1" in out and "SC2" in out
        assert "Theorem 4.14 upper bound" in out

    def test_worst_case_anarchy(self, capsys):
        out = run_example("worst_case_anarchy.py", capsys)
        assert "Lemma 4.9 per-user dominance holds: True" in out
        assert "Theorem 4.14 bound" in out

    def test_kp_vs_uncertain(self, capsys):
        out = run_example("kp_vs_uncertain.py", capsys)
        assert "P(truth)" in out
        assert "objective max congestion" in out

    def test_nashification(self, capsys):
        out = run_example("nashification.py", capsys)
        assert "nashify never worsens max congestion" in out
        # Every common-beliefs row must report the guarantee as preserved.
        assert "NO" not in out.split("Distinct beliefs")[0]

    def test_batch_campaign(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["batch_campaign.py", "500"])
        out = run_example("batch_campaign.py", capsys)
        assert "Batched conjecture sweep" in out
        assert "Conjecture 3.7 supported" in out
