"""Tests for PoA bounds and empirical ratios (Theorems 4.13/4.14)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.poa import (
    PoAObservation,
    empirical_coordination_ratios,
    poa_bound_general,
    poa_bound_uniform,
    poa_study,
)
from repro.generators.games import random_game, random_uniform_beliefs_game
from repro.generators.suites import GridCell


class TestBounds:
    def test_uniform_bound_formula(self):
        game = random_uniform_beliefs_game(4, 3, seed=0)
        caps = game.capacities
        expected = (caps.max() / caps.min()) * (3 + 4 - 1) / 3
        assert poa_bound_uniform(game) == pytest.approx(expected)

    def test_general_bound_formula(self):
        game = random_game(4, 3, seed=1)
        caps = game.capacities
        expected = (
            caps.max() ** 2 / caps.min() * (3 + 4 - 1) / caps.min(axis=0).sum()
        )
        assert poa_bound_general(game) == pytest.approx(expected)

    def test_bounds_at_least_one(self):
        """The bounds must never drop below 1 (OPT is a lower bound)."""
        for seed in range(10):
            game = random_game(3, 3, seed=seed)
            assert poa_bound_general(game) >= 1.0
            gu = random_uniform_beliefs_game(3, 3, seed=seed)
            assert poa_bound_uniform(gu) >= 1.0

    def test_identical_capacities_uniform_bound(self):
        from repro.model.game import UncertainRoutingGame

        game = UncertainRoutingGame.from_capacities(
            [1.0, 1.0, 1.0], np.ones((3, 2))
        )
        # cmax = cmin -> bound = (m + n - 1)/m = 4/2.
        assert poa_bound_uniform(game) == pytest.approx(2.0)


class TestEmpiricalRatios:
    def test_ratios_at_least_one(self):
        game = random_game(3, 2, seed=2)
        r1, r2 = empirical_coordination_ratios(game)
        assert r1 >= 1.0 - 1e-9
        assert r2 >= 1.0 - 1e-9

    def test_bound_dominates_uniform(self):
        """Theorem 4.13 on sampled uniform-beliefs instances."""
        for seed in range(15):
            game = random_uniform_beliefs_game(4, 2, seed=seed)
            r1, r2 = empirical_coordination_ratios(game)
            bound = poa_bound_uniform(game)
            assert r1 <= bound * (1 + 1e-9)
            assert r2 <= bound * (1 + 1e-9)

    def test_bound_dominates_general(self):
        """Theorem 4.14 on sampled general instances."""
        for seed in range(15):
            game = random_game(4, 2, seed=seed)
            r1, r2 = empirical_coordination_ratios(game)
            bound = poa_bound_general(game)
            assert r1 <= bound * (1 + 1e-9)
            assert r2 <= bound * (1 + 1e-9)

    def test_explicit_equilibria_accepted(self):
        from repro.equilibria.enumeration import pure_nash_profiles

        game = random_game(3, 2, seed=5)
        eqs = pure_nash_profiles(game)
        r1, r2 = empirical_coordination_ratios(game, eqs)
        assert r1 >= 1.0 - 1e-9

    def test_raises_without_equilibria(self):
        game = random_game(3, 2, seed=6)
        with pytest.raises(ValueError):
            empirical_coordination_ratios(game, [])


class TestPoAStudy:
    def test_study_returns_observations(self):
        grid = [GridCell(3, 2, 3)]
        obs = poa_study(grid, uniform_beliefs=False, label="test")
        assert len(obs) == 3
        for o in obs:
            assert isinstance(o, PoAObservation)
            assert o.bound_holds()

    def test_uniform_study(self):
        grid = [GridCell(3, 2, 3)]
        obs = poa_study(grid, uniform_beliefs=True, label="test-u")
        assert all(o.bound_holds() for o in obs)

    def test_slack_properties(self):
        obs = PoAObservation(3, 2, 1.2, 1.1, 3.6, 4)
        assert obs.slack_sc1 == pytest.approx(3.0)
        assert obs.slack_sc2 == pytest.approx(3.6 / 1.1)

    def test_deterministic(self):
        grid = [GridCell(3, 2, 2)]
        a = poa_study(grid, uniform_beliefs=False, label="same")
        b = poa_study(grid, uniform_beliefs=False, label="same")
        assert [(o.ratio_sc1, o.bound) for o in a] == [
            (o.ratio_sc1, o.bound) for o in b
        ]
