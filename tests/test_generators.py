"""Tests for the instance generators and workload suites."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.generators.games import (
    random_game,
    random_kp_game,
    random_symmetric_game,
    random_two_link_game,
    random_uniform_beliefs_game,
    random_weights,
)
from repro.generators.suites import (
    conjecture_grid,
    poa_grid,
    scaling_sizes,
    small_verification_grid,
)


class TestRandomWeights:
    @pytest.mark.parametrize("kind", ["uniform", "exponential", "lognormal", "integer"])
    def test_positive(self, kind):
        w = random_weights(10, kind=kind, seed=0)
        assert w.shape == (10,)
        assert np.all(w > 0)

    def test_integer_kind_is_integral(self):
        w = random_weights(10, kind="integer", seed=1)
        np.testing.assert_array_equal(w, np.round(w))

    def test_unknown_kind(self):
        with pytest.raises(ModelError):
            random_weights(5, kind="gaussian")  # type: ignore[arg-type]

    def test_too_few_users(self):
        with pytest.raises(ModelError):
            random_weights(1)

    def test_deterministic(self):
        np.testing.assert_array_equal(
            random_weights(5, seed=3), random_weights(5, seed=3)
        )


class TestGenerators:
    def test_random_game_shape(self):
        game = random_game(4, 3, num_states=5, seed=0)
        assert game.num_users == 4
        assert game.num_links == 3
        assert game.beliefs.states.num_states == 5

    def test_random_game_deterministic(self):
        a = random_game(4, 3, seed=9)
        b = random_game(4, 3, seed=9)
        np.testing.assert_array_equal(a.capacities, b.capacities)
        np.testing.assert_array_equal(a.weights, b.weights)

    def test_initial_traffic_flag(self):
        game = random_game(3, 3, with_initial_traffic=True, seed=1)
        assert game.initial_traffic.max() > 0
        game0 = random_game(3, 3, with_initial_traffic=False, seed=1)
        assert game0.initial_traffic.max() == 0

    def test_two_link_game(self):
        game = random_two_link_game(5, seed=2)
        assert game.num_links == 2

    def test_symmetric_game(self):
        game = random_symmetric_game(6, 3, weight=2.5, seed=3)
        assert game.has_symmetric_users()
        assert game.weights[0] == pytest.approx(2.5)

    def test_symmetric_rejects_bad_weight(self):
        with pytest.raises(ModelError):
            random_symmetric_game(4, 2, weight=0.0)

    def test_uniform_beliefs_game(self):
        game = random_uniform_beliefs_game(5, 4, seed=4)
        assert game.has_uniform_beliefs()

    def test_kp_game(self):
        game = random_kp_game(4, 3, seed=5)
        assert game.is_kp()

    def test_concentration_controls_spread(self):
        """Low concentration -> confident users -> effective capacities
        close to a single state's; high concentration -> averaged."""
        confident = random_game(3, 3, concentration=0.05, seed=6)
        vague = random_game(3, 3, concentration=50.0, seed=6)
        # Vague users share nearly identical effective capacities.
        spread_vague = np.ptp(vague.capacities, axis=0).max()
        spread_conf = np.ptp(confident.capacities, axis=0).max()
        assert spread_vague < spread_conf


class TestSuites:
    def test_conjecture_grid_is_exhaustively_checkable(self):
        for cell in conjecture_grid():
            assert cell.num_links**cell.num_users <= 100_000

    def test_small_verification_grid_supports_enumeration(self):
        for cell in small_verification_grid():
            assert (2**cell.num_links - 1) ** cell.num_users <= 300_000

    def test_poa_grid_sizes(self):
        for cell in poa_grid():
            assert cell.num_links**cell.num_users <= 200_000

    def test_scaling_sizes_monotone(self):
        for name in ("atwolinks", "asymmetric", "auniform"):
            sizes = scaling_sizes(name)
            assert sizes == sorted(sizes)
            assert len(sizes) >= 4

    def test_scaling_unknown(self):
        with pytest.raises(KeyError):
            scaling_sizes("nope")

    def test_replications_parameter(self):
        cells = list(conjecture_grid(replications=7))
        assert all(c.replications == 7 for c in cells)
