"""Tests for repro.model.beliefs — incl. the effective-capacity reduction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import BeliefError, DimensionError
from repro.model.beliefs import (
    Belief,
    BeliefProfile,
    common_belief_profile,
    dirichlet_belief,
    point_mass_belief,
    uniform_belief,
)
from repro.model.state import StateSpace


class TestBelief:
    def test_probabilities_normalised(self):
        b = Belief([0.5, 0.5])
        np.testing.assert_allclose(b.probabilities, [0.5, 0.5])

    def test_rejects_non_distribution(self):
        with pytest.raises(BeliefError):
            Belief([0.5, 0.6])

    def test_probability_of(self):
        b = Belief([0.3, 0.7])
        assert b.probability_of(1) == pytest.approx(0.7)

    def test_support(self):
        b = Belief([0.0, 1.0, 0.0])
        np.testing.assert_array_equal(b.support(), [1])

    def test_point_mass_detection(self):
        assert Belief([0.0, 1.0]).is_point_mass()
        assert not Belief([0.5, 0.5]).is_point_mass()

    def test_read_only(self):
        b = Belief([0.5, 0.5])
        with pytest.raises(ValueError):
            b.probabilities[0] = 0.9

    def test_equality_hash(self):
        assert Belief([0.5, 0.5]) == Belief([0.5, 0.5])
        assert hash(Belief([0.5, 0.5])) == hash(Belief([0.5, 0.5]))

    def test_eq_other_type(self):
        assert Belief([1.0]).__eq__("x") is NotImplemented


class TestEffectiveCapacities:
    def test_point_mass_recovers_state(self):
        states = StateSpace([[1.0, 2.0], [4.0, 8.0]])
        b = point_mass_belief(2, 1)
        np.testing.assert_allclose(b.effective_capacities(states), [4.0, 8.0])

    def test_harmonic_mean_formula(self):
        states = StateSpace([[1.0, 1.0], [3.0, 1.0]])
        b = Belief([0.5, 0.5])
        # 1 / (0.5/1 + 0.5/3) = 1 / (2/3) = 1.5 on link 0
        np.testing.assert_allclose(b.effective_capacities(states), [1.5, 1.0])

    def test_effective_capacity_below_arithmetic_mean(self):
        # Harmonic-type mean <= arithmetic mean (Jensen).
        states = StateSpace([[1.0, 5.0], [9.0, 5.0]])
        b = Belief([0.5, 0.5])
        eff = b.effective_capacities(states)
        assert eff[0] < 5.0
        assert eff[1] == pytest.approx(5.0)

    def test_dimension_mismatch(self):
        states = StateSpace([[1.0, 2.0]])
        with pytest.raises(DimensionError):
            Belief([0.5, 0.5]).effective_capacities(states)

    def test_expected_inverse_capacities(self):
        states = StateSpace([[2.0, 4.0]])
        b = Belief([1.0])
        np.testing.assert_allclose(
            b.expected_inverse_capacities(states), [0.5, 0.25]
        )


class TestFactories:
    def test_point_mass(self):
        b = point_mass_belief(3, 2)
        np.testing.assert_array_equal(b.probabilities, [0.0, 0.0, 1.0])

    def test_point_mass_out_of_range(self):
        with pytest.raises(BeliefError):
            point_mass_belief(2, 2)

    def test_uniform(self):
        b = uniform_belief(4)
        np.testing.assert_allclose(b.probabilities, 0.25)

    def test_uniform_rejects_zero(self):
        with pytest.raises(BeliefError):
            uniform_belief(0)

    def test_dirichlet_is_distribution(self):
        b = dirichlet_belief(5, seed=0)
        assert b.probabilities.sum() == pytest.approx(1.0)
        assert np.all(b.probabilities > 0)

    def test_dirichlet_deterministic(self):
        a = dirichlet_belief(4, seed=3)
        b = dirichlet_belief(4, seed=3)
        assert a == b

    def test_dirichlet_concentration_extremes(self):
        confident = dirichlet_belief(4, concentration=0.05, seed=1)
        vague = dirichlet_belief(4, concentration=100.0, seed=1)
        assert confident.probabilities.max() > vague.probabilities.max()

    def test_dirichlet_rejects_bad_concentration(self):
        with pytest.raises(BeliefError):
            dirichlet_belief(3, concentration=0.0)


class TestBeliefProfile:
    def test_from_matrix(self, two_state_space):
        p = BeliefProfile.from_matrix(two_state_space, [[1.0, 0.0], [0.0, 1.0]])
        assert p.num_users == 2

    def test_from_matrix_wrong_width(self, two_state_space):
        with pytest.raises(DimensionError):
            BeliefProfile.from_matrix(two_state_space, [[0.5, 0.3, 0.2]])

    def test_mismatched_belief_size(self, two_state_space):
        with pytest.raises(DimensionError):
            BeliefProfile(two_state_space, [Belief([1.0])])

    def test_empty_rejected(self, two_state_space):
        with pytest.raises(BeliefError):
            BeliefProfile(two_state_space, [])

    def test_belief_of_roundtrip(self, two_state_space):
        p = BeliefProfile.from_matrix(two_state_space, [[0.9, 0.1], [0.2, 0.8]])
        np.testing.assert_allclose(p.belief_of(1).probabilities, [0.2, 0.8])

    def test_iter(self, two_state_space):
        p = BeliefProfile.from_matrix(two_state_space, [[1.0, 0.0], [0.0, 1.0]])
        assert len(list(p)) == 2

    def test_effective_capacities_shape(self, two_state_space):
        p = BeliefProfile.random(two_state_space, 3, seed=0)
        assert p.effective_capacities().shape == (3, 2)

    def test_effective_capacities_match_per_user(self, two_state_space):
        p = BeliefProfile.random(two_state_space, 3, seed=1)
        full = p.effective_capacities()
        for i in range(3):
            np.testing.assert_allclose(
                full[i], p.belief_of(i).effective_capacities(two_state_space)
            )

    def test_is_common(self, two_state_space):
        common = common_belief_profile(two_state_space, 3, Belief([0.4, 0.6]))
        assert common.is_common()
        distinct = BeliefProfile.from_matrix(
            two_state_space, [[1.0, 0.0], [0.0, 1.0]]
        )
        assert not distinct.is_common()

    def test_is_kp(self, two_state_space):
        kp = common_belief_profile(two_state_space, 2, point_mass_belief(2, 0))
        assert kp.is_kp()
        soft = common_belief_profile(two_state_space, 2, Belief([0.6, 0.4]))
        assert not soft.is_kp()

    def test_random_deterministic(self, two_state_space):
        a = BeliefProfile.random(two_state_space, 4, seed=5)
        b = BeliefProfile.random(two_state_space, 4, seed=5)
        np.testing.assert_array_equal(a.matrix, b.matrix)

    def test_common_belief_profile_rejects_zero_users(self, two_state_space):
        with pytest.raises(BeliefError):
            common_belief_profile(two_state_space, 0, Belief([0.5, 0.5]))

    def test_repr(self, two_state_space):
        p = BeliefProfile.random(two_state_space, 2, seed=0)
        assert "num_users=2" in repr(p)
