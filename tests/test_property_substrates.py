"""Property-based tests for the substrates and social-cost invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.model.game import UncertainRoutingGame
from repro.model.social import opt1, opt2, sc1, sc2
from repro.substrates.player_specific import PlayerSpecificGame

positive = st.floats(min_value=0.05, max_value=20.0, allow_nan=False)


@st.composite
def player_specific_games(draw, max_players: int = 3, max_links: int = 3):
    n = draw(st.integers(2, max_players))
    m = draw(st.integers(2, max_links))
    weights = draw(
        st.lists(st.integers(1, 3), min_size=n, max_size=n)
    )
    total = sum(weights)
    base = draw(
        arrays(
            np.float64,
            (n, m),
            elements=st.floats(min_value=0.1, max_value=3.0),
        )
    )
    increments = draw(
        arrays(
            np.float64,
            (n, m, total),
            elements=st.floats(min_value=0.0, max_value=4.0),
        )
    )
    tables = np.concatenate(
        [base[:, :, None], base[:, :, None] + np.cumsum(increments, axis=2)],
        axis=2,
    )
    return PlayerSpecificGame(np.asarray(weights, dtype=np.int64), tables)


class TestPlayerSpecificProperties:
    @settings(max_examples=60, deadline=None)
    @given(player_specific_games())
    def test_loads_sum_to_total_weight(self, game):
        rng = np.random.default_rng(0)
        sigma = rng.integers(0, game.num_links, size=game.num_players)
        assert int(game.loads(sigma).sum()) == game.total_weight

    @settings(max_examples=60, deadline=None)
    @given(player_specific_games())
    def test_deviation_diagonal_matches_costs(self, game):
        rng = np.random.default_rng(1)
        sigma = rng.integers(0, game.num_links, size=game.num_players)
        dev = game.deviation_costs(sigma)
        np.testing.assert_allclose(
            dev[np.arange(game.num_players), sigma], game.costs_of(sigma)
        )

    @settings(max_examples=40, deadline=None)
    @given(player_specific_games())
    def test_nash_profiles_verify(self, game):
        for profile in game.pure_nash_profiles():
            assert game.is_pure_nash(profile)

    @settings(max_examples=40, deadline=None)
    @given(player_specific_games(max_players=3, max_links=2))
    def test_unweighted_instances_always_have_pne(self, game):
        """Milchtaich's theorem restricted to the unweighted draws."""
        if game.is_unweighted():
            assert game.exists_pure_nash()

    @settings(max_examples=40, deadline=None)
    @given(player_specific_games())
    def test_costs_monotone_under_joining(self, game):
        """Adding load to a player's link can never lower its cost."""
        rng = np.random.default_rng(2)
        sigma = rng.integers(0, game.num_links, size=game.num_players)
        costs = game.costs_of(sigma)
        # Move some other player onto player 0's link.
        other = 1
        if sigma[other] != sigma[0]:
            moved = sigma.copy()
            moved[other] = sigma[0]
            assert game.costs_of(moved)[0] >= costs[0] - 1e-12


@st.composite
def reduced_games(draw, max_users: int = 5, max_links: int = 3):
    n = draw(st.integers(2, max_users))
    m = draw(st.integers(2, max_links))
    caps = draw(arrays(np.float64, (n, m), elements=positive))
    weights = draw(arrays(np.float64, (n,), elements=positive))
    return UncertainRoutingGame.from_capacities(weights, caps)


class TestSocialCostProperties:
    @settings(max_examples=60, deadline=None)
    @given(reduced_games())
    def test_opt_lower_bounds_every_profile(self, game):
        rng = np.random.default_rng(3)
        o1, o2 = opt1(game), opt2(game)
        for _ in range(3):
            sigma = rng.integers(0, game.num_links, size=game.num_users)
            assert o1 <= sc1(game, sigma) + 1e-9
            assert o2 <= sc2(game, sigma) + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(reduced_games())
    def test_sc2_between_mean_and_sum(self, game):
        rng = np.random.default_rng(4)
        sigma = rng.integers(0, game.num_links, size=game.num_users)
        s1, s2 = sc1(game, sigma), sc2(game, sigma)
        assert s2 <= s1 + 1e-12
        assert s2 >= s1 / game.num_users - 1e-12

    @settings(max_examples=40, deadline=None)
    @given(reduced_games(max_users=4))
    def test_poa_bound_general_dominates(self, game):
        """Theorem 4.14 over arbitrary reduced forms, not just the
        generator families: every pure NE ratio sits below the bound."""
        from repro.analysis.poa import poa_bound_general
        from repro.equilibria.enumeration import pure_nash_profiles

        bound = poa_bound_general(game)
        o1, o2 = opt1(game), opt2(game)
        for eq in pure_nash_profiles(game):
            assert sc1(game, eq) / o1 <= bound * (1 + 1e-9)
            assert sc2(game, eq) / o2 <= bound * (1 + 1e-9)
