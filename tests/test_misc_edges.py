"""Edge-case tests across modules that the main suites touch lightly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError, NotFullyMixedError
from repro.model.game import UncertainRoutingGame
from repro.model.profiles import MixedProfile
from repro.model.social import optimum
from repro.equilibria.fully_mixed import fully_mixed_candidate
from repro.equilibria.potential import has_better_response_cycle
from repro.generators.games import random_game


class TestHasBetterResponseCycle:
    def test_small_game_exact_path(self):
        game = random_game(3, 3, seed=0)
        # Exact graph test: sampled instances have no improvement cycles.
        assert has_better_response_cycle(game) is False

    def test_large_game_sampling_path(self):
        # 4^10 states exceed the graph limit -> trajectory sampling branch.
        game = random_game(10, 4, seed=1)
        assert has_better_response_cycle(game, restarts=3, seed=0) is False


class TestFullyMixedEdgeCases:
    def test_profile_of_noninterior_candidate_rejected(self):
        caps = np.array([[100.0, 0.01], [100.0, 0.01]])
        game = UncertainRoutingGame.from_capacities([1.0, 1.0], caps)
        cand = fully_mixed_candidate(game)
        assert not cand.exists
        # The raw candidate has negative entries, so MixedProfile must
        # refuse to validate it.
        with pytest.raises(Exception):
            cand.profile()

    def test_two_users_two_links_boundary(self):
        """n=2 is the smallest legal game; the (n-1) divisor must behave."""
        game = UncertainRoutingGame.from_capacities(
            [1.0, 1.0], [[1.0, 1.0], [1.0, 1.0]]
        )
        cand = fully_mixed_candidate(game)
        np.testing.assert_allclose(cand.probabilities, 0.5)
        assert cand.exists


class TestOptimumEdgeCases:
    def test_auto_method_selects_bb_for_large(self):
        game = random_game(14, 3, seed=2)
        result = optimum(game, "max", method="auto")
        assert result.method == "branch_and_bound"
        assert result.value > 0

    def test_auto_method_selects_exhaustive_for_small(self):
        game = random_game(4, 3, seed=3)
        result = optimum(game, "sum", method="auto")
        assert result.method == "exhaustive"

    def test_bb_on_two_users(self):
        game = random_game(2, 2, seed=4)
        ex = optimum(game, "sum", method="exhaustive").value
        bb = optimum(game, "sum", method="branch_and_bound").value
        assert bb == pytest.approx(ex)


class TestMixedProfileEdge:
    def test_single_link_rows_rejected_if_wrong_sum(self):
        with pytest.raises(Exception):
            MixedProfile([[0.7], [0.7]])

    def test_three_users_support_of_boundary(self):
        p = MixedProfile([[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]])
        assert list(p.support_of(0)) == [0]
        assert list(p.support_of(2)) == [0, 1]


class TestGameEdgeCases:
    def test_minimum_legal_game(self):
        game = UncertainRoutingGame.from_capacities(
            [1.0, 1.0], [[1.0, 1.0], [1.0, 1.0]]
        )
        assert game.num_users == 2 and game.num_links == 2

    def test_very_asymmetric_weights(self):
        game = UncertainRoutingGame.from_capacities(
            [1e-6, 1e6], [[1.0, 1.0], [1.0, 1.0]]
        )
        from repro.equilibria.two_links import atwolinks
        from repro.equilibria.conditions import is_pure_nash

        assert is_pure_nash(game, atwolinks(game))

    def test_extreme_capacity_ratio(self):
        game = UncertainRoutingGame.from_capacities(
            [1.0, 1.0, 1.0], np.array([[1e-6, 1e6]] * 3)
        )
        from repro.equilibria.enumeration import exists_pure_nash

        assert exists_pure_nash(game)

    def test_subgame_of_subgame(self, three_user_game):
        sub = three_user_game.subgame([0, 1, 2]).subgame([0, 2])
        assert sub.num_users == 2

    def test_large_reduced_form_constructible(self):
        caps = np.random.default_rng(0).uniform(0.5, 2.0, size=(500, 50))
        game = UncertainRoutingGame.from_capacities(np.ones(500), caps)
        assert game.capacities.shape == (500, 50)


class TestKpEdgeCases:
    def test_expected_max_congestion_bad_samples(self):
        from repro.substrates.kp import expected_max_congestion

        game = UncertainRoutingGame.kp([1.0, 1.0], [1.0, 1.0])
        p = MixedProfile(np.full((2, 2), 0.5))
        with pytest.raises(ModelError):
            expected_max_congestion(game, p, exact_limit=0, num_samples=0)
