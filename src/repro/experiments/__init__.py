"""Experiment runners E1-E12: each regenerates one paper artefact
(figure/algorithm or theorem claim) and reports a pass/fail verdict."""

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = ["ExperimentResult", "EXPERIMENTS", "get_experiment", "run_experiment"]
