"""Experiments E10-E12: price-of-anarchy bounds and the Milchtaich contrast.

* E10 — Theorem 4.13: the uniform-beliefs coordination-ratio bound
  dominates the empirical worst equilibrium ratio on every instance.
* E11 — Theorem 4.14: the general bound likewise.
* E12 — Section 1 + [17]: player-specific games admit no-PNE witnesses;
  multiplicative (our-model) instances sampled identically all have PNE.

Execution model: E10/E11 run :func:`repro.analysis.poa.poa_study`'s
spec through the shared campaign runtime; E12's multiplicative sweep is
its own small spec (the witness verification and the exact constraint
search are deterministic and run outside the sweep).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.analysis.poa import poa_study, poa_sweep_spec
from repro.experiments.base import ExperimentResult
from repro.generators.suites import GridCell, poa_grid
from repro.runtime import ResultStore, SweepSpec, run_sweep
from repro.substrates.milchtaich import (
    canonical_counterexample,
    multiplicative_pne_hits,
    search_no_pne_instance,
)
from repro.util.parallel import ReplicationChunk
from repro.util.tables import Table

__all__ = [
    "run_e10", "run_e11", "run_e12",
    "e10_specs", "e11_specs", "e12_specs",
]


def _poa_cells(quick: bool) -> tuple[GridCell, ...]:
    if quick:
        return tuple(GridCell(n, m, 6) for (n, m) in [(3, 2), (4, 3), (5, 2)])
    return tuple(poa_grid())


def e10_specs(*, quick: bool = False) -> tuple[SweepSpec, ...]:
    return (
        poa_sweep_spec(_poa_cells(quick), uniform_beliefs=True, label="E10"),
    )


def e11_specs(*, quick: bool = False) -> tuple[SweepSpec, ...]:
    return (
        poa_sweep_spec(_poa_cells(quick), uniform_beliefs=False, label="E11"),
    )


def _poa_result(
    experiment_id: str,
    title: str,
    *,
    uniform_beliefs: bool,
    quick: bool,
    jobs: int = 1,
    batch_size: int | None = None,
    seed: int | None = None,
    store: Union[ResultStore, str, Path, None] = None,
    resume: bool = False,
) -> ExperimentResult:
    observations = poa_study(
        _poa_cells(quick),
        uniform_beliefs=uniform_beliefs,
        label=experiment_id,
        jobs=jobs,
        batch_size=batch_size,
        seed=seed,
        store=store,
        resume=resume,
    )
    table = Table(
        ["n", "m", "worst SC1/OPT1", "worst SC2/OPT2", "bound", "holds"],
        title=f"{experiment_id} — empirical ratio vs theorem bound",
    )
    # Aggregate per cell: worst observed ratio, tightest bound seen.
    passed = True
    by_cell: dict[tuple[int, int], list] = {}
    for obs in observations:
        by_cell.setdefault((obs.num_users, obs.num_links), []).append(obs)
    for (n, m), cell_obs in sorted(by_cell.items()):
        worst1 = max(o.ratio_sc1 for o in cell_obs)
        worst2 = max(o.ratio_sc2 for o in cell_obs)
        min_bound = min(o.bound for o in cell_obs)
        holds = all(o.bound_holds() for o in cell_obs)
        passed = passed and holds
        table.add_row([n, m, worst1, worst2, min_bound, "yes" if holds else "NO"])
    return ExperimentResult(
        experiment_id,
        title,
        passed=passed,
        tables=[table],
        details={
            "observations": len(observations),
            "observations_data": [
                {
                    "n": o.num_users, "m": o.num_links,
                    "ratio_sc1": o.ratio_sc1, "ratio_sc2": o.ratio_sc2,
                    "bound": o.bound, "num_equilibria": o.num_equilibria,
                }
                for o in observations
            ],
        },
    )


def run_e10(
    *,
    quick: bool = False,
    jobs: int = 1,
    batch_size: int | None = None,
    seed: int | None = None,
    store: Union[ResultStore, str, Path, None] = None,
    resume: bool = False,
) -> ExperimentResult:
    """E10 — Theorem 4.13 bound under uniform beliefs."""
    return _poa_result(
        "E10",
        "Theorem 4.13 — PoA bound, uniform user beliefs",
        uniform_beliefs=True,
        quick=quick,
        jobs=jobs,
        batch_size=batch_size,
        seed=seed,
        store=store,
        resume=resume,
    )


def run_e11(
    *,
    quick: bool = False,
    jobs: int = 1,
    batch_size: int | None = None,
    seed: int | None = None,
    store: Union[ResultStore, str, Path, None] = None,
    resume: bool = False,
) -> ExperimentResult:
    """E11 — Theorem 4.14 bound in the general case."""
    return _poa_result(
        "E11",
        "Theorem 4.14 — PoA bound, general case",
        uniform_beliefs=False,
        quick=quick,
        jobs=jobs,
        batch_size=batch_size,
        seed=seed,
        store=store,
        resume=resume,
    )


def _examine_e12_chunk(chunk: ReplicationChunk) -> int:
    """Multiplicative instances with a pure NE among the chunk's seeds."""
    return multiplicative_pne_hits(chunk.seeds(), num_links=chunk.num_links)


def e12_specs(*, quick: bool = False) -> tuple[SweepSpec, ...]:
    """E12's declarative sweep: the multiplicative-contrast sample.

    One ``(3, 3)`` cell — the witness's three users and three links.
    """
    reps = 50 if quick else 300
    return (SweepSpec("E12", "E12", (GridCell(3, 3, reps),), _examine_e12_chunk),)


def run_e12(
    *,
    quick: bool = False,
    jobs: int = 1,
    batch_size: int | None = None,
    seed: int | None = None,
    store: Union[ResultStore, str, Path, None] = None,
    resume: bool = False,
) -> ExperimentResult:
    """E12 — Milchtaich separation: no-PNE witness vs multiplicative sweep."""
    report = canonical_counterexample()
    witness_ok = report.verify()
    searched_tries = None
    if not quick:
        # Also re-derive a witness from scratch with the exact search.
        try:
            searched = search_no_pne_instance(
                time_budget=150.0, restart_budget=6.0, seed=2
            )
            searched_tries = searched.tries
        except Exception:
            searched_tries = -1  # budget ran out; canonical witness suffices
    (spec,) = e12_specs(quick=quick)
    sweep = run_sweep(
        spec, jobs=jobs, batch_size=batch_size, seed=seed, store=store,
        resume=resume,
    )
    sweep_n = spec.cells[0].replications
    hits = sum(sweep.chunk_payloads)
    table = Table(["check", "result"], title="E12 — player-specific separation")
    table.add_row(["stored witness verified (27 profiles, none NE)", witness_ok])
    if searched_tries is not None:
        table.add_row(
            ["fresh witness re-derived by constraint search (restarts)",
             searched_tries if searched_tries > 0 else "timeout"]
        )
    table.add_row(
        [f"multiplicative instances with PNE (of {sweep_n})", hits]
    )
    passed = witness_ok and hits == sweep_n
    return ExperimentResult(
        "E12",
        "[17] contrast — player-specific games lack PNE, our model's do not",
        passed=passed,
        tables=[table],
        details={"witness_verified": witness_ok, "sweep_hits": hits, "sweep_total": sweep_n},
    )
