"""Registry mapping experiment ids to runners (the per-experiment index)."""

from __future__ import annotations

import inspect
from typing import Callable

from repro.experiments.algorithms import run_e1, run_e2, run_e3, run_e4
from repro.experiments.anarchy import run_e10, run_e11, run_e12
from repro.experiments.base import ExperimentResult
from repro.experiments.campaign import run_e5, run_e6
from repro.experiments.mixed import run_e7, run_e8, run_e9

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment"]

Runner = Callable[..., ExperimentResult]

#: Experiment id -> (title, runner). Mirrors the DESIGN.md experiment index.
EXPERIMENTS: dict[str, tuple[str, Runner]] = {
    "E1": ("Figure 1 / Thm 3.3 — Atwolinks", run_e1),
    "E2": ("Figure 2 / Thm 3.5 — Asymmetric", run_e2),
    "E3": ("Figure 3 / Thm 3.6 — Auniform", run_e3),
    "E4": ("Section 3.1 — n=3 existence", run_e4),
    "E5": ("Section 3.2 — Conjecture 3.7 campaign", run_e5),
    "E6": ("Section 3.2 — no exact/ordinal potential", run_e6),
    "E7": ("Theorem 4.6 — FMNE closed form & uniqueness", run_e7),
    "E8": ("Theorem 4.8 — uniform beliefs => p=1/m", run_e8),
    "E9": ("Lemma 4.9 / Thms 4.11-4.12 — FMNE dominance", run_e9),
    "E10": ("Theorem 4.13 — PoA bound (uniform beliefs)", run_e10),
    "E11": ("Theorem 4.14 — PoA bound (general)", run_e11),
    "E12": ("[17] contrast — Milchtaich separation", run_e12),
}


def get_experiment(experiment_id: str) -> Runner:
    """The runner for *experiment_id* (KeyError with guidance otherwise)."""
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; valid ids: "
            f"{', '.join(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key][1]


def run_experiment(
    experiment_id: str, *, quick: bool = False, **options
) -> ExperimentResult:
    """Run one experiment by id.

    Extra keyword *options* (e.g. ``jobs``/``batch_size`` from the CLI)
    are forwarded to runners that declare them and silently dropped for
    runners that don't, so global flags can be applied to any id set.
    """
    runner = get_experiment(experiment_id)
    accepted = inspect.signature(runner).parameters
    kwargs = {k: v for k, v in options.items() if k in accepted}
    return runner(quick=quick, **kwargs)
