"""Registry mapping experiment ids to runners and sweep metadata."""

from __future__ import annotations

import inspect
from typing import Callable, NamedTuple

from repro.experiments.algorithms import (
    e1_specs, e2_specs, e3_specs, e4_specs,
    run_e1, run_e2, run_e3, run_e4,
)
from repro.experiments.anarchy import (
    e10_specs, e11_specs, e12_specs,
    run_e10, run_e11, run_e12,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.campaign import e5_specs, e6_specs, run_e5, run_e6
from repro.experiments.fixpoint_tier import e13_specs, run_e13
from repro.experiments.mixed import (
    e7_specs, e8_specs, e9_specs,
    run_e7, run_e8, run_e9,
)
from repro.runtime import SweepSpec

__all__ = [
    "EXPERIMENTS",
    "ExperimentEntry",
    "UNIVERSAL_OPTIONS",
    "get_experiment",
    "get_experiment_specs",
    "run_experiment",
]

Runner = Callable[..., ExperimentResult]
SpecFactory = Callable[..., tuple[SweepSpec, ...]]


class ExperimentEntry(NamedTuple):
    """One registry row: title, runner, and the runner's sweep metadata.

    ``specs(quick=...)`` returns the declarative
    :class:`~repro.runtime.spec.SweepSpec` objects the runner executes
    through the campaign runtime — the machine-readable description of
    the experiment's grid, seed labels and kernels.
    """

    title: str
    runner: Runner
    specs: SpecFactory


#: Experiment id -> (title, runner, spec factory). Mirrors the
#: DESIGN.md experiment index; tuple position 1 stays the runner for
#: backward compatibility with ``EXPERIMENTS[eid][1]`` callers.
EXPERIMENTS: dict[str, ExperimentEntry] = {
    "E1": ExperimentEntry("Figure 1 / Thm 3.3 — Atwolinks", run_e1, e1_specs),
    "E2": ExperimentEntry("Figure 2 / Thm 3.5 — Asymmetric", run_e2, e2_specs),
    "E3": ExperimentEntry("Figure 3 / Thm 3.6 — Auniform", run_e3, e3_specs),
    "E4": ExperimentEntry("Section 3.1 — n=3 existence", run_e4, e4_specs),
    "E5": ExperimentEntry(
        "Section 3.2 — Conjecture 3.7 campaign", run_e5, e5_specs
    ),
    "E6": ExperimentEntry(
        "Section 3.2 — no exact/ordinal potential", run_e6, e6_specs
    ),
    "E7": ExperimentEntry(
        "Theorem 4.6 — FMNE closed form & uniqueness", run_e7, e7_specs
    ),
    "E8": ExperimentEntry(
        "Theorem 4.8 — uniform beliefs => p=1/m", run_e8, e8_specs
    ),
    "E9": ExperimentEntry(
        "Lemma 4.9 / Thms 4.11-4.12 — FMNE dominance", run_e9, e9_specs
    ),
    "E10": ExperimentEntry(
        "Theorem 4.13 — PoA bound (uniform beliefs)", run_e10, e10_specs
    ),
    "E11": ExperimentEntry(
        "Theorem 4.14 — PoA bound (general)", run_e11, e11_specs
    ),
    "E12": ExperimentEntry(
        "[17] contrast — Milchtaich separation", run_e12, e12_specs
    ),
    "E13": ExperimentEntry(
        "Fixed-point tier — certified NE beyond enumeration",
        run_e13,
        e13_specs,
    ),
}

#: Global execution options every CLI invocation may carry. They are
#: forwarded to runners that declare them and dropped (not an error) for
#: runners that don't — they configure *how* a campaign executes, never
#: *what* it computes. Anything else unknown to a runner raises.
UNIVERSAL_OPTIONS = frozenset({"jobs", "batch_size", "seed", "store", "resume"})


def _entry(experiment_id: str) -> ExperimentEntry:
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; valid ids: "
            f"{', '.join(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key]


def get_experiment(experiment_id: str) -> Runner:
    """The runner for *experiment_id* (KeyError with guidance otherwise)."""
    return _entry(experiment_id).runner


def get_experiment_specs(
    experiment_id: str, *, quick: bool = False
) -> tuple[SweepSpec, ...]:
    """The declarative sweep specs behind *experiment_id*'s runner."""
    return _entry(experiment_id).specs(quick=quick)


def run_experiment(
    experiment_id: str, *, quick: bool = False, **options
) -> ExperimentResult:
    """Run one experiment by id.

    Universal execution options (:data:`UNIVERSAL_OPTIONS` — ``jobs``,
    ``batch_size``, ``seed``, ``store``, ``resume``) are forwarded to
    runners that declare them and dropped otherwise, so global CLI flags
    can be applied to any id set. Any *other* option unknown to the
    runner raises :class:`TypeError` instead of being silently ignored —
    a misspelled keyword must not masquerade as a successful run.
    """
    runner = get_experiment(experiment_id)
    accepted = inspect.signature(runner).parameters
    unknown = sorted(
        k for k in options if k not in accepted and k not in UNIVERSAL_OPTIONS
    )
    if unknown:
        raise TypeError(
            f"unknown option(s) for {experiment_id.upper()}: "
            f"{', '.join(unknown)}; the runner accepts "
            f"{', '.join(sorted(accepted))}"
        )
    kwargs = {k: v for k, v in options.items() if k in accepted}
    return runner(quick=quick, **kwargs)
