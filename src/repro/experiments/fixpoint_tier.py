"""Experiment E13: the fixed-point solver tier beyond enumeration.

Every other mixed-strategy experiment stops where support enumeration
stops (``m^n`` exhaustive censuses, k×k indifference systems). E13 runs
the iterative fixed-point solver
(:func:`repro.batch.fixpoint.batch_fixpoint_mixed_nash`) on games one
to two orders of magnitude wider — tens of users and links — and
verifies the two things the paper still predicts out there:

* **certified equilibria exist and the solver finds them** — every
  converged game's profile must pass the mixed-Nash oracle
  (:func:`repro.batch.mixed.batch_is_mixed_nash`) at the solver's
  certification tolerance, and non-convergence must be flagged, never
  silent;
* **FMNE dominance strain (Lemma 4.9 / Thms 4.11-4.12)** — wherever
  the fully mixed closed form is interior, the solver's equilibrium
  must be dominated by it user-by-user, exactly the E9 check but at
  widths where enumerating "every equilibrium" is impossible, so the
  solver's one certified equilibrium stands in for the census.

The sweep runs two seeded families because interiority is
width-sensitive: general heterogeneous-belief draws essentially never
admit an interior fully mixed point past a dozen users (the closed
form goes non-positive somewhere), while uniform-beliefs draws always
do (Thm 4.8). The general family carries the certification leg; the
uniform family keeps the dominance leg non-vacuous at every width.

Execution model matches E7-E9: a declarative
:class:`~repro.runtime.spec.SweepSpec` over a seeded grid, chunk
kernels that stack replications into a
:class:`~repro.batch.container.GameBatch`, and bit-identical results
under any ``jobs`` / ``batch_size`` / ``resume`` configuration because
per-rep seeds come from :func:`~repro.util.rng.stable_seed` and the
solver trajectory of each game is independent of its batch-mates.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.batch.container import GameBatch
from repro.batch.fixpoint import batch_fixpoint_mixed_nash
from repro.batch.mixed import (
    batch_fully_mixed_candidate,
    batch_min_expected_latencies,
)
from repro.experiments.base import ExperimentResult
from repro.generators.suites import GridCell
from repro.runtime import ResultStore, SweepSpec, run_sweep
from repro.util.parallel import ReplicationChunk
from repro.util.tables import Table

__all__ = ["run_e13", "e13_specs"]

#: Relative dominance slack, matching E9's comparison against the
#: closed form (the solver residual itself is certified far tighter).
_DOMINANCE_RTOL = 1e-7


def _solve_chunk_batch(
    batch: GameBatch,
) -> tuple[int, int, int, int, int, float, int]:
    """``(games, converged, certified, dominance checked, violations,
    worst residual, total rounds)`` for one stacked chunk."""
    result = batch_fixpoint_mixed_nash(
        batch.weights, batch.capacities, batch.initial_traffic
    )
    fm = batch_fully_mixed_candidate(
        batch.weights, batch.capacities, batch.initial_traffic
    )
    comparable = np.flatnonzero(fm.exists & result.converged)
    violations = 0
    if comparable.size:
        lat = batch_min_expected_latencies(
            result.probabilities[comparable],
            batch.weights[comparable],
            batch.capacities[comparable],
            batch.initial_traffic[comparable],
        )  # (K, n)
        reference = fm.latencies[comparable]
        scale = np.maximum(np.abs(reference), 1.0)
        violations = int(
            np.count_nonzero(lat - reference > _DOMINANCE_RTOL * scale)
        )
    return (
        len(batch),
        int(result.converged.sum()),
        int(result.certified.sum()),
        int(comparable.size),
        violations,
        float(result.residuals[result.converged].max(initial=0.0)),
        int(result.rounds.sum()),
    )


def _examine_e13_chunk(
    chunk: ReplicationChunk,
) -> tuple[int, int, int, int, int, float, int]:
    """The general heterogeneous-belief family (certification leg)."""
    return _solve_chunk_batch(
        GameBatch.from_seeds(chunk.seeds(), chunk.num_users, chunk.num_links)
    )


def _examine_e13_uniform_chunk(
    chunk: ReplicationChunk,
) -> tuple[int, int, int, int, int, float, int]:
    """The uniform-beliefs family (interior FMNE — dominance leg).

    Drawn *with* initial traffic: without it the equiprobable start is
    already the equilibrium (Thm 4.8) and the solver would converge in
    zero rounds, proving nothing about the iteration.
    """
    return _solve_chunk_batch(
        GameBatch.from_seeds_uniform_beliefs(
            chunk.seeds(),
            chunk.num_users,
            chunk.num_links,
            with_initial_traffic=True,
        )
    )


def e13_specs(*, quick: bool = False) -> tuple[SweepSpec, ...]:
    """E13's declarative sweeps: widths past the enumeration ceiling.

    The full grid tops out at ``(100, 10)`` — ``10^100`` pure profiles,
    ~95 orders of magnitude past the exhaustive-census services — while
    quick mode keeps two cells just past the ``m^n`` service guard so
    the smoke tier still exercises the beyond-enumeration claim. Two
    specs with distinct seed labels: the general family and the
    uniform-beliefs family (see the module docstring).
    """
    if quick:
        cells = ((12, 4, 2), (16, 4, 2))
    else:
        cells = ((16, 4, 6), (32, 6, 4), (64, 8, 3), (100, 10, 2))
    grid = tuple(GridCell(n, m, reps) for (n, m, reps) in cells)
    return (
        SweepSpec("E13", "E13", grid, _examine_e13_chunk),
        SweepSpec("E13", "E13-uniform", grid, _examine_e13_uniform_chunk),
    )


def run_e13(
    *,
    quick: bool = False,
    jobs: int = 1,
    batch_size: int | None = None,
    seed: int | None = None,
    store: Union[ResultStore, str, Path, None] = None,
    resume: bool = False,
) -> ExperimentResult:
    """E13 — certified fixed-point equilibria beyond enumeration."""
    general_spec, uniform_spec = e13_specs(quick=quick)
    table = Table(
        ["beliefs", "n", "m", "instances", "converged", "certified",
         "dominance", "violations", "worst residual", "mean rounds"],
        title="E13 — fixed-point solver tier (beyond enumeration)",
    )
    all_ok = True
    cells = []
    for family, spec in (
        ("general", general_spec), ("uniform", uniform_spec)
    ):
        sweep = run_sweep(
            spec, jobs=jobs, batch_size=batch_size, seed=seed, store=store,
            resume=resume,
        )
        totals = [[0, 0, 0, 0, 0, 0.0, 0] for _ in spec.cells]
        for cell_index, payload in zip(
            sweep.cell_of_chunk, sweep.chunk_payloads
        ):
            games, conv, cert, checked, bad, residual, rounds = payload
            cell = totals[cell_index]
            cell[0] += games
            cell[1] += conv
            cell[2] += cert
            cell[3] += checked
            cell[4] += bad
            cell[5] = max(cell[5], residual)
            cell[6] += rounds
        for grid_cell, (
            games, conv, cert, checked, bad, residual, rounds
        ) in zip(spec.cells, totals):
            # Every converged profile must be oracle-certified, and no
            # certified profile may beat the fully mixed point.
            # Convergence itself is reported, not asserted — a stalled
            # game is an honest flag, not a reproduction failure — but
            # the tier is only evidence if most games converge, and
            # the uniform family (interior FMNE by Thm 4.8) must
            # actually exercise the dominance comparison.
            ok = cert == conv and bad == 0 and conv * 2 >= games
            if family == "uniform":
                ok = ok and checked == conv and checked > 0
            all_ok = all_ok and ok
            cells.append(
                {
                    "family": family,
                    "n": grid_cell.num_users, "m": grid_cell.num_links,
                    "reps": grid_cell.replications, "games": games,
                    "converged": conv, "certified": cert,
                    "dominance_checked": checked, "violations": bad,
                    "worst_residual": residual,
                }
            )
            table.add_row(
                [family, grid_cell.num_users, grid_cell.num_links,
                 grid_cell.replications, f"{conv}/{games}",
                 f"{cert}/{conv}", checked, bad, f"{residual:.2e}",
                 round(rounds / max(games, 1))]
            )
    return ExperimentResult(
        "E13",
        "Fixed-point solver: certified mixed equilibria past enumeration",
        passed=all_ok,
        tables=[table],
        details={"all_ok": all_ok, "cells": cells},
    )
