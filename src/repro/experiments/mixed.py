"""Experiments E7-E9: fully mixed Nash equilibria.

* E7 — Theorem 4.6 / Corollary 4.7: the closed form is Nash whenever
  interior, unique among fully mixed equilibria (cross-checked against
  support enumeration), and O(nm) to evaluate.
* E8 — Theorem 4.8: uniform user beliefs force ``p^l_i = 1/m``.
* E9 — Lemma 4.9 / Theorems 4.11-4.12: the fully mixed point dominates
  every equilibrium user-by-user, hence maximises SC1 and SC2.

Execution model: each experiment declares a
:class:`~repro.runtime.spec.SweepSpec` (cell grid + per-chunk kernel)
and delegates execution — chunking, process-pool fan-out, checkpoint/
resume — to the shared campaign runtime. Inside a kernel each chunk's
replications are stacked into a :class:`~repro.batch.container.GameBatch`
and the closed-form candidates, Nash verdicts and dominance comparisons
are evaluated by the batched mixed kernels (:mod:`repro.batch.mixed`);
the support-enumeration cross-checks run on the batched
``(B, k, k)``-stacked indifference solver
(:func:`repro.batch.support.batch_enumerate_mixed_nash`), so no
per-game sequential path remains. Per-rep seeds come from
:func:`~repro.util.rng.stable_seed`, so results are bit-identical
regardless of batching, chunking, worker count or resume — and
identical to the pre-batch per-game loops, which
``tests/data/mixed_seed_baseline.json`` pins.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.batch.container import GameBatch
from repro.batch.mixed import (
    batch_fully_mixed_candidate,
    batch_is_mixed_nash,
    batch_min_expected_latencies,
    normalize_rows,
)
from repro.batch.support import batch_enumerate_mixed_nash
from repro.experiments.base import ExperimentResult
from repro.generators.suites import GridCell, small_verification_grid
from repro.runtime import ResultStore, SweepSpec, run_sweep
from repro.util.parallel import ReplicationChunk
from repro.util.tables import Table

__all__ = [
    "run_e7",
    "run_e8",
    "run_e9",
    "e7_specs",
    "e8_specs",
    "e9_specs",
]


def _chunk_batch(chunk: ReplicationChunk, *, uniform_beliefs: bool = False) -> GameBatch:
    """The chunk's instances, stacked (seeds independent of chunking)."""
    seeds = chunk.seeds()
    if uniform_beliefs:
        return GameBatch.from_seeds_uniform_beliefs(
            seeds, chunk.num_users, chunk.num_links
        )
    return GameBatch.from_seeds(seeds, chunk.num_users, chunk.num_links)


def _examine_e7_chunk(chunk: ReplicationChunk) -> tuple[int, int, int]:
    """(exists, closed form is NE, uniqueness verified) counts for a chunk.

    The candidate evaluation and Nash verdicts run batched; the support
    enumeration cross-check (exactly one fully mixed equilibrium, equal
    to the closed form) runs on the stacked indifference solver over the
    whole interior sub-batch at once.
    """
    batch = _chunk_batch(chunk)
    fm = batch_fully_mixed_candidate(
        batch.weights, batch.capacities, batch.initial_traffic
    )
    interior = np.flatnonzero(fm.exists)
    if interior.size == 0:
        return 0, 0, 0
    matrices = normalize_rows(fm.probabilities[interior])
    nash = batch_is_mixed_nash(
        matrices,
        batch.weights[interior],
        batch.capacities[interior],
        batch.initial_traffic[interior],
        tol=1e-7,
    )
    all_equilibria = batch_enumerate_mixed_nash(
        batch.weights[interior],
        batch.capacities[interior],
        batch.initial_traffic[interior],
    )
    unique_ok = 0
    for j, equilibria in enumerate(all_equilibria):
        fully_mixed = [
            eq for eq in equilibria if eq.is_fully_mixed(atol=1e-9)
        ]
        if len(fully_mixed) == 1 and np.allclose(
            fully_mixed[0].matrix, matrices[j], atol=1e-6
        ):
            unique_ok += 1
    return int(interior.size), int(nash.sum()), unique_ok


def e7_specs(*, quick: bool = False) -> tuple[SweepSpec, ...]:
    """E7's declarative sweep: the small-verification grid."""
    grid = tuple(small_verification_grid(replications=4 if quick else 12))
    return (SweepSpec("E7", "E7", grid, _examine_e7_chunk),)


def run_e7(
    *,
    quick: bool = False,
    jobs: int = 1,
    batch_size: int | None = None,
    seed: int | None = None,
    store: Union[ResultStore, str, Path, None] = None,
    resume: bool = False,
) -> ExperimentResult:
    """E7 — closed-form FMNE: Nash when interior, unique, O(nm)."""
    (spec,) = e7_specs(quick=quick)
    sweep = run_sweep(
        spec, jobs=jobs, batch_size=batch_size, seed=seed, store=store,
        resume=resume,
    )
    table = Table(
        ["n", "m", "instances", "FMNE exists", "closed form is NE",
         "uniqueness verified"],
        title="E7 — Theorem 4.6: fully mixed NE closed form",
    )
    totals = [[0, 0, 0] for _ in spec.cells]
    for cell_index, (exists, nash_ok, unique_ok) in zip(
        sweep.cell_of_chunk, sweep.chunk_payloads
    ):
        totals[cell_index][0] += exists
        totals[cell_index][1] += nash_ok
        totals[cell_index][2] += unique_ok

    all_ok = True
    cells = []
    for cell, (exists, nash_ok, unique_ok) in zip(spec.cells, totals):
        ok = nash_ok == exists and unique_ok == exists
        all_ok = all_ok and ok
        cells.append(
            {
                "n": cell.num_users, "m": cell.num_links,
                "reps": cell.replications, "exists": exists,
                "nash_ok": nash_ok, "unique_ok": unique_ok,
            }
        )
        table.add_row(
            [cell.num_users, cell.num_links, cell.replications, exists,
             f"{nash_ok}/{exists}", f"{unique_ok}/{exists}"]
        )
    return ExperimentResult(
        "E7",
        "Theorem 4.6 / Corollary 4.7 — FMNE closed form, uniqueness",
        passed=all_ok,
        tables=[table],
        details={"all_ok": all_ok, "cells": cells},
    )


def _examine_e8_chunk(chunk: ReplicationChunk) -> float:
    """Worst ``|p - 1/m|`` over the chunk's uniform-beliefs instances."""
    batch = _chunk_batch(chunk, uniform_beliefs=True)
    fm = batch_fully_mixed_candidate(
        batch.weights, batch.capacities, batch.initial_traffic
    )
    return float(np.abs(fm.probabilities - 1.0 / chunk.num_links).max())


def e8_specs(*, quick: bool = False) -> tuple[SweepSpec, ...]:
    """E8's declarative sweep."""
    reps = 20 if quick else 100
    cells = tuple(
        GridCell(n, m, reps) for (n, m) in [(2, 2), (3, 3), (5, 4), (8, 6)]
    )
    return (SweepSpec("E8", "E8", cells, _examine_e8_chunk),)


def run_e8(
    *,
    quick: bool = False,
    jobs: int = 1,
    batch_size: int | None = None,
    seed: int | None = None,
    store: Union[ResultStore, str, Path, None] = None,
    resume: bool = False,
) -> ExperimentResult:
    """E8 — uniform beliefs give the equiprobable fully mixed NE."""
    (spec,) = e8_specs(quick=quick)
    sweep = run_sweep(
        spec, jobs=jobs, batch_size=batch_size, seed=seed, store=store,
        resume=resume,
    )
    table = Table(
        ["n", "m", "instances", "max |p - 1/m|"],
        title="E8 — Theorem 4.8: uniform beliefs => p = 1/m",
    )
    cell_worst = [0.0] * len(spec.cells)
    for cell_index, dev in zip(sweep.cell_of_chunk, sweep.chunk_payloads):
        cell_worst[cell_index] = max(cell_worst[cell_index], dev)

    worst = 0.0
    cell_rows = []
    for cell, dev in zip(spec.cells, cell_worst):
        worst = max(worst, dev)
        cell_rows.append(
            {"n": cell.num_users, "m": cell.num_links,
             "reps": cell.replications, "max_dev": dev}
        )
        table.add_row([cell.num_users, cell.num_links, cell.replications, dev])
    passed = worst < 1e-9
    return ExperimentResult(
        "E8",
        "Theorem 4.8 — equiprobable FMNE under uniform beliefs",
        passed=passed,
        tables=[table],
        details={"max_deviation": worst, "cells": cell_rows},
    )


def _examine_e9_chunk(chunk: ReplicationChunk) -> tuple[int, int]:
    """(equilibria checked, dominance violations) for one chunk.

    The reference latencies (Lemma 4.1) come from one batched
    closed-form evaluation; every game's equilibria come from one
    stacked support-enumeration call over the whole chunk, and each
    game's equilibrium stack is compared against the reference in one
    kernel call. Violation counting mirrors
    :func:`repro.analysis.worst_case.verify_fmne_dominance` — per-user
    dominance per equilibrium, plus the SC1/SC2 maximality checks.
    """
    batch = _chunk_batch(chunk)
    fm = batch_fully_mixed_candidate(
        batch.weights, batch.capacities, batch.initial_traffic
    )
    all_equilibria = batch_enumerate_mixed_nash(
        batch.weights, batch.capacities, batch.initial_traffic
    )
    eqs = violations = 0
    for i, equilibria in enumerate(all_equilibria):
        eqs += len(equilibria)
        if not equilibria:
            continue
        reference = fm.latencies[i]
        lat = batch_min_expected_latencies(
            np.stack([eq.matrix for eq in equilibria]),
            batch.weights[i],
            batch.capacities[i],
            batch.initial_traffic[i],
        )  # (E, n)
        excess = lat - reference
        scale = np.maximum(np.abs(reference), 1.0)
        violations += int(np.count_nonzero(excess > 1e-7 * scale))
        # SC maximality follows from per-user dominance; check anyway.
        if float(lat.sum(axis=1).max()) > float(reference.sum()) * (1 + 1e-7):
            violations += 1
        if float(lat.max(axis=1).max()) > float(reference.max()) * (1 + 1e-7):
            violations += 1
    return eqs, violations


def e9_specs(*, quick: bool = False) -> tuple[SweepSpec, ...]:
    """E9's declarative sweep."""
    grid = tuple(small_verification_grid(replications=3 if quick else 8))
    return (SweepSpec("E9", "E9", grid, _examine_e9_chunk),)


def run_e9(
    *,
    quick: bool = False,
    jobs: int = 1,
    batch_size: int | None = None,
    seed: int | None = None,
    store: Union[ResultStore, str, Path, None] = None,
    resume: bool = False,
) -> ExperimentResult:
    """E9 — FMNE dominance: per-user latency and both social costs."""
    (spec,) = e9_specs(quick=quick)
    sweep = run_sweep(
        spec, jobs=jobs, batch_size=batch_size, seed=seed, store=store,
        resume=resume,
    )
    table = Table(
        ["n", "m", "instances", "equilibria checked", "violations"],
        title="E9 — Lemma 4.9 / Thms 4.11-4.12: FMNE maximises social cost",
    )
    totals = [[0, 0] for _ in spec.cells]
    for cell_index, (chunk_eqs, chunk_violations) in zip(
        sweep.cell_of_chunk, sweep.chunk_payloads
    ):
        totals[cell_index][0] += chunk_eqs
        totals[cell_index][1] += chunk_violations

    all_ok = True
    total_eqs = 0
    cells = []
    for cell, (eqs, violations) in zip(spec.cells, totals):
        all_ok = all_ok and violations == 0
        total_eqs += eqs
        cells.append(
            {
                "n": cell.num_users, "m": cell.num_links,
                "reps": cell.replications, "equilibria": eqs,
                "violations": violations,
            }
        )
        table.add_row(
            [cell.num_users, cell.num_links, cell.replications, eqs, violations]
        )
    return ExperimentResult(
        "E9",
        "Lemma 4.9 — fully mixed NE dominates every equilibrium",
        passed=all_ok,
        tables=[table],
        details={"total_equilibria": total_eqs, "all_ok": all_ok, "cells": cells},
    )
