"""Experiments E7-E9: fully mixed Nash equilibria.

* E7 — Theorem 4.6 / Corollary 4.7: the closed form is Nash whenever
  interior, unique among fully mixed equilibria (cross-checked against
  support enumeration), and O(nm) to evaluate.
* E8 — Theorem 4.8: uniform user beliefs force ``p^l_i = 1/m``.
* E9 — Lemma 4.9 / Theorems 4.11-4.12: the fully mixed point dominates
  every equilibrium user-by-user, hence maximises SC1 and SC2.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.worst_case import verify_fmne_dominance
from repro.equilibria.conditions import is_mixed_nash
from repro.equilibria.fully_mixed import fully_mixed_candidate
from repro.equilibria.support_enum import enumerate_mixed_nash
from repro.experiments.base import ExperimentResult
from repro.generators.games import random_game, random_uniform_beliefs_game
from repro.generators.suites import GridCell, small_verification_grid
from repro.util.rng import stable_seed
from repro.util.tables import Table

__all__ = ["run_e7", "run_e8", "run_e9"]


def run_e7(*, quick: bool = False) -> ExperimentResult:
    """E7 — closed-form FMNE: Nash when interior, unique, O(nm)."""
    grid = list(small_verification_grid(replications=4 if quick else 12))
    table = Table(
        ["n", "m", "instances", "FMNE exists", "closed form is NE",
         "uniqueness verified"],
        title="E7 — Theorem 4.6: fully mixed NE closed form",
    )
    all_ok = True
    for cell in grid:
        exists = nash_ok = unique_ok = 0
        for rep in range(cell.replications):
            game = random_game(
                cell.num_users, cell.num_links,
                seed=stable_seed("E7", cell.num_users, cell.num_links, rep),
            )
            cand = fully_mixed_candidate(game)
            if not cand.exists:
                continue
            exists += 1
            profile = cand.profile()
            if is_mixed_nash(game, profile, tol=1e-7):
                nash_ok += 1
            # Cross-check: support enumeration must find exactly one fully
            # mixed equilibrium, and it must match the closed form.
            fully_mixed = [
                eq for eq in enumerate_mixed_nash(game) if eq.is_fully_mixed(atol=1e-9)
            ]
            if len(fully_mixed) == 1 and np.allclose(
                fully_mixed[0].matrix, profile.matrix, atol=1e-6
            ):
                unique_ok += 1
        ok = nash_ok == exists and unique_ok == exists
        all_ok = all_ok and ok
        table.add_row(
            [cell.num_users, cell.num_links, cell.replications, exists,
             f"{nash_ok}/{exists}", f"{unique_ok}/{exists}"]
        )
    return ExperimentResult(
        "E7",
        "Theorem 4.6 / Corollary 4.7 — FMNE closed form, uniqueness",
        passed=all_ok,
        tables=[table],
        details={"all_ok": all_ok},
    )


def run_e8(*, quick: bool = False) -> ExperimentResult:
    """E8 — uniform beliefs give the equiprobable fully mixed NE."""
    reps = 20 if quick else 100
    cells = [(2, 2), (3, 3), (5, 4), (8, 6)]
    table = Table(
        ["n", "m", "instances", "max |p - 1/m|"],
        title="E8 — Theorem 4.8: uniform beliefs => p = 1/m",
    )
    worst = 0.0
    for n, m in cells:
        cell_worst = 0.0
        for rep in range(reps):
            game = random_uniform_beliefs_game(n, m, seed=stable_seed("E8", n, m, rep))
            cand = fully_mixed_candidate(game)
            cell_worst = max(
                cell_worst, float(np.abs(cand.probabilities - 1.0 / m).max())
            )
        worst = max(worst, cell_worst)
        table.add_row([n, m, reps, cell_worst])
    passed = worst < 1e-9
    return ExperimentResult(
        "E8",
        "Theorem 4.8 — equiprobable FMNE under uniform beliefs",
        passed=passed,
        tables=[table],
        details={"max_deviation": worst},
    )


def run_e9(*, quick: bool = False) -> ExperimentResult:
    """E9 — FMNE dominance: per-user latency and both social costs."""
    grid = list(small_verification_grid(replications=3 if quick else 8))
    table = Table(
        ["n", "m", "instances", "equilibria checked", "violations"],
        title="E9 — Lemma 4.9 / Thms 4.11-4.12: FMNE maximises social cost",
    )
    all_ok = True
    total_eqs = 0
    for cell in grid:
        eqs = violations = 0
        for rep in range(cell.replications):
            game = random_game(
                cell.num_users, cell.num_links,
                seed=stable_seed("E9", cell.num_users, cell.num_links, rep),
            )
            report = verify_fmne_dominance(game)
            eqs += len(report.equilibria)
            violations += len(report.violations)
            # SC maximality follows from per-user dominance; check anyway.
            if report.equilibria:
                if max(report.sc1_values) > report.fmne_sc1() * (1 + 1e-7):
                    violations += 1
                if max(report.sc2_values) > report.fmne_sc2() * (1 + 1e-7):
                    violations += 1
        all_ok = all_ok and violations == 0
        total_eqs += eqs
        table.add_row([cell.num_users, cell.num_links, cell.replications, eqs, violations])
    return ExperimentResult(
        "E9",
        "Lemma 4.9 — fully mixed NE dominates every equilibrium",
        passed=all_ok,
        tables=[table],
        details={"total_equilibria": total_eqs, "all_ok": all_ok},
    )
