"""Experiments E7-E9: fully mixed Nash equilibria.

* E7 — Theorem 4.6 / Corollary 4.7: the closed form is Nash whenever
  interior, unique among fully mixed equilibria (cross-checked against
  support enumeration), and O(nm) to evaluate.
* E8 — Theorem 4.8: uniform user beliefs force ``p^l_i = 1/m``.
* E9 — Lemma 4.9 / Theorems 4.11-4.12: the fully mixed point dominates
  every equilibrium user-by-user, hence maximises SC1 and SC2.

Execution model: each cell's replications are stacked into a
:class:`~repro.batch.container.GameBatch` and the closed-form
candidates, Nash verdicts and dominance comparisons are evaluated by
the batched mixed kernels (:mod:`repro.batch.mixed`); only the support
enumeration cross-checks remain per-game (their linear systems are
support-shaped, not stackable). Chunks of replications (``batch_size``)
can fan out over a process pool (``jobs``). Per-rep seeds come from
:func:`~repro.util.rng.stable_seed`, so results are bit-identical
regardless of batching, chunking or worker count — and identical to the
pre-batch per-game loops, which ``tests/data/mixed_seed_baseline.json``
pins.
"""

from __future__ import annotations

import numpy as np

from repro.batch.container import GameBatch
from repro.batch.mixed import (
    batch_fully_mixed_candidate,
    batch_is_mixed_nash,
    batch_min_expected_latencies,
    normalize_rows,
)
from repro.equilibria.support_enum import enumerate_mixed_nash
from repro.experiments.base import ExperimentResult
from repro.generators.suites import GridCell, small_verification_grid
from repro.util.parallel import ReplicationChunk, make_replication_chunks, run_tasks
from repro.util.tables import Table

__all__ = ["run_e7", "run_e8", "run_e9"]


def _chunk_batch(chunk: ReplicationChunk, *, uniform_beliefs: bool = False) -> GameBatch:
    """The chunk's instances, stacked (seeds independent of chunking)."""
    seeds = chunk.seeds()
    if uniform_beliefs:
        return GameBatch.from_seeds_uniform_beliefs(
            seeds, chunk.num_users, chunk.num_links
        )
    return GameBatch.from_seeds(seeds, chunk.num_users, chunk.num_links)


def _examine_e7_chunk(chunk: ReplicationChunk) -> tuple[int, int, int]:
    """(exists, closed form is NE, uniqueness verified) counts for a chunk.

    The candidate evaluation and Nash verdicts run batched; the support
    enumeration cross-check (exactly one fully mixed equilibrium, equal
    to the closed form) stays per-game.
    """
    batch = _chunk_batch(chunk)
    fm = batch_fully_mixed_candidate(
        batch.weights, batch.capacities, batch.initial_traffic
    )
    interior = np.flatnonzero(fm.exists)
    if interior.size == 0:
        return 0, 0, 0
    matrices = normalize_rows(fm.probabilities[interior])
    nash = batch_is_mixed_nash(
        matrices,
        batch.weights[interior],
        batch.capacities[interior],
        batch.initial_traffic[interior],
        tol=1e-7,
    )
    unique_ok = 0
    for j, i in enumerate(interior):
        game = batch.game(int(i))
        fully_mixed = [
            eq for eq in enumerate_mixed_nash(game) if eq.is_fully_mixed(atol=1e-9)
        ]
        if len(fully_mixed) == 1 and np.allclose(
            fully_mixed[0].matrix, matrices[j], atol=1e-6
        ):
            unique_ok += 1
    return int(interior.size), int(nash.sum()), unique_ok


def run_e7(
    *, quick: bool = False, jobs: int = 1, batch_size: int | None = None
) -> ExperimentResult:
    """E7 — closed-form FMNE: Nash when interior, unique, O(nm)."""
    grid = list(small_verification_grid(replications=4 if quick else 12))
    table = Table(
        ["n", "m", "instances", "FMNE exists", "closed form is NE",
         "uniqueness verified"],
        title="E7 — Theorem 4.6: fully mixed NE closed form",
    )
    chunks, cell_of_chunk = make_replication_chunks(grid, "E7", batch_size)
    chunk_results = run_tasks(_examine_e7_chunk, chunks, jobs=jobs)
    totals = [[0, 0, 0] for _ in grid]
    for cell_index, (exists, nash_ok, unique_ok) in zip(cell_of_chunk, chunk_results):
        totals[cell_index][0] += exists
        totals[cell_index][1] += nash_ok
        totals[cell_index][2] += unique_ok

    all_ok = True
    cells = []
    for cell, (exists, nash_ok, unique_ok) in zip(grid, totals):
        ok = nash_ok == exists and unique_ok == exists
        all_ok = all_ok and ok
        cells.append(
            {
                "n": cell.num_users, "m": cell.num_links,
                "reps": cell.replications, "exists": exists,
                "nash_ok": nash_ok, "unique_ok": unique_ok,
            }
        )
        table.add_row(
            [cell.num_users, cell.num_links, cell.replications, exists,
             f"{nash_ok}/{exists}", f"{unique_ok}/{exists}"]
        )
    return ExperimentResult(
        "E7",
        "Theorem 4.6 / Corollary 4.7 — FMNE closed form, uniqueness",
        passed=all_ok,
        tables=[table],
        details={"all_ok": all_ok, "cells": cells},
    )


def _examine_e8_chunk(chunk: ReplicationChunk) -> float:
    """Worst ``|p - 1/m|`` over the chunk's uniform-beliefs instances."""
    batch = _chunk_batch(chunk, uniform_beliefs=True)
    fm = batch_fully_mixed_candidate(
        batch.weights, batch.capacities, batch.initial_traffic
    )
    return float(np.abs(fm.probabilities - 1.0 / chunk.num_links).max())


def run_e8(
    *, quick: bool = False, jobs: int = 1, batch_size: int | None = None
) -> ExperimentResult:
    """E8 — uniform beliefs give the equiprobable fully mixed NE."""
    reps = 20 if quick else 100
    cells = [(2, 2), (3, 3), (5, 4), (8, 6)]
    grid = [GridCell(n, m, reps) for (n, m) in cells]
    table = Table(
        ["n", "m", "instances", "max |p - 1/m|"],
        title="E8 — Theorem 4.8: uniform beliefs => p = 1/m",
    )
    chunks, cell_of_chunk = make_replication_chunks(grid, "E8", batch_size)
    chunk_results = run_tasks(_examine_e8_chunk, chunks, jobs=jobs)
    cell_worst = [0.0] * len(grid)
    for cell_index, dev in zip(cell_of_chunk, chunk_results):
        cell_worst[cell_index] = max(cell_worst[cell_index], dev)

    worst = 0.0
    cell_rows = []
    for (n, m), dev in zip(cells, cell_worst):
        worst = max(worst, dev)
        cell_rows.append({"n": n, "m": m, "reps": reps, "max_dev": dev})
        table.add_row([n, m, reps, dev])
    passed = worst < 1e-9
    return ExperimentResult(
        "E8",
        "Theorem 4.8 — equiprobable FMNE under uniform beliefs",
        passed=passed,
        tables=[table],
        details={"max_deviation": worst, "cells": cell_rows},
    )


def _examine_e9_chunk(chunk: ReplicationChunk) -> tuple[int, int]:
    """(equilibria checked, dominance violations) for one chunk.

    The reference latencies (Lemma 4.1) come from one batched
    closed-form evaluation; each game's equilibria are enumerated by
    support (per-game) and then compared against the reference in one
    stacked kernel call per game. Violation counting mirrors
    :func:`repro.analysis.worst_case.verify_fmne_dominance` — per-user
    dominance per equilibrium, plus the SC1/SC2 maximality checks.
    """
    batch = _chunk_batch(chunk)
    fm = batch_fully_mixed_candidate(
        batch.weights, batch.capacities, batch.initial_traffic
    )
    eqs = violations = 0
    for i in range(len(batch)):
        equilibria = enumerate_mixed_nash(batch.game(i))
        eqs += len(equilibria)
        if not equilibria:
            continue
        reference = fm.latencies[i]
        lat = batch_min_expected_latencies(
            np.stack([eq.matrix for eq in equilibria]),
            batch.weights[i],
            batch.capacities[i],
            batch.initial_traffic[i],
        )  # (E, n)
        excess = lat - reference
        scale = np.maximum(np.abs(reference), 1.0)
        violations += int(np.count_nonzero(excess > 1e-7 * scale))
        # SC maximality follows from per-user dominance; check anyway.
        if float(lat.sum(axis=1).max()) > float(reference.sum()) * (1 + 1e-7):
            violations += 1
        if float(lat.max(axis=1).max()) > float(reference.max()) * (1 + 1e-7):
            violations += 1
    return eqs, violations


def run_e9(
    *, quick: bool = False, jobs: int = 1, batch_size: int | None = None
) -> ExperimentResult:
    """E9 — FMNE dominance: per-user latency and both social costs."""
    grid = list(small_verification_grid(replications=3 if quick else 8))
    table = Table(
        ["n", "m", "instances", "equilibria checked", "violations"],
        title="E9 — Lemma 4.9 / Thms 4.11-4.12: FMNE maximises social cost",
    )
    chunks, cell_of_chunk = make_replication_chunks(grid, "E9", batch_size)
    chunk_results = run_tasks(_examine_e9_chunk, chunks, jobs=jobs)
    totals = [[0, 0] for _ in grid]
    for cell_index, (chunk_eqs, chunk_violations) in zip(cell_of_chunk, chunk_results):
        totals[cell_index][0] += chunk_eqs
        totals[cell_index][1] += chunk_violations

    all_ok = True
    total_eqs = 0
    cells = []
    for cell, (eqs, violations) in zip(grid, totals):
        all_ok = all_ok and violations == 0
        total_eqs += eqs
        cells.append(
            {
                "n": cell.num_users, "m": cell.num_links,
                "reps": cell.replications, "equilibria": eqs,
                "violations": violations,
            }
        )
        table.add_row([cell.num_users, cell.num_links, cell.replications, eqs, violations])
    return ExperimentResult(
        "E9",
        "Lemma 4.9 — fully mixed NE dominates every equilibrium",
        passed=all_ok,
        tables=[table],
        details={"total_equilibria": total_eqs, "all_ok": all_ok, "cells": cells},
    )
