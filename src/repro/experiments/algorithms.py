"""Experiments E1-E4: the paper's algorithms and the n=3 existence claim.

* E1 — Figure 1 / Theorem 3.3: ``Atwolinks`` correctness + O(n^2) scaling.
* E2 — Figure 2 / Theorem 3.5: ``Asymmetric`` correctness + move bound.
* E3 — Figure 3 / Theorem 3.6: ``Auniform`` correctness + scaling.
* E4 — Section 3.1: every sampled 3-user game has a pure NE and an
  acyclic best-response game graph.
"""

from __future__ import annotations

from repro.analysis.scaling import THEORETICAL_EXPONENTS, measure_scaling
from repro.equilibria.conditions import is_pure_nash
from repro.equilibria.enumeration import count_pure_nash
from repro.equilibria.game_graph import best_response_graph, find_response_cycle
from repro.equilibria.symmetric import asymmetric
from repro.equilibria.two_links import atwolinks
from repro.equilibria.uniform import auniform
from repro.experiments.base import ExperimentResult
from repro.generators.games import (
    random_game,
    random_symmetric_game,
    random_two_link_game,
    random_uniform_beliefs_game,
)
from repro.util.rng import stable_seed
from repro.util.tables import Table

__all__ = ["run_e1", "run_e2", "run_e3", "run_e4"]


def _correctness_table(title: str) -> Table:
    return Table(
        ["n", "m", "instances", "all returned NE"],
        title=title,
    )


def run_e1(*, quick: bool = False) -> ExperimentResult:
    """E1 — Atwolinks returns a pure NE on every sampled two-link game."""
    sizes = [2, 3, 5, 8, 13, 21] if quick else [2, 3, 5, 8, 13, 21, 34, 55, 89]
    reps = 10 if quick else 30
    table = _correctness_table("E1 — Atwolinks correctness (with initial traffic)")
    all_ok = True
    for n in sizes:
        ok = 0
        for rep in range(reps):
            game = random_two_link_game(
                n, with_initial_traffic=True, seed=stable_seed("E1", n, rep)
            )
            profile = atwolinks(game)
            if is_pure_nash(game, profile):
                ok += 1
        all_ok = all_ok and ok == reps
        table.add_row([n, 2, reps, "yes" if ok == reps else f"NO ({ok}/{reps})"])

    tables = [table]
    details: dict = {"correctness": all_ok}
    if not quick:
        obs = measure_scaling("atwolinks")
        fit_table = Table(
            ["n", "seconds"], title="E1 — Atwolinks runtime (fit below)"
        )
        for n, s in zip(obs.sizes, obs.seconds):
            fit_table.add_row([n, s])
        fit_table.add_row(["exponent", obs.exponent])
        fit_table.add_row(["theory", THEORETICAL_EXPONENTS["atwolinks"]])
        tables.append(fit_table)
        details["exponent"] = obs.exponent
        details["within_theory"] = obs.within_theory()
        all_ok = all_ok and obs.within_theory()
    return ExperimentResult(
        "E1",
        "Figure 1 / Theorem 3.3 — Atwolinks computes a pure NE in O(n^2)",
        passed=all_ok,
        tables=tables,
        details=details,
    )


def run_e2(*, quick: bool = False) -> ExperimentResult:
    """E2 — Asymmetric returns a pure NE for identical-weight games."""
    cells = [(3, 2), (5, 3), (8, 4)] if quick else [
        (3, 2), (5, 3), (8, 4), (13, 5), (21, 6), (34, 8),
    ]
    reps = 10 if quick else 30
    table = _correctness_table("E2 — Asymmetric correctness (symmetric users)")
    all_ok = True
    for n, m in cells:
        ok = 0
        for rep in range(reps):
            game = random_symmetric_game(n, m, seed=stable_seed("E2", n, m, rep))
            profile = asymmetric(game)
            if is_pure_nash(game, profile):
                ok += 1
        all_ok = all_ok and ok == reps
        table.add_row([n, m, reps, "yes" if ok == reps else f"NO ({ok}/{reps})"])

    tables = [table]
    details: dict = {"correctness": all_ok}
    if not quick:
        obs = measure_scaling("asymmetric")
        fit_table = Table(["n", "seconds"], title="E2 — Asymmetric runtime")
        for n, s in zip(obs.sizes, obs.seconds):
            fit_table.add_row([n, s])
        fit_table.add_row(["exponent", obs.exponent])
        fit_table.add_row(["theory", THEORETICAL_EXPONENTS["asymmetric"]])
        tables.append(fit_table)
        details["exponent"] = obs.exponent
        details["within_theory"] = obs.within_theory()
        all_ok = all_ok and obs.within_theory()
    return ExperimentResult(
        "E2",
        "Figure 2 / Theorem 3.5 — Asymmetric computes a pure NE in O(n^2 m)",
        passed=all_ok,
        tables=tables,
        details=details,
    )


def run_e3(*, quick: bool = False) -> ExperimentResult:
    """E3 — Auniform returns a pure NE under uniform user beliefs."""
    cells = [(4, 2), (8, 3), (16, 4)] if quick else [
        (4, 2), (8, 3), (16, 4), (32, 5), (64, 8), (128, 8), (512, 16),
    ]
    reps = 10 if quick else 30
    table = _correctness_table("E3 — Auniform correctness (uniform beliefs, with t)")
    all_ok = True
    for n, m in cells:
        ok = 0
        for rep in range(reps):
            game = random_uniform_beliefs_game(
                n, m, with_initial_traffic=True, seed=stable_seed("E3", n, m, rep)
            )
            profile = auniform(game)
            if is_pure_nash(game, profile):
                ok += 1
        all_ok = all_ok and ok == reps
        table.add_row([n, m, reps, "yes" if ok == reps else f"NO ({ok}/{reps})"])

    tables = [table]
    details: dict = {"correctness": all_ok}
    if not quick:
        obs = measure_scaling("auniform")
        fit_table = Table(["n", "seconds"], title="E3 — Auniform runtime")
        for n, s in zip(obs.sizes, obs.seconds):
            fit_table.add_row([n, s])
        fit_table.add_row(["exponent", obs.exponent])
        fit_table.add_row(["theory", THEORETICAL_EXPONENTS["auniform"]])
        tables.append(fit_table)
        details["exponent"] = obs.exponent
        details["within_theory"] = obs.within_theory()
        all_ok = all_ok and obs.within_theory()
    return ExperimentResult(
        "E3",
        "Figure 3 / Theorem 3.6 — Auniform computes a pure NE in O(n(log n + m))",
        passed=all_ok,
        tables=tables,
        details=details,
    )


def run_e4(*, quick: bool = False) -> ExperimentResult:
    """E4 — every sampled 3-user game has a pure NE; no best-response cycles."""
    reps = 40 if quick else 250
    links = [2, 3, 4]
    table = Table(
        ["m", "instances", "all with PNE", "BR-graph cycles"],
        title="E4 — n=3 existence and best-response acyclicity",
    )
    all_ok = True
    for m in links:
        with_pne = 0
        cycles = 0
        for rep in range(reps):
            game = random_game(3, m, seed=stable_seed("E4", m, rep))
            if count_pure_nash(game) > 0:
                with_pne += 1
            graph = best_response_graph(game)
            if find_response_cycle(graph) is not None:
                cycles += 1
        ok = with_pne == reps and cycles == 0
        all_ok = all_ok and ok
        table.add_row([m, reps, "yes" if with_pne == reps else f"NO ({with_pne})", cycles])
    return ExperimentResult(
        "E4",
        "Section 3.1 — three-user games possess pure NE (no BR cycles)",
        passed=all_ok,
        tables=[table],
        details={"all_ok": all_ok},
    )
