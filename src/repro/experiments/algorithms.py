"""Experiments E1-E4: the paper's algorithms and the n=3 existence claim.

* E1 — Figure 1 / Theorem 3.3: ``Atwolinks`` correctness + O(n^2) scaling.
* E2 — Figure 2 / Theorem 3.5: ``Asymmetric`` correctness + move bound.
* E3 — Figure 3 / Theorem 3.6: ``Auniform`` correctness + scaling.
* E4 — Section 3.1: every sampled 3-user game has a pure NE and an
  acyclic best-response game graph.

Execution model: each correctness sweep is declared as a
:class:`~repro.runtime.spec.SweepSpec` and executed by the shared
campaign runtime (chunking, ``jobs`` fan-out, checkpoint/resume); the
complexity fits of E1-E3 are timing measurements and therefore run
outside the seeded sweep (they are re-measured, never resumed).

Each chunk is one whole-stack batch computation: the chunk's seeds
become a :class:`~repro.batch.container.GameBatch` via the bit-parity
generators, the paper's algorithm runs in lockstep over the stack
(:mod:`repro.batch.pure`), and a single batched Nash mask (E1-E3) or
the stacked PNE/cycle census (E4) grades every instance at once.
Results are pinned bit-identical to the pre-batch per-game loops by
``tests/data/pure_seed_baseline.json``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.analysis.scaling import THEORETICAL_EXPONENTS, measure_scaling
from repro.batch.container import GameBatch
from repro.batch.kernels import batch_count_pure_nash, batch_pure_nash_mask
from repro.batch.pure import (
    batch_asymmetric,
    batch_atwolinks,
    batch_auniform,
    batch_response_cycle_census,
)
from repro.experiments.base import ExperimentResult
from repro.generators.suites import GridCell
from repro.runtime import ResultStore, SweepSpec, run_sweep
from repro.util.parallel import ReplicationChunk
from repro.util.tables import Table

__all__ = [
    "run_e1", "run_e2", "run_e3", "run_e4",
    "e1_specs", "e2_specs", "e3_specs", "e4_specs",
]


def _correctness_table(title: str) -> Table:
    return Table(
        ["n", "m", "instances", "all returned NE"],
        title=title,
    )


def _solved_count(batch: GameBatch, profiles) -> int:
    """How many of the stack's computed profiles are pure NE."""
    mask = batch_pure_nash_mask(
        profiles, batch.weights, batch.capacities, batch.initial_traffic
    )
    return int(mask.sum())


def _examine_e1_chunk(chunk: ReplicationChunk) -> int:
    """How many of the chunk's two-link games Atwolinks solves to a NE."""
    batch = GameBatch.from_seeds(
        chunk.seeds(), chunk.num_users, chunk.num_links,
        with_initial_traffic=True,
    )
    return _solved_count(batch, batch_atwolinks(batch))


def _examine_e2_chunk(chunk: ReplicationChunk) -> int:
    """How many of the chunk's symmetric games Asymmetric solves."""
    batch = GameBatch.from_seeds_symmetric(
        chunk.seeds(), chunk.num_users, chunk.num_links
    )
    return _solved_count(batch, batch_asymmetric(batch))


def _examine_e3_chunk(chunk: ReplicationChunk) -> int:
    """How many of the chunk's uniform-beliefs games Auniform solves."""
    batch = GameBatch.from_seeds_uniform_beliefs(
        chunk.seeds(), chunk.num_users, chunk.num_links,
        with_initial_traffic=True,
    )
    return _solved_count(batch, batch_auniform(batch))


def _examine_e4_chunk(chunk: ReplicationChunk) -> tuple[int, int]:
    """(games with a pure NE, best-response-graph cycles) for one chunk."""
    batch = GameBatch.from_seeds(
        chunk.seeds(), chunk.num_users, chunk.num_links
    )
    with_pne = int((batch_count_pure_nash(batch) > 0).sum())
    cycles = int(batch_response_cycle_census(batch, kind="best").sum())
    return with_pne, cycles


def e1_specs(*, quick: bool = False) -> tuple[SweepSpec, ...]:
    sizes = [2, 3, 5, 8, 13, 21] if quick else [2, 3, 5, 8, 13, 21, 34, 55, 89]
    reps = 10 if quick else 30
    cells = tuple(GridCell(n, 2, reps) for n in sizes)
    return (SweepSpec("E1", "E1", cells, _examine_e1_chunk),)


def e2_specs(*, quick: bool = False) -> tuple[SweepSpec, ...]:
    pairs = [(3, 2), (5, 3), (8, 4)] if quick else [
        (3, 2), (5, 3), (8, 4), (13, 5), (21, 6), (34, 8),
    ]
    reps = 10 if quick else 30
    cells = tuple(GridCell(n, m, reps) for (n, m) in pairs)
    return (SweepSpec("E2", "E2", cells, _examine_e2_chunk),)


def e3_specs(*, quick: bool = False) -> tuple[SweepSpec, ...]:
    pairs = [(4, 2), (8, 3), (16, 4)] if quick else [
        (4, 2), (8, 3), (16, 4), (32, 5), (64, 8), (128, 8), (512, 16),
    ]
    reps = 10 if quick else 30
    cells = tuple(GridCell(n, m, reps) for (n, m) in pairs)
    return (SweepSpec("E3", "E3", cells, _examine_e3_chunk),)


def e4_specs(*, quick: bool = False) -> tuple[SweepSpec, ...]:
    reps = 40 if quick else 250
    cells = tuple(GridCell(3, m, reps) for m in [2, 3, 4])
    return (SweepSpec("E4", "E4", cells, _examine_e4_chunk),)


def _correctness_sweep(
    spec: SweepSpec, table: Table, **runtime_options
) -> bool:
    """Run a correctness spec and fill its table; True when every cell
    solved every instance."""
    sweep = run_sweep(spec, **runtime_options)
    all_ok = True
    for cell, payloads in zip(spec.cells, sweep.payloads_by_cell):
        ok = sum(payloads)
        reps = cell.replications
        all_ok = all_ok and ok == reps
        table.add_row(
            [cell.num_users, cell.num_links, reps,
             "yes" if ok == reps else f"NO ({ok}/{reps})"]
        )
    return all_ok


def _scaling_tables(
    algorithm: str, title: str, tables: list[Table], details: dict
) -> bool:
    obs = measure_scaling(algorithm)
    fit_table = Table(["n", "seconds"], title=title)
    for n, s in zip(obs.sizes, obs.seconds):
        fit_table.add_row([n, s])
    fit_table.add_row(["exponent", obs.exponent])
    fit_table.add_row(["theory", THEORETICAL_EXPONENTS[algorithm]])
    tables.append(fit_table)
    details["exponent"] = obs.exponent
    details["within_theory"] = obs.within_theory()
    return obs.within_theory()


def run_e1(
    *,
    quick: bool = False,
    jobs: int = 1,
    batch_size: int | None = None,
    seed: int | None = None,
    store: Union[ResultStore, str, Path, None] = None,
    resume: bool = False,
) -> ExperimentResult:
    """E1 — Atwolinks returns a pure NE on every sampled two-link game."""
    (spec,) = e1_specs(quick=quick)
    table = _correctness_table("E1 — Atwolinks correctness (with initial traffic)")
    all_ok = _correctness_sweep(
        spec, table, jobs=jobs, batch_size=batch_size, seed=seed, store=store,
        resume=resume,
    )
    tables = [table]
    details: dict = {"correctness": all_ok}
    if not quick:
        all_ok = _scaling_tables(
            "atwolinks", "E1 — Atwolinks runtime (fit below)", tables, details
        ) and all_ok
    return ExperimentResult(
        "E1",
        "Figure 1 / Theorem 3.3 — Atwolinks computes a pure NE in O(n^2)",
        passed=all_ok,
        tables=tables,
        details=details,
    )


def run_e2(
    *,
    quick: bool = False,
    jobs: int = 1,
    batch_size: int | None = None,
    seed: int | None = None,
    store: Union[ResultStore, str, Path, None] = None,
    resume: bool = False,
) -> ExperimentResult:
    """E2 — Asymmetric returns a pure NE for identical-weight games."""
    (spec,) = e2_specs(quick=quick)
    table = _correctness_table("E2 — Asymmetric correctness (symmetric users)")
    all_ok = _correctness_sweep(
        spec, table, jobs=jobs, batch_size=batch_size, seed=seed, store=store,
        resume=resume,
    )
    tables = [table]
    details: dict = {"correctness": all_ok}
    if not quick:
        all_ok = _scaling_tables(
            "asymmetric", "E2 — Asymmetric runtime", tables, details
        ) and all_ok
    return ExperimentResult(
        "E2",
        "Figure 2 / Theorem 3.5 — Asymmetric computes a pure NE in O(n^2 m)",
        passed=all_ok,
        tables=tables,
        details=details,
    )


def run_e3(
    *,
    quick: bool = False,
    jobs: int = 1,
    batch_size: int | None = None,
    seed: int | None = None,
    store: Union[ResultStore, str, Path, None] = None,
    resume: bool = False,
) -> ExperimentResult:
    """E3 — Auniform returns a pure NE under uniform user beliefs."""
    (spec,) = e3_specs(quick=quick)
    table = _correctness_table("E3 — Auniform correctness (uniform beliefs, with t)")
    all_ok = _correctness_sweep(
        spec, table, jobs=jobs, batch_size=batch_size, seed=seed, store=store,
        resume=resume,
    )
    tables = [table]
    details: dict = {"correctness": all_ok}
    if not quick:
        all_ok = _scaling_tables(
            "auniform", "E3 — Auniform runtime", tables, details
        ) and all_ok
    return ExperimentResult(
        "E3",
        "Figure 3 / Theorem 3.6 — Auniform computes a pure NE in O(n(log n + m))",
        passed=all_ok,
        tables=tables,
        details=details,
    )


def run_e4(
    *,
    quick: bool = False,
    jobs: int = 1,
    batch_size: int | None = None,
    seed: int | None = None,
    store: Union[ResultStore, str, Path, None] = None,
    resume: bool = False,
) -> ExperimentResult:
    """E4 — every sampled 3-user game has a pure NE; no best-response cycles."""
    (spec,) = e4_specs(quick=quick)
    sweep = run_sweep(
        spec, jobs=jobs, batch_size=batch_size, seed=seed, store=store,
        resume=resume,
    )
    table = Table(
        ["m", "instances", "all with PNE", "BR-graph cycles"],
        title="E4 — n=3 existence and best-response acyclicity",
    )
    all_ok = True
    for cell, payloads in zip(spec.cells, sweep.payloads_by_cell):
        with_pne = sum(p[0] for p in payloads)
        cycles = sum(p[1] for p in payloads)
        reps = cell.replications
        ok = with_pne == reps and cycles == 0
        all_ok = all_ok and ok
        table.add_row(
            [cell.num_links, reps,
             "yes" if with_pne == reps else f"NO ({with_pne})", cycles]
        )
    return ExperimentResult(
        "E4",
        "Section 3.1 — three-user games possess pure NE (no BR cycles)",
        passed=all_ok,
        tables=[table],
        details={"all_ok": all_ok},
    )
