"""Experiments E5-E6: the conjecture campaign and the potential negatives.

* E5 — Section 3.2 / Conjecture 3.7: the random-instance campaign; every
  sampled game must possess a pure NE (checked exhaustively).
* E6 — Section 3.2: the game is not a potential game — a better-response
  cycle exists in some instance (no ordinal potential, B. Monien's
  observation) and two-player four-cycles have non-zero cost sums (no
  exact potential); by contrast, common-beliefs instances carry an exact
  weighted potential.

Execution model: E5 delegates to
:func:`repro.analysis.conjecture.run_conjecture_campaign`, which runs
its spec through the shared campaign runtime; E6 declares three small
sweeps of its own (the exact-potential gap sample, the weighted- and
the ordinal-potential identity checks), each with a distinct seed label
so their store keys and streams cannot collide. Each E6 chunk stacks
its instances into one :class:`~repro.batch.container.GameBatch` and
grades them with the batched potential kernels of
:mod:`repro.batch.pure` (per-instance RNG streams replayed draw for
draw, results pinned by ``tests/data/pure_seed_baseline.json``). The
cycle realisability search is an exact, unseeded computation and runs
outside the sweeps.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.analysis.conjecture import (
    conjecture_sweep_spec,
    run_conjecture_campaign,
)
from repro.analysis.cycles import search_improvement_cycle_instance
from repro.batch.container import GameBatch
from repro.batch.pure import (
    batch_sampled_cycle_gaps,
    batch_verify_ordinal_potential_symmetric,
    batch_verify_weighted_potential,
)
from repro.experiments.base import ExperimentResult
from repro.generators.suites import (
    GridCell,
    conjecture_grid,
    quick_conjecture_grid,
)
from repro.runtime import ResultStore, SweepSpec, run_sweep
from repro.util.parallel import ReplicationChunk
from repro.util.rng import as_generator, stable_seed
from repro.util.tables import Table

__all__ = ["run_e5", "run_e6", "e5_specs", "e6_specs"]


def e5_specs(*, quick: bool = False) -> tuple[SweepSpec, ...]:
    """E5's declarative sweep: the published conjecture grid."""
    grid = quick_conjecture_grid() if quick else conjecture_grid()
    return (conjecture_sweep_spec(tuple(grid), label="E5"),)


def run_e5(
    *,
    quick: bool = False,
    jobs: int = 1,
    batch_size: int | None = None,
    seed: int | None = None,
    store: Union[ResultStore, str, Path, None] = None,
    resume: bool = False,
) -> ExperimentResult:
    """E5 — Conjecture 3.7 simulation campaign.

    Runs on the shared campaign runtime: each cell's instances are
    stacked into one :class:`~repro.batch.container.GameBatch`; *jobs*
    and *batch_size* control the process-pool fan-out, *store*/*resume*
    the chunk-level checkpointing (results are identical for every
    setting).
    """
    if quick:
        grid = list(quick_conjecture_grid())
    else:
        grid = list(conjecture_grid())
    campaign = run_conjecture_campaign(
        grid, jobs=jobs, batch_size=batch_size, seed=seed, store=store,
        resume=resume,
    )
    return ExperimentResult(
        "E5",
        "Section 3.2 / Conjecture 3.7 — pure NE existence campaign",
        passed=campaign.conjecture_supported,
        tables=[campaign.to_table()],
        details={
            "total_instances": campaign.total_instances,
            "counterexamples": campaign.counterexamples,
        },
    )


def _probe_moves(chunk: ReplicationChunk, seeds: list[int]):
    """Reproducible (profiles, users, new links) probes, one per instance.

    Each probe stream is derived from the chunk label and the instance
    seed, so every replication is reproducible in isolation — no draw
    depends on loop ordering or on how many replications ran before it.
    """
    n, m = chunk.num_users, chunk.num_links
    sigma = np.empty((len(seeds), n), dtype=np.intp)
    users = np.empty(len(seeds), dtype=np.intp)
    new_links = np.empty(len(seeds), dtype=np.intp)
    for k, seed in enumerate(seeds):
        draw = as_generator(stable_seed(chunk.label, "probe", seed))
        sigma[k] = draw.integers(0, m, size=n)
        users[k] = int(draw.integers(n))
        new_links[k] = int(draw.integers(m))
    return sigma, users, new_links


def _examine_e6_gap_chunk(chunk: ReplicationChunk) -> list[float]:
    """Exact-potential 4-cycle gaps for the chunk's general games."""
    seeds = chunk.seeds()
    batch = GameBatch.from_seeds(seeds, chunk.num_users, chunk.num_links)
    worst = batch_sampled_cycle_gaps(batch, seeds, num_samples=200)
    return [float(g) for g in worst]


def _examine_e6_kp_chunk(chunk: ReplicationChunk) -> bool:
    """Weighted-potential identity verdict over the chunk's KP games."""
    seeds = chunk.seeds()
    batch = GameBatch.from_seeds_kp(seeds, chunk.num_users, chunk.num_links)
    sigma, users, new_links = _probe_moves(chunk, seeds)
    return bool(
        batch_verify_weighted_potential(batch, sigma, users, new_links).all()
    )


def _examine_e6_sym_chunk(chunk: ReplicationChunk) -> bool:
    """Ordinal-potential identity verdict over the chunk's symmetric games."""
    seeds = chunk.seeds()
    batch = GameBatch.from_seeds_symmetric(
        seeds, chunk.num_users, chunk.num_links
    )
    sigma, users, new_links = _probe_moves(chunk, seeds)
    return bool(
        batch_verify_ordinal_potential_symmetric(
            batch, sigma, users, new_links
        ).all()
    )


def e6_specs(*, quick: bool = False) -> tuple[SweepSpec, ...]:
    """E6's three sub-sweeps (distinct labels: distinct streams and keys)."""
    reps = 5 if quick else 25
    return (
        SweepSpec("E6", "E6-gap", (GridCell(3, 3, reps),), _examine_e6_gap_chunk),
        SweepSpec("E6", "E6-kp", (GridCell(4, 3, reps),), _examine_e6_kp_chunk),
        SweepSpec("E6", "E6-sym", (GridCell(4, 3, reps),), _examine_e6_sym_chunk),
    )


def run_e6(
    *,
    quick: bool = False,
    jobs: int = 1,
    batch_size: int | None = None,
    seed: int | None = None,
    store: Union[ResultStore, str, Path, None] = None,
    resume: bool = False,
) -> ExperimentResult:
    """E6 — potential-function structure.

    Reproduces three facts around Section 3.2:

    * **no exact potential**: sampled general games have non-zero
      two-player four-cycle cost sums (Monderer-Shapley criterion);
    * **common beliefs admit a weighted potential**: the identity
      ``Delta Phi = w_i Delta lambda_i`` holds on KP games;
    * **symmetric users admit an ordinal potential** (a result this
      library adds): ``Delta Phi = log lambda_after - log lambda_before``
      holds on symmetric games, so Monien's improvement cycle [19]
      necessarily uses unequal weights.

    The cycle search itself (``repro.analysis.cycles``) exhaustively
    refutes realisable improvement cycles of length <= 6 for (n=3, m=3);
    the outcome is reported as data, not a pass/fail criterion, because
    the paper's cycle instance [19] is unpublished.
    """
    gap_spec, kp_spec, sym_spec = e6_specs(quick=quick)
    options = dict(
        jobs=jobs, batch_size=batch_size, seed=seed, store=store, resume=resume
    )
    gaps = [
        g for payload in run_sweep(gap_spec, **options).chunk_payloads
        for g in payload
    ]
    max_gap = max(gaps)
    kp_ok = all(run_sweep(kp_spec, **options).chunk_payloads)
    sym_ok = all(run_sweep(sym_spec, **options).chunk_payloads)

    search = search_improvement_cycle_instance(
        max_cycle_length=4 if quick else 6,
        weight_draws=4 if quick else 12,
        max_cycles=500 if quick else 50_000,
    )

    table = Table(["check", "result"], title="E6 — potential-function structure")
    table.add_row(
        ["max 4-cycle gap, general games (nonzero => no exact potential)", max_gap]
    )
    table.add_row(["weighted potential identity holds (common beliefs)", kp_ok])
    table.add_row(["ordinal potential identity holds (symmetric users)", sym_ok])
    table.add_row(
        [f"improvement cycles realisable among {search.cycles_tested} short "
         "cycle shapes", search.found]
    )

    passed = max_gap > 1e-9 and kp_ok and sym_ok
    return ExperimentResult(
        "E6",
        "Section 3.2 — potential structure (no exact potential; cycle search)",
        passed=passed,
        tables=[table],
        details={
            "max_gap": float(max_gap),
            "weighted_potential_ok": kp_ok,
            "ordinal_potential_symmetric_ok": sym_ok,
            "cycle_found": search.found,
            "cycles_tested": search.cycles_tested,
        },
    )
