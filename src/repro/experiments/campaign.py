"""Experiments E5-E6: the conjecture campaign and the potential negatives.

* E5 — Section 3.2 / Conjecture 3.7: the random-instance campaign; every
  sampled game must possess a pure NE (checked exhaustively).
* E6 — Section 3.2: the game is not a potential game — a better-response
  cycle exists in some instance (no ordinal potential, B. Monien's
  observation) and two-player four-cycles have non-zero cost sums (no
  exact potential); by contrast, common-beliefs instances carry an exact
  weighted potential.
"""

from __future__ import annotations

from repro.analysis.conjecture import run_conjecture_campaign
from repro.equilibria.potential import (
    exact_potential_cycle_gap,
    verify_weighted_potential,
)
from repro.experiments.base import ExperimentResult
from repro.generators.games import random_game, random_kp_game
from repro.generators.suites import GridCell, conjecture_grid, quick_conjecture_grid
from repro.util.rng import as_generator, stable_seed
from repro.util.tables import Table

__all__ = ["run_e5", "run_e6"]


def run_e5(
    *, quick: bool = False, jobs: int = 1, batch_size: int | None = None
) -> ExperimentResult:
    """E5 — Conjecture 3.7 simulation campaign.

    Runs on the batched game engine: each cell's instances are stacked
    into one :class:`~repro.batch.container.GameBatch`; *jobs* and
    *batch_size* control the process-pool fan-out (results are identical
    for every setting).
    """
    if quick:
        grid = list(quick_conjecture_grid())
    else:
        grid = list(conjecture_grid())
    campaign = run_conjecture_campaign(grid, jobs=jobs, batch_size=batch_size)
    return ExperimentResult(
        "E5",
        "Section 3.2 / Conjecture 3.7 — pure NE existence campaign",
        passed=campaign.conjecture_supported,
        tables=[campaign.to_table()],
        details={
            "total_instances": campaign.total_instances,
            "counterexamples": campaign.counterexamples,
        },
    )


def run_e6(*, quick: bool = False) -> ExperimentResult:
    """E6 — potential-function structure.

    Reproduces three facts around Section 3.2:

    * **no exact potential**: sampled general games have non-zero
      two-player four-cycle cost sums (Monderer-Shapley criterion);
    * **common beliefs admit a weighted potential**: the identity
      ``Delta Phi = w_i Delta lambda_i`` holds on KP games;
    * **symmetric users admit an ordinal potential** (a result this
      library adds): ``Delta Phi = log lambda_after - log lambda_before``
      holds on symmetric games, so Monien's improvement cycle [19]
      necessarily uses unequal weights.

    The cycle search itself (``repro.analysis.cycles``) exhaustively
    refutes realisable improvement cycles of length <= 6 for (n=3, m=3);
    the outcome is reported as data, not a pass/fail criterion, because
    the paper's cycle instance [19] is unpublished.
    """
    from repro.analysis.cycles import search_improvement_cycle_instance
    from repro.equilibria.potential import verify_ordinal_potential_symmetric
    from repro.generators.games import random_symmetric_game

    # Exact-potential 4-cycle sums: general games should violate, KP games
    # (common beliefs) must satisfy the weighted identity instead.
    gaps = []
    for rep in range(5 if quick else 25):
        game = random_game(3, 3, seed=stable_seed("E6-gap", rep))
        gaps.append(exact_potential_cycle_gap(game, num_samples=200, seed=rep))
    max_gap = max(gaps)

    # Each check draws its probe move from a stream derived from its own
    # (label, rep) seed: no draw depends on loop ordering or on how many
    # replications another check ran, so every rep is reproducible in
    # isolation.
    kp_ok = True
    for rep in range(5 if quick else 25):
        game = random_kp_game(4, 3, seed=stable_seed("E6-kp", rep))
        draw = as_generator(stable_seed("E6-kp-move", rep))
        sigma = draw.integers(0, game.num_links, size=game.num_users)
        user = int(draw.integers(game.num_users))
        new_link = int(draw.integers(game.num_links))
        kp_ok = kp_ok and verify_weighted_potential(game, sigma, user, new_link)

    sym_ok = True
    for rep in range(5 if quick else 25):
        game = random_symmetric_game(4, 3, seed=stable_seed("E6-sym", rep))
        draw = as_generator(stable_seed("E6-sym-move", rep))
        sigma = draw.integers(0, game.num_links, size=game.num_users)
        user = int(draw.integers(game.num_users))
        new_link = int(draw.integers(game.num_links))
        sym_ok = sym_ok and verify_ordinal_potential_symmetric(
            game, sigma, user, new_link
        )

    search = search_improvement_cycle_instance(
        max_cycle_length=4 if quick else 6,
        weight_draws=4 if quick else 12,
        max_cycles=500 if quick else 50_000,
    )

    table = Table(["check", "result"], title="E6 — potential-function structure")
    table.add_row(
        ["max 4-cycle gap, general games (nonzero => no exact potential)", max_gap]
    )
    table.add_row(["weighted potential identity holds (common beliefs)", kp_ok])
    table.add_row(["ordinal potential identity holds (symmetric users)", sym_ok])
    table.add_row(
        [f"improvement cycles realisable among {search.cycles_tested} short "
         "cycle shapes", search.found]
    )

    passed = max_gap > 1e-9 and kp_ok and sym_ok
    return ExperimentResult(
        "E6",
        "Section 3.2 — potential structure (no exact potential; cycle search)",
        passed=passed,
        tables=[table],
        details={
            "max_gap": float(max_gap),
            "weighted_potential_ok": kp_ok,
            "ordinal_potential_symmetric_ok": sym_ok,
            "cycle_found": search.found,
            "cycles_tested": search.cycles_tested,
        },
    )
