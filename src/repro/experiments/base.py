"""Common result type for experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.util.tables import Table

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Outcome of one experiment run.

    Attributes
    ----------
    experiment_id:
        The DESIGN.md identifier (``"E1"`` ... ``"E12"``).
    title:
        The paper artefact being reproduced.
    passed:
        Overall verdict: did the reproduced behaviour match the paper's
        claim (existence, dominance, bound, complexity class, ...)?
    tables:
        Human-readable result tables (these are what EXPERIMENTS.md
        records).
    details:
        Machine-readable quantities for tests and downstream analysis.
    """

    experiment_id: str
    title: str
    passed: bool
    tables: list[Table] = field(default_factory=list)
    details: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        parts = [f"[{self.experiment_id}] {self.title} — {verdict}"]
        parts.extend(t.render() for t in self.tables)
        return "\n\n".join(parts)
