"""Append-only JSONL result store with chunk-level checkpoint keys.

The on-disk record format, the canonical-record identity check, and the
shard/merge rules implemented here are specified (with doctested
examples) in ``docs/STORE_FORMAT.md`` — the store and the service wire
protocol (:mod:`repro.service.query`) share the same canonical JSON
encoding via :func:`canonical_dumps`/:func:`canonical_loads`.

One line per completed chunk:

.. code-block:: json

    {"experiment": "E5", "label": "E5", "n": 3, "m": 3,
     "rep_lo": 0, "rep_hi": 40, "payload": ...}

The key ``(experiment, label, n, m, rep_lo, rep_hi)`` identifies a chunk
across runs: seeds are a pure function of ``(label, n, m, rep)`` and
chunk boundaries a pure function of the grid and ``batch_size``, so a
resumed run regenerates exactly the keys of the interrupted one and can
skip every chunk already on disk. Lines are appended one per completed
chunk, in canonical chunk order (the scheduler consumes pool results in
submission order), so a killed run leaves a *prefix* of the canonical
line sequence — resuming appends the missing suffix and the final file
is byte-identical to an uninterrupted run with the same flags.

Payloads are canonicalised through one JSON round trip before they are
aggregated or written (tuples become lists), so fresh and resumed runs
aggregate exactly the same objects. JSON floats use ``repr`` shortest
round-trip formatting, which is lossless for float64 — bit-identical
results serialise to identical lines.

Non-finite floats (``inf``/``-inf``/``nan`` — e.g. a degenerate
worst-case PoA ratio) are not valid JSON, and the historical
``allow_nan=False`` strictness made them crash mid-campaign *after*
earlier chunks were already appended. They are now encoded as an
explicit sentinel object ``{"__nonfinite__": "inf" | "-inf" | "nan"}``
on write and decoded back to the float on read, so a payload survives
the round trip with its non-finite values intact and the encoded form
stays deterministic (byte-identity of resumed stores included). The
sentinel key is reserved: a payload dict that already uses it is
rejected before anything touches disk.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence, Union

from repro.errors import StoreMergeError

__all__ = [
    "MergeResult",
    "ResultStore",
    "StoreKey",
    "canonical_dumps",
    "canonical_loads",
    "canonical_payload",
    "canonical_record_digest",
    "discover_shard_stores",
    "merge_shard_stores",
    "shard_store_path",
]

#: (experiment, label, n, m, rep_lo, rep_hi)
StoreKey = tuple[str, str, int, int, int, int]

#: Reserved marker for JSON-unrepresentable floats.
NONFINITE_KEY = "__nonfinite__"

_ENCODE = {math.inf: "inf", -math.inf: "-inf"}
_DECODE = {"inf": math.inf, "-inf": -math.inf, "nan": math.nan}


def _encode_nonfinite(obj: Any) -> Any:
    """Replace non-finite floats with sentinel objects, recursively.

    Returns *obj* itself wherever nothing needed rewriting, so the
    common all-finite payload costs one traversal and no copies.
    """
    if isinstance(obj, float):
        if math.isfinite(obj):
            return obj
        return {NONFINITE_KEY: "nan" if math.isnan(obj) else _ENCODE[obj]}
    if isinstance(obj, dict):
        if NONFINITE_KEY in obj:
            raise ValueError(
                f"payload uses the reserved key {NONFINITE_KEY!r}"
            )
        encoded = {key: _encode_nonfinite(value) for key, value in obj.items()}
        return obj if all(encoded[k] is obj[k] for k in obj) else encoded
    if isinstance(obj, (list, tuple)):
        encoded_items = [_encode_nonfinite(value) for value in obj]
        if isinstance(obj, list) and all(
            new is old for new, old in zip(encoded_items, obj)
        ):
            return obj
        return encoded_items
    return obj


def _decode_hook(obj: dict[str, Any]) -> Any:
    """``json.loads`` object hook undoing :func:`_encode_nonfinite`."""
    if len(obj) == 1 and NONFINITE_KEY in obj:
        try:
            return _DECODE[obj[NONFINITE_KEY]]
        except (KeyError, TypeError):
            return obj
    return obj


def canonical_dumps(obj: Any, **kwargs: Any) -> str:
    """Serialise with the sentinel encoding (strict about raw inf/nan)."""
    return json.dumps(_encode_nonfinite(obj), allow_nan=False, **kwargs)


def canonical_loads(text: str) -> Any:
    """Deserialise, turning sentinel objects back into floats."""
    return json.loads(text, object_hook=_decode_hook)


def canonical_payload(payload: Any) -> Any:
    """One JSON round trip: the form payloads take when read back.

    Applied to freshly computed payloads too, so aggregation cannot
    distinguish a computed chunk from a resumed one (tuple vs list,
    int-keyed dicts, numpy scalars that slipped through, ...).
    Non-finite floats survive the trip via the sentinel encoding.
    """
    return canonical_loads(canonical_dumps(payload))


class ResultStore:
    """An append-only JSONL file of per-chunk campaign results."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    @classmethod
    def coerce(
        cls, store: "Union[ResultStore, str, Path, None]"
    ) -> "ResultStore | None":
        """Normalise a runner's ``store`` argument (path-like or None)."""
        if store is None or isinstance(store, ResultStore):
            return store
        return cls(store)

    @staticmethod
    def record_key(record: dict[str, Any]) -> StoreKey:
        return (
            record["experiment"],
            record["label"],
            int(record["n"]),
            int(record["m"]),
            int(record["rep_lo"]),
            int(record["rep_hi"]),
        )

    def iter_records(self) -> Iterator[dict[str, Any]]:
        """Stored chunk records in file order, tail repaired first.

        The tail repair is what makes *reading* a killed store safe: a
        kill that lands between the final record and its newline leaves
        a valid-but-unterminated line, and a kill mid-write leaves a
        torn fragment — :meth:`repair_tail` heals the former and drops
        the latter before the file is parsed, so no reader (resume,
        merge, digest) can silently lose a shard's last record or trip
        over a fragment. A store that cannot be opened for writing
        (read-only artifact) is read as-is; the unterminated-tail case
        still parses, only the on-disk healing is skipped. Other damaged
        lines are skipped, and duplicate keys are *not* collapsed here —
        :meth:`load_records` layers last-wins on top.
        """
        try:
            self.repair_tail()
        except OSError:
            pass
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = canonical_loads(line)
                    self.record_key(record)
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    continue
                yield record

    def load_records(self) -> dict[StoreKey, dict[str, Any]]:
        """All stored chunk records keyed by chunk; later lines win.

        Missing file means an empty store (a fresh ``--resume`` run is
        just a fresh run). The tail is repaired before reading (see
        :meth:`iter_records`), so a killed run's final record is healed
        rather than silently dropped, and a torn fragment never blocks a
        resume — the chunk is simply recomputed and re-appended. Records
        carry the payload plus provenance fields (e.g. the ``backend``
        that computed the chunk, absent in pre-backend stores).
        """
        return {self.record_key(r): r for r in self.iter_records()}

    def load_payloads(self) -> dict[StoreKey, Any]:
        """All stored payloads keyed by chunk (see :meth:`load_records`)."""
        return {
            key: record["payload"]
            for key, record in self.load_records().items()
        }

    def repair_tail(self) -> None:
        """Heal a kill-truncated final line.

        A run killed mid-write leaves a final line without a trailing
        newline. Appending straight after it would glue the new record
        onto the fragment, making *both* unparseable forever. If the
        unterminated tail is itself a valid record (the kill landed
        between write and newline), terminate it so the record is kept;
        otherwise drop the fragment so the chunk's recomputed record
        lands on a clean line — which also restores the byte-identity of
        a resumed store with an uninterrupted run.

        Called before every append, and by the scheduler at the start of
        a resume: a kill that lands exactly between the final record and
        its newline leaves a fully-parseable store whose resume computes
        (and therefore appends) nothing, so the missing terminator must
        be healed up front, not lazily on the next write.
        """
        try:
            fh = self.path.open("r+b")
        except FileNotFoundError:
            return
        with fh:
            fh.seek(0, 2)
            size = fh.tell()
            if size == 0:
                return
            fh.seek(size - 1)
            if fh.read(1) == b"\n":  # healthy tail: the common O(1) path
                return
            fh.seek(0)
            data = fh.read()
            newline_at = data.rfind(b"\n")
            tail = data[newline_at + 1 :]
            try:
                self.record_key(json.loads(tail.decode("utf-8")))
            except (json.JSONDecodeError, KeyError, TypeError,
                    UnicodeDecodeError, ValueError):
                fh.truncate(newline_at + 1 if newline_at >= 0 else 0)
            else:
                fh.write(b"\n")

    def append(self, record: dict[str, Any]) -> None:
        """Append one chunk record (creates parent directories lazily)."""
        self.record_key(record)  # validate shape before touching disk
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self.repair_tail()
        line = canonical_dumps(record, sort_keys=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()

    def canonical_digest(self) -> str:
        """The store-level identity check: a digest of its record *set*.

        SHA-256 over :func:`canonical_dumps` of the stored records
        sorted by :data:`StoreKey` (duplicate keys collapsed last-wins,
        like :meth:`load_records`). Two stores are *canonically equal*
        iff their digests match — a deliberately weaker check than
        file-byte equality: it is independent of the order records
        landed on disk, so a merged multi-shard store, a resumed store
        and an uninterrupted single-host store all agree as long as
        they hold the same records. See ``docs/STORE_FORMAT.md``.
        """
        return canonical_record_digest(self.load_records().values())

    def __repr__(self) -> str:
        return f"ResultStore({str(self.path)!r})"


def canonical_record_digest(records: Iterable[dict[str, Any]]) -> str:
    """SHA-256 hex digest of the canonical serialisation of *records*.

    Records are sorted by their :data:`StoreKey` and serialised with
    :func:`canonical_dumps` (sorted keys, ``repr``-shortest floats, the
    non-finite sentinel), one per line — the same bytes
    :meth:`ResultStore.append` writes — so the digest of a complete
    sharded campaign equals the digest of the single-host store.
    Provenance fields (e.g. ``backend``) participate: stores computed
    under different backends are not canonically equal even when their
    payloads agree, mirroring the resume path's refusal to mix backends.
    """
    ordered = sorted(records, key=ResultStore.record_key)
    blob = "\n".join(canonical_dumps(r, sort_keys=True) for r in ordered)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def shard_store_path(base: Union[str, Path], index: int) -> Path:
    """The shard store file for shard *index* of the campaign at *base*.

    ``store.jsonl`` -> ``store.shard-0.jsonl``: the shard index is
    spliced in front of the final suffix so sibling shards of one
    campaign sort together and are discoverable by name.
    """
    base = Path(base)
    if index < 0:
        raise ValueError(f"shard index must be >= 0, got {index}")
    return base.with_name(f"{base.stem}.shard-{index}{base.suffix}")


def discover_shard_stores(base: Union[str, Path]) -> list[ResultStore]:
    """All shard stores of the campaign at *base*, sorted by shard index.

    Finds the siblings named :func:`shard_store_path` would produce
    (``<stem>.shard-<k><suffix>``). Missing indices are simply absent —
    a shard that owned no chunks never creates its file — and the sort
    is numeric, so ``shard-10`` follows ``shard-2``.
    """
    base = Path(base)
    pattern = re.compile(
        rf"^{re.escape(base.stem)}\.shard-(\d+){re.escape(base.suffix)}$"
    )
    parent = base.parent
    if not parent.exists():
        return []
    found: list[tuple[int, Path]] = []
    for candidate in parent.iterdir():
        match = pattern.match(candidate.name)
        if match:
            found.append((int(match.group(1)), candidate))
    return [ResultStore(path) for _, path in sorted(found)]


@dataclass(frozen=True)
class MergeResult:
    """Outcome of one shard merge: where it landed and what it held."""

    path: Path
    shards: int
    records: int
    duplicates: int
    digest: str


def merge_shard_stores(
    shards: Sequence[Union[ResultStore, str, Path]],
    dest: Union[ResultStore, str, Path],
    *,
    force: bool = False,
) -> MergeResult:
    """Merge shard stores into one canonical store at *dest*.

    Records are interleaved round-robin across the shards in the given
    order, one record per shard per round — the inverse of
    :class:`~repro.runtime.spec.ShardPlan`'s round-robin chunk
    ownership, so merging a complete single-spec campaign's shards (in
    shard-index order) reproduces the single-host store byte for byte.
    Shards may land in any completion order, hold any subset of the
    campaign (a partially failed shard contributes what it finished),
    and overlap: a chunk key seen twice with *canonically equal*
    records (identical ``canonical_dumps``, provenance included) is
    collapsed onto its first occurrence, while records that disagree
    raise :class:`~repro.errors.StoreMergeError` — two shards computed
    different answers for the same chunk, which the deterministic
    seed policy makes impossible unless flags (seed, batch size,
    backend) were mixed. Every shard's tail is repaired before reading
    (see :meth:`ResultStore.iter_records`), so a killed shard's last
    record is merged, not dropped.

    The merged file is written atomically (temp file + rename); an
    existing non-empty *dest* is refused unless *force* is set.
    """
    shard_stores = [
        coerced
        for coerced in (ResultStore.coerce(shard) for shard in shards)
        if coerced is not None
    ]
    if not shard_stores:
        raise StoreMergeError("no shard stores to merge")
    dest_store = ResultStore.coerce(dest)
    assert dest_store is not None
    for shard in shard_stores:
        if shard.path.resolve() == dest_store.path.resolve():
            raise StoreMergeError(
                f"merge destination {dest_store.path} is itself a shard input"
            )
    if (
        dest_store.path.exists()
        and dest_store.path.stat().st_size > 0
        and not force
    ):
        raise StoreMergeError(
            f"merge destination {dest_store.path} already exists and is "
            f"non-empty; pass force=True (CLI: --force) to overwrite"
        )

    columns = [list(shard.iter_records()) for shard in shard_stores]
    lines: list[str] = []
    seen: dict[StoreKey, tuple[int, str]] = {}
    duplicates = 0
    for position in range(max(len(column) for column in columns)):
        for shard_index, column in enumerate(columns):
            if position >= len(column):
                continue
            record = column[position]
            key = ResultStore.record_key(record)
            line = canonical_dumps(record, sort_keys=True)
            if key in seen:
                first_shard, first_line = seen[key]
                if first_line != line:
                    raise StoreMergeError(
                        f"shard stores disagree about chunk {key}: "
                        f"{shard_stores[first_shard].path} and "
                        f"{shard_stores[shard_index].path} hold different "
                        f"canonical records (were the shards run with "
                        f"different --seed/--batch-size/--backend flags?)"
                    )
                duplicates += 1
                continue
            seen[key] = (shard_index, line)
            lines.append(line)

    if dest_store.path.parent and not dest_store.path.parent.exists():
        dest_store.path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = dest_store.path.with_name(dest_store.path.name + ".tmp")
    with tmp_path.open("w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(line + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp_path, dest_store.path)
    return MergeResult(
        path=dest_store.path,
        shards=len(shard_stores),
        records=len(lines),
        duplicates=duplicates,
        digest=dest_store.canonical_digest(),
    )
