"""Append-only JSONL result store with chunk-level checkpoint keys.

One line per completed chunk:

.. code-block:: json

    {"experiment": "E5", "label": "E5", "n": 3, "m": 3,
     "rep_lo": 0, "rep_hi": 40, "payload": ...}

The key ``(experiment, label, n, m, rep_lo, rep_hi)`` identifies a chunk
across runs: seeds are a pure function of ``(label, n, m, rep)`` and
chunk boundaries a pure function of the grid and ``batch_size``, so a
resumed run regenerates exactly the keys of the interrupted one and can
skip every chunk already on disk. Lines are appended one per completed
chunk, in canonical chunk order (the scheduler consumes pool results in
submission order), so a killed run leaves a *prefix* of the canonical
line sequence — resuming appends the missing suffix and the final file
is byte-identical to an uninterrupted run with the same flags.

Payloads are canonicalised through one JSON round trip before they are
aggregated or written (tuples become lists), so fresh and resumed runs
aggregate exactly the same objects. JSON floats use ``repr`` shortest
round-trip formatting, which is lossless for float64 — bit-identical
results serialise to identical lines.

Non-finite floats (``inf``/``-inf``/``nan`` — e.g. a degenerate
worst-case PoA ratio) are not valid JSON, and the historical
``allow_nan=False`` strictness made them crash mid-campaign *after*
earlier chunks were already appended. They are now encoded as an
explicit sentinel object ``{"__nonfinite__": "inf" | "-inf" | "nan"}``
on write and decoded back to the float on read, so a payload survives
the round trip with its non-finite values intact and the encoded form
stays deterministic (byte-identity of resumed stores included). The
sentinel key is reserved: a payload dict that already uses it is
rejected before anything touches disk.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Union

__all__ = [
    "ResultStore",
    "StoreKey",
    "canonical_dumps",
    "canonical_loads",
    "canonical_payload",
]

#: (experiment, label, n, m, rep_lo, rep_hi)
StoreKey = tuple[str, str, int, int, int, int]

#: Reserved marker for JSON-unrepresentable floats.
NONFINITE_KEY = "__nonfinite__"

_ENCODE = {math.inf: "inf", -math.inf: "-inf"}
_DECODE = {"inf": math.inf, "-inf": -math.inf, "nan": math.nan}


def _encode_nonfinite(obj: Any) -> Any:
    """Replace non-finite floats with sentinel objects, recursively.

    Returns *obj* itself wherever nothing needed rewriting, so the
    common all-finite payload costs one traversal and no copies.
    """
    if isinstance(obj, float):
        if math.isfinite(obj):
            return obj
        return {NONFINITE_KEY: "nan" if math.isnan(obj) else _ENCODE[obj]}
    if isinstance(obj, dict):
        if NONFINITE_KEY in obj:
            raise ValueError(
                f"payload uses the reserved key {NONFINITE_KEY!r}"
            )
        encoded = {key: _encode_nonfinite(value) for key, value in obj.items()}
        return obj if all(encoded[k] is obj[k] for k in obj) else encoded
    if isinstance(obj, (list, tuple)):
        encoded_items = [_encode_nonfinite(value) for value in obj]
        if isinstance(obj, list) and all(
            new is old for new, old in zip(encoded_items, obj)
        ):
            return obj
        return encoded_items
    return obj


def _decode_hook(obj: dict[str, Any]) -> Any:
    """``json.loads`` object hook undoing :func:`_encode_nonfinite`."""
    if len(obj) == 1 and NONFINITE_KEY in obj:
        try:
            return _DECODE[obj[NONFINITE_KEY]]
        except (KeyError, TypeError):
            return obj
    return obj


def canonical_dumps(obj: Any, **kwargs: Any) -> str:
    """Serialise with the sentinel encoding (strict about raw inf/nan)."""
    return json.dumps(_encode_nonfinite(obj), allow_nan=False, **kwargs)


def canonical_loads(text: str) -> Any:
    """Deserialise, turning sentinel objects back into floats."""
    return json.loads(text, object_hook=_decode_hook)


def canonical_payload(payload: Any) -> Any:
    """One JSON round trip: the form payloads take when read back.

    Applied to freshly computed payloads too, so aggregation cannot
    distinguish a computed chunk from a resumed one (tuple vs list,
    int-keyed dicts, numpy scalars that slipped through, ...).
    Non-finite floats survive the trip via the sentinel encoding.
    """
    return canonical_loads(canonical_dumps(payload))


class ResultStore:
    """An append-only JSONL file of per-chunk campaign results."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    @classmethod
    def coerce(
        cls, store: "Union[ResultStore, str, Path, None]"
    ) -> "ResultStore | None":
        """Normalise a runner's ``store`` argument (path-like or None)."""
        if store is None or isinstance(store, ResultStore):
            return store
        return cls(store)

    @staticmethod
    def record_key(record: dict[str, Any]) -> StoreKey:
        return (
            record["experiment"],
            record["label"],
            int(record["n"]),
            int(record["m"]),
            int(record["rep_lo"]),
            int(record["rep_hi"]),
        )

    def load_records(self) -> dict[StoreKey, dict[str, Any]]:
        """All stored chunk records keyed by chunk; later lines win.

        Missing file means an empty store (a fresh ``--resume`` run is
        just a fresh run). Truncated trailing lines — the signature of a
        kill mid-write — are ignored, so a damaged tail never blocks a
        resume; the chunk is simply recomputed and re-appended. Records
        carry the payload plus provenance fields (e.g. the ``backend``
        that computed the chunk, absent in pre-backend stores).
        """
        records: dict[StoreKey, dict[str, Any]] = {}
        if not self.path.exists():
            return records
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = canonical_loads(line)
                    key = self.record_key(record)
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    continue
                records[key] = record
        return records

    def load_payloads(self) -> dict[StoreKey, Any]:
        """All stored payloads keyed by chunk (see :meth:`load_records`)."""
        return {
            key: record["payload"]
            for key, record in self.load_records().items()
        }

    def repair_tail(self) -> None:
        """Heal a kill-truncated final line.

        A run killed mid-write leaves a final line without a trailing
        newline. Appending straight after it would glue the new record
        onto the fragment, making *both* unparseable forever. If the
        unterminated tail is itself a valid record (the kill landed
        between write and newline), terminate it so the record is kept;
        otherwise drop the fragment so the chunk's recomputed record
        lands on a clean line — which also restores the byte-identity of
        a resumed store with an uninterrupted run.

        Called before every append, and by the scheduler at the start of
        a resume: a kill that lands exactly between the final record and
        its newline leaves a fully-parseable store whose resume computes
        (and therefore appends) nothing, so the missing terminator must
        be healed up front, not lazily on the next write.
        """
        try:
            fh = self.path.open("r+b")
        except FileNotFoundError:
            return
        with fh:
            fh.seek(0, 2)
            size = fh.tell()
            if size == 0:
                return
            fh.seek(size - 1)
            if fh.read(1) == b"\n":  # healthy tail: the common O(1) path
                return
            fh.seek(0)
            data = fh.read()
            newline_at = data.rfind(b"\n")
            tail = data[newline_at + 1 :]
            try:
                self.record_key(json.loads(tail.decode("utf-8")))
            except (json.JSONDecodeError, KeyError, TypeError,
                    UnicodeDecodeError, ValueError):
                fh.truncate(newline_at + 1 if newline_at >= 0 else 0)
            else:
                fh.write(b"\n")

    def append(self, record: dict[str, Any]) -> None:
        """Append one chunk record (creates parent directories lazily)."""
        self.record_key(record)  # validate shape before touching disk
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self.repair_tail()
        line = canonical_dumps(record, sort_keys=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()

    def __repr__(self) -> str:
        return f"ResultStore({str(self.path)!r})"
