"""The chunked sweep scheduler: spec in, per-cell payloads out.

:func:`run_sweep` is the single execution path behind every experiment
campaign (E1-E12). It expands a :class:`~repro.runtime.spec.SweepSpec`
into replication chunks, restricts them to one shard of a
:class:`~repro.runtime.spec.ShardPlan` when asked (``shard=``), skips
the chunks a result store already holds (``resume=True``), fans the
rest out over :func:`repro.util.parallel.iter_tasks` (inline or process
pool), and checkpoints each payload to the store the moment it arrives
— in canonical chunk order, so an interrupted store is always a
resumable prefix and a resumed store is byte-identical to an
uninterrupted one. Sharded runs inherit every one of those guarantees
per shard file; shard stores are recombined by
:func:`repro.runtime.store.merge_shard_stores`.

Determinism contract: for fixed spec and ``seed``, the aggregated
payloads are identical for every ``jobs``/``batch_size=None``/``store``/
``resume`` combination, and identical to what the pre-runtime bespoke
loops produced (the frozen baselines under ``tests/data/`` pin this for
E5 and E7-E11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Union

from repro.batch.backend import get_backend
from repro.errors import BackendError
from repro.runtime.spec import ShardPlan, SweepSpec
from repro.runtime.store import ResultStore, canonical_payload
from repro.util.parallel import ReplicationChunk, iter_tasks

__all__ = ["SweepResult", "run_sweep"]


@dataclass
class SweepResult:
    """Outcome of one sweep: chunk payloads plus their cell geometry."""

    spec: SweepSpec
    chunk_payloads: list[Any] = field(default_factory=list)
    cell_of_chunk: list[int] = field(default_factory=list)
    computed_chunks: int = 0
    resumed_chunks: int = 0
    shard: ShardPlan | None = None

    @property
    def payloads_by_cell(self) -> list[list[Any]]:
        """Chunk payloads grouped per grid cell, in replication order."""
        grouped: list[list[Any]] = [[] for _ in self.spec.cells]
        for cell_index, payload in zip(self.cell_of_chunk, self.chunk_payloads):
            grouped[cell_index].append(payload)
        return grouped


def _chunk_record(
    spec: SweepSpec, label: str, chunk: ReplicationChunk, payload: Any
) -> dict[str, Any]:
    return {
        "experiment": spec.experiment,
        "label": label,
        "n": chunk.num_users,
        "m": chunk.num_links,
        "rep_lo": chunk.rep_lo,
        "rep_hi": chunk.rep_hi,
        "backend": get_backend().name,
        "payload": payload,
    }


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int | None = 1,
    batch_size: int | None = None,
    seed: int | None = None,
    store: Union[ResultStore, str, Path, None] = None,
    resume: bool = False,
    shard: ShardPlan | None = None,
) -> SweepResult:
    """Execute *spec* and return its per-chunk payloads.

    Parameters
    ----------
    jobs:
        Worker processes for the chunk fan-out (``1`` inline, ``0`` all
        CPUs). Never affects results or store contents.
    batch_size:
        Replications per chunk (``None``: one chunk per cell). Resuming
        requires the same value the interrupted run used — different
        chunk boundaries produce different store keys and the completed
        work would not be recognised.
    seed:
        Optional global seed override, folded into the spec's seed
        label; ``None`` keeps the published baseline streams.
    store:
        A :class:`ResultStore` (or path) to checkpoint chunk payloads
        into, one JSONL line per chunk as it completes.
    resume:
        Skip chunks whose keys the store already holds, aggregating
        their stored payloads instead of recomputing.
    shard:
        Execute only the chunks this :class:`ShardPlan` owns
        (round-robin over canonical chunk order). Each shard of a
        campaign should write to its own store file
        (:func:`~repro.runtime.store.shard_store_path`); the shard
        stores merge back into the single-host store via
        :func:`~repro.runtime.store.merge_shard_stores`. Every
        per-shard guarantee is the single-host one: checkpoints land in
        the shard's canonical chunk order and a killed shard resumes to
        a byte-identical shard store.
    """
    store = ResultStore.coerce(store)
    label = spec.seeded_label(seed)
    chunks, cell_of_chunk = spec.chunks(
        batch_size=batch_size, seed=seed, shard=shard
    )

    payloads: list[Any] = [None] * len(chunks)
    done: list[bool] = [False] * len(chunks)
    resumed = 0
    if resume:
        if store is None:
            raise ValueError("resume=True requires a result store")
        stored = store.load_records()
        backend_name = get_backend().name
        for i, chunk in enumerate(chunks):
            key = (
                spec.experiment,
                label,
                chunk.num_users,
                chunk.num_links,
                chunk.rep_lo,
                chunk.rep_hi,
            )
            if key in stored:
                record = stored[key]
                # Pre-backend stores carry no provenance field and are
                # accepted (they were all NumPy); a recorded mismatch is
                # refused — mixing backends would break the resumed
                # store's byte-identity guarantee.
                stored_backend = record.get("backend")
                if stored_backend is not None and stored_backend != backend_name:
                    raise BackendError(
                        f"cannot resume from {store.path}: chunk "
                        f"{key} was computed under backend "
                        f"{stored_backend!r}, but this run uses "
                        f"{backend_name!r}; rerun with --backend "
                        f"{stored_backend} or start a fresh store"
                    )
                payloads[i] = record["payload"]
                done[i] = True
                resumed += 1

    pending = [i for i, complete in enumerate(done) if not complete]
    results = iter_tasks(spec.kernel, [chunks[i] for i in pending], jobs=jobs)
    for i, raw in zip(pending, results):
        payload = canonical_payload(raw)
        payloads[i] = payload
        done[i] = True
        if store is not None:
            store.append(_chunk_record(spec, label, chunks[i], payload))

    return SweepResult(
        spec=spec,
        chunk_payloads=payloads,
        cell_of_chunk=list(cell_of_chunk),
        computed_chunks=len(pending),
        resumed_chunks=resumed,
        shard=shard,
    )
