"""Declarative sweep specifications — what a campaign *is*, not how it runs.

A :class:`SweepSpec` captures everything the scheduler needs to execute
one experiment campaign: the cell grid (``(n, m)`` x replications), the
per-chunk kernel, the chunk dataclass that carries campaign-specific
knobs to worker processes, and the seed policy. Every ``run_e1`` ...
``run_e12`` declares one (or, for multi-part experiments, a few) of
these instead of hand-rolling its own loop; the registry exposes them as
inspectable metadata.

Seed policy
-----------
Each replication's seed is ``stable_seed(label, n, m, rep)`` — a pure
function of the spec's label and the replication coordinates, never of
chunk boundaries or worker scheduling (see
:class:`repro.util.parallel.ReplicationChunk`). A global seed override
(the CLI's ``--seed``) is folded into the label via
:meth:`SweepSpec.seeded_label`, deriving a fresh but equally
deterministic family of streams; ``seed=None`` keeps the published
baseline streams bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence, TypeVar

from repro.generators.suites import GridCell
from repro.util.parallel import ReplicationChunk, make_replication_chunks

__all__ = ["ShardPlan", "SweepSpec"]

T = TypeVar("T")


@dataclass(frozen=True)
class ShardPlan:
    """Deterministic ownership of one shard of a campaign's chunk list.

    ``ShardPlan(index, count)`` names shard *index* of *count* total
    shards (the CLI spelling ``--shard index/count``). Ownership is
    round-robin over canonical chunk order: shard ``k`` of ``K`` owns
    chunks ``k, k + K, k + 2K, ...`` of each spec's chunk list. Because
    per-replication seeds are a pure function of ``(label, n, m, rep)``
    — never of chunk boundaries, worker scheduling, or shard placement
    — any partition of the chunk list computes exactly the records a
    single-host run would, so ``K`` shards executed on ``K`` hosts merge
    back into the single-host store (see
    :func:`repro.runtime.store.merge_shard_stores` and
    ``docs/STORE_FORMAT.md``).

    Round-robin (rather than contiguous blocks) keeps shards balanced
    across the grid's cells and gives the merge step a deterministic
    interleave: taking one record from each shard in index order
    reconstructs canonical chunk order exactly.
    """

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise ValueError(
                f"shard index must be in [0, {self.count}), got {self.index}"
            )

    @classmethod
    def parse(cls, text: str) -> "ShardPlan":
        """Parse the CLI spelling ``"k/K"`` (e.g. ``"0/3"``)."""
        head, sep, tail = text.partition("/")
        if not sep:
            raise ValueError(
                f"expected a shard spelled k/K (e.g. 0/3), got {text!r}"
            )
        try:
            index, count = int(head), int(tail)
        except ValueError:
            raise ValueError(
                f"expected a shard spelled k/K (e.g. 0/3), got {text!r}"
            ) from None
        return cls(index, count)

    def owns(self, chunk_index: int) -> bool:
        """Whether this shard owns canonical chunk *chunk_index*."""
        return chunk_index % self.count == self.index

    def select(self, items: Sequence[T]) -> list[T]:
        """This shard's slice of *items* (round-robin by position)."""
        return list(items[self.index :: self.count])

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"

#: Per-chunk kernel: a picklable module-level callable mapping one
#: replication chunk to a JSON-serialisable payload.
Kernel = Callable[[ReplicationChunk], Any]


@dataclass(frozen=True)
class SweepSpec:
    """One campaign: a cell grid, a seed label and a per-chunk kernel.

    Attributes
    ----------
    experiment:
        The experiment id the sweep belongs to (``"E1"`` ... ``"E12"``);
        recorded in every store line.
    label:
        Seed-derivation label. Usually equals *experiment*; multi-part
        experiments (E6's three potential checks) use distinct labels so
        their store keys and seed streams cannot collide.
    cells:
        The ``(n, m, replications)`` grid to sweep.
    kernel:
        Module-level callable mapping a chunk to its payload. The
        payload must survive a JSON round trip unchanged (ints, floats,
        bools, strings, lists, dicts) — the store is JSONL and resumed
        payloads are read back from it.
    chunk_factory:
        The (frozen, picklable) chunk dataclass; subclasses of
        :class:`ReplicationChunk` carry campaign knobs to workers.
    chunk_extra:
        Extra keyword arguments forwarded to *chunk_factory* for every
        chunk (e.g. the E5 generator's ``num_states``/``concentration``).
    """

    experiment: str
    label: str
    cells: tuple[GridCell, ...]
    kernel: Kernel
    chunk_factory: Callable[..., ReplicationChunk] = ReplicationChunk
    chunk_extra: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "cells", tuple(self.cells))
        object.__setattr__(self, "chunk_extra", dict(self.chunk_extra))

    def seeded_label(self, seed: int | None = None) -> str:
        """The effective seed label under a global *seed* override.

        ``None`` (the default everywhere) leaves the published label —
        and therefore every baseline-pinned result — untouched.
        """
        if seed is None:
            return self.label
        return f"{self.label}@seed={int(seed)}"

    def chunks(
        self,
        *,
        batch_size: int | None = None,
        seed: int | None = None,
        shard: ShardPlan | None = None,
    ) -> tuple[list[ReplicationChunk], list[int]]:
        """``(chunks, cell_of_chunk)`` for this spec.

        Chunk boundaries depend only on the grid and *batch_size*, and
        seeds only on the (possibly overridden) label — so any two runs
        with the same flags produce identical chunks, which is what
        makes store keys stable across resume. A *shard* restricts the
        list to the chunks that shard owns (round-robin over canonical
        chunk order); the union over all shards of a plan is exactly the
        unsharded list, which is what makes a sharded campaign merge
        back into the single-host store.
        """
        chunks, cell_of_chunk = make_replication_chunks(
            self.cells,
            self.seeded_label(seed),
            batch_size,
            factory=self.chunk_factory,
            **self.chunk_extra,
        )
        if shard is None:
            return chunks, cell_of_chunk
        return shard.select(chunks), shard.select(cell_of_chunk)

    @property
    def total_replications(self) -> int:
        return sum(cell.replications for cell in self.cells)
