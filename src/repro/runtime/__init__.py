"""Unified campaign runtime — declarative sweeps, checkpoint/resume.

The shared execution machinery behind every experiment campaign:

* :class:`~repro.runtime.spec.SweepSpec`           — a declarative
  campaign description (cell grid x replications, per-chunk kernel,
  seed policy);
* :class:`~repro.runtime.store.ResultStore`        — an append-only
  JSONL store keyed by ``(experiment, label, n, m, rep_lo, rep_hi)``;
* :func:`~repro.runtime.scheduler.run_sweep`       — the chunked
  scheduler layered on :mod:`repro.util.parallel`, with checkpoint
  writes per completed chunk and resume that skips stored chunks while
  reproducing a byte-identical store.

Every ``run_e1`` ... ``run_e12`` declares a spec plus a kernel and
delegates execution here; the CLI's ``--jobs``/``--batch-size``/
``--seed``/``--store``/``--resume`` flags all terminate in
:func:`run_sweep`'s keyword arguments.
"""

from repro.runtime.scheduler import SweepResult, run_sweep
from repro.runtime.spec import SweepSpec
from repro.runtime.store import (
    ResultStore,
    canonical_dumps,
    canonical_loads,
    canonical_payload,
)

__all__ = [
    "SweepSpec",
    "SweepResult",
    "ResultStore",
    "canonical_dumps",
    "canonical_loads",
    "canonical_payload",
    "run_sweep",
]
