"""Unified campaign runtime — declarative sweeps, checkpoint/resume,
sharded scale-out.

The shared execution machinery behind every experiment campaign:

* :class:`~repro.runtime.spec.SweepSpec`           — a declarative
  campaign description (cell grid x replications, per-chunk kernel,
  seed policy);
* :class:`~repro.runtime.spec.ShardPlan`           — deterministic
  round-robin ownership of a slice of a spec's chunk list, so a
  campaign can be split across ``K`` workers/hosts at any granularity
  down to single chunks;
* :class:`~repro.runtime.store.ResultStore`        — an append-only
  JSONL store keyed by ``(experiment, label, n, m, rep_lo, rep_hi)``,
  with shard-file naming (:func:`~repro.runtime.store.shard_store_path`
  / :func:`~repro.runtime.store.discover_shard_stores`), a
  deterministic multi-shard merge
  (:func:`~repro.runtime.store.merge_shard_stores`) and a store-level
  identity check that is *canonical-record* equality
  (:func:`~repro.runtime.store.canonical_record_digest`) rather than
  file-byte equality — the format is specified in
  ``docs/STORE_FORMAT.md``;
* :func:`~repro.runtime.scheduler.run_sweep`       — the chunked
  scheduler layered on :mod:`repro.util.parallel`, with checkpoint
  writes per completed chunk, resume that skips stored chunks while
  reproducing a byte-identical store, and shard-scoped execution.

Every ``run_e1`` ... ``run_e13`` declares a spec plus a kernel and
delegates execution here; the CLI's ``--jobs``/``--batch-size``/
``--seed``/``--store``/``--resume``/``--shard`` flags all terminate in
:func:`run_sweep`'s keyword arguments, and the CLI's ``merge``/
``digest`` subcommands in the store-layer functions.
"""

from repro.runtime.scheduler import SweepResult, run_sweep
from repro.runtime.spec import ShardPlan, SweepSpec
from repro.runtime.store import (
    MergeResult,
    ResultStore,
    canonical_dumps,
    canonical_loads,
    canonical_payload,
    canonical_record_digest,
    discover_shard_stores,
    merge_shard_stores,
    shard_store_path,
)

__all__ = [
    "MergeResult",
    "ResultStore",
    "ShardPlan",
    "SweepResult",
    "SweepSpec",
    "canonical_dumps",
    "canonical_loads",
    "canonical_payload",
    "canonical_record_digest",
    "discover_shard_stores",
    "merge_shard_stores",
    "run_sweep",
    "shard_store_path",
]
