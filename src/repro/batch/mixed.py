"""Batched fully-mixed / mixed-Nash kernels — Section 4 over game stacks.

Every kernel operates on raw arrays with an arbitrary *batch* prefix:

* probabilities ``P``    — float array of shape ``(..., n, m)``;
* weights ``w``          — float array of shape ``(..., n)``;
* capacities ``C``       — float array of shape ``(..., n, m)``;
* initial traffic ``t``  — optional float array of shape ``(..., m)``.

As in :mod:`repro.batch.kernels`, the single-game functions
(:func:`repro.equilibria.fully_mixed.fully_mixed_candidate`,
:func:`repro.model.latency.mixed_latency_matrix`,
:func:`repro.equilibria.conditions.is_mixed_nash`) are the ``batch = ()``
views of these kernels, and the E7-E11 experiment layer calls them with
``batch = (B,)`` stacks.

Numerical parity note: the kernels promise *bit-identical* slices — for
any stack, ``kernel(stack)[b]`` equals the single-game computation on
game ``b`` exactly, floating-point operation for operation. The one
non-obvious ingredient is the matrix-vector product in Lemma 4.2
(``C^T lam``) and in the expected link traffic (``P^T w``): the batched
form ``np.matmul(v[..., None, :], M)[..., 0, :]`` dispatches to the same
BLAS GEMM reduction as the historical 2-D ``M.T @ v`` and reproduces it
bitwise, whereas ``einsum``/multiply-sum formulations do not (their
reduction trees differ in the last ulp). The differential tests in
``tests/test_batch_fmne.py`` pin this contract, and the frozen
``tests/data/mixed_seed_baseline.json`` enforces it end-to-end across
the E7-E11 campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batch.backend import get_backend
from repro.errors import DimensionError

__all__ = [
    "BatchFullyMixedResult",
    "batch_fully_mixed_candidate",
    "batch_mixed_latency_matrix",
    "batch_min_expected_latencies",
    "batch_is_mixed_nash",
    "normalize_rows",
    "SUPPORT_ATOL",
]

#: Probability threshold below which a link is considered out of support
#: (shared with the single-game Nash conditions).
SUPPORT_ATOL = 1e-12


def _as_mixed_arrays(
    probs: np.ndarray,
    weights: np.ndarray,
    capacities: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    xp = get_backend()
    p = xp.asarray(probs, dtype=np.float64)
    w = xp.asarray(weights, dtype=np.float64)
    caps = xp.asarray(capacities, dtype=np.float64)
    if p.ndim < 2 or caps.ndim < 2 or w.ndim < 1:
        raise DimensionError(
            "probabilities/capacities need at least (n, m), weights (n,)"
        )
    n, m = caps.shape[-2], caps.shape[-1]
    if p.shape[-2:] != (n, m) or w.shape[-1] != n:
        raise DimensionError(
            f"capacities cover (n, m) = ({n}, {m}), got probabilities "
            f"{p.shape[-2:]} and weights for {w.shape[-1]} users"
        )
    return p, w, caps


def _stacked_matvec(matrices: np.ndarray, vectors: np.ndarray) -> np.ndarray:
    """``out[..., l] = sum_i M[..., i, l] v[..., i]`` — bit-compatible
    with the 2-D ``M.T @ v`` (same BLAS reduction, see module docstring).
    """
    return get_backend().matmul(vectors[..., None, :], matrices)[..., 0, :]


@dataclass(frozen=True)
class BatchFullyMixedResult:
    """The closed-form fully mixed candidates of a game stack.

    The batched counterpart of
    :class:`repro.equilibria.fully_mixed.FullyMixedResult`: each field
    carries the batch prefix of the inputs, and slice ``b`` equals the
    single-game result on game ``b`` bit for bit.

    Attributes
    ----------
    probabilities:
        ``(..., n, m)`` candidate matrices of Lemma 4.3.
    latencies:
        ``(..., n)`` minimum expected latencies ``lambda_i`` (Lemma 4.1).
    link_traffic:
        ``(..., m)`` expected link traffic ``W^l`` (Lemma 4.2).
    exists:
        ``(...)`` boolean interiority mask — True where every
        probability lies strictly inside ``(0, 1)``, i.e. where the
        candidate is the game's unique fully mixed NE (Theorem 4.6).
    """

    probabilities: np.ndarray
    latencies: np.ndarray
    link_traffic: np.ndarray
    exists: np.ndarray


def batch_fully_mixed_candidate(
    weights: np.ndarray,
    capacities: np.ndarray,
    initial_traffic: np.ndarray | None = None,
    *,
    boundary_tol: float = 1e-12,
) -> BatchFullyMixedResult:
    """Evaluate the Lemma 4.1-4.3 closed form for a whole stack at once.

    O(B n m) total: per-user capacity row sums give the ``(..., n)``
    lambdas, one stacked mat-vec the ``(..., m)`` expected traffics, and
    a broadcasted affine map the ``(..., n, m)`` probability tensors.
    """
    xp = get_backend()
    w = xp.asarray(weights, dtype=np.float64)
    caps = xp.asarray(capacities, dtype=np.float64)
    if caps.ndim < 2 or w.ndim < 1:
        raise DimensionError("capacities need at least (n, m), weights (n,)")
    n, m = caps.shape[-2], caps.shape[-1]
    if w.shape[-1] != n:
        raise DimensionError(f"capacities cover {n} users, weights cover {w.shape[-1]}")
    if initial_traffic is None:
        t = xp.zeros(caps.shape[:-2] + (m,))
    else:
        t = xp.asarray(initial_traffic, dtype=np.float64)

    w_tot = w.sum(axis=-1)  # (...,)
    t_tot = t.sum(axis=-1)

    row_sums = caps.sum(axis=-1)  # S_i, shape (..., n)
    # Operation order mirrors the sequential code exactly:
    # lam = ((m - 1) * w + w_tot + t_tot) / S_i, left to right.
    lam = ((m - 1) * w + w_tot[..., None] + t_tot[..., None]) / row_sums
    if caps.ndim == 2:
        mv = caps.T @ lam  # single-game fast path: the historical op
    else:
        mv = _stacked_matvec(caps, lam)
    link_traffic = (mv - w_tot[..., None] - n * t) / (n - 1)  # Lemma 4.2
    probs = (
        t[..., None, :] + link_traffic[..., None, :] + w[..., None]
        - caps * lam[..., None]
    ) / w[..., None]  # Lemma 4.3

    axes = (-2, -1)
    interior = xp.logical_and(
        (probs > boundary_tol).all(axis=axes),
        (probs < 1.0 - boundary_tol).all(axis=axes),
    )
    return BatchFullyMixedResult(
        probabilities=probs,
        latencies=lam,
        link_traffic=link_traffic,
        exists=interior,
    )


def batch_mixed_latency_matrix(
    probs: np.ndarray,
    weights: np.ndarray,
    capacities: np.ndarray,
    initial_traffic: np.ndarray | None = None,
) -> np.ndarray:
    """Expected-latency matrices ``lambda^l_{i,b_i}(P)``: ``(..., n, m)``.

    ``out[..., i, l] = ((1 - P[..., i, l]) w_i + t_l + W^l) / C[..., i, l]``
    with ``W^l = sum_k P[..., k, l] w_k`` — Section 2's mixed latency,
    broadcast over the batch prefix.
    """
    p, w, caps = _as_mixed_arrays(probs, weights, capacities)
    if p.ndim == 2 and w.ndim == 1:
        w_link = p.T @ w  # single-game fast path: the historical op
    else:
        w_link = _stacked_matvec(p, w)
    if initial_traffic is not None:
        w_link = w_link + get_backend().asarray(initial_traffic, dtype=np.float64)
    numer = (1.0 - p) * w[..., None] + w_link[..., None, :]
    return numer / caps


def batch_min_expected_latencies(
    probs: np.ndarray,
    weights: np.ndarray,
    capacities: np.ndarray,
    initial_traffic: np.ndarray | None = None,
) -> np.ndarray:
    """Per-user minimum expected latency (eq. 1): shape ``(..., n)``."""
    return batch_mixed_latency_matrix(
        probs, weights, capacities, initial_traffic
    ).min(axis=-1)


def batch_is_mixed_nash(
    probs: np.ndarray,
    weights: np.ndarray,
    capacities: np.ndarray,
    initial_traffic: np.ndarray | None = None,
    *,
    tol: float = 1e-9,
) -> np.ndarray:
    """Mixed-Nash verdict per batch element: boolean array of shape ``(...)``.

    A profile is Nash iff every user's supported links (probability
    above :data:`SUPPORT_ATOL`) attain the user's minimum expected
    latency up to relative tolerance *tol*.
    """
    p, w, caps = _as_mixed_arrays(probs, weights, capacities)
    lat = batch_mixed_latency_matrix(p, w, caps, initial_traffic)
    minima = lat.min(axis=-1)
    scale = get_backend().maximum(minima, 1.0)
    bad = (p > SUPPORT_ATOL) & (lat > (minima + tol * scale)[..., None])
    return ~bad.any(axis=(-2, -1))


def normalize_rows(probs: np.ndarray) -> np.ndarray:
    """The row renormalisation applied by ``MixedProfile`` validation.

    Clips negatives to zero and divides each row by its sum — exactly
    the operations of ``check_probability_matrix``, so feeding a
    closed-form candidate through this function yields bit for bit the
    matrix the single-game ``FullyMixedResult.profile()`` exposes.
    Broadcasts over any batch prefix.
    """
    xp = get_backend()
    arr = xp.clip(xp.asarray(probs, dtype=np.float64), 0.0, None)
    return arr / arr.sum(axis=-1, keepdims=True)
