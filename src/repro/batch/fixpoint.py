"""Batched fixed-point mixed-equilibrium solver (beyond enumeration width).

Support enumeration (:mod:`repro.batch.support`) is exponential in
``(n, m)`` and caps every mixed experiment's grid at toy widths. This
module is the ROADMAP item-3 solver: a batched smoothed best-response /
proportional-fitting iteration over ``(B, n, m)`` probability tensors
that finds mixed Nash equilibria at ``n, m`` far beyond anything
enumerable, with per-game convergence masks and a certified residual
check against the module's own Nash oracle.

The iteration
-------------
State is a row-stochastic tensor ``P`` of shape ``(B, n, m)``, started
uniform. One *round* updates every user once, sequentially in index
order (user ``i`` sees the link traffic already updated by users
``0..i-1`` — the Gauss-Seidel schedule; simultaneous lockstep updates
oscillate at large ``n`` because the congestion externality makes every
user overshoot at once). For user ``i`` with expected latencies
``lat_l`` and row minimum ``mins``:

    q_l   = mins / lat_l                 in (0, 1], 1 on best links
    g_l   = p_l * q_l ** beta            proportional fitting
    p'_l  = (1 - eta) p_l + eta g_l / sum(g)

``beta`` is the inverse temperature: ``beta = 0`` keeps the row fixed,
``beta -> inf`` is hard best response. It anneals by doubling each
round (1, 2, 4, ... ``beta_max``), so early rounds move smoothly while
late rounds sharpen supports. ``q ** beta`` is computed by repeated
squaring of power-of-two exponents — no ``exp``/``pow``/``log`` — so
the whole update is elementwise IEEE arithmetic plus index-order
accumulations, which is what lets the numba fused kernel reproduce the
NumPy path *bit for bit* (the same contract as
:func:`repro.batch.pure._scatter_loads`).

Link traffic ``W^l = sum_i p_il w_i`` is maintained incrementally
inside a round (subtract the mover's old row contribution, add the
new), and rebuilt from scratch — users in index order — at the top of
every round, where the convergence residual is also checked; per-round
cost is ``O(B n m)``.

Convergence, stall and certification
------------------------------------
The residual of a game is the worst supported-link excess latency

    r = max over (i, l) with p_il > SUPPORT_ATOL of
        (lat_il - mins_i) / max(mins_i, 1)

— *identical* to the condition :func:`~repro.batch.mixed.batch_is_mixed_nash`
tests, so a game converged at ``tol`` (default 1e-10) is structurally
certified by the oracle at :data:`CERT_TOL` (1e-8); the 100x margin
absorbs the ulp-level difference between the solver's index-order
traffic accumulation and the oracle's BLAS mat-vec. Certification is
nevertheless *recomputed* through the public oracle on the returned
tensors — every profile in a :class:`BatchFixpointResult` is either
certified within :data:`CERT_TOL` or explicitly flagged
(``converged``/``certified`` False).

Games converge individually: a converged game freezes (its rows stop
updating, so convergence masks are monotone in the budget and a longer
budget replays a shorter one's trajectory exactly). A game that shows
no relative residual improvement for ``stall_rounds`` rounds, or that
exhausts ``max_rounds``, is flagged non-converged — masked out, never
fatal for the batch. The ``B = 1`` view
(:func:`repro.equilibria.fixpoint.fixpoint_mixed_nash`) turns the flag
into a :class:`~repro.errors.ConvergenceError`.

Backend seam
------------
Every kernel resolves its namespace through
:func:`repro.batch.backend.get_backend`; the whole round loop is the
``fixpoint_loop`` fused hook (:data:`~repro.batch.backend.FUSED_HOOKS`),
which the numba backend implements as a compiled ``prange``-per-game
loop reproducing the generic trajectory state for state. The generic
composition below remains the bit-parity reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batch.backend import get_backend
from repro.batch.mixed import SUPPORT_ATOL, batch_is_mixed_nash
from repro.errors import DimensionError, ModelError

__all__ = [
    "CERT_TOL",
    "DEFAULT_BETA_MAX",
    "DEFAULT_ETA",
    "DEFAULT_MAX_ROUNDS",
    "DEFAULT_STALL_ROUNDS",
    "DEFAULT_TOL",
    "BatchFixpointResult",
    "batch_fixpoint_mixed_nash",
]

#: Oracle tolerance every returned profile is certified against (or
#: flagged): ``batch_is_mixed_nash(probabilities, ..., tol=CERT_TOL)``.
CERT_TOL = 1e-8

#: Residual tolerance declaring a game converged. 100x tighter than
#: :data:`CERT_TOL`, so converged implies certified (see module notes).
DEFAULT_TOL = 1e-10

#: Damping factor of the proportional-fitting update.
DEFAULT_ETA = 0.5

#: Inverse-temperature ceiling of the doubling anneal (a power of two).
DEFAULT_BETA_MAX = 256

#: Round budget (one round = one sequential update of every user).
DEFAULT_MAX_ROUNDS = 4000

#: Rounds without relative residual improvement before a game is
#: declared stalled. Generous on purpose: the residual is a step
#: function of support collapse (it only drops when a probability
#: crosses :data:`~repro.batch.mixed.SUPPORT_ATOL`), so short windows
#: would kill games mid-collapse.
DEFAULT_STALL_ROUNDS = 1000

#: Relative improvement that resets the stall window.
STALL_RTOL = 1e-3


@dataclass(frozen=True)
class BatchFixpointResult:
    """Per-game outcome of one batched fixed-point solve.

    Attributes
    ----------
    probabilities:
        ``(B, n, m)`` row-stochastic profiles — the solver state at
        termination for every game, converged or not.
    residuals:
        ``(B,)`` last supported-link excess-latency residual measured
        while the game was still active (``<= tol`` iff converged).
    rounds:
        ``(B,)`` int64 — update rounds each game consumed before
        converging or being flagged.
    converged:
        ``(B,)`` bool — residual reached *tol* within the budgets.
    stalled:
        ``(B,)`` bool — flagged by the stall window (a non-converged
        game with ``stalled`` False exhausted ``max_rounds`` instead).
    certified:
        ``(B,)`` bool — the public oracle's verdict
        ``batch_is_mixed_nash(probabilities, ..., tol=certify_tol)`` on
        the returned tensors. The solver's contract is
        ``converged implies certified``; a profile with ``certified``
        False is explicitly *not* an equilibrium claim.
    """

    probabilities: np.ndarray
    residuals: np.ndarray
    rounds: np.ndarray
    converged: np.ndarray
    stalled: np.ndarray
    certified: np.ndarray


def _validated(
    weights: np.ndarray,
    capacities: np.ndarray,
    initial_traffic: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    xp = get_backend()
    w = xp.asarray(weights, dtype=np.float64)
    caps = xp.asarray(capacities, dtype=np.float64)
    if caps.ndim != 3 or w.ndim != 2:
        raise DimensionError(
            "batch_fixpoint_mixed_nash needs weights (B, n) and "
            f"capacities (B, n, m); got {w.shape} and {caps.shape}"
        )
    b, n, m = caps.shape
    if w.shape != (b, n):
        raise DimensionError(
            f"capacities cover (B, n) = ({b}, {n}), weights are {w.shape}"
        )
    if initial_traffic is None:
        t = xp.zeros((b, m))
    else:
        t = xp.asarray(initial_traffic, dtype=np.float64)
        if t.shape != (b, m):
            raise DimensionError(
                f"initial_traffic must be ({b}, {m}), got {t.shape}"
            )
    return w, caps, t


def _generic_fixpoint_loop(
    w: np.ndarray,
    caps: np.ndarray,
    t: np.ndarray,
    tol: float,
    eta: float,
    log2_beta_max: int,
    max_rounds: int,
    stall_rounds: int,
    stall_rtol: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The bit-parity reference round loop (see the hook contract on
    :class:`~repro.batch.backend.ArrayBackend`)."""
    xp = get_backend()
    b, n, m = caps.shape
    p = xp.full((b, n, m), 1.0 / m)
    rounds = np.zeros(b, dtype=np.int64)
    residuals = np.full(b, np.inf)
    best = np.full(b, np.inf)
    since = np.zeros(b, dtype=np.int64)
    converged = np.zeros(b, dtype=bool)
    stalled = np.zeros(b, dtype=bool)
    active = np.ones(b, dtype=bool)
    log2beta = 0
    for k in range(max_rounds + 1):
        # Rebuild link traffic from scratch, users in index order (the
        # bit-parity accumulation contract), and check the residual.
        w_link = xp.zeros((b, m))
        for i in range(n):
            w_link = w_link + p[:, i, :] * w[:, i, None]
        lat = ((1.0 - p) * w[:, :, None] + (t + w_link)[:, None, :]) / caps
        mins = lat.min(axis=-1)
        scale = xp.maximum(mins, 1.0)
        excess = (lat - mins[..., None]) / scale[..., None]
        r = xp.where(p > SUPPORT_ATOL, excess, 0.0).max(axis=(-2, -1))
        residuals = xp.where(active, r, residuals)
        newly = active & (r <= tol)
        converged |= newly
        active &= ~newly
        improved = active & (r < best * (1.0 - stall_rtol))
        best = xp.where(improved, r, best)
        since = xp.where(active, xp.where(improved, 0, since + 1), since)
        newly_stalled = active & (since >= stall_rounds)
        stalled |= newly_stalled
        active &= ~newly_stalled
        if k == max_rounds or not active.any():
            break
        # One round: every user in index order, each seeing the link
        # traffic already updated by earlier movers (Gauss-Seidel).
        for u in range(n):
            row = p[:, u, :]
            lat_u = ((1.0 - row) * w[:, u, None] + (t + w_link)) / caps[:, u, :]
            q = lat_u.min(axis=-1)[:, None] / lat_u
            qb = q
            for _ in range(log2beta):
                qb = qb * qb
            g = row * qb
            s = g[:, 0]
            for link in range(1, m):
                s = s + g[:, link]
            updated = (1.0 - eta) * row + eta * (g / s[:, None])
            updated = xp.where(active[:, None], updated, row)
            w_link = w_link + (updated - row) * w[:, u, None]
            p[:, u, :] = updated
        rounds = xp.where(active, rounds + 1, rounds)
        if log2beta < log2_beta_max:
            log2beta += 1
    return p, rounds, residuals, converged, stalled


def batch_fixpoint_mixed_nash(
    weights: np.ndarray,
    capacities: np.ndarray,
    initial_traffic: np.ndarray | None = None,
    *,
    tol: float = DEFAULT_TOL,
    eta: float = DEFAULT_ETA,
    beta_max: int = DEFAULT_BETA_MAX,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    stall_rounds: int = DEFAULT_STALL_ROUNDS,
    stall_rtol: float = STALL_RTOL,
    certify_tol: float = CERT_TOL,
) -> BatchFixpointResult:
    """Solve a ``(B, n, m)`` game stack for mixed Nash equilibria.

    Runs the annealed smoothed best-response iteration (module notes)
    until every game converges to residual *tol*, stalls, or exhausts
    *max_rounds*, then certifies the returned tensors through
    :func:`~repro.batch.mixed.batch_is_mixed_nash` at *certify_tol*.
    Per-game failures are masks on the result, never exceptions.

    Determinism: the trajectory of game ``b`` is a pure function of
    that game's reduced form and the solver parameters — independent of
    its batch-mates, batch order and padding, and identical between the
    NumPy reference and the numba fused hook bit for bit.

    *beta_max* must be a power of two (the anneal doubles up to it and
    the exponentiation is by repeated squaring).
    """
    w, caps, t = _validated(weights, capacities, initial_traffic)
    if beta_max < 1 or beta_max & (beta_max - 1):
        raise ModelError(f"beta_max must be a power of two, got {beta_max}")
    if not 0.0 < eta <= 1.0:
        raise ModelError(f"eta must lie in (0, 1], got {eta}")
    if max_rounds < 0 or stall_rounds < 1:
        raise ModelError("max_rounds must be >= 0 and stall_rounds >= 1")
    log2_beta_max = int(beta_max).bit_length() - 1
    args = (
        float(tol),
        float(eta),
        log2_beta_max,
        int(max_rounds),
        int(stall_rounds),
        float(stall_rtol),
    )
    xp = get_backend()
    fused = None
    if xp.fixpoint_loop is not None:
        fused = xp.fixpoint_loop(w, caps, t, *args)
    if fused is None:
        fused = _generic_fixpoint_loop(w, caps, t, *args)
    p, rounds, residuals, converged, stalled = fused
    certified = batch_is_mixed_nash(p, w, caps, t, tol=certify_tol)
    return BatchFixpointResult(
        probabilities=p,
        residuals=residuals,
        rounds=rounds,
        converged=converged,
        stalled=stalled,
        certified=np.asarray(certified, dtype=bool),
    )
