"""Batched support enumeration — stacked indifference systems per block.

The Section 4 cross-checks (experiments E7/E9) enumerate *every* mixed
Nash equilibrium of small games by support profile: fix one non-empty
link subset per user, solve the linear indifference system it induces,
and keep solutions that verify as Nash. Per game that is
``(2^m - 1)^n`` small dense solves — the last per-game sequential hot
path in the library after the mixed/PoA engines were batched.

The batched form exploits two structural facts:

* for a fixed support profile, the system's sparsity pattern (which
  matrix entry holds which ``w_k`` / ``-C[i, l]`` coefficient) is a pure
  function of ``(n, m, supports)`` — independent of the game. The
  assembly *indices* are therefore precomputed once per game shape and
  cached (:func:`_support_structures`), and filling the coefficient
  tensors for ``B`` games is pure fancy indexing;
* profiles with equal system dimension ``k`` stack with the games into
  one ``(P * B, k, k)`` tensor that a single
  :func:`numpy.linalg.solve` call factorises — the Sinkhorn-style trick
  of batching whole families of small linear problems instead of
  looping over them.

Degenerate supports whose systems are exactly singular fall back to the
per-slice minimum-norm :func:`numpy.linalg.lstsq` solution the
sequential code always used; every candidate is then vetted by the same
residual / support-interiority / Nash checks, so the fallback only
affects which representative of a solution continuum is proposed, never
which equilibria survive.

:func:`repro.equilibria.support_enum.enumerate_mixed_nash` is the
``B = 1`` view of :func:`batch_enumerate_mixed_nash`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Sequence

import numpy as np

from repro.batch.backend import get_backend
from repro.batch.mixed import batch_is_mixed_nash, normalize_rows
from repro.errors import DimensionError, ModelError
from repro.model.profiles import MixedProfile

__all__ = [
    "MAX_SUPPORT_PROFILES",
    "support_profiles",
    "batch_enumerate_mixed_nash",
]

#: Refuse enumeration beyond this many support profiles per game.
MAX_SUPPORT_PROFILES = 300_000


def support_profiles(
    num_users: int, num_links: int
) -> Iterator[tuple[tuple[int, ...], ...]]:
    """Yield every support profile: one non-empty link subset per user.

    The iteration order (subsets by size then lexicographically, users
    varying fastest on the right) is the library's canonical profile
    order; deduplication keeps the first representative in this order.
    """
    links = range(num_links)
    subsets: list[tuple[int, ...]] = []
    for size in range(1, num_links + 1):
        subsets.extend(itertools.combinations(links, size))
    yield from itertools.product(subsets, repeat=num_users)


@dataclass
class _SupportGroup:
    """All support profiles of one system dimension, assembly-indexed.

    Index-array semantics (``A`` is the ``(P, B, k, k)`` coefficient
    tensor flattened to ``(P, B, k * k)``, ``rhs`` is ``(P, B, k)``):

    * ``A[aw_p, :, aw_rc] = w[:, aw_u]``            (indifference rows)
    * ``A[ac_p, :, ac_rc] = -caps[:, ac_i, ac_l]``  (lambda columns)
    * ``A[a1_p, :, a1_rc] = 1``                     (row-sum rows)
    * ``rhs[rw_p, :, rw_r] = -(w[:, rw_i] + t[:, rw_l])``
    * ``rhs[r1_p, :, r1_r] = 1``
    * ``probs[ps_p, :, ps_i * m + ps_l] = sol[ps_p, :, ps_col]``
    """

    dim: int
    profile_order: np.ndarray  # (P,) canonical profile indices
    aw_p: np.ndarray
    aw_rc: np.ndarray
    aw_u: np.ndarray
    ac_p: np.ndarray
    ac_rc: np.ndarray
    ac_i: np.ndarray
    ac_l: np.ndarray
    a1_p: np.ndarray
    a1_rc: np.ndarray
    rw_p: np.ndarray
    rw_r: np.ndarray
    rw_i: np.ndarray
    rw_l: np.ndarray
    r1_p: np.ndarray
    r1_r: np.ndarray
    ps_p: np.ndarray
    ps_col: np.ndarray
    ps_im: np.ndarray

    @property
    def num_profiles(self) -> int:
        return int(self.profile_order.size)


def _index_array(entries: list[tuple], column: int) -> np.ndarray:
    return np.asarray([e[column] for e in entries], dtype=np.intp)


@lru_cache(maxsize=64)
def _support_structures(num_users: int, num_links: int) -> tuple[_SupportGroup, ...]:
    """The game-independent assembly structure for one ``(n, m)`` shape.

    Grouped by system dimension so each group solves as one stacked
    ``(P * B, k, k)`` call; cached because the verification grids reuse
    a handful of small shapes thousands of times.
    """
    n, m = num_users, num_links
    by_dim: dict[int, dict[str, list]] = {}
    for q, supports in enumerate(support_profiles(n, m)):
        p_index: dict[tuple[int, int], int] = {}
        for i, supp in enumerate(supports):
            for link in supp:
                p_index[(i, link)] = len(p_index)
        num_p = len(p_index)
        dim = num_p + n
        bucket = by_dim.setdefault(
            dim,
            {key: [] for key in ("order", "aw", "ac", "a1", "rw", "r1", "ps")},
        )
        p = len(bucket["order"])
        bucket["order"].append(q)
        r = 0
        for i, supp in enumerate(supports):
            for link in supp:
                for k, supp_k in enumerate(supports):
                    if k != i and link in supp_k:
                        bucket["aw"].append((p, r * dim + p_index[(k, link)], k))
                bucket["ac"].append((p, r * dim + num_p + i, i, link))
                bucket["rw"].append((p, r, i, link))
                r += 1
        for i, supp in enumerate(supports):
            for link in supp:
                bucket["a1"].append((p, r * dim + p_index[(i, link)]))
            bucket["r1"].append((p, r))
            r += 1
        for (i, link), col in p_index.items():
            bucket["ps"].append((p, col, i * m + link))

    groups = []
    for dim in sorted(by_dim):
        b = by_dim[dim]
        groups.append(
            _SupportGroup(
                dim=dim,
                profile_order=np.asarray(b["order"], dtype=np.intp),
                aw_p=_index_array(b["aw"], 0),
                aw_rc=_index_array(b["aw"], 1),
                aw_u=_index_array(b["aw"], 2),
                ac_p=_index_array(b["ac"], 0),
                ac_rc=_index_array(b["ac"], 1),
                ac_i=_index_array(b["ac"], 2),
                ac_l=_index_array(b["ac"], 3),
                a1_p=_index_array(b["a1"], 0),
                a1_rc=_index_array(b["a1"], 1),
                rw_p=_index_array(b["rw"], 0),
                rw_r=_index_array(b["rw"], 1),
                rw_i=_index_array(b["rw"], 2),
                rw_l=_index_array(b["rw"], 3),
                r1_p=_index_array(b["r1"], 0),
                r1_r=_index_array(b["r1"], 1),
                ps_p=_index_array(b["ps"], 0),
                ps_col=_index_array(b["ps"], 1),
                ps_im=_index_array(b["ps"], 2),
            )
        )
    return tuple(groups)


def _min_norm_stacked(a: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Batched minimum-norm solve of an ``(N, k, k)`` stack via SVD.

    The stacked equivalent of ``lstsq(a, rhs, rcond=None)``: singular
    values below ``eps * k * sigma_max`` (lstsq's machine-precision
    default) are treated as zero, so degenerate supports get the same
    min-norm continuum representative the sequential enumeration
    proposed — which the downstream residual / Nash checks vet either
    way.
    """
    xp = get_backend()
    try:
        u, s, vt = xp.linalg.svd(a, full_matrices=False)
    except np.linalg.LinAlgError:  # pragma: no cover - svd rarely fails
        out = np.empty_like(rhs)
        for idx in range(a.shape[0]):
            out[idx] = xp.linalg.lstsq(a[idx], rhs[idx], rcond=None)[0]
        return out
    cutoff = np.finfo(a.dtype).eps * max(a.shape[-2:]) * s[..., :1]
    keep = s > cutoff
    s_inv = xp.where(keep, 1.0 / xp.where(keep, s, 1.0), 0.0)
    utb = xp.matmul(xp.swapaxes(u, -2, -1), rhs[..., None])[..., 0]
    return xp.matmul(xp.swapaxes(vt, -2, -1), (s_inv * utb)[..., None])[..., 0]


def _solve_stacked(a: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """LU-solve a ``(N, k, k)`` stack; SVD min-norm for singular slices.

    Degenerate support systems are common (roughly a third at the E7/E9
    widths), and one singular slice makes the whole-stack
    :func:`numpy.linalg.solve` raise — so singular slices are screened
    up front with a batched determinant (the same LU factorisation:
    an exactly-zero pivot is exactly ``det == 0``) and routed to the
    batched min-norm solve instead of a per-slice Python fallback loop.
    """
    xp = get_backend()
    out = np.empty_like(rhs)
    regular = xp.linalg.det(a) != 0.0
    if regular.any():
        try:
            out[regular] = xp.linalg.solve(
                a[regular], rhs[regular][..., None]
            )[..., 0]
        except np.linalg.LinAlgError:  # pragma: no cover - det screen missed
            out[regular] = _min_norm_stacked(a[regular], rhs[regular])
    singular = ~regular
    if singular.any():
        out[singular] = _min_norm_stacked(a[singular], rhs[singular])
    return out


def batch_enumerate_mixed_nash(
    weights: np.ndarray,
    capacities: np.ndarray,
    initial_traffic: np.ndarray | None = None,
    *,
    tol: float = 1e-9,
    dedupe_decimals: int = 7,
) -> list[list[MixedProfile]]:
    """Every Nash equilibrium of each game in a ``(B, n, m)`` stack.

    Returns one equilibrium list per game, deduplicated by rounding and
    ordered by the canonical support-profile order — element ``b``
    equals ``enumerate_mixed_nash`` run on game ``b`` alone.

    Parameters mirror the stacked-kernel convention: ``weights``
    ``(B, n)``, ``capacities`` ``(B, n, m)``, optional
    ``initial_traffic`` ``(B, m)``.
    """
    xp = get_backend()
    w = xp.asarray(weights, dtype=np.float64)
    caps = xp.asarray(capacities, dtype=np.float64)
    if caps.ndim != 3:
        raise DimensionError(f"capacities must have shape (B, n, m), got {caps.shape}")
    batch, n, m = caps.shape
    if w.shape != (batch, n):
        raise DimensionError(f"weights must have shape ({batch}, {n}), got {w.shape}")
    if initial_traffic is None:
        t = xp.zeros((batch, m))
    else:
        t = xp.asarray(initial_traffic, dtype=np.float64)
        if t.shape != (batch, m):
            raise DimensionError(
                f"initial_traffic must have shape ({batch}, {m}), got {t.shape}"
            )
    total = (2**m - 1) ** n
    if total > MAX_SUPPORT_PROFILES:
        raise ModelError(
            f"{total} support profiles exceed the enumeration limit "
            f"({MAX_SUPPORT_PROFILES})"
        )

    # (profile index, once-normalised matrix, MixedProfile-normalised
    # matrix) per surviving candidate, per game.
    found: list[list[tuple[int, np.ndarray, np.ndarray]]] = [[] for _ in range(batch)]
    for group in _support_structures(n, m):
        p_count, k = group.num_profiles, group.dim
        a = np.zeros((p_count, batch, k, k))
        a_flat = a.reshape(p_count, batch, k * k)
        a_flat[group.aw_p, :, group.aw_rc] = w[:, group.aw_u].T
        a_flat[group.ac_p, :, group.ac_rc] = -caps[:, group.ac_i, group.ac_l].T
        a_flat[group.a1_p, :, group.a1_rc] = 1.0
        rhs = np.zeros((p_count, batch, k))
        rhs[group.rw_p, :, group.rw_r] = -(w[:, group.rw_i] + t[:, group.rw_l]).T
        rhs[group.r1_p, :, group.r1_r] = 1.0

        sol = _solve_stacked(
            a.reshape(p_count * batch, k, k), rhs.reshape(p_count * batch, k)
        ).reshape(p_count, batch, k)

        good = xp.isfinite(sol).all(axis=-1)
        residual = xp.linalg.norm(xp.matmul(a, sol[..., None])[..., 0] - rhs, axis=-1)
        rhs_norm = xp.linalg.norm(rhs, axis=-1)
        good &= residual <= 1e-7 * xp.maximum(1.0, rhs_norm)

        probs = np.zeros((p_count, batch, n * m))
        probs[group.ps_p, :, group.ps_im] = sol[group.ps_p, :, group.ps_col]
        # Support semantics: strictly positive on support (off-support
        # entries are structurally zero), nothing above 1 + slack.
        sup_vals = probs[group.ps_p, :, group.ps_im]
        sup_min = np.full((p_count, batch), np.inf)
        sup_max = np.full((p_count, batch), -np.inf)
        np.minimum.at(sup_min, group.ps_p, sup_vals)
        np.maximum.at(sup_max, group.ps_p, sup_vals)
        good &= (sup_min >= tol) & (sup_max <= 1.0 + 1e-9)
        if not good.any():
            continue

        # Renormalise away numerical slack (exactly _solve_support's ops),
        # then apply MixedProfile's clip+renormalise once more: Nash
        # verification and dedupe see the matrix a MixedProfile stores.
        pm = xp.clip(probs.reshape(p_count, batch, n, m), 0.0, None)
        sums = pm.sum(axis=-1, keepdims=True)
        good &= (sums[..., 0] > 0).all(axis=-1)
        pm = pm / xp.where(sums <= 0, 1.0, sums)
        # Rejected candidates may hold all-zero rows; mask them to a
        # harmless constant so the row renormalisation stays finite
        # (good slices are untouched bit for bit).
        pm2 = normalize_rows(xp.where(good[..., None, None], pm, 1.0))

        p_idx, b_idx = xp.nonzero(good)
        if p_idx.size == 0:
            continue
        verdicts = batch_is_mixed_nash(
            pm2[p_idx, b_idx], w[b_idx], caps[b_idx], t[b_idx], tol=1e-7
        )
        order = group.profile_order
        for pi, bi, is_nash in zip(p_idx, b_idx, verdicts):
            if is_nash:
                found[bi].append((int(order[pi]), pm[pi, bi], pm2[pi, bi]))

    results: list[list[MixedProfile]] = []
    for candidates in found:
        candidates.sort(key=lambda item: item[0])
        kept: dict[bytes, MixedProfile] = {}
        for _, once, stored in candidates:
            key = np.round(stored, dedupe_decimals).tobytes()
            if key not in kept:
                kept[key] = MixedProfile(once)
        results.append(list(kept.values()))
    return results


def batch_enumerate_for(
    batch_games, indices: Sequence[int] | None = None
) -> list[list[MixedProfile]]:
    """Convenience wrapper: enumerate a :class:`GameBatch` (or a subset).

    *indices* restricts to a subset of the stack (order kept); ``None``
    enumerates every game.
    """
    if indices is None:
        return batch_enumerate_mixed_nash(
            batch_games.weights,
            batch_games.capacities,
            batch_games.initial_traffic,
        )
    idx = np.asarray(indices, dtype=np.intp)
    return batch_enumerate_mixed_nash(
        batch_games.weights[idx],
        batch_games.capacities[idx],
        batch_games.initial_traffic[idx],
    )
