"""Batched game engine — stack B instances into ``(B, n, m)`` tensors.

The subsystem behind the library's instance-parallel workloads:

* :class:`GameBatch`             — the stacked container (weights,
  effective capacities, initial traffic);
* :mod:`repro.batch.kernels`     — broadcastable latency / Nash kernels;
  the single-game functions in :mod:`repro.model.latency` and
  :mod:`repro.equilibria.enumeration` are their ``B = 1`` views;
* :mod:`repro.batch.dynamics`    — lockstep best-/better-response
  dynamics with an active mask and per-game cycle detection;
* :mod:`repro.batch.mixed`       — fully-mixed closed form (Lemmas
  4.1-4.3), expected-latency and mixed-Nash kernels over stacks; the
  single-game Section 4 APIs are their ``B = 1`` views;
* :mod:`repro.batch.poa`         — batched Theorem 4.13/4.14 bounds,
  exhaustive social optima and worst empirical coordination ratios;
* :mod:`repro.batch.support`     — stacked ``(B, k, k)`` support
  enumeration; :mod:`repro.equilibria.support_enum` is its ``B = 1``
  view;
* :mod:`repro.batch.fixpoint`    — the iterative smoothed best-response
  / proportional-fitting mixed-equilibrium solver for widths beyond
  enumeration, certified per game by the mixed-Nash oracle;
  :mod:`repro.equilibria.fixpoint` is its ``B = 1`` view;
* :mod:`repro.batch.pure`        — lockstep nashification, batched
  potential evaluators / four-cycle gaps, the PNE/response-cycle
  census and the lockstep Section 3 solvers;
  :mod:`repro.equilibria.nashify`, the evaluators in
  :mod:`repro.equilibria.potential` and the census half of
  :mod:`repro.analysis.cycles` are their ``B = 1`` views;
* :mod:`repro.batch.generator`   — one-pass vectorised instance drawing;
* :mod:`repro.batch.backend`     — the pluggable array-namespace seam
  every kernel above draws its ops from (NumPy reference, Numba JIT,
  optional GPU stubs).
"""

from repro.batch.backend import (
    ArrayBackend,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from repro.batch.container import GameBatch
from repro.batch.dynamics import (
    BatchDynamicsResult,
    batch_best_response_dynamics,
    batch_better_response_dynamics,
)
from repro.batch.generator import random_game_batch
from repro.batch.kernels import (
    batch_count_pure_nash,
    batch_deviation_latencies,
    batch_exists_pure_nash,
    batch_loads,
    batch_pure_latencies,
    batch_pure_nash_mask,
)
from repro.batch.mixed import (
    BatchFullyMixedResult,
    batch_fully_mixed_candidate,
    batch_is_mixed_nash,
    batch_min_expected_latencies,
    batch_mixed_latency_matrix,
    normalize_rows,
)
from repro.batch.fixpoint import (
    CERT_TOL,
    BatchFixpointResult,
    batch_fixpoint_mixed_nash,
)
from repro.batch.support import (
    MAX_SUPPORT_PROFILES,
    batch_enumerate_for,
    batch_enumerate_mixed_nash,
    support_profiles,
)
from repro.batch.pure import (
    BatchNashifyResult,
    batch_asymmetric,
    batch_atwolinks,
    batch_auniform,
    batch_four_cycle_gaps,
    batch_nashify,
    batch_nashify_common_beliefs,
    batch_ordinal_potential_symmetric,
    batch_response_cycle_census,
    batch_sampled_cycle_gaps,
    batch_verify_ordinal_potential_symmetric,
    batch_verify_weighted_potential,
    batch_weighted_potential,
)
from repro.batch.poa import (
    BatchRatioResult,
    EquilibriumStack,
    batch_all_pure_latencies,
    batch_empirical_ratios,
    batch_equilibrium_profiles,
    batch_poa_bound_general,
    batch_poa_bound_uniform,
    batch_social_optima,
)

__all__ = [
    "ArrayBackend",
    "available_backends",
    "backend_names",
    "get_backend",
    "register_backend",
    "set_backend",
    "use_backend",
    "GameBatch",
    "BatchDynamicsResult",
    "batch_best_response_dynamics",
    "batch_better_response_dynamics",
    "random_game_batch",
    "batch_count_pure_nash",
    "batch_deviation_latencies",
    "batch_exists_pure_nash",
    "batch_loads",
    "batch_pure_latencies",
    "batch_pure_nash_mask",
    "CERT_TOL",
    "BatchFixpointResult",
    "batch_fixpoint_mixed_nash",
    "BatchFullyMixedResult",
    "batch_fully_mixed_candidate",
    "batch_is_mixed_nash",
    "batch_min_expected_latencies",
    "batch_mixed_latency_matrix",
    "normalize_rows",
    "MAX_SUPPORT_PROFILES",
    "batch_enumerate_for",
    "batch_enumerate_mixed_nash",
    "support_profiles",
    "BatchNashifyResult",
    "batch_asymmetric",
    "batch_atwolinks",
    "batch_auniform",
    "batch_four_cycle_gaps",
    "batch_nashify",
    "batch_nashify_common_beliefs",
    "batch_ordinal_potential_symmetric",
    "batch_response_cycle_census",
    "batch_sampled_cycle_gaps",
    "batch_verify_ordinal_potential_symmetric",
    "batch_verify_weighted_potential",
    "batch_weighted_potential",
    "BatchRatioResult",
    "EquilibriumStack",
    "batch_all_pure_latencies",
    "batch_empirical_ratios",
    "batch_equilibrium_profiles",
    "batch_poa_bound_general",
    "batch_poa_bound_uniform",
    "batch_social_optima",
]
