"""Batched game engine — stack B instances into ``(B, n, m)`` tensors.

The subsystem behind the library's instance-parallel workloads:

* :class:`GameBatch`             — the stacked container (weights,
  effective capacities, initial traffic);
* :mod:`repro.batch.kernels`     — broadcastable latency / Nash kernels;
  the single-game functions in :mod:`repro.model.latency` and
  :mod:`repro.equilibria.enumeration` are their ``B = 1`` views;
* :mod:`repro.batch.dynamics`    — lockstep best-/better-response
  dynamics with an active mask and per-game cycle detection;
* :mod:`repro.batch.generator`   — one-pass vectorised instance drawing.
"""

from repro.batch.container import GameBatch
from repro.batch.dynamics import (
    BatchDynamicsResult,
    batch_best_response_dynamics,
    batch_better_response_dynamics,
)
from repro.batch.generator import random_game_batch
from repro.batch.kernels import (
    batch_count_pure_nash,
    batch_deviation_latencies,
    batch_exists_pure_nash,
    batch_loads,
    batch_pure_latencies,
    batch_pure_nash_mask,
)

__all__ = [
    "GameBatch",
    "BatchDynamicsResult",
    "batch_best_response_dynamics",
    "batch_better_response_dynamics",
    "random_game_batch",
    "batch_count_pure_nash",
    "batch_deviation_latencies",
    "batch_exists_pure_nash",
    "batch_loads",
    "batch_pure_latencies",
    "batch_pure_nash_mask",
]
