"""Lockstep best-/better-response dynamics over a :class:`GameBatch`.

All ``B`` games step simultaneously: one kernel call computes the
deviation tensor for every *active* game, one argmin picks each game's
moving user and target link, and games leave the active set as they
converge (no user can improve), cycle (a deterministic schedule revisits
a profile), or exhaust the step budget.

Semantics parity: for every game ``b`` the trajectory, accepted-move
count, convergence flag and cycle flag are identical to running
:func:`repro.equilibria.best_response.best_response_dynamics` (or the
better-response variant) on that game alone with the same start profile,
schedule, mode and tolerance. The campaign's determinism guarantee —
batched results equal the historical per-instance loop bit for bit —
rests on this, so tie-breaking (lowest user index, lowest link index,
first improving link) mirrors the single-game code exactly.

Only deterministic schedules are supported in lockstep; the ``random``
schedule needs one RNG stream per game and stays a single-game feature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np

from repro.errors import ModelError
from repro.batch.backend import get_backend
from repro.batch.container import GameBatch
from repro.util.rng import RandomState, as_generator

__all__ = [
    "BatchDynamicsResult",
    "batch_best_response_dynamics",
    "batch_better_response_dynamics",
    "deviation_slab",
]

BatchSchedule = Literal["round_robin", "max_regret"]


@dataclass
class BatchDynamicsResult:
    """Outcome of a lockstep dynamics run over ``B`` games.

    Attributes
    ----------
    profiles:
        ``(B, n)`` final assignments (rows with ``converged`` are NE).
    converged:
        ``(B,)`` bool — no user had a profitable deviation at the end.
    steps:
        ``(B,)`` int64 — accepted improvement moves per game.
    cycled:
        ``(B,)`` bool — the (deterministic) trajectory revisited a
        profile, certifying a response cycle.
    """

    profiles: np.ndarray
    converged: np.ndarray
    steps: np.ndarray
    cycled: np.ndarray

    @property
    def all_converged(self) -> bool:
        return bool(self.converged.all())

    def __len__(self) -> int:
        return self.profiles.shape[0]


def _start_profiles(
    batch: GameBatch,
    start: np.ndarray | None,
    seeds: Sequence[int] | None,
    seed: RandomState,
) -> np.ndarray:
    b, n, m = batch.batch_size, batch.num_users, batch.num_links
    if start is not None:
        sigma = np.array(start, dtype=np.intp, copy=True)
        if sigma.shape != (b, n):
            raise ModelError(f"start must have shape ({b}, {n}), got {sigma.shape}")
        if np.any(sigma < 0) or np.any(sigma >= m):
            raise ModelError(f"start entries must lie in [0, {m})")
        return sigma
    if seeds is not None:
        seeds = list(seeds)
        if len(seeds) != b:
            raise ModelError(f"need {b} seeds, got {len(seeds)}")
        # One fresh stream per game: identical to the single-game API's
        # start draw under the same per-instance seed (Generator(PCG64)
        # is stream-identical to default_rng, just cheaper to build).
        sigma = np.empty((b, n), dtype=np.intp)
        for k, s in enumerate(seeds):
            sigma[k] = np.random.Generator(np.random.PCG64(s)).integers(0, m, size=n)
        return sigma
    rng = as_generator(seed)
    return rng.integers(0, m, size=(b, n)).astype(np.intp)


def deviation_slab(
    sigma: np.ndarray,
    weights: np.ndarray,
    capacities: np.ndarray,
    traffic: np.ndarray,
    rows: np.ndarray,
    users: np.ndarray,
    *,
    loads: np.ndarray | None = None,
) -> np.ndarray:
    """Lean ``(A, n, m)`` deviation tensor for the active games.

    Semantics of :func:`repro.batch.kernels.batch_deviation_latencies`
    specialised to concrete ``(A, n)`` shapes — loads accumulate user by
    user (bincount order), keeping single-game trajectory parity — with
    the generic broadcasting machinery stripped from the hot loop.
    *rows*/*users* are caller-held ``arange(B)[:, None]``/``arange(n)[None, :]``
    index helpers (sliced to the active count internally). A caller that
    already holds the ``(A, m)`` full loads (initial traffic included)
    passes them via *loads* to skip the accumulation; the lockstep
    nashifier shares one loads pass per step this way.
    """
    xp = get_backend()
    a, n = sigma.shape
    m = capacities.shape[-1]
    if loads is None:
        if xp.scatter_loads is not None:
            loads = xp.scatter_loads(sigma, weights, m, traffic)
        else:
            loads = xp.zeros((a, m))
            flat_rows = rows[:a, 0]
            for i in range(n):
                loads[flat_rows, sigma[:, i]] += weights[:, i]
            loads += traffic
    seen = loads[:, None, :] + weights[:, :, None]
    seen[rows[:a], users, sigma] -= weights
    seen /= capacities
    return seen


def _run_batch_dynamics(
    batch: GameBatch,
    start: np.ndarray | None,
    *,
    mode: Literal["best", "better"],
    schedule: BatchSchedule,
    max_steps: int,
    tol: float,
    seeds: Sequence[int] | None,
    seed: RandomState,
    detect_cycles: bool,
) -> BatchDynamicsResult:
    if schedule not in ("round_robin", "max_regret"):
        raise ModelError(
            f"lockstep dynamics supports deterministic schedules only, "
            f"got {schedule!r} (use the single-game API for 'random')"
        )
    xp = get_backend()
    sigma = _start_profiles(batch, start, seeds, seed)
    b, n = sigma.shape
    m = batch.num_links
    weights, caps, traffic = batch.weights, batch.capacities, batch.initial_traffic

    if xp.dynamics_loop is not None:
        # Fused backend stepper (e.g. the Numba per-game loops). May
        # decline (None) — enormous games whose profile codes overflow
        # int64 fall back to the generic byte-hash path below.
        fused = xp.dynamics_loop(
            sigma,
            weights,
            caps,
            traffic,
            mode == "best",
            schedule == "max_regret",
            max_steps,
            tol,
            detect_cycles,
        )
        if fused is not None:
            f_sigma, f_converged, f_steps, f_cycled = fused
            return BatchDynamicsResult(
                profiles=f_sigma,
                converged=f_converged,
                steps=f_steps,
                cycled=f_cycled,
            )

    active = np.ones(b, dtype=bool)
    converged = np.zeros(b, dtype=bool)
    cycled = np.zeros(b, dtype=bool)
    steps = np.zeros(b, dtype=np.int64)
    seen: list[set] = [set() for _ in range(b)]
    # Profiles hash as exact base-m integer codes when they fit in int64
    # (one matvec per iteration); enormous games fall back to raw bytes.
    radix = np.power(m, np.arange(n), dtype=np.int64) if m**n < 2**63 else None
    all_rows = np.arange(b)[:, None]
    user_cols = np.arange(n)[None, :]

    iteration = 0
    while active.any() and iteration < max_steps:
        idx = xp.flatnonzero(active)
        if detect_cycles:
            # A deterministic schedule revisiting a profile proves a cycle.
            if radix is not None:
                codes = sigma[idx] @ radix
            else:
                codes = [sigma[g].tobytes() for g in idx]
            hit_cycle = False
            for g, key in zip(idx, codes):
                if key in seen[g]:
                    cycled[g] = True
                    active[g] = False
                    hit_cycle = True
                else:
                    seen[g].add(key)
            if hit_cycle:
                idx = xp.flatnonzero(active)
                if idx.size == 0:
                    break

        if idx.size == b:
            sig_a, w_a, caps_a, traffic_a = sigma, weights, caps, traffic
        else:
            sig_a, w_a = sigma[idx], weights[idx]
            caps_a, traffic_a = caps[idx], traffic[idx]
        dev = deviation_slab(sig_a, w_a, caps_a, traffic_a, all_rows, user_cols)
        current = dev[all_rows[: idx.size], user_cols, sig_a]
        scale = xp.maximum(current, 1.0)
        improving = dev.min(axis=-1) < current - tol * scale  # (A, n)
        has_mover = improving.any(axis=-1)

        if has_mover.all():
            act, imp, dev_a, cur_a = idx, improving, dev, current
        else:
            done = idx[~has_mover]
            converged[done] = True
            active[done] = False
            if not has_mover.any():
                iteration += 1
                continue
            act = idx[has_mover]
            imp = improving[has_mover]
            dev_a = dev[has_mover]
            cur_a = current[has_mover]
        if schedule == "round_robin":
            # First improving user == movers.min() of the single-game code.
            user = xp.argmax(imp, axis=1)
        else:  # max_regret
            regret = xp.where(imp, cur_a - dev_a.min(axis=-1), -np.inf)
            user = xp.argmax(regret, axis=1)

        rows = np.arange(act.size)
        row = dev_a[rows, user]  # (A', m)
        if mode == "best":
            target = xp.argmin(row, axis=1)
        else:
            cost = cur_a[rows, user]
            row_scale = xp.maximum(cost, 1.0)
            better = row < (cost - tol * row_scale)[:, None]
            target = xp.argmax(better, axis=1)  # first improving link

        sigma[act, user] = target
        steps[act] += 1
        iteration += 1

    return BatchDynamicsResult(
        profiles=sigma, converged=converged, steps=steps, cycled=cycled
    )


def batch_best_response_dynamics(
    batch: GameBatch,
    start: np.ndarray | None = None,
    *,
    schedule: BatchSchedule = "round_robin",
    max_steps: int = 100_000,
    tol: float = 1e-9,
    seeds: Sequence[int] | None = None,
    seed: RandomState = None,
    detect_cycles: bool = True,
) -> BatchDynamicsResult:
    """Iterate single-user best responses on all ``B`` games in lockstep.

    Start profiles come from, in order of precedence: the explicit
    ``(B, n)`` *start* array; per-game *seeds* (each game's start is drawn
    from a fresh stream exactly as the single-game API would); a shared
    *seed* drawing the whole ``(B, n)`` block in one pass.
    """
    return _run_batch_dynamics(
        batch,
        start,
        mode="best",
        schedule=schedule,
        max_steps=max_steps,
        tol=tol,
        seeds=seeds,
        seed=seed,
        detect_cycles=detect_cycles,
    )


def batch_better_response_dynamics(
    batch: GameBatch,
    start: np.ndarray | None = None,
    *,
    schedule: BatchSchedule = "round_robin",
    max_steps: int = 100_000,
    tol: float = 1e-9,
    seeds: Sequence[int] | None = None,
    seed: RandomState = None,
    detect_cycles: bool = True,
) -> BatchDynamicsResult:
    """Iterate single-user *better* responses (first improving link)."""
    return _run_batch_dynamics(
        batch,
        start,
        mode="better",
        schedule=schedule,
        max_steps=max_steps,
        tol=tol,
        seeds=seeds,
        seed=seed,
        detect_cycles=detect_cycles,
    )
