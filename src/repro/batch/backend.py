"""Pluggable array backends behind the ``(B, n, m)`` batch kernels.

The batch engine's kernels only use a small, fixed vocabulary of array
operations (:data:`PROTOCOL_OPS` — broadcasting arithmetic helpers,
``bincount``/segment sums, ``argmax``/``argmin`` selection, masking,
stacked ``linalg`` solves, reductions). This module turns that
vocabulary into an explicit seam: every kernel resolves its namespace
through :func:`get_backend` instead of importing :mod:`numpy` directly,
so the same kernel source runs on

* ``numpy``  — the **bit-parity reference**. The namespace *is* the
  :mod:`numpy` module (attribute delegation), so kernels behave
  operation for operation exactly as before the seam existed; every
  frozen seed baseline and the service differential suite stay
  byte-identical under it.
* ``numba``  — a JIT backend (``pip install repro[jit]``) that keeps the
  dense BLAS-shaped ops on NumPy but replaces the branch-heavy fused
  loops BLAS cannot help — the ``m^n`` pure-NE census, the
  response-cycle census peel, lockstep nashification and best-response
  dynamics — with compiled per-game loops
  (:mod:`repro.batch._numba_backend`). Gated by tolerance-based
  differential tests, never by byte identity.
* ``cupy`` / ``jax`` — GPU stubs that register **only when the library
  imports**; they delegate the namespace to ``cupy`` / ``jax.numpy``
  and inherit the generic kernel compositions. On hosts without the
  libraries they are reported unavailable and their differential tests
  skip with a visible reason instead of failing.

Backends are looked up by name. Resolution precedence:

1. an explicit :func:`set_backend` / :func:`use_backend` call — the CLI
   ``--backend`` flag lands here (and exports :data:`ENV_VAR` so
   process-pool campaign workers inherit the choice);
2. the :data:`ENV_VAR` (``REPRO_BACKEND``) environment variable;
3. the default, ``numpy``.

Beyond the primitive namespace, a backend may implement *fused-kernel
hooks* (:data:`FUSED_HOOKS`). Each hook is ``None`` by default, meaning
"compose me from primitives" — the generic kernel path runs. A backend
that sets a hook takes over that whole computation; the contract is the
hook's docstring on :class:`ArrayBackend`. This is how the Numba backend
accelerates exactly the loops that resist vectorisation without forking
any kernel logic.

Adding a backend::

    from repro.batch import backend

    class MyBackend(backend.ArrayBackend):
        def __init__(self):
            super().__init__(module=my_namespace, name="mine")

    backend.register_backend("mine", MyBackend)

and select it with ``REPRO_BACKEND=mine`` or ``--backend mine``.
"""

from __future__ import annotations

import importlib.util
import os
import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterator

import numpy as np

from repro.errors import BackendError

__all__ = [
    "ArrayBackend",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "FUSED_HOOKS",
    "OPTIONAL_BACKENDS",
    "PROTOCOL_OPS",
    "available_backends",
    "backend_names",
    "check_protocol",
    "get_backend",
    "register_backend",
    "set_backend",
    "use_backend",
]

DEFAULT_BACKEND = "numpy"

#: Environment variable naming the default backend for a process tree.
ENV_VAR = "REPRO_BACKEND"

#: The primitive array vocabulary the batch kernels are written against.
#: ``check_protocol`` verifies a namespace resolves every op; nothing
#: outside this list (plus the ``linalg`` sub-namespace) is required of
#: a backend's module.
PROTOCOL_OPS = (
    # construction / conversion
    "asarray", "ascontiguousarray", "array", "zeros", "empty", "full",
    "ones", "arange", "repeat", "stack", "concatenate",
    # broadcasting / indexing
    "broadcast_to", "broadcast_shapes", "take_along_axis",
    "put_along_axis", "where", "nonzero", "flatnonzero", "unique",
    "argsort",
    # selection / segment sums
    "argmax", "argmin", "bincount", "cumsum",
    # elementwise / masking
    "maximum", "minimum", "clip", "abs", "log", "isfinite", "sign",
    "round", "power", "swapaxes", "logical_and",
    # reductions / contractions
    "all", "any", "matmul", "tensordot",
)

#: ``linalg`` ops the stacked support-enumeration solver uses.
PROTOCOL_LINALG_OPS = ("solve", "svd", "det", "lstsq", "norm")

#: Optional fused-kernel hooks a backend may implement (``None`` means
#: the generic composed implementation runs). See :class:`ArrayBackend`.
FUSED_HOOKS = (
    "scatter_loads",
    "count_pure_nash",
    "exists_pure_nash",
    "nashify_common_loop",
    "dynamics_loop",
    "census_cycle",
    "fixpoint_loop",
)

#: Backends whose availability is always reported (even before their
#: lazy registration probe has run).
OPTIONAL_BACKENDS = ("numba", "cupy", "jax")


class ArrayBackend:
    """A named array namespace plus optional fused-kernel hooks.

    The base class delegates every attribute in :data:`PROTOCOL_OPS`
    (and anything else the kernels reach for) to *module* — with the
    default ``module=numpy`` this is the bit-parity reference backend:
    ``backend.bincount`` *is* :func:`numpy.bincount`.

    Fused-kernel hooks (all ``None`` here) let a subclass take over a
    whole branch-heavy computation. Signatures (arrays are C-contiguous
    ``float64`` / ``intp`` unless noted; every hook must reproduce the
    generic path's *verdicts* — trajectories bit for bit where the
    generic kernel documents trajectory parity):

    ``scatter_loads(sigma, weights, num_links, initial_traffic)``
        ``(A, n)`` assignments/weights (+ optional ``(A, m)`` traffic)
        to ``(A, m)`` per-link loads, accumulated user by user in index
        order (bincount order — the bit-parity contract).
    ``count_pure_nash(assignments, weights, capacities, traffic, tol)``
        ``(P, n)`` assignment table crossed with a ``(B, n[, m])``
        stack to ``(B,)`` int64 pure-NE counts.
    ``exists_pure_nash(assignments, weights, capacities, traffic, tol)``
        Same inputs to ``(B,)`` bool existence verdicts (may
        short-circuit per game).
    ``nashify_common_loop(sigma, weights, capacities, caps_row,
    traffic, max_steps)``
        The lockstep common-beliefs nashification stepper: returns
        ``(sigma, steps, converged)``; per-game trajectories must match
        the sequential procedure move for move.
    ``dynamics_loop(sigma, weights, capacities, traffic, best,
    max_regret, max_steps, tol, detect_cycles)``
        The best-/better-response stepper: returns ``(sigma,
        converged, steps, cycled)`` or ``None`` to decline (the generic
        lockstep path runs instead).
    ``census_cycle(assignments, weights, capacities, traffic, best,
    tol)``
        ``(B,)`` bool response-cycle verdicts over the full ``m^n``
        state space; edge sets must match the sequential graphs.
    ``fixpoint_loop(weights, capacities, traffic, tol, eta,
    log2_beta_max, max_rounds, stall_rounds, stall_rtol)``
        The mixed-equilibrium smoothed best-response round loop of
        :func:`repro.batch.fixpoint.batch_fixpoint_mixed_nash`:
        returns ``(probabilities, rounds, residuals, converged,
        stalled)`` or ``None`` to decline. Per-game trajectories must
        reproduce the generic round loop *bit for bit* at every round
        budget (the update is elementwise IEEE arithmetic plus
        index-order accumulations by design).
    """

    #: hooks — ``None`` selects the generic composed kernel.
    scatter_loads: Callable[..., Any] | None = None
    count_pure_nash: Callable[..., Any] | None = None
    exists_pure_nash: Callable[..., Any] | None = None
    nashify_common_loop: Callable[..., Any] | None = None
    dynamics_loop: Callable[..., Any] | None = None
    census_cycle: Callable[..., Any] | None = None
    fixpoint_loop: Callable[..., Any] | None = None

    def __init__(self, module: Any = np, name: str = "numpy") -> None:
        self.module = module
        self.name = name

    def __getattr__(self, op: str) -> Any:
        # Only consulted for attributes not found on the instance/class:
        # the primitive-namespace delegation.
        return getattr(self.module, op)

    @property
    def linalg(self) -> Any:
        return self.module.linalg

    def __repr__(self) -> str:
        return f"<ArrayBackend {self.name!r} ({self.module.__name__})>"


def check_protocol(backend: ArrayBackend) -> list[str]:
    """Ops of :data:`PROTOCOL_OPS` the backend fails to resolve.

    An empty list means the namespace is complete; used by the
    registration tests and useful when bringing up a new backend.
    """
    missing = [op for op in PROTOCOL_OPS if not hasattr(backend, op)]
    try:
        lin = backend.linalg
    except AttributeError:
        missing.append("linalg")
    else:
        missing.extend(
            f"linalg.{op}"
            for op in PROTOCOL_LINALG_OPS
            if not hasattr(lin, op)
        )
    return missing


# ---------------------------------------------------------------------- #
# registry and resolution
# ---------------------------------------------------------------------- #

_LOCK = threading.Lock()
_REGISTRY: dict[str, Callable[[], ArrayBackend]] = {}
_PROBES: dict[str, Callable[[], bool]] = {}
_INSTANCES: dict[str, ArrayBackend] = {}
#: The explicitly selected backend name (CLI/set_backend); overrides env.
_EXPLICIT: str | None = None


def register_backend(
    name: str,
    factory: Callable[[], ArrayBackend],
    *,
    probe: Callable[[], bool] | None = None,
    replace: bool = False,
) -> None:
    """Register *factory* under *name*.

    *probe* reports availability without instantiating (defaults to
    "always available"); *replace* allows re-registration (tests).
    """
    with _LOCK:
        if name in _REGISTRY and not replace:
            raise BackendError(f"backend {name!r} is already registered")
        _REGISTRY[name] = factory
        _PROBES[name] = probe if probe is not None else (lambda: True)
        _INSTANCES.pop(name, None)


def unregister_backend(name: str) -> None:
    """Remove *name* from the registry (testing helper)."""
    if name == DEFAULT_BACKEND:
        raise BackendError("the numpy reference backend cannot be removed")
    with _LOCK:
        _REGISTRY.pop(name, None)
        _PROBES.pop(name, None)
        _INSTANCES.pop(name, None)


def backend_names() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def available_backends() -> dict[str, bool]:
    """Name -> availability for every registered or optional backend.

    Optional backends (:data:`OPTIONAL_BACKENDS`) appear even when their
    import-gated registration never ran, reported unavailable — the
    skip-report surface for runners without the extras installed.
    """
    status = {name: _PROBES[name]() for name in backend_names()}
    for name in OPTIONAL_BACKENDS:
        status.setdefault(name, False)
    return status


def _instantiate(name: str) -> ArrayBackend:
    try:
        cached = _INSTANCES[name]
    except KeyError:
        pass
    else:
        return cached
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown array backend {name!r}; registered backends: "
            f"{', '.join(backend_names())}"
        ) from None
    instance = factory()
    with _LOCK:
        _INSTANCES[name] = instance
    return instance


def get_backend(name: str | None = None) -> ArrayBackend:
    """The backend *name* resolves to, or the active default.

    With ``name=None`` the precedence is explicit selection
    (:func:`set_backend` / the CLI flag) over the :data:`ENV_VAR`
    environment variable over ``numpy``. Instances are cached per name,
    so the per-kernel-call cost is a dictionary lookup.
    """
    if name is None:
        name = _EXPLICIT or os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    return _instantiate(name)


def set_backend(name: str | None) -> ArrayBackend | None:
    """Select *name* explicitly (overriding the environment variable).

    ``None`` clears the explicit selection, returning resolution to the
    env-var/default chain. The backend is instantiated eagerly so an
    unknown or unavailable name fails at selection time, not at the
    first kernel call.
    """
    global _EXPLICIT
    if name is None:
        _EXPLICIT = None
        return None
    instance = _instantiate(name)
    _EXPLICIT = name
    return instance


@contextmanager
def use_backend(name: str) -> Iterator[ArrayBackend]:
    """Context manager: run a block under backend *name*."""
    global _EXPLICIT
    previous = _EXPLICIT
    instance = set_backend(name)
    try:
        yield instance  # type: ignore[misc]
    finally:
        _EXPLICIT = previous


# ---------------------------------------------------------------------- #
# built-in backends
# ---------------------------------------------------------------------- #


def _module_available(module: str) -> bool:
    try:
        return importlib.util.find_spec(module) is not None
    except (ImportError, ValueError):  # pragma: no cover - broken metadata
        return False


def _numba_factory() -> ArrayBackend:
    try:
        from repro.batch._numba_backend import NumbaBackend
    except ImportError as exc:
        raise BackendError(
            "backend 'numba' requires the numba package — install the "
            "JIT extra: pip install 'repro-network-uncertainty[jit]'"
        ) from exc
    return NumbaBackend()


def _cupy_factory() -> ArrayBackend:
    import cupy  # registration is import-gated, so this resolves

    return ArrayBackend(module=cupy, name="cupy")


def _jax_factory() -> ArrayBackend:
    import jax.numpy as jnp

    return ArrayBackend(module=jnp, name="jax")


register_backend("numpy", ArrayBackend)
register_backend(
    "numba", _numba_factory, probe=lambda: _module_available("numba")
)
# GPU stubs: registered only when the library imports on this host. They
# delegate the primitive namespace to the drop-in array module and run
# the generic kernel compositions; certification is tolerance-based
# differential testing (tests skip, visibly, where the import gate keeps
# the backend unregistered).
if _module_available("cupy"):  # pragma: no cover - needs CUDA host
    register_backend(
        "cupy", _cupy_factory, probe=lambda: _module_available("cupy")
    )
if _module_available("jax"):  # pragma: no cover - needs jax install
    register_backend(
        "jax", _jax_factory, probe=lambda: _module_available("jax")
    )
