"""Batched latency / equilibrium kernels over stacked game tensors.

Every kernel operates on raw arrays with an arbitrary *batch* prefix:

* assignments ``sigma``  — integer array of shape ``(..., n)``;
* weights ``w``          — float array of shape ``(..., n)``;
* capacities ``C``       — float array of shape ``(..., n, m)``;
* initial traffic ``t``  — optional float array of shape ``(..., m)``.

Leading dimensions broadcast against each other (NumPy rules), so the
same code serves three call shapes:

* ``batch = ()``      — a single game / single profile: these are the
  kernels behind :mod:`repro.model.latency` and the single-game Nash
  test (the "B=1 view");
* ``batch = (P,)``    — one game, many profiles: exhaustive pure-NE
  enumeration (:mod:`repro.equilibria.enumeration`);
* ``batch = (B, P)``  — many games, many profiles: the simulation
  campaign sweeping thousands of instances in one kernel call
  (:func:`batch_count_pure_nash`).

Numerical parity note: :func:`batch_loads` accumulates per-link loads
user by user (in user-index order), matching :func:`numpy.bincount` —
and therefore the single-game dynamics trajectories — bit for bit.
:func:`sweep_pure_nash_mask` instead computes loads with one GEMM,
whose summation order may differ from the historical per-link masked
sums in the last bit for n > 8; Nash *verdicts* are insensitive to
this (the tolerance margin is ~1e7 ulps wide) and the campaign-level
determinism contract is enforced against frozen outputs of the
original implementation in ``tests/data/e5_seed_baseline.json``. Keep
both properties intact: the Conjecture 3.7 campaign promises results
identical to the sequential implementation under the same seeds.

Backend seam: every kernel resolves its array namespace through
:func:`repro.batch.backend.get_backend`. Under the default ``numpy``
backend the namespace *is* :mod:`numpy`, so all the parity contracts
above hold unchanged; the census kernels additionally dispatch to a
backend's fused ``count_pure_nash``/``exists_pure_nash`` hooks when
set (the Numba JIT path), whose verdicts are certified by
tolerance-based differential tests instead of byte identity.
"""

from __future__ import annotations

import numpy as np

from repro.batch.backend import get_backend
from repro.errors import DimensionError

__all__ = [
    "batch_loads",
    "sweep_pure_nash_mask",
    "batch_pure_latencies",
    "batch_deviation_latencies",
    "batch_pure_nash_mask",
    "batch_count_pure_nash",
    "batch_exists_pure_nash",
]


def _batch_shape(sigma: np.ndarray, weights: np.ndarray) -> tuple[int, ...]:
    if sigma.ndim < 1 or weights.ndim < 1:
        raise DimensionError("sigma and weights need at least one dimension")
    if sigma.shape[-1] != weights.shape[-1]:
        raise DimensionError(
            f"assignment covers {sigma.shape[-1]} users, weights cover "
            f"{weights.shape[-1]}"
        )
    return np.broadcast_shapes(sigma.shape[:-1], weights.shape[:-1])


def batch_loads(
    sigma: np.ndarray,
    weights: np.ndarray,
    num_links: int,
    initial_traffic: np.ndarray | None = None,
) -> np.ndarray:
    """Per-link traffic for a batch of assignments: shape ``(..., m)``.

    ``loads[..., l] = sum_i w[..., i] * [sigma[..., i] == l] (+ t[..., l])``.

    Users are accumulated in index order (exactly :func:`numpy.bincount`
    with weights), then initial traffic is added — the same operation
    order as :func:`repro.model.profiles.loads_of`.
    """
    xp = get_backend()
    sigma = np.asarray(sigma, dtype=np.intp)
    w = np.asarray(weights, dtype=np.float64)
    if sigma.ndim == 1 and w.ndim == 1:
        # Single-game fast path: bincount *is* the contract. (Weighted
        # bincount already returns float64 — no astype copy needed, and
        # the result is fresh, so the traffic add runs in place.)
        loads = xp.bincount(sigma, weights=w, minlength=num_links)
        if initial_traffic is not None:
            loads += np.asarray(initial_traffic, dtype=np.float64)
        return loads
    batch = _batch_shape(sigma, w)
    n = sigma.shape[-1]
    sig = np.broadcast_to(sigma, batch + (n,)).reshape(-1, n)
    wf = np.broadcast_to(w, batch + (n,)).reshape(-1, n)
    if xp.scatter_loads is not None:
        flat = xp.scatter_loads(sig, wf, num_links, None)
    else:
        flat = xp.zeros((sig.shape[0], num_links))
        rows = np.arange(sig.shape[0])
        for i in range(n):
            flat[rows, sig[:, i]] += wf[:, i]
    loads = flat.reshape(batch + (num_links,))
    if initial_traffic is not None:
        loads = loads + np.asarray(initial_traffic, dtype=np.float64)
    return loads


def batch_pure_latencies(
    sigma: np.ndarray,
    weights: np.ndarray,
    capacities: np.ndarray,
    initial_traffic: np.ndarray | None = None,
    *,
    loads: np.ndarray | None = None,
) -> np.ndarray:
    """Belief-expected latency of every user: shape ``(..., n)``.

    ``out[..., i] = loads[..., sigma_i] / C[..., i, sigma_i]``.
    """
    xp = get_backend()
    sigma = np.asarray(sigma, dtype=np.intp)
    w = np.asarray(weights, dtype=np.float64)
    caps = np.asarray(capacities, dtype=np.float64)
    n, m = caps.shape[-2], caps.shape[-1]
    if loads is None:
        loads = batch_loads(sigma, w, m, initial_traffic)
    if sigma.ndim == 1 and w.ndim == 1 and caps.ndim == 2:
        # Single-game fast path: plain fancy indexing, no broadcast
        # machinery on the per-step hot path of the sequential solvers.
        return loads[sigma] / caps[np.arange(n), sigma]
    batch = np.broadcast_shapes(_batch_shape(sigma, w), caps.shape[:-2])
    sig = xp.broadcast_to(sigma, batch + (n,))
    loads_b = xp.broadcast_to(loads, batch + (m,))
    caps_b = xp.broadcast_to(caps, batch + (n, m))
    chosen_load = xp.take_along_axis(loads_b, sig, axis=-1)
    chosen_cap = xp.take_along_axis(caps_b, sig[..., None], axis=-1)[..., 0]
    return chosen_load / chosen_cap


def batch_deviation_latencies(
    sigma: np.ndarray,
    weights: np.ndarray,
    capacities: np.ndarray,
    initial_traffic: np.ndarray | None = None,
    *,
    loads: np.ndarray | None = None,
) -> np.ndarray:
    """Hypothetical unilateral-deviation latencies: shape ``(..., n, m)``.

    Entry ``(..., i, l)`` is the belief-expected latency user ``i`` would
    incur by routing on link ``l`` while every other user stays put:
    ``(loads[..., l] + w_i [l != sigma_i]) / C[..., i, l]``. The row of
    user ``i`` attains its minimum at ``sigma_i`` iff ``i`` is satisfied,
    so this tensor drives both Nash checks and best-response dynamics.
    """
    xp = get_backend()
    sigma = np.asarray(sigma, dtype=np.intp)
    w = np.asarray(weights, dtype=np.float64)
    caps = np.asarray(capacities, dtype=np.float64)
    n, m = caps.shape[-2], caps.shape[-1]
    if sigma.shape[-1] != n or w.shape[-1] != n:
        raise DimensionError(
            f"capacities cover {n} users, got assignment/weights for "
            f"{sigma.shape[-1]}/{w.shape[-1]}"
        )
    if loads is None:
        loads = batch_loads(sigma, w, m, initial_traffic)
    if sigma.ndim == 1 and w.ndim == 1 and caps.ndim == 2:
        # Single-game fast path: one step of a sequential dynamic costs a
        # handful of small-array ops, so the generic broadcast machinery
        # below would dominate it ~10x.
        seen = loads[None, :] + w[:, None]
        seen[np.arange(n), sigma] -= w
        return seen / caps
    # seen[..., i, l] = loads[..., l] + w_i, except on i's own link where
    # w_i is already part of the load. The own-link entries are patched
    # through *_along_axis so broadcast inputs stay views (no material-
    # isation of the full (..., n, m) index tensors).
    seen = loads[..., None, :] + w[..., :, None]
    sig_idx = xp.broadcast_to(sigma, seen.shape[:-1])[..., None]
    own = xp.take_along_axis(seen, sig_idx, axis=-1)
    xp.put_along_axis(seen, sig_idx, own - w[..., :, None], axis=-1)
    if seen.shape == np.broadcast_shapes(seen.shape, caps.shape):
        seen /= caps
        return seen
    return seen / caps


def batch_pure_nash_mask(
    sigma: np.ndarray,
    weights: np.ndarray,
    capacities: np.ndarray,
    initial_traffic: np.ndarray | None = None,
    *,
    tol: float = 1e-9,
) -> np.ndarray:
    """Boolean Nash verdict per batch element: shape ``(...)``.

    An assignment is a pure Nash equilibrium iff every user's deviation
    row attains its minimum (up to relative tolerance *tol*) at the
    user's current link.
    """
    xp = get_backend()
    # Convert once here; the downstream kernels' asarray calls then hit
    # the already-typed fast path (no copies).
    sigma = np.asarray(sigma, dtype=np.intp)
    w = np.asarray(weights, dtype=np.float64)
    caps = np.asarray(capacities, dtype=np.float64)
    m = caps.shape[-1]
    loads = batch_loads(sigma, w, m, initial_traffic)
    current = batch_pure_latencies(sigma, w, caps, loads=loads)
    dev = batch_deviation_latencies(sigma, w, caps, loads=loads)
    scale = xp.maximum(current, 1.0)
    return xp.all(dev.min(axis=-1) >= current - tol * scale, axis=-1)


def _profile_block(num_games: int, num_users: int, num_links: int) -> int:
    """Profiles per block so the deviation tensor stays ~128 MB."""
    budget = 16_000_000  # float64 entries
    per_profile = max(num_games * num_users * num_links, 1)
    return max(budget // per_profile, 1)


#: Per-cache bound on *total* cached elements (~64 MB of float64 each).
_SWEEP_CACHE_MAX_ELEMENTS = 8_000_000
_ASSIGNMENT_CACHE: dict[tuple[int, int], np.ndarray] = {}
_ONEHOT_CACHE: dict[tuple[int, int, int, int], np.ndarray] = {}


def _cache_put(cache: dict, key, value: np.ndarray) -> None:
    """Insert *value*, FIFO-evicting until total elements stay bounded.

    Long-lived processes sweep many (n, m) shapes and batch widths
    (distinct widths produce distinct block boundaries), so both the
    entry count and the per-entry size are unbounded a priori; bounding
    total elements caps the caches' memory for the process lifetime.
    """
    if value.size > _SWEEP_CACHE_MAX_ELEMENTS:
        return
    total = sum(v.size for v in cache.values())
    while cache and total + value.size > _SWEEP_CACHE_MAX_ELEMENTS:
        total -= cache.pop(next(iter(cache))).size
    cache[key] = value


def _all_assignments(num_users: int, num_links: int) -> np.ndarray:
    """Memoised read-only ``(m^n, n)`` assignment table for sweeps.

    The campaign enumerates the same few (n, m) cells thousands of
    times; the table is immutable, so one copy per shape suffices.
    """
    key = (num_users, num_links)
    table = _ASSIGNMENT_CACHE.get(key)
    if table is None:
        from repro.model.social import enumerate_assignments

        table = enumerate_assignments(num_users, num_links)
        table.setflags(write=False)
        _cache_put(_ASSIGNMENT_CACHE, key, table)
    return table


def _block_onehot(
    num_users: int, num_links: int, lo: int, hi: int, block: np.ndarray
) -> np.ndarray:
    """Memoised one-hot tensor of rows ``[lo, hi)`` of the (n, m) table."""
    key = (num_users, num_links, lo, hi)
    onehot = _ONEHOT_CACHE.get(key)
    if onehot is None:
        onehot = (block[:, :, None] == np.arange(num_links)).astype(np.float64)
        onehot.setflags(write=False)
        _cache_put(_ONEHOT_CACHE, key, onehot)
    return onehot


def sweep_pure_nash_mask(
    assignments: np.ndarray,
    weights: np.ndarray,
    capacities: np.ndarray,
    initial_traffic: np.ndarray | None = None,
    *,
    tol: float = 1e-9,
    onehot: np.ndarray | None = None,
) -> np.ndarray:
    """Nash mask for the profile-sweep structure: ``(B, P)`` verdicts.

    Specialised for shared ``(P, n)`` assignments crossed with ``B``
    stacked games (``weights (B, n)``, ``capacities (B, n, m)``,
    ``initial_traffic (B, m)``). Loads collapse to one GEMM against the
    one-hot assignment tensor, which beats the general scatter path by
    an order of magnitude on enumeration-sized sweeps. The single-game
    enumerator is the ``B = 1`` view of this kernel.
    """
    if tol < 0:
        raise ValueError("sweep_pure_nash_mask requires tol >= 0")
    xp = get_backend()
    sig = np.asarray(assignments, dtype=np.intp)  # (P, n)
    w = np.asarray(weights, dtype=np.float64)  # (B, n)
    caps = np.asarray(capacities, dtype=np.float64)  # (B, n, m)
    num_b, num_p = w.shape[0], sig.shape[0]
    n, m = caps.shape[-2], caps.shape[-1]
    if onehot is None:
        onehot = (sig[:, :, None] == np.arange(m)).astype(np.float64)  # (P, n, m)
    loads = xp.tensordot(w, onehot, axes=([1], [1]))  # (B, P, m)
    if initial_traffic is not None:
        loads += np.asarray(initial_traffic, dtype=np.float64)[:, None, :]
    if num_b * num_p * n * m <= 65_536:
        # Small sweeps: one shot over the full (B, P, n, m) tensor costs
        # less than the per-user bookkeeping below. With tol >= 0 the
        # unpatched own-link entry (loads[sig_i] + w_i)/C exceeds the
        # current latency, so it never decides the verdict and the
        # own-weight subtraction is skipped (here and below).
        current = xp.take_along_axis(loads, sig[None], axis=-1)
        current = current / caps[:, np.arange(n)[None, :], sig]
        threshold = current - tol * xp.maximum(current, 1.0)
        dev = (loads[:, :, None, :] + w[:, None, :, None]) / caps[:, None, :, :]
        return xp.all(dev >= threshold[..., None], axis=(-2, -1))
    loads = loads.reshape(num_b * num_p, m)
    # Check users one at a time over the surviving (game, profile) pairs:
    # a profile is NE only if *every* user is satisfied, and a random
    # profile usually fails on the first user checked, so the (S, m)
    # deviation slabs shrink geometrically instead of materialising the
    # full (B, P, n, m) tensor.
    survivors = np.arange(num_b * num_p)
    for i in range(n):
        b = survivors // num_p
        chosen = sig[survivors % num_p, i]
        cap_rows = caps[b, i]  # (S, m)
        current = loads[survivors, chosen] / cap_rows[np.arange(survivors.size), chosen]
        threshold = current - tol * xp.maximum(current, 1.0)
        dev = (loads[survivors] + w[b, i][:, None]) / cap_rows
        survivors = survivors[xp.all(dev >= threshold[:, None], axis=1)]
        if survivors.size == 0:
            break
    mask = xp.zeros(num_b * num_p, dtype=bool)
    mask[survivors] = True
    return mask.reshape(num_b, num_p)


def batch_count_pure_nash(
    batch, *, tol: float = 1e-9, block_size: int | None = None
) -> np.ndarray:
    """Number of pure Nash equilibria of every game in a :class:`GameBatch`.

    Sweeps all ``m^n`` assignments for the whole stack at once, blocking
    over the profile axis to bound peak memory. Returns ``(B,)`` int64.
    """
    xp = get_backend()
    n, m = batch.num_users, batch.num_links
    assignments = _all_assignments(n, m)
    if xp.count_pure_nash is not None:
        # Fused backend kernel (e.g. the Numba per-game census loop):
        # no one-hot tensors, no profile blocking needed.
        return xp.count_pure_nash(
            assignments,
            batch.weights,
            batch.capacities,
            batch.initial_traffic,
            tol,
        )
    total = assignments.shape[0]
    counts = np.zeros(len(batch), dtype=np.int64)
    block = block_size or _profile_block(len(batch), n, m)
    for lo in range(0, total, block):
        hi = min(lo + block, total)
        sig = assignments[lo:hi]
        mask = sweep_pure_nash_mask(
            sig,
            batch.weights,
            batch.capacities,
            batch.initial_traffic,
            tol=tol,
            onehot=_block_onehot(n, m, lo, hi, sig),
        )
        counts += mask.sum(axis=1)
    return counts


def batch_exists_pure_nash(
    batch, *, tol: float = 1e-9, block_size: int | None = None
) -> np.ndarray:
    """Whether each game in a :class:`GameBatch` has a pure NE: ``(B,)`` bool.

    Short-circuits: games whose equilibrium has been found are dropped
    from subsequent profile blocks, so a typical stack finishes after a
    small fraction of the ``m^n`` sweep.
    """
    xp = get_backend()
    n, m = batch.num_users, batch.num_links
    assignments = _all_assignments(n, m)
    if xp.exists_pure_nash is not None:
        return xp.exists_pure_nash(
            assignments,
            batch.weights,
            batch.capacities,
            batch.initial_traffic,
            tol,
        )
    total = assignments.shape[0]
    found = np.zeros(len(batch), dtype=bool)
    block = block_size or _profile_block(len(batch), n, m)
    for lo in range(0, total, block):
        open_idx = np.flatnonzero(~found)
        if open_idx.size == 0:
            break
        hi = min(lo + block, total)
        sig = assignments[lo:hi]
        mask = sweep_pure_nash_mask(
            sig,
            batch.weights[open_idx],
            batch.capacities[open_idx],
            batch.initial_traffic[open_idx],
            tol=tol,
            onehot=_block_onehot(n, m, lo, hi, sig),
        )
        found[open_idx] = mask.any(axis=1)
    return found
