"""Batched price-of-anarchy engine — Theorems 4.13/4.14 over game stacks.

Pipelines the whole per-instance Section 4 anarchy computation for a
:class:`~repro.batch.container.GameBatch` at once:

* :func:`batch_poa_bound_uniform` / :func:`batch_poa_bound_general` —
  the theorem bounds as ``(...,)`` reductions over capacity tensors;
* :func:`batch_all_pure_latencies` / :func:`batch_social_optima` —
  exhaustive ``OPT1``/``OPT2`` for every game in one ``(B, P, n)``
  sweep;
* :func:`batch_equilibrium_profiles` — every pure NE (exhaustive sweep
  mask) plus the fully mixed NE when it exists, stacked into one
  ``(E, n, m)`` tensor with a game-index vector;
* :func:`batch_empirical_ratios` — worst ``(SC1/OPT1, SC2/OPT2)`` per
  game over that equilibrium stack.

The single-game functions in :mod:`repro.analysis.poa` are the ``B = 1``
views of these kernels. Parity contract: slice ``b`` of every result is
bit-identical to the sequential per-game computation (the historical
``poa_study`` loop), which ``tests/test_batch_poa.py`` asserts
differentially and ``tests/data/mixed_seed_baseline.json`` pins across
the E10/E11 campaigns. The contract is scoped to the exhaustive-optimum
regime (``m^n`` up to the single-game ``optimum(method="auto")``
cutover of 200k profiles — the campaign grids sit far below it): these
kernels always compute the optima exhaustively, while the single-game
path switches to branch-and-bound above the cutover, whose float
accumulation order is not guaranteed to agree in the last ulp.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batch.backend import get_backend
from repro.batch.container import GameBatch
from repro.batch.kernels import _all_assignments, _block_onehot, sweep_pure_nash_mask
from repro.batch.mixed import (
    batch_fully_mixed_candidate,
    batch_min_expected_latencies,
    normalize_rows,
)
from repro.errors import ModelError

#: Mirrors :data:`repro.model.social.MAX_EXHAUSTIVE_PROFILES` — kept as a
#: module constant here because importing :mod:`repro.model.social` at
#: module level would close an import cycle through the model layer
#: (``model.latency`` -> ``batch`` -> ``batch.poa`` -> ``model.social``);
#: a cross-check test asserts the two stay equal.
MAX_EXHAUSTIVE_PROFILES = 2_000_000


def enumerate_assignments(num_users: int, num_links: int) -> np.ndarray:
    """Lazy re-export of :func:`repro.model.social.enumerate_assignments`."""
    from repro.model.social import enumerate_assignments as impl

    return impl(num_users, num_links)

__all__ = [
    "batch_poa_bound_uniform",
    "batch_poa_bound_general",
    "batch_all_pure_latencies",
    "batch_social_optima",
    "EquilibriumStack",
    "batch_equilibrium_profiles",
    "BatchRatioResult",
    "batch_empirical_ratios",
]


def batch_poa_bound_uniform(capacities: np.ndarray) -> np.ndarray:
    """Theorem 4.13's bound ``(cmax/cmin)(m + n - 1)/m`` per game.

    Operates on ``(..., n, m)`` capacity tensors; valid under uniform
    user beliefs. Returns shape ``(...)``.
    """
    caps = get_backend().asarray(capacities, dtype=np.float64)
    n, m = caps.shape[-2], caps.shape[-1]
    axes = (-2, -1)
    return caps.max(axis=axes) / caps.min(axis=axes) * (m + n - 1) / m


def batch_poa_bound_general(capacities: np.ndarray) -> np.ndarray:
    """Theorem 4.14's bound ``(cmax^2/cmin)(m + n - 1)/sum_j c^j_min``."""
    caps = get_backend().asarray(capacities, dtype=np.float64)
    n, m = caps.shape[-2], caps.shape[-1]
    axes = (-2, -1)
    cmax = caps.max(axis=axes)
    cmin = caps.min(axis=axes)
    col_min_sum = caps.min(axis=-2).sum(axis=-1)
    return (cmax**2 / cmin) * (m + n - 1) / col_min_sum


def batch_all_pure_latencies(
    batch: GameBatch, assignments: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Latency tensor for every pure assignment of every game.

    Returns ``(assignments, latencies)`` with latencies of shape
    ``(B, P, n)`` — the stacked counterpart of
    :func:`repro.model.social.all_pure_costs`, replicating its per-link
    masked load sums so each ``[b]`` slice is bit-identical.
    """
    xp = get_backend()
    n, m = batch.num_users, batch.num_links
    if assignments is None:
        assignments = enumerate_assignments(n, m)
    sig = xp.ascontiguousarray(assignments, dtype=np.intp)
    w = batch.weights
    num_p = sig.shape[0]
    loads = xp.zeros((len(batch), num_p, m))
    for link in range(m):
        loads[:, :, link] = (w[:, None, :] * (sig == link)[None, :, :]).sum(axis=2)
    loads += batch.initial_traffic[:, None, :]
    chosen_load = xp.take_along_axis(loads, sig[None, :, :], axis=2)
    chosen_cap = batch.capacities[:, np.arange(n)[None, :], sig]  # (B, P, n)
    return sig, chosen_load / chosen_cap


#: Profile rows per sweep block — matches the single-game enumerator's
#: block size, bounding the per-block tensors independently of ``m^n``.
PROFILE_BLOCK = 65_536


def batch_social_optima(
    batch: GameBatch, assignments: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Exact ``(OPT1, OPT2)`` for every game: two ``(B,)`` vectors.

    One exhaustive sweep serves both objectives, blocked over the
    profile axis so peak memory stays bounded; the per-game values
    equal :func:`repro.model.social.opt1`/``opt2`` with the exhaustive
    method exactly (a blockwise minimum is the global minimum).
    """
    total = batch.num_links**batch.num_users
    if total > MAX_EXHAUSTIVE_PROFILES:
        raise ModelError(
            f"{total} assignments exceed the exhaustive limit "
            f"({MAX_EXHAUSTIVE_PROFILES})"
        )
    if assignments is None:
        assignments = enumerate_assignments(batch.num_users, batch.num_links)
    xp = get_backend()
    best1 = xp.full(len(batch), np.inf)
    best2 = xp.full(len(batch), np.inf)
    for lo in range(0, assignments.shape[0], PROFILE_BLOCK):
        _, lat = batch_all_pure_latencies(batch, assignments[lo : lo + PROFILE_BLOCK])
        xp.minimum(best1, lat.sum(axis=2).min(axis=1), out=best1)
        xp.minimum(best2, lat.max(axis=2).min(axis=1), out=best2)
    return best1, best2


@dataclass(frozen=True)
class EquilibriumStack:
    """All equilibria of a game stack, flattened for kernel evaluation.

    Attributes
    ----------
    game_index:
        ``(E,)`` — which game each equilibrium belongs to.
    probabilities:
        ``(E, n, m)`` profile matrices: exact one-hot rows for pure NE,
        the renormalised closed form for fully mixed NE.
    num_pure:
        ``(B,)`` pure-NE count per game.
    fmne_exists:
        ``(B,)`` interiority mask of the fully mixed candidate.
    """

    game_index: np.ndarray
    probabilities: np.ndarray
    num_pure: np.ndarray
    fmne_exists: np.ndarray

    @property
    def num_equilibria(self) -> np.ndarray:
        """``(B,)`` total equilibria per game (pure + fully mixed)."""
        return self.num_pure + self.fmne_exists.astype(np.int64)


def batch_equilibrium_profiles(
    batch: GameBatch,
    *,
    tol: float = 1e-9,
    assignments: np.ndarray | None = None,
) -> EquilibriumStack:
    """Every pure NE plus the FMNE (when interior) of every game.

    Pure equilibria come from one exhaustive
    :func:`~repro.batch.kernels.sweep_pure_nash_mask` over the whole
    stack (same verdicts as the per-game enumerator); the fully mixed
    candidates come from one closed-form evaluation. Within a game,
    pure equilibria appear in assignment-enumeration order followed by
    the fully mixed point — the order the sequential ``poa_study``
    evaluated them in.
    """
    xp = get_backend()
    n, m = batch.num_users, batch.num_links
    total = m**n
    if total > MAX_EXHAUSTIVE_PROFILES:
        raise ModelError(
            f"{total} profiles exceed the exhaustive limit "
            f"({MAX_EXHAUSTIVE_PROFILES})"
        )
    # The memoised one-hot blocks are keyed by (n, m, lo, hi) alone, so
    # they are only valid for the canonical memoised assignment table —
    # caller-supplied tables fall back to rebuilding per block.
    canonical = assignments is None or assignments is _all_assignments(n, m)
    if assignments is None:
        assignments = _all_assignments(n, m)
    fm = batch_fully_mixed_candidate(
        batch.weights, batch.capacities, batch.initial_traffic
    )

    # Sweep in profile blocks (bounding the one-hot/GEMM tensors) and
    # keep only the equilibrium rows — a vanishing fraction of m^n.
    num_pure = np.zeros(len(batch), dtype=np.int64)
    game_parts: list[np.ndarray] = []
    row_parts: list[np.ndarray] = []
    for lo in range(0, assignments.shape[0], PROFILE_BLOCK):
        hi = min(lo + PROFILE_BLOCK, assignments.shape[0])
        sig = assignments[lo:hi]
        mask = sweep_pure_nash_mask(
            sig,
            batch.weights,
            batch.capacities,
            batch.initial_traffic,
            tol=tol,
            # The campaign sweeps the same few (n, m) cells thousands of
            # times; the memoised one-hot block is shared with the
            # pure-NE counting kernels instead of being rebuilt here.
            onehot=_block_onehot(n, m, lo, hi, sig) if canonical else None,
        )  # (B, block)
        num_pure += mask.sum(axis=1)
        block_game, block_row = xp.nonzero(mask)
        game_parts.append(block_game)
        row_parts.append(block_row + lo)
    pure_game = xp.concatenate(game_parts)
    pure_row = xp.concatenate(row_parts)
    onehot = np.zeros((pure_game.size, n, m))
    onehot[np.arange(pure_game.size)[:, None],
           np.arange(n)[None, :],
           assignments[pure_row]] = 1.0

    fm_games = xp.flatnonzero(fm.exists)
    fm_probs = normalize_rows(fm.probabilities[fm_games])

    game_index = xp.concatenate([pure_game, fm_games])
    probabilities = xp.concatenate([onehot, fm_probs]) if fm_games.size else onehot
    # Stable sort keeps each game's pure NE first, FMNE last — the
    # sequential evaluation order (irrelevant to the max-reductions
    # downstream, but it keeps differential tests straightforward).
    order = xp.argsort(game_index, kind="stable")
    return EquilibriumStack(
        game_index=game_index[order],
        probabilities=probabilities[order],
        num_pure=num_pure,
        fmne_exists=fm.exists,
    )


@dataclass(frozen=True)
class BatchRatioResult:
    """Worst empirical coordination ratios per game.

    ``ratio_sc1``/``ratio_sc2`` are ``(B,)`` worst ``SC1/OPT1`` and
    ``SC2/OPT2`` over each game's equilibria (zero where a game has no
    equilibrium — ``num_equilibria`` tells them apart).
    """

    ratio_sc1: np.ndarray
    ratio_sc2: np.ndarray
    num_equilibria: np.ndarray
    opt1: np.ndarray
    opt2: np.ndarray


def batch_empirical_ratios(
    batch: GameBatch, *, tol: float = 1e-9
) -> BatchRatioResult:
    """Worst ``(SC1/OPT1, SC2/OPT2)`` over all equilibria of every game.

    The batched counterpart of
    :func:`repro.analysis.poa.empirical_coordination_ratios` with the
    default (exhaustive) equilibrium set: all pure NE plus the fully
    mixed NE when it exists (per Theorems 4.11/4.12 the maximiser).
    """
    total = batch.num_links**batch.num_users
    if total > MAX_EXHAUSTIVE_PROFILES:
        raise ModelError(
            f"{total} profiles exceed the exhaustive limit "
            f"({MAX_EXHAUSTIVE_PROFILES})"
        )
    assignments = _all_assignments(batch.num_users, batch.num_links)
    stack = batch_equilibrium_profiles(batch, tol=tol, assignments=assignments)
    o1, o2 = batch_social_optima(batch, assignments)

    gidx = stack.game_index
    costs = batch_min_expected_latencies(
        stack.probabilities,
        batch.weights[gidx],
        batch.capacities[gidx],
        batch.initial_traffic[gidx],
    )  # (E, n)
    r1 = costs.sum(axis=1) / o1[gidx]
    r2 = costs.max(axis=1) / o2[gidx]
    worst1 = np.zeros(len(batch))
    worst2 = np.zeros(len(batch))
    np.maximum.at(worst1, gidx, r1)
    np.maximum.at(worst2, gidx, r2)
    return BatchRatioResult(
        ratio_sc1=worst1,
        ratio_sc2=worst2,
        num_equilibria=stack.num_equilibria,
        opt1=o1,
        opt2=o2,
    )
