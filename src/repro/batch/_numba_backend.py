"""Numba-JIT fused kernels behind the ``numba`` array backend.

The dense, BLAS-shaped kernels of the batch engine gain nothing from a
JIT — NumPy already runs them at memory bandwidth. What BLAS cannot help
are the *branch-heavy* paths: per-game steppers whose control flow
depends on the data (lockstep nashification, best-/better-response
dynamics with cycle detection) and the ``m^n`` censuses whose generic
implementations materialise large intermediate tensors to stay
vectorised (pure-NE counting, the response-cycle Kahn peel). This module
replaces exactly those with compiled per-game loops, ``prange``-parallel
over the batch axis.

Parity contract: per-game trajectories are *identical* to the lockstep
NumPy path — the lockstep kernels are vectorisations of per-game
sequential procedures, so a per-game loop reproduces them move for move
provided (a) loads accumulate in the same order (zeroed buffer, users in
index order, then initial traffic), (b) every arithmetic step matches
the generic expression shape (add then divide), and (c) tie-breaks are
first-index argmax/argmin. Verdict-level kernels (the censuses) are
certified by tolerance-based differential tests instead of byte
identity, as their NumPy counterparts already reduce in a different
order than the sequential code.

This module imports :mod:`numba` at module level; it is only reachable
through :func:`repro.batch.backend._numba_factory`, which translates the
ImportError into a :class:`~repro.errors.BackendError` naming the
``repro[jit]`` extra.
"""

from __future__ import annotations

import numpy as np
from numba import njit, prange

from repro.batch.backend import ArrayBackend

__all__ = ["NumbaBackend"]

#: Fibonacci-hash multiplier (0x9E3779B97F4A7C15 as signed int64) for the
#: open-addressing profile-code set in the dynamics cycle detector.
_HASH_MULT = -7046029254386353131


@njit(cache=True, parallel=True)
def _scatter_loads(sigma, weights, num_links):
    a, n = sigma.shape
    loads = np.zeros((a, num_links))
    for g in prange(a):
        for i in range(n):
            loads[g, sigma[g, i]] += weights[g, i]
    return loads


@njit(cache=True, parallel=True)
def _census_pure_nash(assignments, weights, capacities, traffic, tol, exists_only):
    b = weights.shape[0]
    p_total, n = assignments.shape
    m = capacities.shape[2]
    counts = np.zeros(b, dtype=np.int64)
    for g in prange(b):
        load = np.empty(m)
        c = 0
        for p in range(p_total):
            for link in range(m):
                load[link] = 0.0
            for i in range(n):
                load[assignments[p, i]] += weights[g, i]
            for link in range(m):
                load[link] += traffic[g, link]
            is_ne = True
            for i in range(n):
                li = assignments[p, i]
                cur = load[li] / capacities[g, i, li]
                scale = cur if cur > 1.0 else 1.0
                thresh = cur - tol * scale
                wi = weights[g, i]
                for link in range(m):
                    if link == li:
                        continue
                    if (load[link] + wi) / capacities[g, i, link] < thresh:
                        is_ne = False
                        break
                if not is_ne:
                    break
            if is_ne:
                c += 1
                if exists_only:
                    break
        counts[g] = c
    return counts


@njit(cache=True, parallel=True)
def _nashify_common(sigma, weights, capacities, caps_row, traffic, max_steps):
    b, n = sigma.shape
    m = caps_row.shape[1]
    steps = np.zeros(b, dtype=np.int64)
    converged = np.zeros(b, dtype=np.bool_)
    for g in prange(b):
        load = np.empty(m)
        improving = np.empty(n, dtype=np.bool_)
        for _ in range(max_steps):
            for link in range(m):
                load[link] = 0.0
            for i in range(n):
                load[sigma[g, i]] += weights[g, i]
            for link in range(m):
                load[link] += traffic[g, link]
            any_improving = False
            for i in range(n):
                li = sigma[g, i]
                cur = load[li] / capacities[g, i, li]
                scale = cur if cur > 1.0 else 1.0
                wi = weights[g, i]
                mn = cur
                for link in range(m):
                    if link != li:
                        d = (load[link] + wi) / capacities[g, i, link]
                        if d < mn:
                            mn = d
                improving[i] = mn < cur - 1e-9 * scale
                if improving[i]:
                    any_improving = True
            if not any_improving:
                converged[g] = True
                break
            cmax = load[0] / caps_row[g, 0]
            for link in range(1, m):
                cong = load[link] / caps_row[g, link]
                if cong > cmax:
                    cmax = cong
            worst_thresh = cmax * (1.0 - 1e-12)
            mover = -1
            for i in range(n):
                li = sigma[g, i]
                if improving[i] and load[li] / caps_row[g, li] >= worst_thresh:
                    mover = i
                    break
            if mover < 0:
                for i in range(n):
                    if improving[i]:
                        mover = i
                        break
            li = sigma[g, mover]
            wi = weights[g, mover]
            cur = load[li] / capacities[g, mover, li]
            target = 0
            if li == 0:
                best_val = cur
            else:
                best_val = (load[0] + wi) / capacities[g, mover, 0]
            for link in range(1, m):
                if link == li:
                    d = cur
                else:
                    d = (load[link] + wi) / capacities[g, mover, link]
                if d < best_val:
                    best_val = d
                    target = link
            sigma[g, mover] = target
            steps[g] += 1
    return sigma, steps, converged


@njit(cache=True, parallel=True)
def _dynamics(
    sigma,
    weights,
    capacities,
    traffic,
    radix,
    best,
    max_regret,
    max_steps,
    tol,
    detect_cycles,
    table_cap,
):
    b, n = sigma.shape
    m = capacities.shape[2]
    steps = np.zeros(b, dtype=np.int64)
    converged = np.zeros(b, dtype=np.bool_)
    cycled = np.zeros(b, dtype=np.bool_)
    mask = table_cap - 1
    for g in prange(b):
        load = np.empty(m)
        improving = np.empty(n, dtype=np.bool_)
        currents = np.empty(n)
        minima = np.empty(n)
        if detect_cycles:
            table = np.full(table_cap, -1, dtype=np.int64)
        else:
            table = np.empty(0, dtype=np.int64)
        for _ in range(max_steps):
            if detect_cycles:
                code = np.int64(0)
                for i in range(n):
                    code += sigma[g, i] * radix[i]
                slot = (code * _HASH_MULT) & mask
                revisited = False
                while True:
                    held = table[slot]
                    if held == -1:
                        table[slot] = code
                        break
                    if held == code:
                        revisited = True
                        break
                    slot = (slot + 1) & mask
                if revisited:
                    cycled[g] = True
                    break
            for link in range(m):
                load[link] = 0.0
            for i in range(n):
                load[sigma[g, i]] += weights[g, i]
            for link in range(m):
                load[link] += traffic[g, link]
            any_improving = False
            for i in range(n):
                li = sigma[g, i]
                cur = load[li] / capacities[g, i, li]
                wi = weights[g, i]
                mn = cur
                for link in range(m):
                    if link != li:
                        d = (load[link] + wi) / capacities[g, i, link]
                        if d < mn:
                            mn = d
                currents[i] = cur
                minima[i] = mn
                scale = cur if cur > 1.0 else 1.0
                improving[i] = mn < cur - tol * scale
                if improving[i]:
                    any_improving = True
            if not any_improving:
                converged[g] = True
                break
            mover = -1
            if max_regret:
                best_regret = -np.inf
                for i in range(n):
                    if improving[i]:
                        regret = currents[i] - minima[i]
                        if regret > best_regret:
                            best_regret = regret
                            mover = i
            else:
                for i in range(n):
                    if improving[i]:
                        mover = i
                        break
            li = sigma[g, mover]
            wi = weights[g, mover]
            cur = currents[mover]
            target = li
            if best:
                target = 0
                if li == 0:
                    best_val = cur
                else:
                    best_val = (load[0] + wi) / capacities[g, mover, 0]
                for link in range(1, m):
                    if link == li:
                        d = cur
                    else:
                        d = (load[link] + wi) / capacities[g, mover, link]
                    if d < best_val:
                        best_val = d
                        target = link
            else:
                scale = cur if cur > 1.0 else 1.0
                thresh = cur - tol * scale
                for link in range(m):
                    if link == li:
                        continue
                    if (load[link] + wi) / capacities[g, mover, link] < thresh:
                        target = link
                        break
            sigma[g, mover] = target
            steps[g] += 1
    return sigma, converged, steps, cycled


@njit(cache=True, parallel=True)
def _fixpoint(
    weights,
    capacities,
    traffic,
    tol,
    eta,
    log2_beta_max,
    max_rounds,
    stall_rounds,
    stall_rtol,
):
    b, n, m = capacities.shape
    p = np.full((b, n, m), 1.0 / m)
    rounds = np.zeros(b, dtype=np.int64)
    residuals = np.full(b, np.inf)
    converged = np.zeros(b, dtype=np.bool_)
    stalled = np.zeros(b, dtype=np.bool_)
    for g in prange(b):
        w_link = np.empty(m)
        lat = np.empty(m)
        grow = np.empty(m)
        best = np.inf
        since = 0
        log2beta = 0
        for k in range(max_rounds + 1):
            # Rebuild link traffic, users in index order (the parity
            # contract shared with the generic round loop).
            for link in range(m):
                w_link[link] = 0.0
            for i in range(n):
                wi = weights[g, i]
                for link in range(m):
                    w_link[link] = w_link[link] + p[g, i, link] * wi
            r = 0.0
            for i in range(n):
                wi = weights[g, i]
                mn = np.inf
                for link in range(m):
                    tw = traffic[g, link] + w_link[link]
                    val = ((1.0 - p[g, i, link]) * wi + tw) / capacities[
                        g, i, link
                    ]
                    lat[link] = val
                    if val < mn:
                        mn = val
                scale = mn if mn > 1.0 else 1.0
                for link in range(m):
                    if p[g, i, link] > 1e-12:
                        excess = (lat[link] - mn) / scale
                        if excess > r:
                            r = excess
            residuals[g] = r
            if r <= tol:
                converged[g] = True
                break
            if r < best * (1.0 - stall_rtol):
                best = r
                since = 0
            else:
                since += 1
            if since >= stall_rounds:
                stalled[g] = True
                break
            if k == max_rounds:
                break
            for u in range(n):
                wu = weights[g, u]
                mn = np.inf
                for link in range(m):
                    tw = traffic[g, link] + w_link[link]
                    val = ((1.0 - p[g, u, link]) * wu + tw) / capacities[
                        g, u, link
                    ]
                    lat[link] = val
                    if val < mn:
                        mn = val
                s = 0.0
                for link in range(m):
                    q = mn / lat[link]
                    for _ in range(log2beta):
                        q = q * q
                    gl = p[g, u, link] * q
                    grow[link] = gl
                    if link == 0:
                        s = gl
                    else:
                        s = s + gl
                for link in range(m):
                    old = p[g, u, link]
                    updated = (1.0 - eta) * old + eta * (grow[link] / s)
                    w_link[link] = w_link[link] + (updated - old) * wu
                    p[g, u, link] = updated
            rounds[g] += 1
            if log2beta < log2_beta_max:
                log2beta += 1
    return p, rounds, residuals, converged, stalled


@njit(cache=True, parallel=True)
def _census_cycle(assignments, weights, capacities, traffic, place, best, tol):
    b = weights.shape[0]
    p_total, n = assignments.shape
    m = capacities.shape[2]
    has_cycle = np.zeros(b, dtype=np.bool_)
    for g in prange(b):
        load = np.empty(m)
        indeg = np.zeros(p_total, dtype=np.int64)
        # Pass 1: in-degrees. Edges are recomputed on the fly in both
        # passes instead of materialising the flattened stack the
        # generic peel holds — O(P n m) work, O(P) memory per game.
        for p in range(p_total):
            for link in range(m):
                load[link] = 0.0
            for i in range(n):
                load[assignments[p, i]] += weights[g, i]
            for link in range(m):
                load[link] += traffic[g, link]
            for i in range(n):
                li = assignments[p, i]
                cur = load[li] / capacities[g, i, li]
                scale = cur if cur > 1.0 else 1.0
                thresh = cur - tol * scale
                wi = weights[g, i]
                if best:
                    mn = cur
                    for link in range(m):
                        if link != li:
                            d = (load[link] + wi) / capacities[g, i, link]
                            if d < mn:
                                mn = d
                    near = mn + tol * (mn if mn > 1.0 else 1.0)
                    for link in range(m):
                        if link == li:
                            continue
                        d = (load[link] + wi) / capacities[g, i, link]
                        if d < thresh and d <= near:
                            indeg[p + (link - li) * place[i]] += 1
                else:
                    for link in range(m):
                        if link == li:
                            continue
                        if (load[link] + wi) / capacities[g, i, link] < thresh:
                            indeg[p + (link - li) * place[i]] += 1
        # Pass 2: Kahn peel with edge recomputation.
        queue = np.empty(p_total, dtype=np.int64)
        tail = 0
        for p in range(p_total):
            if indeg[p] == 0:
                queue[tail] = p
                tail += 1
        head = 0
        removed = 0
        while head < tail:
            p = queue[head]
            head += 1
            removed += 1
            for link in range(m):
                load[link] = 0.0
            for i in range(n):
                load[assignments[p, i]] += weights[g, i]
            for link in range(m):
                load[link] += traffic[g, link]
            for i in range(n):
                li = assignments[p, i]
                cur = load[li] / capacities[g, i, li]
                scale = cur if cur > 1.0 else 1.0
                thresh = cur - tol * scale
                wi = weights[g, i]
                if best:
                    mn = cur
                    for link in range(m):
                        if link != li:
                            d = (load[link] + wi) / capacities[g, i, link]
                            if d < mn:
                                mn = d
                    near = mn + tol * (mn if mn > 1.0 else 1.0)
                    for link in range(m):
                        if link == li:
                            continue
                        d = (load[link] + wi) / capacities[g, i, link]
                        if d < thresh and d <= near:
                            dst = p + (link - li) * place[i]
                            indeg[dst] -= 1
                            if indeg[dst] == 0:
                                queue[tail] = dst
                                tail += 1
                else:
                    for link in range(m):
                        if link == li:
                            continue
                        if (load[link] + wi) / capacities[g, i, link] < thresh:
                            dst = p + (link - li) * place[i]
                            indeg[dst] -= 1
                            if indeg[dst] == 0:
                                queue[tail] = dst
                                tail += 1
        has_cycle[g] = removed < p_total
    return has_cycle


def _c_f64(arr) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=np.float64)


def _c_i64(arr) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=np.int64)


class NumbaBackend(ArrayBackend):
    """NumPy namespace plus compiled fused loops for the branchy paths."""

    def __init__(self) -> None:
        super().__init__(module=np, name="numba")

    def scatter_loads(self, sigma, weights, num_links, initial_traffic=None):
        loads = _scatter_loads(_c_i64(sigma), _c_f64(weights), num_links)
        if initial_traffic is not None:
            loads += np.asarray(initial_traffic, dtype=np.float64)
        return loads

    def count_pure_nash(self, assignments, weights, capacities, traffic, tol):
        return _census_pure_nash(
            _c_i64(assignments),
            _c_f64(weights),
            _c_f64(capacities),
            _c_f64(traffic),
            float(tol),
            False,
        )

    def exists_pure_nash(self, assignments, weights, capacities, traffic, tol):
        counts = _census_pure_nash(
            _c_i64(assignments),
            _c_f64(weights),
            _c_f64(capacities),
            _c_f64(traffic),
            float(tol),
            True,
        )
        return counts > 0

    def nashify_common_loop(
        self, sigma, weights, capacities, caps_row, traffic, max_steps
    ):
        out, steps, converged = _nashify_common(
            _c_i64(sigma),
            _c_f64(weights),
            _c_f64(capacities),
            _c_f64(caps_row),
            _c_f64(traffic),
            int(max_steps),
        )
        return out.astype(np.intp, copy=False), steps, converged

    def dynamics_loop(
        self,
        sigma,
        weights,
        capacities,
        traffic,
        best,
        max_regret,
        max_steps,
        tol,
        detect_cycles,
    ):
        n = sigma.shape[1]
        m = capacities.shape[2]
        if detect_cycles and m**n >= 2**63:
            # Profile codes overflow int64; decline so the generic
            # byte-hash lockstep path handles these enormous games.
            return None
        radix = np.power(np.int64(m), np.arange(n, dtype=np.int64))
        # Open-addressing set capacity: power of two, load factor <= 0.5
        # for the at most min(max_steps, m^n) + 1 codes a trajectory can
        # insert before terminating.
        entries = min(int(max_steps), m**n) + 2
        cap = 2
        while cap < 2 * entries:
            cap <<= 1
        out, converged, steps, cycled = _dynamics(
            _c_i64(sigma),
            _c_f64(weights),
            _c_f64(capacities),
            _c_f64(traffic),
            radix,
            bool(best),
            bool(max_regret),
            int(max_steps),
            float(tol),
            bool(detect_cycles),
            cap,
        )
        return out.astype(np.intp, copy=False), converged, steps, cycled

    def fixpoint_loop(
        self,
        weights,
        capacities,
        traffic,
        tol,
        eta,
        log2_beta_max,
        max_rounds,
        stall_rounds,
        stall_rtol,
    ):
        return _fixpoint(
            _c_f64(weights),
            _c_f64(capacities),
            _c_f64(traffic),
            float(tol),
            float(eta),
            int(log2_beta_max),
            int(max_rounds),
            int(stall_rounds),
            float(stall_rtol),
        )

    def census_cycle(self, assignments, weights, capacities, traffic, best, tol):
        n = assignments.shape[1]
        m = capacities.shape[2]
        place = np.power(np.int64(m), np.arange(n - 1, -1, -1, dtype=np.int64))
        return _census_cycle(
            _c_i64(assignments),
            _c_f64(weights),
            _c_f64(capacities),
            _c_f64(traffic),
            place,
            bool(best),
            float(tol),
        )
