"""Batched pure-strategy kernels: nashification, potentials, censuses.

This module completes the batching of the Section 3 pure-strategy
pipeline. Everything operates on :class:`~repro.batch.container.GameBatch`
stacks — ``weights (B, n)``, ``capacities (B, n, m)``,
``initial_traffic (B, m)`` — and advances all ``B`` games in lockstep
with per-game active masks, in the iterative-proportional-fitting style
of stacked fixed-point solvers: one vectorised update per step, games
leaving the active set as they individually converge.

Four kernel families live here:

* **lockstep nashification** — :func:`batch_nashify_common_beliefs`
  (per-step argmax-congestion defector selection, the Feldmann et al.
  guarantee) and :func:`batch_nashify` (general games via the shared
  max-regret lockstep dynamics), both recording before/after SC1/SC2
  and max-congestion per game;
* **potential evaluators** — :func:`batch_weighted_potential` /
  :func:`batch_ordinal_potential_symmetric` and their one-move identity
  verifiers, plus the four-cycle evaluator
  :func:`batch_four_cycle_gaps` behind the Monderer-Shapley
  exact-potential test;
* **PNE / cycle census** — :func:`batch_response_cycle_census` walks the
  best-/better-response graphs of a whole stack at once (vectorised
  edge extraction over all ``m^n`` states, then one flattened Kahn
  peel); pure-NE existence counting is shared with
  :func:`repro.batch.kernels.batch_count_pure_nash`;
* **lockstep Section 3 solvers** — :func:`batch_atwolinks`,
  :func:`batch_asymmetric`, :func:`batch_auniform`: the paper's three
  algorithms advancing a stack one round per step.

Numerical parity: every kernel reproduces its single-game counterpart
bit for bit under equal inputs — loads accumulate user by user
(:func:`numpy.bincount` order), tie-breaks mirror the sequential code
(first mover, first worst link, lowest link index), and tolerances are
identical. ``equilibria/nashify.py``, the evaluators in
``equilibria/potential.py`` and the census half of
``analysis/cycles.py`` are the ``B = 1`` views of these kernels; the
E1-E4/E6 campaign results are pinned against the frozen sequential
baseline in ``tests/data/pure_seed_baseline.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np

from repro.batch.backend import get_backend
from repro.batch.container import GameBatch
from repro.batch.dynamics import batch_best_response_dynamics, deviation_slab
from repro.batch.kernels import _all_assignments, _profile_block
from repro.errors import AlgorithmDomainError, ConvergenceError, ModelError, SolverError
from repro.util.rng import RandomState, as_generator

__all__ = [
    "BatchNashifyResult",
    "batch_nashify",
    "batch_nashify_common_beliefs",
    "batch_weighted_potential",
    "batch_ordinal_potential_symmetric",
    "batch_verify_weighted_potential",
    "batch_verify_ordinal_potential_symmetric",
    "batch_four_cycle_gaps",
    "batch_sampled_cycle_gaps",
    "batch_response_cycle_census",
    "batch_atwolinks",
    "batch_asymmetric",
    "batch_auniform",
]

#: Census construction is exhaustive; mirror the single-game graph limit.
MAX_CENSUS_STATES = 100_000

#: Combined cap on ``B * m^n`` census nodes: the Kahn peel holds the
#: whole stack's node and edge arrays at once, so per-game smallness is
#: not enough — a wide batch of large games must fail cleanly instead
#: of exhausting memory. (E4 runs at ~16k nodes; the B=1 views reach at
#: most MAX_CENSUS_STATES.)
MAX_CENSUS_NODES = 1_000_000


# ---------------------------------------------------------------------- #
# shared low-level helpers
# ---------------------------------------------------------------------- #


def _scatter_loads(
    sigma: np.ndarray,
    weights: np.ndarray,
    num_links: int,
    initial_traffic: np.ndarray | None = None,
    *,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Per-link loads for ``(A, n)`` assignments, user-by-user.

    Accumulation order matches :func:`numpy.bincount` with weights (the
    single-game ``loads_of``), which is the bit-parity contract every
    kernel in this module rests on. Steppers that rebuild loads every
    iteration pass a preallocated ``(A, num_links)`` buffer via *out* to
    skip the per-step allocation.
    """
    xp = get_backend()
    if xp.scatter_loads is not None:
        loads = xp.scatter_loads(sigma, weights, num_links, initial_traffic)
        if out is not None:
            out[:] = loads
            return out
        return loads
    a, n = sigma.shape
    if out is not None:
        loads = out
        loads[:] = 0.0
    else:
        loads = xp.zeros((a, num_links))
    rows = np.arange(a)
    for i in range(n):
        loads[rows, sigma[:, i]] += weights[:, i]
    if initial_traffic is not None:
        loads += initial_traffic
    return loads


def _chosen_latencies(
    sigma: np.ndarray, loads: np.ndarray, capacities: np.ndarray
) -> np.ndarray:
    """``(A, n)`` belief-expected latencies at the chosen links."""
    a, n = sigma.shape
    rows = np.arange(a)[:, None]
    users = np.arange(n)[None, :]
    return loads[rows, sigma] / capacities[rows, users, sigma]


def _require_start(batch: GameBatch, start: np.ndarray) -> np.ndarray:
    b, n, m = batch.batch_size, batch.num_users, batch.num_links
    sigma = np.array(start, dtype=np.intp, copy=True)
    if sigma.shape != (b, n):
        raise ModelError(f"start must have shape ({b}, {n}), got {sigma.shape}")
    if np.any(sigma < 0) or np.any(sigma >= m):
        raise ModelError(f"start entries must lie in [0, {m})")
    return sigma


def _require_common_beliefs(capacities: np.ndarray) -> np.ndarray:
    """The shared ``(B, m)`` capacity row, or raise.

    Common beliefs collapse every user's effective-capacity row to the
    same values (they are one matmul of identical belief rows), so the
    reduced-form criterion is row equality up to a relative 1e-12 —
    mirroring ``UncertainRoutingGame.has_common_beliefs``.
    """
    row = capacities[:, 0, :]
    if not np.all(np.abs(capacities - row[:, None, :]) <= 1e-12 * row[:, None, :]):
        raise AlgorithmDomainError(
            "this kernel requires common beliefs in every stacked game "
            "(all users sharing one effective-capacity row)"
        )
    return row


def _require_symmetric_users(weights: np.ndarray) -> None:
    first = weights[:, :1]
    if not np.all(np.abs(weights - first) <= 1e-12 * np.abs(first)):
        raise AlgorithmDomainError(
            "this kernel requires symmetric users (equal weights) in "
            "every stacked game"
        )


# ---------------------------------------------------------------------- #
# lockstep nashification
# ---------------------------------------------------------------------- #


@dataclass
class BatchNashifyResult:
    """Before/after records of a lockstep nashification run.

    All arrays are per-game: ``profiles (B, n)`` final assignments (every
    row is a pure NE — non-convergence raises instead), ``steps (B,)``
    accepted moves, and the ``(B,)`` social-cost / max-congestion pairs
    the experiments compare against the Feldmann et al. guarantee.
    """

    profiles: np.ndarray
    steps: np.ndarray
    sc1_before: np.ndarray
    sc1_after: np.ndarray
    sc2_before: np.ndarray
    sc2_after: np.ndarray
    max_congestion_before: np.ndarray
    max_congestion_after: np.ndarray

    @property
    def preserved_max_congestion(self) -> np.ndarray:
        """Per-game verdict: max congestion never got worse."""
        return self.max_congestion_after <= self.max_congestion_before * (1 + 1e-9)

    def __len__(self) -> int:
        return self.profiles.shape[0]


def batch_nashify_common_beliefs(
    batch: GameBatch,
    start: np.ndarray,
    *,
    max_steps: int = 100_000,
) -> BatchNashifyResult:
    """Nashify ``B`` common-beliefs games in lockstep.

    Every step moves, in each active game, the first defecting user that
    sits on a maximum-congestion link (or the first defector when none
    does) to its best response — exactly the sequential procedure of
    :func:`repro.equilibria.nashify.nashify_common_beliefs`, whose
    trajectory each slice reproduces move for move. Games leave the
    active set as their defector sets empty; a game still unsettled
    after *max_steps* of its own moves raises
    :class:`~repro.errors.ConvergenceError` (same budget semantics as
    the single-game loop).
    """
    xp = get_backend()
    weights, capacities = batch.weights, batch.capacities
    traffic = batch.initial_traffic
    caps_row = _require_common_beliefs(capacities)
    sigma = _require_start(batch, start)
    b, n = sigma.shape
    m = batch.num_links

    loads0 = _scatter_loads(sigma, weights, m, traffic)
    lat0 = _chosen_latencies(sigma, loads0, capacities)
    sc1_before = lat0.sum(axis=1)
    sc2_before = lat0.max(axis=1)
    congestion_before = (loads0 / caps_row).max(axis=1)

    if xp.nashify_common_loop is not None:
        # Fused backend stepper: per-game sequential loops reproducing
        # the lockstep trajectory move for move (same defector and
        # target tie-breaks). May decline (None) for the generic path.
        fused = xp.nashify_common_loop(
            sigma, weights, capacities, caps_row, traffic, max_steps
        )
    else:
        fused = None
    if fused is not None:
        sigma, steps, converged = fused
        if not converged.all():
            raise ConvergenceError(
                f"nashification exceeded {max_steps} steps for "
                f"{int((~converged).sum())} of {b} games (n={n})"
            )
    else:
        active = np.ones(b, dtype=bool)
        steps = np.zeros(b, dtype=np.int64)
        all_rows = np.arange(b)[:, None]
        user_cols = np.arange(n)[None, :]
        loads_buf = np.empty((b, m))

        iteration = 0
        while active.any() and iteration < max_steps:
            idx = xp.flatnonzero(active)
            a = idx.size
            sig_a = sigma[idx]
            w_a = weights[idx]
            loads = _scatter_loads(sig_a, w_a, m, traffic[idx], out=loads_buf[:a])
            dev = deviation_slab(
                sig_a,
                w_a,
                capacities[idx],
                traffic[idx],
                all_rows,
                user_cols,
                loads=loads,
            )
            rows = np.arange(a)
            current = dev[rows[:, None], user_cols, sig_a]
            scale = xp.maximum(current, 1.0)
            improving = dev.min(axis=-1) < current - 1e-9 * scale  # (A, n)
            has_mover = improving.any(axis=-1)

            done = idx[~has_mover]
            if done.size:
                active[done] = False
                if not has_mover.any():
                    iteration += 1
                    continue
                act = idx[has_mover]
                improving = improving[has_mover]
                dev = dev[has_mover]
                loads = loads[has_mover]
                sig_a = sig_a[has_mover]
            else:
                act = idx

            congestion = loads / caps_row[act]
            worst = congestion >= congestion.max(axis=1, keepdims=True) * (1 - 1e-12)
            on_worst = improving & xp.take_along_axis(worst, sig_a, axis=1)
            any_worst = on_worst.any(axis=1)
            user = xp.where(
                any_worst, xp.argmax(on_worst, axis=1), xp.argmax(improving, axis=1)
            )
            rows = np.arange(act.size)
            target = xp.argmin(dev[rows, user], axis=1)
            sigma[act, user] = target
            steps[act] += 1
            iteration += 1

        if active.any():
            raise ConvergenceError(
                f"nashification exceeded {max_steps} steps for "
                f"{int(active.sum())} of {b} games (n={n})"
            )

    loads1 = _scatter_loads(sigma, weights, m, traffic)
    lat1 = _chosen_latencies(sigma, loads1, capacities)
    return BatchNashifyResult(
        profiles=sigma,
        steps=steps,
        sc1_before=sc1_before,
        sc1_after=lat1.sum(axis=1),
        sc2_before=sc2_before,
        sc2_after=lat1.max(axis=1),
        max_congestion_before=congestion_before,
        max_congestion_after=(loads1 / caps_row).max(axis=1),
    )


def batch_nashify(
    batch: GameBatch,
    start: np.ndarray,
    *,
    max_steps: int = 100_000,
) -> BatchNashifyResult:
    """Nashify ``B`` general games by lockstep max-regret best response.

    The general-game variant carries no monotonicity guarantee (the
    subjective SC2 may transiently grow), so congestion is measured
    against per-link *mean* effective capacities — the same fixed
    observer as :func:`repro.equilibria.nashify.nashify`, whose
    trajectory each slice reproduces through the shared lockstep
    dynamics. Raises :class:`~repro.errors.ConvergenceError` when any
    game cycles or exhausts *max_steps*.
    """
    weights, capacities = batch.weights, batch.capacities
    traffic = batch.initial_traffic
    sigma = _require_start(batch, start)
    m = batch.num_links

    mean_caps = capacities.mean(axis=1)  # (B, m)
    loads0 = _scatter_loads(sigma, weights, m, traffic)
    lat0 = _chosen_latencies(sigma, loads0, capacities)

    result = batch_best_response_dynamics(
        batch, sigma, schedule="max_regret", max_steps=max_steps
    )
    if not result.all_converged:
        stuck = int((~result.converged).sum())
        raise ConvergenceError(
            f"nashification dynamics did not converge for {stuck} of "
            f"{len(batch)} games within {max_steps} steps"
        )

    loads1 = _scatter_loads(result.profiles, weights, m, traffic)
    lat1 = _chosen_latencies(result.profiles, loads1, capacities)
    return BatchNashifyResult(
        profiles=result.profiles,
        steps=result.steps,
        sc1_before=lat0.sum(axis=1),
        sc1_after=lat1.sum(axis=1),
        sc2_before=lat0.max(axis=1),
        sc2_after=lat1.max(axis=1),
        max_congestion_before=(loads0 / mean_caps).max(axis=1),
        max_congestion_after=(loads1 / mean_caps).max(axis=1),
    )


# ---------------------------------------------------------------------- #
# batched potential evaluators
# ---------------------------------------------------------------------- #


def batch_weighted_potential(batch: GameBatch, sigma: np.ndarray) -> np.ndarray:
    """``(B,)`` weighted potentials of common-beliefs games.

    ``Phi(sigma) = sum_l (L_l^2 + sum_{i on l} w_i^2) / (2 c^l)`` per
    stacked game — the ``B``-wide form of
    :func:`repro.equilibria.potential.weighted_potential_common_beliefs`.
    """
    caps_row = _require_common_beliefs(batch.capacities)
    sig = _require_start(batch, sigma)
    w = batch.weights
    loads = _scatter_loads(sig, w, batch.num_links, batch.initial_traffic)
    own = _scatter_loads(sig, w**2, batch.num_links)
    return ((loads**2 + own) / (2.0 * caps_row)).sum(axis=1)


def batch_ordinal_potential_symmetric(
    batch: GameBatch, sigma: np.ndarray
) -> np.ndarray:
    """``(B,)`` ordinal potentials of symmetric-users games.

    ``Phi(sigma) = sum_l log(k_l!) - sum_i log C[i, sigma_i]`` per
    stacked game (zero initial traffic required) — the ``B``-wide form
    of :func:`repro.equilibria.potential.ordinal_potential_symmetric`.
    """
    from scipy.special import gammaln

    _require_symmetric_users(batch.weights)
    if np.any(batch.initial_traffic > 0):
        raise AlgorithmDomainError(
            "the ordinal potential requires zero initial traffic"
        )
    sig = _require_start(batch, sigma)
    b, n = sig.shape
    counts = _scatter_loads(sig, np.ones((b, n)), batch.num_links)
    log_factorials = gammaln(counts + 1.0).sum(axis=1)
    rows = np.arange(b)[:, None]
    users = np.arange(n)[None, :]
    chosen_caps = batch.capacities[rows, users, sig]
    return log_factorials - np.log(chosen_caps).sum(axis=1)


def _latency_of_users(
    batch: GameBatch, sigma: np.ndarray, users: np.ndarray
) -> np.ndarray:
    """``(B,)`` latency of one chosen user per game."""
    loads = _scatter_loads(sigma, batch.weights, batch.num_links, batch.initial_traffic)
    rows = np.arange(sigma.shape[0])
    links = sigma[rows, users]
    return loads[rows, links] / batch.capacities[rows, users, links]


def _verify_identity(lhs: np.ndarray, rhs: np.ndarray, rtol: float) -> np.ndarray:
    scale = np.maximum(np.maximum(np.abs(lhs), np.abs(rhs)), 1.0)
    return np.abs(lhs - rhs) <= rtol * scale


def batch_verify_weighted_potential(
    batch: GameBatch,
    sigma: np.ndarray,
    users: np.ndarray,
    new_links: np.ndarray,
    *,
    rtol: float = 1e-9,
) -> np.ndarray:
    """``(B,)`` verdicts of ``Delta Phi = w_i * Delta lambda_i``.

    One probe move per game: game ``b`` moves ``users[b]`` to
    ``new_links[b]`` from ``sigma[b]``.
    """
    sig = _require_start(batch, sigma)
    users = np.asarray(users, dtype=np.intp)
    new_links = np.asarray(new_links, dtype=np.intp)
    rows = np.arange(sig.shape[0])
    phi_before = batch_weighted_potential(batch, sig)
    lat_before = _latency_of_users(batch, sig, users)
    sig[rows, users] = new_links
    phi_after = batch_weighted_potential(batch, sig)
    lat_after = _latency_of_users(batch, sig, users)
    lhs = phi_after - phi_before
    rhs = batch.weights[rows, users] * (lat_after - lat_before)
    return _verify_identity(lhs, rhs, rtol)


def batch_verify_ordinal_potential_symmetric(
    batch: GameBatch,
    sigma: np.ndarray,
    users: np.ndarray,
    new_links: np.ndarray,
    *,
    rtol: float = 1e-9,
) -> np.ndarray:
    """``(B,)`` verdicts of ``Delta Phi = log lambda' - log lambda``."""
    sig = _require_start(batch, sigma)
    users = np.asarray(users, dtype=np.intp)
    new_links = np.asarray(new_links, dtype=np.intp)
    rows = np.arange(sig.shape[0])
    phi_before = batch_ordinal_potential_symmetric(batch, sig)
    lat_before = _latency_of_users(batch, sig, users)
    sig[rows, users] = new_links
    phi_after = batch_ordinal_potential_symmetric(batch, sig)
    lat_after = _latency_of_users(batch, sig, users)
    lhs = phi_after - phi_before
    rhs = np.log(lat_after) - np.log(lat_before)
    return _verify_identity(lhs, rhs, rtol)


# ---------------------------------------------------------------------- #
# four-cycle gaps (Monderer-Shapley exact-potential test)
# ---------------------------------------------------------------------- #


def batch_four_cycle_gaps(
    weights: np.ndarray,
    capacities: np.ndarray,
    initial_traffic: np.ndarray | None,
    game_of_row: np.ndarray,
    sigma0: np.ndarray,
    move_users: np.ndarray,
    move_links: np.ndarray,
) -> np.ndarray:
    """Net deviator cost changes around ``K`` four-cycles: shape ``(K,)``.

    Row ``r`` walks one two-player four-cycle of game ``game_of_row[r]``
    starting from assignment ``sigma0[r]``: move ``s`` relocates user
    ``move_users[r, s]`` to ``move_links[r, s]`` and accumulates that
    user's latency change. The accumulation order (move by move, loads
    rebuilt user by user) matches the sequential
    ``_four_cycle_gap`` evaluation bit for bit, so the worst-gap
    reductions downstream agree exactly.
    """
    sigma = np.array(sigma0, dtype=np.intp, copy=True)
    k, n = sigma.shape
    m = capacities.shape[-1]
    game_of_row = np.asarray(game_of_row, dtype=np.intp)
    w = weights[game_of_row]
    caps = capacities[game_of_row]
    traffic = initial_traffic[game_of_row] if initial_traffic is not None else None
    rows = np.arange(k)

    total = np.zeros(k)
    loads = _scatter_loads(sigma, w, m, traffic)
    for s in range(move_users.shape[1]):
        users = move_users[:, s]
        links_before = sigma[rows, users]
        before = loads[rows, links_before] / caps[rows, users, links_before]
        sigma[rows, users] = move_links[:, s]
        loads = _scatter_loads(sigma, w, m, traffic)
        links_after = sigma[rows, users]
        after = loads[rows, links_after] / caps[rows, users, links_after]
        total += after - before
    return total


def _sample_cycle_draws(
    rng: np.random.Generator, num_users: int, num_links: int, samples: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Replay the sampled-path RNG draws of the sequential gap loop.

    Per sample, in stream order: the user pair, the base assignment, and
    the two link pairs — exactly the draws
    ``exact_potential_cycle_gap`` made before it was batched.
    """
    pairs = np.empty((samples, 2), dtype=np.intp)
    bases = np.empty((samples, num_users), dtype=np.intp)
    links = np.empty((samples, 4), dtype=np.intp)
    for s in range(samples):
        pairs[s] = rng.choice(num_users, size=2, replace=False)
        bases[s] = rng.integers(0, num_links, size=num_users).astype(np.intp)
        links[s, :2] = rng.choice(num_links, size=2, replace=False)
        links[s, 2:] = rng.choice(num_links, size=2, replace=False)
    return pairs, bases, links[:, :2], links[:, 2:]


def _four_cycle_inputs(
    pairs: np.ndarray,
    bases: np.ndarray,
    links_i: np.ndarray,
    links_j: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(sigma0, move_users, move_links) for a block of four-cycles.

    The move order is the sequential evaluation's:
    ``i: a->a2, j: b->b2, i: a2->a, j: b2->b`` from the base profile
    with ``sigma[i] = a`` and ``sigma[j] = b``.
    """
    k = pairs.shape[0]
    rows = np.arange(k)
    i, j = pairs[:, 0], pairs[:, 1]
    a, a2 = links_i[:, 0], links_i[:, 1]
    b, b2 = links_j[:, 0], links_j[:, 1]
    sigma0 = np.array(bases, dtype=np.intp, copy=True)
    sigma0[rows, i] = a
    sigma0[rows, j] = b
    move_users = np.stack([i, j, i, j], axis=1)
    move_links = np.stack([a2, b2, a, b], axis=1)
    return sigma0, move_users, move_links


def batch_sampled_cycle_gaps(
    batch: GameBatch,
    sample_seeds: Sequence[RandomState],
    *,
    num_samples: int = 1_000,
) -> np.ndarray:
    """``(B,)`` worst sampled four-cycle gaps, one RNG stream per game.

    Game ``b`` replays ``num_samples`` cycle draws from
    ``sample_seeds[b]`` exactly as the sequential
    ``exact_potential_cycle_gap(game, num_samples=..., seed=...)`` loop
    would, then all ``B * num_samples`` cycles are evaluated in one
    vectorised pass.
    """
    b = batch.batch_size
    n, m = batch.num_users, batch.num_links
    seeds = list(sample_seeds)
    if len(seeds) != b:
        raise ModelError(f"need {b} sample seeds, got {len(seeds)}")
    if num_samples < 1:
        return np.zeros(b)
    pairs = np.empty((b, num_samples, 2), dtype=np.intp)
    bases = np.empty((b, num_samples, n), dtype=np.intp)
    links_i = np.empty((b, num_samples, 2), dtype=np.intp)
    links_j = np.empty((b, num_samples, 2), dtype=np.intp)
    for g, seed in enumerate(seeds):
        rng = as_generator(seed)
        pairs[g], bases[g], links_i[g], links_j[g] = _sample_cycle_draws(
            rng, n, m, num_samples
        )
    k = b * num_samples
    sigma0, move_users, move_links = _four_cycle_inputs(
        pairs.reshape(k, 2),
        bases.reshape(k, n),
        links_i.reshape(k, 2),
        links_j.reshape(k, 2),
    )
    game_of_row = np.repeat(np.arange(b), num_samples)
    gaps = batch_four_cycle_gaps(
        batch.weights,
        batch.capacities,
        batch.initial_traffic,
        game_of_row,
        sigma0,
        move_users,
        move_links,
    )
    return np.abs(gaps).reshape(b, num_samples).max(axis=1)


# ---------------------------------------------------------------------- #
# PNE-existence / response-cycle census
# ---------------------------------------------------------------------- #


def batch_response_cycle_census(
    batch: GameBatch,
    *,
    kind: Literal["best", "better"] = "best",
    tol: float = 1e-9,
    block_size: int | None = None,
) -> np.ndarray:
    """Whether each game's response graph has a cycle: ``(B,)`` bool.

    Walks the full ``m^n`` state space of every stacked game at once:
    deviation tensors for blocks of states are computed batched, the
    best-response (the paper's game graph) or better-response edges are
    extracted vectorised, and one Kahn peel over the flattened
    ``(game, state)`` node space decides acyclicity for all ``B`` games
    simultaneously — a game has a cycle iff the peel leaves nodes
    behind. Edge sets are bit-identical to
    :func:`repro.equilibria.game_graph.best_response_graph` /
    ``better_response_graph``, so the verdicts match the sequential
    census exactly.
    """
    if kind not in ("best", "better"):
        raise ModelError(f"kind must be 'best' or 'better', got {kind!r}")
    b, n, m = batch.batch_size, batch.num_users, batch.num_links
    total = m**n
    if total > MAX_CENSUS_STATES:
        raise ModelError(
            f"game graph would have {total} states (limit {MAX_CENSUS_STATES})"
        )
    if b * total > MAX_CENSUS_NODES:
        raise ModelError(
            f"census would peel {b} * {total} = {b * total} nodes at once "
            f"(limit {MAX_CENSUS_NODES}); split the batch"
        )
    xp = get_backend()
    weights, capacities = batch.weights, batch.capacities
    traffic = batch.initial_traffic
    assignments = _all_assignments(n, m)

    if xp.census_cycle is not None:
        # Fused backend census: per-game edge extraction + Kahn peel
        # recomputing edges on the fly instead of materialising the
        # flattened stack. May decline (None) for the generic path.
        fused = xp.census_cycle(
            assignments, weights, capacities, traffic, kind == "best", tol
        )
        if fused is not None:
            return fused

    place = np.power(m, np.arange(n - 1, -1, -1)).astype(np.int64)

    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    block = block_size or _profile_block(b, n, m)
    users = np.arange(n)[None, None, :]
    for lo in range(0, total, block):
        hi = min(lo + block, total)
        sig = assignments[lo:hi]  # (Pb, n)
        pb = hi - lo
        cols = np.arange(pb)
        loads = np.zeros((b, pb, m))
        for i in range(n):
            loads[:, cols, sig[:, i]] += weights[:, i, None]
        loads += traffic[:, None, :]
        dev = loads[:, :, None, :] + weights[:, None, :, None]
        dev[:, cols[:, None], users[0], sig] -= weights[:, None, :]
        dev /= capacities[:, None, :, :]
        current = xp.take_along_axis(dev, sig[None, :, :, None], axis=3)[..., 0]
        scale = xp.maximum(current, 1.0)
        improving = dev < (current - tol * scale)[..., None]
        if kind == "best":
            best = dev.min(axis=-1)
            threshold = best + tol * xp.maximum(best, 1.0)
            targets = improving & (dev <= threshold[..., None])
        else:
            targets = improving
        gb, ps, us, ls = xp.nonzero(targets)
        if gb.size:
            src = gb * total + (ps + lo)
            dst = src + (ls - sig[ps, us]) * place[us]
            src_parts.append(src)
            dst_parts.append(dst)

    remaining = np.full(b, total, dtype=np.int64)
    if not src_parts:
        return np.zeros(b, dtype=bool)
    src_all = xp.concatenate(src_parts)
    dst_all = xp.concatenate(dst_parts)
    num_nodes = b * total
    indeg = xp.bincount(dst_all, minlength=num_nodes)
    order = xp.argsort(src_all, kind="stable")
    dst_sorted = dst_all[order]
    counts = xp.bincount(src_all, minlength=num_nodes)
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])

    frontier = xp.flatnonzero(indeg == 0)
    while frontier.size:
        remaining -= xp.bincount(frontier // total, minlength=b)
        starts = indptr[frontier]
        lengths = indptr[frontier + 1] - starts
        total_out = int(lengths.sum())
        if total_out == 0:
            break
        # Vectorised ragged arange: edge indices of every frontier node.
        keep = lengths > 0
        starts, lengths = starts[keep], lengths[keep]
        ends = np.cumsum(lengths)
        idx = np.ones(total_out, dtype=np.int64)
        idx[0] = starts[0]
        idx[ends[:-1]] = starts[1:] - (starts[:-1] + lengths[:-1] - 1)
        np.cumsum(idx, out=idx)
        dsts = dst_sorted[idx]
        indeg -= xp.bincount(dsts, minlength=num_nodes)
        candidates = xp.unique(dsts)
        frontier = candidates[indeg[candidates] == 0]

    return remaining > 0


# ---------------------------------------------------------------------- #
# lockstep Section 3 solvers
# ---------------------------------------------------------------------- #


def batch_atwolinks(batch: GameBatch) -> np.ndarray:
    """Pure NE of ``B`` two-link games in lockstep: ``(B, n)`` profiles.

    One round per user, as in Figure 1: every game recomputes its
    remaining users' tolerances against the updated initial traffic,
    places its most tolerant remaining user on that user's preferred
    link, and recurses. Each slice reproduces
    :func:`repro.equilibria.two_links.atwolinks` choice for choice.
    """
    if batch.num_links != 2:
        raise AlgorithmDomainError(
            f"atwolinks requires m=2 links, batch has m={batch.num_links}"
        )
    b, n = batch.batch_size, batch.num_users
    w = batch.weights
    caps = batch.capacities  # (B, n, 2)
    t = batch.initial_traffic.copy()
    big_t = w.sum(axis=1)
    sigma = np.empty((b, n), dtype=np.intp)
    remaining = np.ones((b, n), dtype=bool)
    rows = np.arange(b)

    harmonic = (caps[:, :, 0] * caps[:, :, 1]) / (caps[:, :, 0] + caps[:, :, 1])
    alpha = np.empty((b, n, 2))
    for _ in range(n):
        for j in (0, 1):
            other = 1 - j
            alpha[:, :, j] = harmonic * (
                (t[:, other, None] + big_t[:, None] + w) / caps[:, :, other]
                - t[:, j, None] / caps[:, :, j]
            )
        preferred = np.argmax(alpha, axis=2)  # (B, n)
        best_alpha = np.take_along_axis(alpha, preferred[:, :, None], axis=2)[:, :, 0]
        best_alpha[~remaining] = -np.inf
        pick = np.argmax(best_alpha, axis=1)  # (B,)
        link = preferred[rows, pick]
        sigma[rows, pick] = link
        t[rows, link] += w[rows, pick]
        big_t -= w[rows, pick]
        remaining[rows, pick] = False
    return sigma


def batch_asymmetric(batch: GameBatch, *, tol: float = 1e-12) -> np.ndarray:
    """Pure NE of ``B`` symmetric-users games in lockstep: ``(B, n)``.

    Users join one at a time (the same insertion round for every game);
    the defection chain of step 3(c) advances all unsettled games one
    move per inner iteration, each game following the link that just
    grew. Each slice reproduces
    :func:`repro.equilibria.symmetric.asymmetric` move for move,
    including the Lemma 3.4 move-budget guard.
    """
    _require_symmetric_users(batch.weights)
    if np.any(batch.initial_traffic > 0):
        raise AlgorithmDomainError("asymmetric does not support initial link traffic")
    b, n, m = batch.batch_size, batch.num_users, batch.num_links
    caps = batch.capacities
    counts = np.zeros((b, m))
    sigma = np.full((b, n), -1, dtype=np.intp)
    rows = np.arange(b)

    for user in range(n):
        link = np.argmin((counts + 1.0) / caps[:, user, :], axis=1)
        sigma[rows, user] = link
        counts[rows, link] += 1.0

        grown = link.copy()
        moves = np.zeros(b, dtype=np.int64)
        active = np.ones(b, dtype=bool)
        while active.any():
            idx = np.flatnonzero(active)
            a = idx.size
            arows = np.arange(a)
            grown_a = grown[idx]
            members = sigma[idx] == grown_a[:, None]  # (A, n); unplaced are -1
            caps_a = caps[idx]
            caps_grown = np.take_along_axis(
                caps_a, grown_a[:, None, None], axis=2
            )[:, :, 0]
            current = counts[idx, grown_a][:, None] / caps_grown  # (A, n)
            alt = (counts[idx][:, None, :] + 1.0) / caps_a  # (A, n, m)
            alt[arows[:, None], np.arange(n)[None, :], grown_a[:, None]] = np.inf
            best_alt = alt.min(axis=2)
            defect = members & (best_alt < current * (1.0 - tol))
            has_defector = defect.any(axis=1)

            settled = idx[~has_defector]
            if settled.size:
                active[settled] = False
                if not has_defector.any():
                    break
                act = idx[has_defector]
                sub = np.flatnonzero(has_defector)
                defect, alt = defect[sub], alt[sub]
                grown_act = grown_a[sub]
            else:
                act = idx
                grown_act = grown_a
            arows = np.arange(act.size)
            k = np.argmax(defect, axis=1)  # first defecting member
            new_link = np.argmin(alt[arows, k], axis=1)
            counts[act, grown_act] -= 1.0
            counts[act, new_link] += 1.0
            sigma[act, k] = new_link
            grown[act] = new_link
            moves[act] += 1
            if np.any(moves[act] > user + 1):
                raise SolverError(
                    "defection chain exceeded the theoretical bound of "
                    f"{user + 1} moves — numerical tolerance too loose?"
                )
    return sigma


def batch_auniform(batch: GameBatch) -> np.ndarray:
    """Pure NE of ``B`` uniform-beliefs games in lockstep: ``(B, n)``.

    The LPT-style greedy of Figure 3: every game processes its users in
    decreasing weight order (stable ties), one rank per round, placing
    the round's user on its least-loaded link. Each slice reproduces
    :func:`repro.equilibria.uniform.auniform` placement for placement.
    """
    caps = batch.capacities
    if not np.all(np.abs(caps - caps[:, :, :1]) <= 1e-9 * caps[:, :, :1]):
        raise AlgorithmDomainError(
            "auniform requires uniform user beliefs "
            "(each user's effective capacity equal on all links)"
        )
    b, n = batch.batch_size, batch.num_users
    w = batch.weights
    order = np.argsort(-w, axis=1, kind="stable")
    loads = batch.initial_traffic.copy()
    sigma = np.empty((b, n), dtype=np.intp)
    rows = np.arange(b)
    for rank in range(n):
        user = order[:, rank]
        wu = w[rows, user]
        cu = caps[rows, user, 0]
        link = np.argmin((wu[:, None] + loads) / cu[:, None], axis=1)
        sigma[rows, user] = link
        loads[rows, link] += wu
    return sigma
