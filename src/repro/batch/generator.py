"""Vectorised random generation of whole game batches.

:func:`random_game_batch` draws all ``B`` instances of a cell in a
handful of vectorised RNG calls — one ``(B, S, m)`` uniform block for
the state spaces, one ``(B, n, S)`` Dirichlet block for the beliefs, one
``(B, n)`` block for the weights — and reduces them to effective
capacities with a single einsum. This is the generator for large
exploratory sweeps (10k+ instances) where per-instance seed parity with
:func:`repro.generators.games.random_game` is not required; when it is
(the Conjecture 3.7 campaign), use :meth:`GameBatch.from_seeds` instead,
which replays the historical per-instance streams exactly.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.errors import ModelError
from repro.batch.container import GameBatch
from repro.util.rng import RandomState, as_generator

__all__ = ["random_game_batch"]

WeightKind = Literal["uniform", "exponential", "lognormal", "integer"]


def random_game_batch(
    batch_size: int,
    num_users: int,
    num_links: int,
    *,
    num_states: int = 4,
    concentration: float = 1.0,
    weight_kind: WeightKind = "uniform",
    cap_low: float = 0.5,
    cap_high: float = 4.0,
    with_initial_traffic: bool = False,
    seed: RandomState = None,
) -> GameBatch:
    """Draw ``batch_size`` generic instances in one vectorised RNG pass.

    Same distribution as :func:`repro.generators.games.random_game`
    (random state spaces, symmetric-Dirichlet beliefs, random weights),
    stacked straight into a :class:`GameBatch` without constructing any
    per-instance model objects.
    """
    if batch_size < 1:
        raise ModelError("batch_size must be >= 1")
    if num_users < 2 or num_links < 2:
        raise ModelError("the model requires n > 1 and m > 1")
    if num_states < 1:
        raise ModelError("num_states must be >= 1")
    if concentration <= 0:
        raise ModelError("concentration must be positive")
    if not (0 < cap_low < cap_high):
        raise ModelError("require 0 < cap_low < cap_high")
    rng = as_generator(seed)
    state_caps = rng.uniform(
        cap_low, cap_high, size=(batch_size, num_states, num_links)
    )
    beliefs = rng.dirichlet(
        np.full(num_states, concentration), size=(batch_size, num_users)
    )
    beliefs = np.clip(beliefs, 1e-15, None)
    beliefs /= beliefs.sum(axis=-1, keepdims=True)
    # c_eff[b, i, l] = 1 / sum_s beliefs[b, i, s] / state_caps[b, s, l]
    capacities = 1.0 / np.einsum("bis,bsl->bil", beliefs, 1.0 / state_caps)
    from repro.generators.games import random_weights

    weights = random_weights(
        num_users, kind=weight_kind, seed=rng, batch_size=batch_size
    )
    traffic = (
        rng.uniform(0.0, 2.0, size=(batch_size, num_links))
        if with_initial_traffic
        else None
    )
    return GameBatch(weights, capacities, initial_traffic=traffic)
