"""The :class:`GameBatch` container — B games stacked into dense tensors.

A batch holds ``B`` uncertain-routing games that share the same shape
``(n, m)`` but differ in weights, effective capacities and initial
traffic:

* ``weights``          — ``(B, n)``  traffic vectors;
* ``capacities``       — ``(B, n, m)`` reduced-form effective capacities;
* ``initial_traffic``  — ``(B, m)``  per-link pre-existing traffic.

Because every latency/equilibrium computation in the library is a
function of the reduced form alone (see :mod:`repro.model.game`), this is
a lossless representation for everything the batched kernels compute; a
single :class:`~repro.model.game.UncertainRoutingGame` is exactly the
``B = 1`` slice. :meth:`GameBatch.game` reconstructs the per-instance
game object when a single-game API is needed.
"""

from __future__ import annotations

from typing import Iterator, Literal, Sequence

import numpy as np

from repro.errors import DimensionError, ModelError
from repro.model.game import UncertainRoutingGame

__all__ = ["GameBatch"]

#: Mirrors ``repro.generators.games.WeightKind`` (imported lazily there
#: to keep the batch layer import-independent of the generator layer).
WeightKind = Literal["uniform", "exponential", "lognormal", "integer"]


def _dirichlet_effective_capacities(
    beliefs: np.ndarray, states: np.ndarray
) -> np.ndarray:
    """Reduce replayed Dirichlet beliefs to effective capacities.

    Mirrors the dirichlet_belief factory + Belief validation exactly:
    clip away exact zeros (maximum == one-sided clip), then normalise
    twice (the factory once, check_probability_vector once more), then
    take the belief-harmonic capacities. Every double operation here is
    parity-critical — the ``from_seeds*`` generators promise bit
    identity with the single-game generators, and "simplifying" the
    second normalisation breaks that contract. *beliefs* is modified in
    place.
    """
    np.maximum(beliefs, 1e-15, out=beliefs)
    beliefs /= beliefs.sum(axis=-1, keepdims=True)
    beliefs /= beliefs.sum(axis=-1, keepdims=True)
    return 1.0 / (beliefs @ (1.0 / states))


class GameBatch:
    """An immutable stack of ``B`` same-shape uncertain routing games."""

    __slots__ = ("_weights", "_capacities", "_initial_traffic")

    def __init__(
        self,
        weights: np.ndarray,
        capacities: np.ndarray,
        *,
        initial_traffic: np.ndarray | None = None,
    ) -> None:
        caps = np.array(capacities, dtype=np.float64, copy=True, order="C")
        w = np.array(weights, dtype=np.float64, copy=True, order="C")
        if caps.ndim != 3:
            raise DimensionError(
                f"capacities must have shape (B, n, m), got {caps.shape}"
            )
        b, n, m = caps.shape
        if w.shape != (b, n):
            raise DimensionError(f"weights must have shape ({b}, {n}), got {w.shape}")
        if b < 1:
            raise ModelError("a batch needs at least one game")
        if n < 2 or m < 2:
            raise ModelError(f"the model requires n > 1 and m > 1, got ({n}, {m})")
        for name, arr in (("weights", w), ("capacities", caps)):
            if not np.all(np.isfinite(arr)) or np.any(arr <= 0.0):
                raise ModelError(f"{name} must be finite and strictly positive")
        if initial_traffic is None:
            t = np.zeros((b, m))
        else:
            t = np.array(initial_traffic, dtype=np.float64, copy=True, order="C")
            if t.shape != (b, m):
                raise DimensionError(
                    f"initial_traffic must have shape ({b}, {m}), got {t.shape}"
                )
            if not np.all(np.isfinite(t)) or np.any(t < 0.0):
                raise ModelError("initial_traffic must be finite and non-negative")
        self._weights = w
        self._capacities = caps
        self._initial_traffic = t
        for arr in (self._weights, self._capacities, self._initial_traffic):
            arr.setflags(write=False)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_games(cls, games: Sequence[UncertainRoutingGame]) -> "GameBatch":
        """Stack existing game objects (all must share ``(n, m)``)."""
        games = list(games)
        if not games:
            raise ModelError("from_games needs at least one game")
        n, m = games[0].num_users, games[0].num_links
        for i, g in enumerate(games):
            if g.num_users != n or g.num_links != m:
                raise DimensionError(
                    f"game {i} has shape ({g.num_users}, {g.num_links}), "
                    f"batch has ({n}, {m})"
                )
        return cls(
            np.stack([g.weights for g in games]),
            np.stack([g.capacities for g in games]),
            initial_traffic=np.stack([g.initial_traffic for g in games]),
        )

    @classmethod
    def from_requests(
        cls, requests: Sequence
    ) -> "list[tuple[GameBatch, list[int]]]":
        """Stack heterogeneous-shape requests into per-shape sub-batches.

        *requests* is any sequence of objects exposing ``weights``
        ``(n,)``, ``capacities`` ``(n, m)`` and ``initial_traffic``
        ``(m,)`` arrays — service queries, games, or other batches'
        slices; shapes may differ between requests. Returns
        ``[(batch, indices), ...]`` where each batch stacks all the
        requests of one ``(n, m)`` shape (in arrival order) and
        ``indices`` maps its rows back to positions in *requests* —
        the grouping the service's dynamic batcher feeds to the
        ``(B, n, m)`` kernels, with groups emitted in first-appearance
        order so the split is deterministic.
        """
        requests = list(requests)
        if not requests:
            return []
        groups: dict[tuple[int, int], list[int]] = {}
        for index, request in enumerate(requests):
            caps = np.asarray(request.capacities, dtype=np.float64)
            if caps.ndim != 2:
                raise DimensionError(
                    f"request {index} capacities must be (n, m), "
                    f"got shape {caps.shape}"
                )
            groups.setdefault(caps.shape, []).append(index)
        out: list[tuple[GameBatch, list[int]]] = []
        for indices in groups.values():
            batch = cls(
                np.stack([requests[i].weights for i in indices]),
                np.stack([requests[i].capacities for i in indices]),
                initial_traffic=np.stack(
                    [requests[i].initial_traffic for i in indices]
                ),
            )
            out.append((batch, indices))
        return out

    @classmethod
    def from_seeds(
        cls,
        seeds: Sequence[int],
        num_users: int,
        num_links: int,
        *,
        num_states: int = 4,
        concentration: float = 1.0,
        weight_kind: WeightKind = "uniform",
        cap_low: float = 0.5,
        cap_high: float = 4.0,
        with_initial_traffic: bool = False,
    ) -> "GameBatch":
        """One game per seed, bit-identical to ``random_game(seed=s)``.

        Replays :func:`repro.generators.games.random_game`'s RNG draws
        (state capacities, per-user Dirichlet beliefs, weights) without
        constructing intermediate model objects, then stacks the reduced
        forms. ``GameBatch.from_seeds(seeds, ...).game(i)`` has exactly
        the same weights/capacities/traffic arrays as
        ``random_game(..., seed=seeds[i])`` — the campaign's determinism
        contract rests on this.
        """
        from repro.generators.games import random_weights

        if num_users < 2 or num_links < 2:
            raise ModelError("the model requires n > 1 and m > 1")
        if num_states < 1:
            raise ModelError("num_states must be >= 1")
        if concentration <= 0:
            raise ModelError("concentration must be positive")
        if not (0 < cap_low < cap_high):
            raise ModelError("require 0 < cap_low < cap_high")
        seeds = list(seeds)
        b = len(seeds)
        weights = np.empty((b, num_users))
        states = np.empty((b, num_states, num_links))
        beliefs = np.empty((b, num_users, num_states))
        traffic = np.zeros((b, num_links))
        alpha = np.full(num_states, concentration)
        # The loop holds only the RNG draws (stream order is the parity
        # contract); all arithmetic is vectorised over the stack below.
        for k, seed in enumerate(seeds):
            # Generator(PCG64(seed)) is stream-identical to
            # default_rng(seed) and measurably cheaper to construct,
            # which matters at thousands of instances per second.
            rng = np.random.Generator(np.random.PCG64(seed))
            states[k] = rng.uniform(cap_low, cap_high, size=(num_states, num_links))
            # One block draw consumes the stream exactly like the
            # per-user dirichlet_belief calls of random_game.
            beliefs[k] = rng.dirichlet(alpha, size=num_users)
            weights[k] = random_weights(num_users, kind=weight_kind, seed=rng)
            if with_initial_traffic:
                traffic[k] = rng.uniform(0.0, 2.0, size=num_links)
        caps = _dirichlet_effective_capacities(beliefs, states)
        return cls(
            weights,
            caps,
            initial_traffic=traffic if with_initial_traffic else None,
        )

    @classmethod
    def from_seeds_symmetric(
        cls,
        seeds: Sequence[int],
        num_users: int,
        num_links: int,
        *,
        weight: float = 1.0,
        num_states: int = 4,
        concentration: float = 1.0,
    ) -> "GameBatch":
        """One symmetric-users game per seed, bit-identical to
        ``random_symmetric_game(seed=s)``.

        Replays the generator's RNG draws (state capacities, per-user
        Dirichlet beliefs — the same two blocks as :meth:`from_seeds`,
        with no weight draw) and sets every weight to the common
        constant; the E2 and E6 ordinal-potential campaigns rest on this
        parity exactly as E5 rests on :meth:`from_seeds`.
        """
        if num_users < 2 or num_links < 2:
            raise ModelError("the model requires n > 1 and m > 1")
        if weight <= 0:
            raise ModelError("weight must be positive")
        if num_states < 1:
            raise ModelError("num_states must be >= 1")
        if concentration <= 0:
            raise ModelError("concentration must be positive")
        seeds = list(seeds)
        b = len(seeds)
        states = np.empty((b, num_states, num_links))
        beliefs = np.empty((b, num_users, num_states))
        alpha = np.full(num_states, concentration)
        for k, seed in enumerate(seeds):
            rng = np.random.Generator(np.random.PCG64(seed))
            states[k] = rng.uniform(0.5, 4.0, size=(num_states, num_links))
            beliefs[k] = rng.dirichlet(alpha, size=num_users)
        caps = _dirichlet_effective_capacities(beliefs, states)
        return cls(np.full((b, num_users), float(weight)), caps)

    @classmethod
    def from_seeds_kp(
        cls,
        seeds: Sequence[int],
        num_users: int,
        num_links: int,
        *,
        weight_kind: WeightKind = "uniform",
    ) -> "GameBatch":
        """One classic KP instance per seed, bit-identical to
        ``random_kp_game(seed=s)``.

        Replays the generator's draws (weights, then the shared link
        capacities) and the single-certain-state belief realisation —
        whose point-mass reduction is the ``1 / (1 / c)`` double
        reciprocal, not a float identity — replicated across users.
        """
        from repro.generators.games import random_weights

        if num_users < 2 or num_links < 2:
            raise ModelError("the model requires n > 1 and m > 1")
        seeds = list(seeds)
        b = len(seeds)
        weights = np.empty((b, num_users))
        link_caps = np.empty((b, num_links))
        for k, seed in enumerate(seeds):
            rng = np.random.Generator(np.random.PCG64(seed))
            weights[k] = random_weights(num_users, kind=weight_kind, seed=rng)
            link_caps[k] = rng.uniform(0.5, 4.0, size=num_links)
        caps = 1.0 / (1.0 / link_caps)
        return cls(weights, np.repeat(caps[:, None, :], num_users, axis=1))

    @classmethod
    def from_seeds_uniform_beliefs(
        cls,
        seeds: Sequence[int],
        num_users: int,
        num_links: int,
        *,
        weight_kind: WeightKind = "uniform",
        with_initial_traffic: bool = False,
    ) -> "GameBatch":
        """One uniform-beliefs game per seed, bit-identical to
        ``random_uniform_beliefs_game(seed=s)``.

        Replays the generator's RNG draws (weights, the per-user
        capacity constants, optional initial traffic) in stream order
        and stacks the replicated-column reduced forms; the E8/E10
        campaigns rest on this parity exactly as E5 rests on
        :meth:`from_seeds`.
        """
        from repro.generators.games import random_weights

        if num_users < 2 or num_links < 2:
            raise ModelError("the model requires n > 1 and m > 1")
        seeds = list(seeds)
        b = len(seeds)
        weights = np.empty((b, num_users))
        per_user = np.empty((b, num_users))
        traffic = np.zeros((b, num_links))
        for k, seed in enumerate(seeds):
            rng = np.random.Generator(np.random.PCG64(seed))
            weights[k] = random_weights(num_users, kind=weight_kind, seed=rng)
            per_user[k] = rng.uniform(0.5, 4.0, size=num_users)
            if with_initial_traffic:
                traffic[k] = rng.uniform(0.0, 2.0, size=num_links)
        caps = np.repeat(per_user[:, :, None], num_links, axis=2)
        # The generator routes its capacity matrix through
        # ``UncertainRoutingGame.from_capacities``, whose point-mass
        # belief realisation reduces back to ``1 / (1 / c)`` — not an
        # identity in floating point. Replay it for bit parity.
        caps = 1.0 / (1.0 / caps)
        return cls(
            weights,
            caps,
            initial_traffic=traffic if with_initial_traffic else None,
        )

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def batch_size(self) -> int:
        """``B`` — number of stacked games."""
        return self._capacities.shape[0]

    @property
    def num_users(self) -> int:
        """``n`` — users per game."""
        return self._capacities.shape[1]

    @property
    def num_links(self) -> int:
        """``m`` — links per game."""
        return self._capacities.shape[2]

    @property
    def weights(self) -> np.ndarray:
        """Read-only ``(B, n)`` traffic vectors."""
        return self._weights

    @property
    def capacities(self) -> np.ndarray:
        """Read-only ``(B, n, m)`` effective-capacity tensors."""
        return self._capacities

    @property
    def initial_traffic(self) -> np.ndarray:
        """Read-only ``(B, m)`` initial per-link traffic (zeros by default)."""
        return self._initial_traffic

    def game(self, index: int) -> UncertainRoutingGame:
        """Materialise game *index* as an :class:`UncertainRoutingGame`."""
        return UncertainRoutingGame.from_capacities(
            self._weights[index],
            self._capacities[index],
            initial_traffic=self._initial_traffic[index],
        )

    def subbatch(self, indices: Sequence[int] | np.ndarray) -> "GameBatch":
        """The batch restricted to *indices* (order kept)."""
        idx = np.asarray(indices, dtype=np.intp)
        return GameBatch(
            self._weights[idx],
            self._capacities[idx],
            initial_traffic=self._initial_traffic[idx],
        )

    def __len__(self) -> int:
        return self.batch_size

    def __iter__(self) -> Iterator[UncertainRoutingGame]:
        return (self.game(i) for i in range(self.batch_size))

    def __repr__(self) -> str:
        return (
            f"GameBatch(B={self.batch_size}, n={self.num_users}, "
            f"m={self.num_links})"
        )
