"""The Conjecture 3.7 simulation campaign (Section 3.2 / experiment E5).

The paper reports that "simulations ran on numerous instances of the game
(dealing with small number of users and links) suggest the existence of
pure NE". This module rebuilds that campaign at scale and with decidable
outcomes: every sampled instance is checked *exhaustively* (the grid keeps
``m^n`` small), so a single negative cell would be an actual
counterexample to Conjecture 3.7, not a convergence failure.

The campaign also records how pure NE are found in practice (how many
best-response steps a round-robin dynamic needs), which substantiates the
library's use of dynamics as the general-case solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.model.game import UncertainRoutingGame
from repro.equilibria.best_response import best_response_dynamics
from repro.equilibria.enumeration import count_pure_nash
from repro.generators.games import random_game
from repro.generators.suites import GridCell, conjecture_grid
from repro.util.rng import stable_seed
from repro.util.tables import Table

__all__ = ["CellResult", "CampaignResult", "run_conjecture_campaign"]


@dataclass(frozen=True)
class CellResult:
    """Aggregated outcome for one (n, m) grid cell."""

    num_users: int
    num_links: int
    instances: int
    with_pure_nash: int
    min_equilibria: int
    max_equilibria: int
    mean_equilibria: float
    mean_brd_steps: float
    brd_always_converged: bool

    @property
    def all_have_pure_nash(self) -> bool:
        return self.with_pure_nash == self.instances


@dataclass
class CampaignResult:
    """Full campaign outcome with table rendering."""

    cells: list[CellResult] = field(default_factory=list)

    @property
    def total_instances(self) -> int:
        return sum(c.instances for c in self.cells)

    @property
    def counterexamples(self) -> int:
        return sum(c.instances - c.with_pure_nash for c in self.cells)

    @property
    def conjecture_supported(self) -> bool:
        return self.counterexamples == 0

    def to_table(self) -> Table:
        table = Table(
            [
                "n", "m", "instances", "PNE found", "min#NE", "max#NE",
                "mean#NE", "mean BRD steps", "BRD converged",
            ],
            title="E5 — Conjecture 3.7 campaign (pure NE existence)",
        )
        for c in self.cells:
            table.add_row(
                [
                    c.num_users, c.num_links, c.instances, c.with_pure_nash,
                    c.min_equilibria, c.max_equilibria, c.mean_equilibria,
                    c.mean_brd_steps, "yes" if c.brd_always_converged else "NO",
                ]
            )
        return table


def _examine_instance(game: UncertainRoutingGame, seed: int) -> tuple[int, int, bool]:
    """(number of pure NE, BRD steps, BRD converged) for one instance."""
    count = count_pure_nash(game)
    result = best_response_dynamics(
        game, schedule="round_robin", max_steps=50_000, seed=seed
    )
    return count, result.steps, result.converged


def run_conjecture_campaign(
    grid: Sequence[GridCell] | None = None,
    *,
    concentration: float = 1.0,
    num_states: int = 4,
    label: str = "E5",
) -> CampaignResult:
    """Run the campaign over *grid* (default: the published E5 grid)."""
    cells = list(grid) if grid is not None else list(conjecture_grid())
    outcome = CampaignResult()
    for cell in cells:
        counts: list[int] = []
        steps: list[int] = []
        converged_all = True
        for rep in range(cell.replications):
            seed = stable_seed(label, cell.num_users, cell.num_links, rep)
            game = random_game(
                cell.num_users,
                cell.num_links,
                num_states=num_states,
                concentration=concentration,
                seed=seed,
            )
            count, brd_steps, converged = _examine_instance(game, seed)
            counts.append(count)
            steps.append(brd_steps)
            converged_all = converged_all and converged
        outcome.cells.append(
            CellResult(
                num_users=cell.num_users,
                num_links=cell.num_links,
                instances=cell.replications,
                with_pure_nash=sum(1 for c in counts if c > 0),
                min_equilibria=min(counts),
                max_equilibria=max(counts),
                mean_equilibria=sum(counts) / len(counts),
                mean_brd_steps=sum(steps) / len(steps),
                brd_always_converged=converged_all,
            )
        )
    return outcome
