"""The Conjecture 3.7 simulation campaign (Section 3.2 / experiment E5).

The paper reports that "simulations ran on numerous instances of the game
(dealing with small number of users and links) suggest the existence of
pure NE". This module rebuilds that campaign at scale and with decidable
outcomes: every sampled instance is checked *exhaustively* (the grid keeps
``m^n`` small), so a single negative cell would be an actual
counterexample to Conjecture 3.7, not a convergence failure.

The campaign also records how pure NE are found in practice (how many
best-response steps a round-robin dynamic needs), which substantiates the
library's use of dynamics as the general-case solver.

Execution model: each grid cell's replications are stacked into a
:class:`~repro.batch.container.GameBatch` and examined by the batched
kernels — one sweep decides pure-NE existence for the whole stack, one
lockstep run drives every instance's best-response dynamic. The sweep
itself is declared as a :class:`~repro.runtime.spec.SweepSpec`
(:func:`conjecture_sweep_spec`) and executed by the shared campaign
runtime (:func:`~repro.runtime.scheduler.run_sweep`): chunks of
replications (``batch_size``) can fan out over a process pool
(``jobs``), checkpoint to a result store and resume. Every
replication's instance and dynamics seed is derived independently via
:func:`~repro.util.rng.stable_seed`, so the results are bit-identical
regardless of batching, chunking, worker count or resume — and
identical to examining each instance with the single-game APIs in a
Python loop, which is exactly what this module did before the batch
engine existed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence, Union

from repro.batch.container import GameBatch
from repro.batch.dynamics import batch_best_response_dynamics
from repro.batch.kernels import batch_count_pure_nash
from repro.generators.suites import GridCell, conjecture_grid
from repro.runtime import ResultStore, SweepSpec, run_sweep
from repro.util.parallel import ReplicationChunk
from repro.util.tables import Table

__all__ = [
    "CellResult",
    "CampaignResult",
    "conjecture_sweep_spec",
    "run_conjecture_campaign",
]

#: Step budget for the per-instance best-response dynamic.
BRD_MAX_STEPS = 50_000


@dataclass(frozen=True)
class CellResult:
    """Aggregated outcome for one (n, m) grid cell."""

    num_users: int
    num_links: int
    instances: int
    with_pure_nash: int
    min_equilibria: int
    max_equilibria: int
    mean_equilibria: float
    mean_brd_steps: float
    brd_always_converged: bool

    @property
    def all_have_pure_nash(self) -> bool:
        return self.with_pure_nash == self.instances


@dataclass
class CampaignResult:
    """Full campaign outcome with table rendering."""

    cells: list[CellResult] = field(default_factory=list)

    @property
    def total_instances(self) -> int:
        return sum(c.instances for c in self.cells)

    @property
    def counterexamples(self) -> int:
        return sum(c.instances - c.with_pure_nash for c in self.cells)

    @property
    def conjecture_supported(self) -> bool:
        return self.counterexamples == 0

    def to_table(self) -> Table:
        table = Table(
            [
                "n", "m", "instances", "PNE found", "min#NE", "max#NE",
                "mean#NE", "mean BRD steps", "BRD converged",
            ],
            title="E5 — Conjecture 3.7 campaign (pure NE existence)",
        )
        for c in self.cells:
            table.add_row(
                [
                    c.num_users, c.num_links, c.instances, c.with_pure_nash,
                    c.min_equilibria, c.max_equilibria, c.mean_equilibria,
                    c.mean_brd_steps, "yes" if c.brd_always_converged else "NO",
                ]
            )
        return table


@dataclass(frozen=True)
class _CellChunk(ReplicationChunk):
    """The shared replication chunk plus the campaign's generator knobs."""

    num_states: int
    concentration: float


def _examine_chunk(chunk: _CellChunk) -> tuple[list[int], list[int], list[bool]]:
    """(pure-NE counts, BRD steps, BRD converged) for one replication chunk."""
    seeds = chunk.seeds()
    batch = GameBatch.from_seeds(
        seeds,
        chunk.num_users,
        chunk.num_links,
        num_states=chunk.num_states,
        concentration=chunk.concentration,
    )
    counts = batch_count_pure_nash(batch)
    dynamics = batch_best_response_dynamics(
        batch, schedule="round_robin", max_steps=BRD_MAX_STEPS, seeds=seeds
    )
    return (
        counts.tolist(),
        dynamics.steps.tolist(),
        dynamics.converged.tolist(),
    )


def conjecture_sweep_spec(
    cells: Sequence[GridCell],
    *,
    label: str = "E5",
    num_states: int = 4,
    concentration: float = 1.0,
) -> SweepSpec:
    """The campaign as a declarative spec for the shared runtime."""
    return SweepSpec(
        experiment=label,
        label=label,
        cells=tuple(cells),
        kernel=_examine_chunk,
        chunk_factory=_CellChunk,
        chunk_extra={"num_states": num_states, "concentration": concentration},
    )


def run_conjecture_campaign(
    grid: Sequence[GridCell] | None = None,
    *,
    concentration: float = 1.0,
    num_states: int = 4,
    label: str = "E5",
    jobs: int = 1,
    batch_size: int | None = None,
    seed: int | None = None,
    store: Union[ResultStore, str, Path, None] = None,
    resume: bool = False,
) -> CampaignResult:
    """Run the campaign over *grid* (default: the published E5 grid).

    Parameters
    ----------
    jobs:
        Worker processes for the chunk fan-out; ``1`` (default) runs
        inline, ``0`` uses every CPU.
    batch_size:
        Replications per :class:`GameBatch` chunk; ``None`` stacks each
        cell's full replication axis into one batch. Smaller chunks
        trade kernel width for process-pool granularity. Results do not
        depend on this value.
    seed:
        Optional global seed override, folded into the seed label by
        the runtime; ``None`` keeps the published baseline streams.
    store / resume:
        Chunk-level checkpointing — see
        :func:`repro.runtime.scheduler.run_sweep`.
    """
    cells = list(grid) if grid is not None else list(conjecture_grid())
    spec = conjecture_sweep_spec(
        cells, label=label, num_states=num_states, concentration=concentration
    )
    sweep = run_sweep(
        spec,
        jobs=jobs,
        batch_size=batch_size,
        seed=seed,
        store=store,
        resume=resume,
    )

    # One pass: chunk payloads arrive in submission order, so each
    # cell's replications concatenate back in rep order regardless of
    # jobs (and regardless of which chunks were resumed from the store).
    counts_by_cell: list[list[int]] = [[] for _ in cells]
    steps_by_cell: list[list[int]] = [[] for _ in cells]
    converged_by_cell: list[bool] = [True] * len(cells)
    for cell_index, result in zip(sweep.cell_of_chunk, sweep.chunk_payloads):
        chunk_counts, chunk_steps, chunk_converged = result
        counts_by_cell[cell_index].extend(chunk_counts)
        steps_by_cell[cell_index].extend(chunk_steps)
        converged_by_cell[cell_index] = converged_by_cell[cell_index] and all(
            chunk_converged
        )

    outcome = CampaignResult()
    for cell_index, cell in enumerate(cells):
        counts = counts_by_cell[cell_index]
        steps = steps_by_cell[cell_index]
        converged_all = converged_by_cell[cell_index]
        outcome.cells.append(
            CellResult(
                num_users=cell.num_users,
                num_links=cell.num_links,
                instances=cell.replications,
                with_pure_nash=sum(1 for c in counts if c > 0),
                min_equilibria=min(counts),
                max_equilibria=max(counts),
                mean_equilibria=sum(counts) / len(counts),
                mean_brd_steps=sum(steps) / len(steps),
                brd_always_converged=converged_all,
            )
        )
    return outcome
