"""Price of anarchy: the paper's upper bounds and empirical ratios.

Theorem 4.13 (uniform user beliefs) bounds both coordination ratios by

    (cmax / cmin) * (m + n - 1) / m,

and Theorem 4.14 (general case) by

    (cmax^2 / cmin) * (m + n - 1) / sum_j c^j_min,

with ``cmax``/``cmin`` extremes of the effective capacities over all
(user, link) pairs and ``c^j_min = min_i c^j_i``. Experiments E10/E11
sweep random games, compute the *exact* worst equilibrium ratio (over all
Nash equilibria found by enumeration, plus the fully mixed one when it
exists), and verify the bounds dominate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.model.game import UncertainRoutingGame
from repro.model.profiles import MixedProfile, PureProfile, pure_to_mixed
from repro.model.social import individual_costs, opt1, opt2
from repro.equilibria.enumeration import pure_nash_profiles
from repro.equilibria.fully_mixed import fully_mixed_candidate
from repro.generators.games import random_game, random_uniform_beliefs_game
from repro.generators.suites import GridCell
from repro.util.rng import stable_seed

__all__ = [
    "poa_bound_uniform",
    "poa_bound_general",
    "empirical_coordination_ratios",
    "PoAObservation",
    "poa_study",
]


def poa_bound_uniform(game: UncertainRoutingGame) -> float:
    """Theorem 4.13's upper bound (valid under uniform user beliefs)."""
    caps = game.capacities
    n, m = game.num_users, game.num_links
    return float(caps.max() / caps.min()) * (m + n - 1) / m


def poa_bound_general(game: UncertainRoutingGame) -> float:
    """Theorem 4.14's upper bound (valid for every game)."""
    caps = game.capacities
    n, m = game.num_users, game.num_links
    cmax = float(caps.max())
    cmin = float(caps.min())
    col_min_sum = float(caps.min(axis=0).sum())
    return (cmax**2 / cmin) * (m + n - 1) / col_min_sum


def empirical_coordination_ratios(
    game: UncertainRoutingGame,
    equilibria: Iterable[PureProfile | MixedProfile] | None = None,
) -> tuple[float, float]:
    """Worst ``(SC1/OPT1, SC2/OPT2)`` over the supplied equilibria.

    When *equilibria* is omitted, all pure NE (exhaustive) are used and
    the fully mixed NE is appended when it exists — per Theorems 4.11/4.12
    the fully mixed point is the maximiser, so including it makes the
    empirical ratio the true worst case whenever it exists.
    """
    if equilibria is None:
        eqs: list[PureProfile | MixedProfile] = list(pure_nash_profiles(game))
        fm = fully_mixed_candidate(game)
        if fm.exists:
            eqs.append(fm.profile())
    else:
        eqs = list(equilibria)
    if not eqs:
        raise ValueError("no equilibria supplied or found")
    o1, o2 = opt1(game), opt2(game)
    worst1 = worst2 = 0.0
    for eq in eqs:
        profile = (
            eq if isinstance(eq, MixedProfile) else pure_to_mixed(
                eq, game.num_users, game.num_links
            )
        )
        costs = individual_costs(game, profile)
        worst1 = max(worst1, float(costs.sum()) / o1)
        worst2 = max(worst2, float(costs.max()) / o2)
    return worst1, worst2


@dataclass(frozen=True)
class PoAObservation:
    """One instance's empirical ratios against the theorem bound."""

    num_users: int
    num_links: int
    ratio_sc1: float
    ratio_sc2: float
    bound: float
    num_equilibria: int

    @property
    def slack_sc1(self) -> float:
        """bound / ratio — how loose the theorem is on this instance."""
        return self.bound / self.ratio_sc1

    @property
    def slack_sc2(self) -> float:
        return self.bound / self.ratio_sc2

    def bound_holds(self) -> bool:
        return self.ratio_sc1 <= self.bound * (1 + 1e-9) and self.ratio_sc2 <= self.bound * (
            1 + 1e-9
        )


def poa_study(
    grid: Sequence[GridCell],
    *,
    uniform_beliefs: bool,
    label: str = "poa",
) -> list[PoAObservation]:
    """Sweep random games and record empirical ratio vs theorem bound.

    With ``uniform_beliefs=True`` instances come from the uniform-beliefs
    generator and the Theorem 4.13 bound applies; otherwise general games
    and Theorem 4.14.
    """
    observations: list[PoAObservation] = []
    for cell in grid:
        for rep in range(cell.replications):
            seed = stable_seed(label, cell.num_users, cell.num_links, rep)
            if uniform_beliefs:
                game = random_uniform_beliefs_game(
                    cell.num_users, cell.num_links, seed=seed
                )
                bound = poa_bound_uniform(game)
            else:
                game = random_game(cell.num_users, cell.num_links, seed=seed)
                bound = poa_bound_general(game)
            eqs: list[PureProfile | MixedProfile] = list(pure_nash_profiles(game))
            fm = fully_mixed_candidate(game)
            if fm.exists:
                eqs.append(fm.profile())
            if not eqs:  # pragma: no cover - would refute Conjecture 3.7
                continue
            r1, r2 = empirical_coordination_ratios(game, eqs)
            observations.append(
                PoAObservation(
                    num_users=cell.num_users,
                    num_links=cell.num_links,
                    ratio_sc1=r1,
                    ratio_sc2=r2,
                    bound=bound,
                    num_equilibria=len(eqs),
                )
            )
    return observations
