"""Price of anarchy: the paper's upper bounds and empirical ratios.

Theorem 4.13 (uniform user beliefs) bounds both coordination ratios by

    (cmax / cmin) * (m + n - 1) / m,

and Theorem 4.14 (general case) by

    (cmax^2 / cmin) * (m + n - 1) / sum_j c^j_min,

with ``cmax``/``cmin`` extremes of the effective capacities over all
(user, link) pairs and ``c^j_min = min_i c^j_i``. Experiments E10/E11
sweep random games, compute the *exact* worst equilibrium ratio (over all
Nash equilibria found by enumeration, plus the fully mixed one when it
exists), and verify the bounds dominate.

Execution model: the single-game functions here are ``B = 1`` views of
the batched kernels in :mod:`repro.batch.poa`; :func:`poa_study` stacks
each grid cell's replications into a
:class:`~repro.batch.container.GameBatch` and evaluates bounds, optima,
equilibria and ratios for the whole stack at once. The sweep is
declared as a :class:`~repro.runtime.spec.SweepSpec`
(:func:`poa_sweep_spec`) and executed by the shared campaign runtime:
chunks of replications (``batch_size``) can fan out over a process pool
(``jobs``), checkpoint to a result store and resume. Every
replication's seed is derived independently via
:func:`~repro.util.rng.stable_seed`, so the observations are
bit-identical regardless of batching, chunking or worker count — and
identical to examining each instance with the single-game APIs in a
Python loop, which is exactly what this module did before the batched
mixed engine existed (pinned by ``tests/data/mixed_seed_baseline.json``).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence, Union

import numpy as np

from repro.batch.container import GameBatch
from repro.batch.mixed import batch_min_expected_latencies
from repro.batch.poa import (
    batch_empirical_ratios,
    batch_poa_bound_general,
    batch_poa_bound_uniform,
)
from repro.equilibria.enumeration import pure_nash_profiles
from repro.equilibria.fully_mixed import fully_mixed_candidate
from repro.model.game import UncertainRoutingGame
from repro.model.profiles import MixedProfile, PureProfile, pure_to_mixed
from repro.model.social import opt1, opt2
from repro.generators.suites import GridCell
from repro.runtime import ResultStore, SweepSpec, run_sweep
from repro.util.parallel import ReplicationChunk

__all__ = [
    "poa_bound_uniform",
    "poa_bound_general",
    "empirical_coordination_ratios",
    "PoAObservation",
    "poa_sweep_spec",
    "poa_study",
]


def poa_bound_uniform(game: UncertainRoutingGame) -> float:
    """Theorem 4.13's upper bound (valid under uniform user beliefs).

    The ``B = 1`` view of :func:`repro.batch.poa.batch_poa_bound_uniform`.
    """
    return float(batch_poa_bound_uniform(game.capacities))


def poa_bound_general(game: UncertainRoutingGame) -> float:
    """Theorem 4.14's upper bound (valid for every game).

    The ``B = 1`` view of :func:`repro.batch.poa.batch_poa_bound_general`.
    """
    return float(batch_poa_bound_general(game.capacities))


def empirical_coordination_ratios(
    game: UncertainRoutingGame,
    equilibria: Iterable[PureProfile | MixedProfile] | None = None,
) -> tuple[float, float]:
    """Worst ``(SC1/OPT1, SC2/OPT2)`` over the supplied equilibria.

    When *equilibria* is omitted, all pure NE (exhaustive) are used and
    the fully mixed NE is appended when it exists — per Theorems 4.11/4.12
    the fully mixed point is the maximiser, so including it makes the
    empirical ratio the true worst case whenever it exists. That default
    path is the ``B = 1`` view of
    :func:`repro.batch.poa.batch_empirical_ratios` up to the exhaustive
    optimum's 200k-profile cutover; beyond it the equilibria are
    enumerated blockwise and the optima come from branch-and-bound,
    exactly as before the batched engine (whole-stack evaluation of a
    multi-million-profile sweep would trade the old bounded memory for
    nothing — a single game has no batching to amortise).
    """
    if equilibria is None:
        if game.num_links**game.num_users <= 200_000:
            batch = GameBatch(
                game.weights[None],
                game.capacities[None],
                initial_traffic=game.initial_traffic[None],
            )
            result = batch_empirical_ratios(batch)
            if int(result.num_equilibria[0]) == 0:
                raise ValueError("no equilibria supplied or found")
            return float(result.ratio_sc1[0]), float(result.ratio_sc2[0])
        eqs: list[PureProfile | MixedProfile] = list(pure_nash_profiles(game))
        fm = fully_mixed_candidate(game)
        if fm.exists:
            eqs.append(fm.profile())
        equilibria = eqs
    eqs = list(equilibria)
    if not eqs:
        raise ValueError("no equilibria supplied or found")
    matrices = np.stack(
        [
            eq.matrix
            if isinstance(eq, MixedProfile)
            else pure_to_mixed(eq, game.num_users, game.num_links).matrix
            for eq in eqs
        ]
    )
    costs = batch_min_expected_latencies(
        matrices, game.weights, game.capacities, game.initial_traffic
    )  # (E, n)
    o1, o2 = opt1(game), opt2(game)
    worst1 = max(0.0, float((costs.sum(axis=1) / o1).max()))
    worst2 = max(0.0, float((costs.max(axis=1) / o2).max()))
    return worst1, worst2


@dataclass(frozen=True)
class PoAObservation:
    """One instance's empirical ratios against the theorem bound."""

    num_users: int
    num_links: int
    ratio_sc1: float
    ratio_sc2: float
    bound: float
    num_equilibria: int

    @property
    def slack_sc1(self) -> float:
        """bound / ratio — how loose the theorem is on this instance."""
        return self.bound / self.ratio_sc1

    @property
    def slack_sc2(self) -> float:
        return self.bound / self.ratio_sc2

    def bound_holds(self) -> bool:
        return self.ratio_sc1 <= self.bound * (1 + 1e-9) and self.ratio_sc2 <= self.bound * (
            1 + 1e-9
        )


@dataclass(frozen=True)
class _PoAChunk(ReplicationChunk):
    """The shared replication chunk plus the study's generator switch."""

    uniform_beliefs: bool


def _examine_poa_chunk(
    chunk: _PoAChunk,
) -> tuple[list[float], list[float], list[float], list[int]]:
    """(bounds, SC1 ratios, SC2 ratios, equilibrium counts) for one chunk."""
    seeds = chunk.seeds()
    if chunk.uniform_beliefs:
        batch = GameBatch.from_seeds_uniform_beliefs(
            seeds, chunk.num_users, chunk.num_links
        )
        bounds = batch_poa_bound_uniform(batch.capacities)
    else:
        batch = GameBatch.from_seeds(seeds, chunk.num_users, chunk.num_links)
        bounds = batch_poa_bound_general(batch.capacities)
    ratios = batch_empirical_ratios(batch)
    return (
        bounds.tolist(),
        ratios.ratio_sc1.tolist(),
        ratios.ratio_sc2.tolist(),
        ratios.num_equilibria.tolist(),
    )


def poa_sweep_spec(
    cells: Sequence[GridCell],
    *,
    uniform_beliefs: bool,
    label: str = "poa",
) -> SweepSpec:
    """The PoA study as a declarative spec for the shared runtime."""
    return SweepSpec(
        experiment=label,
        label=label,
        cells=tuple(cells),
        kernel=_examine_poa_chunk,
        chunk_factory=_PoAChunk,
        chunk_extra={"uniform_beliefs": uniform_beliefs},
    )


def poa_study(
    grid: Sequence[GridCell],
    *,
    uniform_beliefs: bool,
    label: str = "poa",
    jobs: int = 1,
    batch_size: int | None = None,
    seed: int | None = None,
    store: Union[ResultStore, str, Path, None] = None,
    resume: bool = False,
) -> list[PoAObservation]:
    """Sweep random games and record empirical ratio vs theorem bound.

    With ``uniform_beliefs=True`` instances come from the uniform-beliefs
    generator and the Theorem 4.13 bound applies; otherwise general games
    and Theorem 4.14.

    Parameters
    ----------
    jobs:
        Worker processes for the chunk fan-out; ``1`` (default) runs
        inline, ``0`` uses every CPU.
    batch_size:
        Replications per :class:`GameBatch` chunk; ``None`` stacks each
        cell's full replication axis into one batch. Results do not
        depend on this value.
    seed:
        Optional global seed override folded into the seed label;
        ``None`` keeps the published baseline streams.
    store / resume:
        Chunk-level checkpointing — see
        :func:`repro.runtime.scheduler.run_sweep`.
    """
    cells = list(grid)
    spec = poa_sweep_spec(cells, uniform_beliefs=uniform_beliefs, label=label)
    sweep = run_sweep(
        spec,
        jobs=jobs,
        batch_size=batch_size,
        seed=seed,
        store=store,
        resume=resume,
    )

    observations: list[PoAObservation] = []
    for cell_index, result in zip(sweep.cell_of_chunk, sweep.chunk_payloads):
        cell = cells[cell_index]
        for bound, r1, r2, num_eqs in zip(*result):
            if num_eqs == 0:  # pragma: no cover - would refute Conjecture 3.7
                continue
            observations.append(
                PoAObservation(
                    num_users=cell.num_users,
                    num_links=cell.num_links,
                    ratio_sc1=r1,
                    ratio_sc2=r2,
                    bound=bound,
                    num_equilibria=num_eqs,
                )
            )
    return observations
