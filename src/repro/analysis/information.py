"""Value of information: what do better beliefs buy a selfish user?

The paper's model makes beliefs first-class but evaluates only
equilibrium structure. This extension quantifies the *economic* role of
beliefs, the question its introduction motivates (users "may have
different sources of information"):

For a focal user embedded in a fixed background population we compare
belief policies (truthful, stale, uniform, adversarial) by the user's
**objective expected latency** — the latency under the true state
distribution — at the pure NE the subjective game settles into.

This gives the reproduction a measurable "cost of misinformation" curve
(see ``examples/isp_uncertainty.py`` and the information benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.model.beliefs import Belief, BeliefProfile
from repro.model.game import UncertainRoutingGame
from repro.model.profiles import PureProfile, loads_of
from repro.model.state import StateSpace
from repro.equilibria.solve import solve_pure_nash
from repro.util.rng import RandomState, as_generator

__all__ = ["InformationStudy", "objective_latency", "run_information_study"]


def objective_latency(
    game: UncertainRoutingGame,
    profile: PureProfile,
    true_distribution: np.ndarray,
    user: int,
) -> float:
    """Expected latency of *user* under the TRUE state distribution.

    The subjective game fixes the assignment; the objective expectation
    re-weights the per-state latencies by *true_distribution* instead of
    the user's belief.
    """
    states = game.beliefs.states
    link = profile.link_of(user)
    loads = loads_of(
        profile.links, game.weights, game.num_links, game.initial_traffic
    )
    inv = float(true_distribution @ (1.0 / states.capacities[:, link]))
    return float(loads[link]) * inv


@dataclass(frozen=True)
class InformationStudy:
    """Mean objective latency per belief policy."""

    policies: tuple[str, ...]
    mean_latency: Mapping[str, float]
    rounds: int

    def advantage_of(self, better: str, worse: str) -> float:
        """Relative latency saving of policy *better* over *worse*."""
        return 1.0 - self.mean_latency[better] / self.mean_latency[worse]


def run_information_study(
    states: StateSpace,
    true_distribution: Sequence[float] | np.ndarray,
    policies: Mapping[str, Belief],
    *,
    background_users: int = 5,
    background_accuracy: float = 25.0,
    rounds: int = 100,
    focal_weight: float = 1.0,
    seed: RandomState = 0,
) -> InformationStudy:
    """Compare belief *policies* for a focal user against a shared crowd.

    Each round draws one background population (weights and noisy beliefs
    concentrated around the truth with *background_accuracy*); every
    policy plays the focal seat against the *same* crowd, so differences
    in objective latency isolate information quality.
    """
    rng = as_generator(seed)
    truth = np.asarray(true_distribution, dtype=np.float64)
    if truth.shape != (states.num_states,):
        raise ValueError("true_distribution must cover every state")
    totals = {name: 0.0 for name in policies}
    for _ in range(rounds):
        crowd_seed = int(rng.integers(2**62))
        crowd_rng = np.random.default_rng(crowd_seed)
        crowd_beliefs = [
            crowd_rng.dirichlet(truth * background_accuracy + 1e-9)
            for _ in range(background_users)
        ]
        crowd_weights = crowd_rng.uniform(0.5, 2.0, size=background_users)
        for name, belief in policies.items():
            rows = np.vstack([belief.probabilities] + crowd_beliefs)
            profile_beliefs = BeliefProfile.from_matrix(states, rows)
            weights = np.concatenate([[focal_weight], crowd_weights])
            game = UncertainRoutingGame(weights, profile_beliefs)
            equilibrium, _ = solve_pure_nash(game, seed=crowd_seed)
            totals[name] += objective_latency(game, equilibrium, truth, user=0)
    return InformationStudy(
        policies=tuple(policies),
        mean_latency={name: totals[name] / rounds for name in policies},
        rounds=rounds,
    )
