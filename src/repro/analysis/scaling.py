"""Empirical complexity fits for the paper's algorithms (E1-E3).

The paper states O(n^2) for ``Atwolinks``, O(n^2 m) for ``Asymmetric``
and O(n(log n + m)) for ``Auniform``. This module times the
implementations over geometric size grids and fits growth exponents by
log-log least squares. Exponents are *upper-bounded* by the theory —
vectorisation can make measured exponents lower (e.g. ``Atwolinks``'s
inner tolerance pass is a NumPy kernel, so the measured curve sits
between O(n) and O(n^2) until n is large) — so the acceptance criterion
is "measured exponent <= stated exponent + tolerance".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.equilibria.symmetric import asymmetric
from repro.equilibria.two_links import atwolinks
from repro.equilibria.uniform import auniform
from repro.generators.games import (
    random_symmetric_game,
    random_two_link_game,
    random_uniform_beliefs_game,
)
from repro.generators.suites import scaling_sizes
from repro.util.rng import stable_seed
from repro.util.timing import ScalingFit, fit_power_law, time_callable

__all__ = ["ScalingObservation", "measure_scaling", "THEORETICAL_EXPONENTS"]

#: The paper's stated complexity exponents in n (m fixed).
THEORETICAL_EXPONENTS = {
    "atwolinks": 2.0,  # O(n^2)
    "asymmetric": 2.0,  # O(n^2 m), m held constant
    "auniform": 1.2,  # O(n log n) ~ slightly superlinear, m held constant
}


@dataclass(frozen=True)
class ScalingObservation:
    """Measured (size, seconds) pairs plus the fitted exponent."""

    algorithm: str
    sizes: tuple[int, ...]
    seconds: tuple[float, ...]
    fit: ScalingFit

    @property
    def exponent(self) -> float:
        return self.fit.exponent

    def within_theory(self, *, slack: float = 0.35) -> bool:
        """Measured growth must not exceed the stated complexity class."""
        return self.exponent <= THEORETICAL_EXPONENTS[self.algorithm] + slack


def _solver_for(algorithm: str, num_links: int) -> Callable[[int, int], object]:
    if algorithm == "atwolinks":
        return lambda n, rep: atwolinks(
            random_two_link_game(
                n, with_initial_traffic=True, seed=stable_seed("scal", algorithm, n, rep)
            )
        )
    if algorithm == "asymmetric":
        return lambda n, rep: asymmetric(
            random_symmetric_game(
                n, num_links, seed=stable_seed("scal", algorithm, n, rep)
            )
        )
    if algorithm == "auniform":
        return lambda n, rep: auniform(
            random_uniform_beliefs_game(
                n, num_links, seed=stable_seed("scal", algorithm, n, rep)
            )
        )
    raise KeyError(f"unknown algorithm {algorithm!r}")


def measure_scaling(
    algorithm: str,
    *,
    sizes: Sequence[int] | None = None,
    num_links: int = 4,
    repeats: int = 3,
) -> ScalingObservation:
    """Time *algorithm* across *sizes* users and fit a power law."""
    sizes = list(sizes) if sizes is not None else scaling_sizes(algorithm)
    solver = _solver_for(algorithm, num_links)
    seconds = []
    for n in sizes:
        best = time_callable(lambda: solver(n, 0), repeats=repeats)
        seconds.append(best)
    fit = fit_power_law(sizes, seconds)
    return ScalingObservation(
        algorithm=algorithm,
        sizes=tuple(sizes),
        seconds=tuple(seconds),
        fit=fit,
    )
