"""Improvement-cycle realisability analysis (Section 3.2's negative side).

The paper reports (B. Monien, personal communication [19]) that some
instance's state space contains an improvement cycle, so the game is not
an ordinal potential game. The instance itself is not reprinted, so this
module provides the machinery to *search* for one, exactly:

A cyclic sequence of unilateral moves fixes, for each participating user,
difference constraints on log effective capacities: moving user ``i``
from link ``a`` to ``b`` while the origin load (mover included) is
``L_old`` and the arrival load (mover included) is ``L_new`` strictly
improves iff

    log C[i,b] - log C[i,a] > log(L_new / L_old).

Summing a user's constraints around each loop of its own moves makes the
capacity terms telescope away, so the cycle is realisable by *some*
capacity matrix iff every such loop has negative total log-load-ratio —
checked exactly by :func:`realize_cycle`, which also reconstructs a
witness capacity matrix by longest-path labelling when feasible.

Two structural facts the library establishes with this machinery:

* for **equal weights** no improvement cycle exists at all (the ordinal
  potential of :func:`repro.equilibria.potential.ordinal_potential_symmetric`);
* for (n=3, m=3) **every simple cycle of length <= 6 is unrealisable**
  regardless of the capacity matrix (checked against the per-user loop
  criterion over weight draws; see experiment E6) — Monien's cycle needs
  longer loops, more users, or initial traffic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

import networkx as nx
import numpy as np

from repro.batch.container import GameBatch
from repro.batch.pure import batch_response_cycle_census
from repro.model.game import UncertainRoutingGame
from repro.equilibria.game_graph import better_response_graph, find_response_cycle
from repro.util.rng import RandomState, as_generator

__all__ = [
    "CycleSearchResult",
    "realize_cycle",
    "abstract_move_graph",
    "response_cycle_census",
    "search_improvement_cycle_instance",
]


def response_cycle_census(
    games: Sequence[UncertainRoutingGame] | GameBatch,
    *,
    kind: str = "better",
    tol: float = 1e-9,
) -> np.ndarray:
    """Per-game response-cycle verdicts for a stack of same-shape games.

    The census half of this module: instead of materialising one
    :class:`networkx.DiGraph` per instance, the whole stack's
    best-/better-response edges are extracted vectorised and peeled by
    one Kahn pass (:func:`repro.batch.pure.batch_response_cycle_census`);
    a single game is just the ``B = 1`` slice. Returns ``(B,)`` bools —
    ``True`` where the instance contains a response cycle, i.e. (for
    ``kind="better"``) where it cannot admit an ordinal potential.
    """
    batch = games if isinstance(games, GameBatch) else GameBatch.from_games(games)
    return batch_response_cycle_census(batch, kind=kind, tol=tol)  # type: ignore[arg-type]


def abstract_move_graph(num_users: int, num_links: int) -> nx.DiGraph:
    """All pure states with an edge for every unilateral move."""
    g = nx.DiGraph()
    for state in itertools.product(range(num_links), repeat=num_users):
        for user in range(num_users):
            for link in range(num_links):
                if link == state[user]:
                    continue
                succ = list(state)
                succ[user] = link
                g.add_edge(state, tuple(succ))
    return g


def realize_cycle(
    states: Sequence[tuple[int, ...]],
    weights: Sequence[float] | np.ndarray,
    num_links: int,
    *,
    margin: float = 0.05,
) -> np.ndarray | None:
    """Capacities making *states* a better-response cycle, or ``None``.

    *states* must be a closed walk (``states[0] == states[-1]``) whose
    consecutive entries differ in exactly one coordinate. The returned
    ``(n, m)`` matrix realises every move as a strict improvement; ``None``
    means the cycle is unrealisable for these weights (the exact loop
    criterion failed).
    """
    w = np.asarray(weights, dtype=np.float64)
    n = w.size
    if len(states) < 3 or states[0] != states[-1]:
        return None
    gaps: dict[int, list[tuple[int, int, float]]] = {i: [] for i in range(n)}
    for s, t in zip(states, states[1:]):
        diff = [k for k in range(n) if s[k] != t[k]]
        if len(diff) != 1:
            return None
        user = diff[0]
        a, b = s[user], t[user]
        loads = np.bincount(s, weights=w, minlength=num_links)
        gaps[user].append(
            (a, b, float(np.log((loads[b] + w[user]) / loads[a])))
        )

    caps = np.ones((n, num_links))
    neg_inf = -np.inf
    for i in range(n):
        if not gaps[i]:
            continue
        # Dense max-plus adjacency: weight[a, b] = required log-capacity gap.
        weight = np.full((num_links, num_links), neg_inf)
        for a, b, c in gaps[i]:
            weight[a, b] = max(weight[a, b], c)
        # Exact criterion: every directed loop must have strictly negative
        # total. Max-plus Floyd-Warshall finds the heaviest closed walk;
        # any diagonal >= 0 certifies a non-negative loop.
        dist = weight.copy()
        for k in range(num_links):
            dist = np.maximum(dist, dist[:, k : k + 1] + dist[k : k + 1, :])
        if np.any(np.diag(dist) >= -1e-12):
            return None
        # Longest-path labelling with a strict margin realises the strict
        # inequalities; Bellman-Ford style relaxation terminates because
        # all loops are negative.
        x = np.zeros(num_links)
        edges = [(a, b, c) for a, b, c in gaps[i]]
        for _ in range(num_links + 2):
            changed = False
            for a, b, c in edges:
                need = x[a] + c + margin
                if x[b] < need:
                    x[b] = need
                    changed = True
            if not changed:
                break
        else:  # pragma: no cover - negative loops guarantee termination
            return None
        caps[i] = np.exp(x)
    return caps


@dataclass(frozen=True)
class CycleSearchResult:
    """Outcome of an improvement-cycle search."""

    found: bool
    cycles_tested: int
    game: UncertainRoutingGame | None = None
    cycle: list[tuple[int, ...]] | None = None


def search_improvement_cycle_instance(
    num_users: int = 3,
    num_links: int = 3,
    *,
    max_cycle_length: int = 6,
    weight_draws: int = 12,
    max_cycles: int = 50_000,
    seed: RandomState = 0,
) -> CycleSearchResult:
    """Exhaustively test short move cycles for realisability.

    Enumerates simple cycles of the abstract move graph up to
    *max_cycle_length* and tries to realise each with *weight_draws*
    sampled weight vectors (equal weights are skipped — provably
    unrealisable). Returns the first realised instance, verified against
    the actual better-response graph.
    """
    rng = as_generator(seed)
    draws = [rng.uniform(0.2, 5.0, size=num_users) for _ in range(weight_draws)]
    graph = abstract_move_graph(num_users, num_links)
    tested = 0
    for cyc in nx.simple_cycles(graph, length_bound=max_cycle_length):
        tested += 1
        if tested > max_cycles:
            break
        states = list(cyc) + [cyc[0]]
        for w in draws:
            caps = realize_cycle(states, w, num_links)
            if caps is None:
                continue
            game = UncertainRoutingGame.from_capacities(w, caps)
            # The batched census decides cycle existence without building
            # a graph; the (rare) hit then materialises the graph once to
            # extract an explicit witness walk.
            if not response_cycle_census([game], kind="better")[0]:
                continue
            witness = find_response_cycle(better_response_graph(game))
            if witness is not None:  # pragma: no branch - census said so
                return CycleSearchResult(
                    found=True, cycles_tested=tested, game=game, cycle=witness
                )
    return CycleSearchResult(found=False, cycles_tested=tested)
