"""Analysis layer: price-of-anarchy bounds, worst-case equilibria,
the conjecture campaign and empirical complexity fits."""

from repro.analysis.conjecture import CampaignResult, run_conjecture_campaign
from repro.analysis.cycles import (
    CycleSearchResult,
    realize_cycle,
    search_improvement_cycle_instance,
)
from repro.analysis.information import (
    InformationStudy,
    objective_latency,
    run_information_study,
)
from repro.analysis.poa import (
    PoAObservation,
    empirical_coordination_ratios,
    poa_bound_general,
    poa_bound_uniform,
    poa_study,
)
from repro.analysis.scaling import ScalingObservation, measure_scaling
from repro.analysis.worst_case import DominanceReport, verify_fmne_dominance

__all__ = [
    "CampaignResult",
    "run_conjecture_campaign",
    "CycleSearchResult",
    "realize_cycle",
    "search_improvement_cycle_instance",
    "InformationStudy",
    "objective_latency",
    "run_information_study",
    "PoAObservation",
    "empirical_coordination_ratios",
    "poa_bound_general",
    "poa_bound_uniform",
    "poa_study",
    "ScalingObservation",
    "measure_scaling",
    "DominanceReport",
    "verify_fmne_dominance",
]
