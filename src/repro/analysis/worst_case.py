"""Worst-case equilibrium analysis (Lemma 4.9, Theorems 4.11/4.12).

The paper's strongest Section 4 result is *per-user dominance*: for every
Nash equilibrium ``P`` and every user ``i``,

    lambda_{i, b_i}(P)  <=  lambda_{i, b_i}(F)

where ``F`` is the fully mixed NE (or, by Corollary 4.10, the closed-form
pseudo-profile of Remark 4.4 when no fully mixed NE exists). Summing or
maximising over users yields that ``F`` maximises SC1 and SC2.

:func:`verify_fmne_dominance` makes the claim checkable on an instance:
it enumerates *all* equilibria of a small game (support enumeration) and
compares each user's latency against the fully mixed value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.model.game import UncertainRoutingGame
from repro.model.latency import min_expected_latencies
from repro.model.profiles import MixedProfile
from repro.model.social import sc1, sc2
from repro.equilibria.fully_mixed import fully_mixed_candidate
from repro.equilibria.support_enum import enumerate_mixed_nash

__all__ = ["DominanceReport", "verify_fmne_dominance", "fmne_reference_latencies"]


def fmne_reference_latencies(game: UncertainRoutingGame) -> np.ndarray:
    """The per-user latencies of the fully mixed candidate.

    Lemma 4.1's closed form — valid as the dominance reference even when
    the candidate leaves the simplex (Corollary 4.10).
    """
    return fully_mixed_candidate(game).latencies


@dataclass
class DominanceReport:
    """Outcome of a per-instance FMNE-dominance verification."""

    game: UncertainRoutingGame
    fmne_exists: bool
    reference_latencies: np.ndarray
    equilibria: list[MixedProfile] = field(default_factory=list)
    violations: list[tuple[int, int, float]] = field(default_factory=list)
    """(equilibrium index, user, excess) triples where dominance failed."""

    @property
    def holds(self) -> bool:
        return not self.violations

    @property
    def sc1_values(self) -> list[float]:
        return [sc1(self.game, eq) for eq in self.equilibria]

    @property
    def sc2_values(self) -> list[float]:
        return [sc2(self.game, eq) for eq in self.equilibria]

    def fmne_sc1(self) -> float:
        """SC1 at the reference (sum of Lemma 4.1 latencies)."""
        return float(self.reference_latencies.sum())

    def fmne_sc2(self) -> float:
        """SC2 at the reference (max of Lemma 4.1 latencies)."""
        return float(self.reference_latencies.max())


def verify_fmne_dominance(
    game: UncertainRoutingGame, *, rtol: float = 1e-7
) -> DominanceReport:
    """Check Lemma 4.9 against every equilibrium of a small game.

    Enumerates all Nash equilibria by support enumeration, then asserts
    per-user dominance by the fully mixed reference latencies. Any
    violation is recorded with its magnitude; an empty ``violations`` list
    verifies Lemma 4.9 (and hence Theorems 4.11/4.12) on the instance.
    """
    candidate = fully_mixed_candidate(game)
    reference = candidate.latencies
    equilibria = enumerate_mixed_nash(game)
    report = DominanceReport(
        game=game,
        fmne_exists=candidate.exists,
        reference_latencies=reference,
        equilibria=equilibria,
    )
    for idx, eq in enumerate(equilibria):
        lat = min_expected_latencies(game, eq)
        excess = lat - reference
        scale = np.maximum(np.abs(reference), 1.0)
        bad = np.flatnonzero(excess > rtol * scale)
        for user in bad:
            report.violations.append((idx, int(user), float(excess[user])))
    return report
