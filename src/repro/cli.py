"""Command-line interface: ``python -m repro`` / ``repro-experiments``.

Subcommands:

* ``list``               — show the experiment registry;
* ``run E5 [E7 ...]``    — run experiments by id (``all`` for everything);
* ``--quick``            — reduced replication counts for smoke runs.

Output is the same ASCII tables EXPERIMENTS.md records, plus an overall
verdict; the process exit code is non-zero when any experiment fails,
making the CLI usable as a reproduction gate in CI.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["main", "build_parser"]


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduction harness for 'Network Uncertainty in Selfish "
            "Routing' (IPPS 2006)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the experiment registry")

    run_p = sub.add_parser("run", help="run experiments by id")
    run_p.add_argument(
        "ids",
        nargs="+",
        help="experiment ids (E1..E12) or 'all'",
    )
    run_p.add_argument(
        "--quick",
        action="store_true",
        help="reduced replication counts (smoke mode)",
    )
    run_p.add_argument(
        "--jobs",
        type=_non_negative_int,
        default=1,
        help="worker processes for batched campaigns (0 = all CPUs)",
    )
    run_p.add_argument(
        "--batch-size",
        type=_positive_int,
        default=None,
        help="instances per GameBatch chunk (default: one batch per cell)",
    )

    report_p = sub.add_parser(
        "report", help="run all experiments and write EXPERIMENTS.md"
    )
    report_p.add_argument(
        "-o", "--output", default="EXPERIMENTS.md", help="output markdown path"
    )
    report_p.add_argument(
        "--quick", action="store_true", help="reduced replication counts"
    )
    report_p.add_argument(
        "--ids", nargs="*", default=None, help="subset of experiment ids"
    )
    report_p.add_argument(
        "--jobs",
        type=_non_negative_int,
        default=1,
        help="worker processes for batched campaigns (0 = all CPUs)",
    )
    report_p.add_argument(
        "--batch-size",
        type=_positive_int,
        default=None,
        help="instances per GameBatch chunk (default: one batch per cell)",
    )
    return parser


def _cmd_list() -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for key, (title, _) in EXPERIMENTS.items():
        print(f"{key.ljust(width)}  {title}")
    return 0


def _cmd_run(
    ids: Sequence[str],
    quick: bool,
    jobs: int = 1,
    batch_size: int | None = None,
) -> int:
    if any(x.lower() == "all" for x in ids):
        ids = list(EXPERIMENTS)
    failures = 0
    for experiment_id in ids:
        start = time.perf_counter()
        result = run_experiment(
            experiment_id, quick=quick, jobs=jobs, batch_size=batch_size
        )
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"(elapsed: {elapsed:.2f}s)\n")
        if not result.passed:
            failures += 1
    if failures:
        print(f"{failures} experiment(s) FAILED", file=sys.stderr)
        return 1
    print("all experiments passed")
    return 0


def _cmd_report(
    output: str,
    quick: bool,
    ids: Sequence[str] | None,
    jobs: int = 1,
    batch_size: int | None = None,
) -> int:
    from repro.experiments.report import render_markdown, run_all

    run = run_all(quick=quick, ids=ids, jobs=jobs, batch_size=batch_size)
    text = render_markdown(run, quick=quick)
    with open(output, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    print(f"wrote {output} ({len(run.results)} experiments, "
          f"{'all passed' if run.all_passed else 'FAILURES PRESENT'})")
    return 0 if run.all_passed else 1


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.ids, args.quick, args.jobs, args.batch_size)
    if args.command == "report":
        return _cmd_report(
            args.output, args.quick, args.ids, args.jobs, args.batch_size
        )
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
