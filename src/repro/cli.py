"""Command-line interface: ``python -m repro`` / ``repro-experiments``.

Subcommands:

* ``list``               — show the experiment registry;
* ``run E5 [E7 ...]``    — run experiments by id (``all`` for everything;
  duplicates are collapsed, first occurrence wins);
* ``report``             — run experiments and write EXPERIMENTS.md;
* ``merge``              — combine shard stores into one canonical
  store (see ``docs/STORE_FORMAT.md``);
* ``digest``             — print a store's canonical-record digest,
  the store-level identity check sharding is gated on;
* ``serve``              — the equilibrium query service (JSON lines
  over TCP, dynamic batching, content-addressed cache; see
  :mod:`repro.service`);
* ``--quick``            — reduced replication counts for smoke runs;
* ``--jobs/--batch-size``— process-pool fan-out for the campaign runtime;
* ``--seed``             — global seed override threaded through the
  runtime's seed policy (omit for the published baseline streams);
* ``--store/--resume``   — append-only JSONL result store with
  chunk-level checkpoint/resume;
* ``--shard k/K``        — execute only shard ``k`` of ``K`` (requires
  ``--store``; writes ``<stem>.shard-k<suffix>``): the scale-out path —
  run the K shards on any hosts in any order, ``merge`` their stores,
  then replay verdicts from the merged store with ``run/report
  --store ... --resume``;
* ``--backend``          — array backend for the batch kernels (numpy
  reference, numba JIT, optional GPU backends; also exported through
  ``REPRO_BACKEND`` so process-pool workers inherit it).

Output is the same ASCII tables EXPERIMENTS.md records, plus an overall
verdict; the process exit code is non-zero when any experiment fails,
making the CLI usable as a reproduction gate in CI.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["main", "build_parser", "expand_ids"]


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _shard_plan(text: str):
    from repro.runtime import ShardPlan

    try:
        return ShardPlan.parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def expand_ids(ids: Sequence[str]) -> list[str]:
    """Normalise a CLI id list: expand ``all``, uppercase, deduplicate.

    ``all`` expands in place to the full registry; duplicates (including
    case variants like ``e5``/``E5``, and ids repeated through ``all``)
    collapse onto their first occurrence, so ``run E5 E5 all`` runs E5
    once, first, followed by the remaining eleven experiments.
    """
    expanded: list[str] = []
    for raw in ids:
        if raw.lower() == "all":
            expanded.extend(EXPERIMENTS)
        else:
            expanded.append(raw.upper())
    seen: set[str] = set()
    ordered: list[str] = []
    for key in expanded:
        if key not in seen:
            seen.add(key)
            ordered.append(key)
    return ordered


def _add_backend_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="array backend for the batch kernels (e.g. numpy, numba); "
             "default: $REPRO_BACKEND or numpy",
    )


def _select_backend(name: str | None, parser: argparse.ArgumentParser) -> None:
    """Activate ``--backend`` (and propagate it to worker processes)."""
    if name is None:
        return
    import os

    from repro.batch.backend import ENV_VAR, set_backend
    from repro.errors import BackendError

    try:
        set_backend(name)
    except BackendError as exc:
        parser.error(str(exc))
    # Process-pool campaign workers resolve the backend from the
    # environment; exporting keeps their choice in lockstep with ours.
    os.environ[ENV_VAR] = name


def _add_runtime_flags(
    parser: argparse.ArgumentParser, *, shard: bool = False
) -> None:
    """The campaign-runtime flags shared by ``run`` and ``report``.

    ``--shard`` is run-only: a shard computes a store, not a verdict
    (verdicts need every cell's payloads — replay them from the merged
    store with ``run``/``report`` ``--store ... --resume``).
    """
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced replication counts (smoke mode)",
    )
    parser.add_argument(
        "--jobs",
        type=_non_negative_int,
        default=1,
        help="worker processes for batched campaigns (0 = all CPUs)",
    )
    parser.add_argument(
        "--batch-size",
        type=_positive_int,
        default=None,
        help="instances per GameBatch chunk (default: one batch per cell)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="global seed override folded into every experiment's seed "
             "policy (default: the published baseline streams)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="append-only JSONL result store; every completed chunk is "
             "checkpointed into it",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip chunks already present in --store (requires --store)",
    )
    if shard:
        parser.add_argument(
            "--shard",
            type=_shard_plan,
            default=None,
            metavar="k/K",
            help="execute only shard k of K (round-robin over canonical "
                 "chunk order; requires --store and writes to "
                 "<stem>.shard-k<suffix> next to it); combine completed "
                 "shards with the merge subcommand",
        )
    _add_backend_flag(parser)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduction harness for 'Network Uncertainty in Selfish "
            "Routing' (IPPS 2006)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the experiment registry")

    run_p = sub.add_parser("run", help="run experiments by id")
    run_p.add_argument(
        "ids",
        nargs="+",
        help="experiment ids (E1..E13) or 'all'; duplicates collapse",
    )
    _add_runtime_flags(run_p, shard=True)

    merge_p = sub.add_parser(
        "merge",
        help="merge shard stores into one canonical store",
        description=(
            "Combine the shard stores of a sharded campaign "
            "(<stem>.shard-<k><suffix>, as written by run --shard) into "
            "one canonical store, in any shard completion order. "
            "Duplicate chunks with canonically equal records collapse; "
            "disagreeing records abort the merge. Prints the merged "
            "store's canonical-record digest — compare it against the "
            "single-host store's (see the digest subcommand)."
        ),
    )
    merge_p.add_argument(
        "--store",
        required=True,
        metavar="PATH",
        help="the merged store to write; shard files are discovered "
             "next to it by name unless --shards is given",
    )
    merge_p.add_argument(
        "--shards",
        nargs="+",
        default=None,
        metavar="PATH",
        help="explicit shard store files, in shard-index order "
             "(default: discover <stem>.shard-<k><suffix> siblings)",
    )
    merge_p.add_argument(
        "--force",
        action="store_true",
        help="overwrite an existing non-empty destination store",
    )

    digest_p = sub.add_parser(
        "digest",
        help="print a store's canonical-record digest",
        description=(
            "Print the SHA-256 canonical-record digest of a result "
            "store: the order-independent, store-level identity check "
            "(docs/STORE_FORMAT.md). Two stores hold the same campaign "
            "results iff their digests match, regardless of sharding, "
            "resume history, or the order records landed on disk."
        ),
    )
    digest_p.add_argument("store", metavar="PATH", help="result store path")

    report_p = sub.add_parser(
        "report", help="run all experiments and write EXPERIMENTS.md"
    )
    report_p.add_argument(
        "-o", "--output", default="EXPERIMENTS.md", help="output markdown path"
    )
    report_p.add_argument(
        "--ids", nargs="*", default=None, help="subset of experiment ids"
    )
    _add_runtime_flags(report_p)

    serve_p = sub.add_parser(
        "serve", help="serve equilibrium queries (JSON lines over TCP)"
    )
    serve_p.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_p.add_argument(
        "--port",
        type=_non_negative_int,
        default=8571,
        help="TCP port (0 picks a free one)",
    )
    serve_p.add_argument(
        "--max-batch",
        type=_positive_int,
        default=64,
        help="flush the pending window at this many distinct games",
    )
    serve_p.add_argument(
        "--max-delay-ms",
        type=float,
        default=2.0,
        help="flush the pending window after this many milliseconds "
             "even if it is not full",
    )
    serve_p.add_argument(
        "--cache-size",
        type=_non_negative_int,
        default=1024,
        help="content-addressed response cache entries (0 disables)",
    )
    serve_p.add_argument(
        "--fixpoint-max-rounds",
        type=_positive_int,
        default=None,
        help="round budget for the iterative 'fixpoint' op "
             "(default: the solver's own budget)",
    )
    _add_backend_flag(serve_p)
    return parser


def _runtime_options(args: argparse.Namespace) -> dict:
    return {
        "jobs": args.jobs,
        "batch_size": args.batch_size,
        "seed": args.seed,
        "store": args.store,
        "resume": args.resume,
    }


def _cmd_list() -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for key, entry in EXPERIMENTS.items():
        print(f"{key.ljust(width)}  {entry.title}")
    return 0


def _cmd_run_shard(ids: Sequence[str], quick: bool, shard, **options) -> int:
    """Execute one shard of a campaign: specs in, a shard store out.

    A shard owns a round-robin slice of every requested spec's chunk
    list and checkpoints it into ``<stem>.shard-k<suffix>``; it cannot
    evaluate experiment verdicts (those need every cell's payloads), so
    the output is chunk accounting, not PASS/FAIL lines. Combine the
    completed shards with ``merge`` and replay verdicts from the merged
    store via ``run``/``report`` ``--store ... --resume``.
    """
    from repro.experiments.registry import get_experiment_specs
    from repro.runtime import run_sweep, shard_store_path

    store = options.pop("store")
    path = shard_store_path(store, shard.index)
    computed = resumed = owned = 0
    for experiment_id in expand_ids(ids):
        for spec in get_experiment_specs(experiment_id, quick=quick):
            result = run_sweep(spec, store=path, shard=shard, **options)
            owned += len(result.chunk_payloads)
            computed += result.computed_chunks
            resumed += result.resumed_chunks
            print(
                f"[{experiment_id}] {spec.label}: shard {shard} owns "
                f"{len(result.chunk_payloads)} chunk(s) "
                f"({result.computed_chunks} computed, "
                f"{result.resumed_chunks} resumed)"
            )
    print(
        f"shard {shard} complete: {owned} chunk(s) "
        f"({computed} computed, {resumed} resumed) -> {path}"
    )
    print(
        f"next: run the other shards, then "
        f"`repro-experiments merge --store {store}`"
    )
    return 0


def _cmd_merge(store: str, shards: Sequence[str] | None, force: bool) -> int:
    from repro.errors import StoreMergeError
    from repro.runtime import discover_shard_stores, merge_shard_stores

    sources = (
        list(shards) if shards is not None else discover_shard_stores(store)
    )
    if not sources:
        print(
            f"no shard stores found next to {store} "
            f"(expected <stem>.shard-<k><suffix> siblings)",
            file=sys.stderr,
        )
        return 1
    try:
        result = merge_shard_stores(sources, store, force=force)
    except StoreMergeError as exc:
        print(f"merge failed: {exc}", file=sys.stderr)
        return 1
    print(
        f"merged {result.shards} shard store(s) -> {result.path} "
        f"({result.records} record(s), "
        f"{result.duplicates} duplicate(s) collapsed)"
    )
    print(f"canonical digest: {result.digest}")
    return 0


def _cmd_digest(store: str) -> int:
    from repro.runtime import ResultStore

    print(ResultStore(store).canonical_digest())
    return 0


def _cmd_run(ids: Sequence[str], quick: bool, **options) -> int:
    failures = 0
    for experiment_id in expand_ids(ids):
        start = time.perf_counter()
        result = run_experiment(experiment_id, quick=quick, **options)
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"(elapsed: {elapsed:.2f}s)\n")
        if not result.passed:
            failures += 1
    if failures:
        print(f"{failures} experiment(s) FAILED", file=sys.stderr)
        return 1
    print("all experiments passed")
    return 0


def _cmd_report(
    output: str, quick: bool, ids: Sequence[str] | None, **options
) -> int:
    from repro.experiments.report import render_markdown, run_all

    if ids is not None:
        ids = expand_ids(ids)
    run = run_all(quick=quick, ids=ids, **options)
    text = render_markdown(run, quick=quick)
    with open(output, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    print(f"wrote {output} ({len(run.results)} experiments, "
          f"{'all passed' if run.all_passed else 'FAILURES PRESENT'})")
    return 0 if run.all_passed else 1


def _cmd_serve(
    host: str,
    port: int,
    max_batch: int,
    max_delay_ms: float,
    cache_size: int,
    fixpoint_max_rounds: int | None,
) -> int:
    import asyncio

    from repro.batch.fixpoint import DEFAULT_MAX_ROUNDS
    from repro.service.server import EquilibriumServer

    if fixpoint_max_rounds is None:
        fixpoint_max_rounds = DEFAULT_MAX_ROUNDS

    async def run() -> int:
        server = EquilibriumServer(
            host,
            port,
            max_batch=max_batch,
            max_delay_ms=max_delay_ms,
            cache_size=cache_size,
            fixpoint_max_rounds=fixpoint_max_rounds,
        )
        await server.start()
        # The readiness line supervisors (and the CI smoke job) wait on.
        print(
            f"serving equilibria on {server.host}:{server.port} "
            f"(max_batch={max_batch}, max_delay_ms={max_delay_ms}, "
            f"cache_size={cache_size}, "
            f"fixpoint_max_rounds={fixpoint_max_rounds}, "
            f"backend={server.info()['backend']})",
            flush=True,
        )
        try:
            await server.serve_until_shutdown()
        finally:
            await server.close()
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "merge":
        return _cmd_merge(args.store, args.shards, args.force)
    if args.command == "digest":
        return _cmd_digest(args.store)
    _select_backend(args.backend, parser)
    if args.command == "serve":
        return _cmd_serve(
            args.host,
            args.port,
            args.max_batch,
            args.max_delay_ms,
            args.cache_size,
            args.fixpoint_max_rounds,
        )
    if args.resume and not args.store:
        parser.error("--resume requires --store")
    if args.command == "run":
        if args.shard is not None:
            if not args.store:
                parser.error("--shard requires --store")
            return _cmd_run_shard(
                args.ids,
                args.quick,
                args.shard,
                jobs=args.jobs,
                batch_size=args.batch_size,
                seed=args.seed,
                store=args.store,
                resume=args.resume,
            )
        return _cmd_run(args.ids, args.quick, **_runtime_options(args))
    if args.command == "report":
        return _cmd_report(
            args.output, args.quick, args.ids, **_runtime_options(args)
        )
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
