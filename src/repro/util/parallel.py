"""Chunked process-pool execution for instance-parallel sweeps.

The campaign layer splits its replication axis into chunks, derives a
deterministic seed for every replication via
:func:`repro.util.rng.stable_seed` (so results are independent of the
chunking and of worker scheduling), and runs the chunks through
:func:`run_tasks`. Task functions must be picklable module-level
callables and task payloads plain data — the usual
:class:`~concurrent.futures.ProcessPoolExecutor` rules.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence, TypeVar

from repro.util.rng import stable_seed

__all__ = [
    "chunk_ranges",
    "resolve_jobs",
    "iter_tasks",
    "run_tasks",
    "ReplicationChunk",
    "make_replication_chunks",
]

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class ReplicationChunk:
    """A picklable unit of work: replications [rep_lo, rep_hi) of one
    (n, m) grid cell.

    The shared chunk shape of every batched campaign (E5's conjecture
    sweep, the E7-E9 mixed experiments, the E10/E11 PoA studies);
    campaign-specific knobs ride along on frozen subclasses.
    """

    label: str
    num_users: int
    num_links: int
    rep_lo: int
    rep_hi: int

    def seeds(self) -> list[int]:
        """Per-replication seeds — a pure function of (label, n, m, rep),
        never of the chunk boundaries, so any chunking of a cell
        concatenates to the same per-replication sequence."""
        return [
            stable_seed(self.label, self.num_users, self.num_links, rep)
            for rep in range(self.rep_lo, self.rep_hi)
        ]


def make_replication_chunks(
    cells: Sequence,
    label: str,
    batch_size: int | None,
    *,
    factory: Callable[..., ReplicationChunk] = ReplicationChunk,
    **extra,
) -> tuple[list[ReplicationChunk], list[int]]:
    """Split every cell's replication axis into chunks.

    *cells* are grid cells (``num_users``/``num_links``/``replications``
    attributes); *extra* keywords are forwarded to *factory*. Returns
    ``(chunks, cell_of_chunk)`` where ``cell_of_chunk[i]`` is the index
    of the cell chunk ``i`` belongs to — chunks are emitted in cell
    order, so per-cell results concatenate back in replication order
    regardless of how a pool schedules them.
    """
    chunks: list[ReplicationChunk] = []
    cell_of_chunk: list[int] = []
    for cell_index, cell in enumerate(cells):
        for lo, hi in chunk_ranges(cell.replications, batch_size):
            chunks.append(
                factory(
                    label=label,
                    num_users=cell.num_users,
                    num_links=cell.num_links,
                    rep_lo=lo,
                    rep_hi=hi,
                    **extra,
                )
            )
            cell_of_chunk.append(cell_index)
    return chunks, cell_of_chunk


def chunk_ranges(total: int, chunk_size: int | None = None) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``[lo, hi)`` chunks of *chunk_size*.

    ``chunk_size=None`` (or >= total) yields a single chunk; ``total=0``
    yields none.
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if total == 0:
        return []
    step = total if chunk_size is None else chunk_size
    return [(lo, min(lo + step, total)) for lo in range(0, total, step)]


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value.

    ``0`` (the CLI's explicit "use everything" spelling) means all CPUs;
    ``None`` means "not specified" and stays inline (1), mirroring the
    ``batch_size=None`` default elsewhere — an unset Optional must never
    silently opt a caller into a full-machine process pool.
    """
    if jobs is None:
        return 1
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be non-negative, got {jobs}")
    return jobs


def iter_tasks(
    fn: Callable[[T], R], tasks: Sequence[T], *, jobs: int | None = 1
) -> Iterator[R]:
    """Map *fn* over *tasks*, yielding results in task order.

    The streaming form of :func:`run_tasks`: the campaign runtime
    consumes results one at a time so it can checkpoint each chunk to
    its result store the moment the chunk completes (a later kill then
    leaves a resumable prefix on disk). ``jobs=None`` or ``jobs=1``
    runs inline (no pool, no pickling); ``jobs=0`` uses all CPUs;
    anything larger fans out over a :class:`ProcessPoolExecutor`, whose
    ``map`` already yields in submission order regardless of worker
    scheduling.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        for task in tasks:
            yield fn(task)
        return
    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        yield from pool.map(fn, tasks)


def run_tasks(
    fn: Callable[[T], R], tasks: Sequence[T], *, jobs: int | None = 1
) -> list[R]:
    """Map *fn* over *tasks*, preserving order.

    ``jobs=None`` or ``jobs=1`` runs inline (no pool, no pickling);
    ``jobs=0`` uses all CPUs; anything larger fans out over a
    :class:`ProcessPoolExecutor`. Results always come back in task
    order, so callers aggregate deterministically no matter how the
    pool schedules the work.
    """
    return list(iter_tasks(fn, tasks, jobs=jobs))
