"""Chunked process-pool execution for instance-parallel sweeps.

The campaign layer splits its replication axis into chunks, derives a
deterministic seed for every replication via
:func:`repro.util.rng.stable_seed` (so results are independent of the
chunking and of worker scheduling), and runs the chunks through
:func:`run_tasks`. Task functions must be picklable module-level
callables and task payloads plain data — the usual
:class:`~concurrent.futures.ProcessPoolExecutor` rules.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence, TypeVar

__all__ = ["chunk_ranges", "resolve_jobs", "run_tasks"]

T = TypeVar("T")
R = TypeVar("R")


def chunk_ranges(total: int, chunk_size: int | None = None) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``[lo, hi)`` chunks of *chunk_size*.

    ``chunk_size=None`` (or >= total) yields a single chunk; ``total=0``
    yields none.
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if total == 0:
        return []
    step = total if chunk_size is None else chunk_size
    return [(lo, min(lo + step, total)) for lo in range(0, total, step)]


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value.

    ``0`` (the CLI's explicit "use everything" spelling) means all CPUs;
    ``None`` means "not specified" and stays inline (1), mirroring the
    ``batch_size=None`` default elsewhere — an unset Optional must never
    silently opt a caller into a full-machine process pool.
    """
    if jobs is None:
        return 1
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be non-negative, got {jobs}")
    return jobs


def run_tasks(
    fn: Callable[[T], R], tasks: Sequence[T], *, jobs: int | None = 1
) -> list[R]:
    """Map *fn* over *tasks*, preserving order.

    ``jobs=None`` or ``jobs=1`` runs inline (no pool, no pickling);
    ``jobs=0`` uses all CPUs; anything larger fans out over a
    :class:`ProcessPoolExecutor`. Results always come back in task
    order, so callers aggregate deterministically no matter how the
    pool schedules the work.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        return list(pool.map(fn, tasks))
