"""Reproducible random-number-generator plumbing.

Every stochastic entry point in the library takes a ``seed`` argument that
may be ``None``, an integer, a :class:`numpy.random.SeedSequence`, or an
existing :class:`numpy.random.Generator`. :func:`as_generator` normalises
all of these to a ``Generator``, and :func:`spawn_generators` derives
statistically independent child generators for parallel or per-instance
streams — the pattern recommended for reproducible scientific sweeps.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence, Union

import numpy as np

__all__ = ["RandomState", "as_generator", "spawn_generators", "stable_seed"]

RandomState = Union[None, int, np.random.SeedSequence, np.random.Generator]


def as_generator(seed: RandomState = None) -> np.random.Generator:
    """Normalise *seed* into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (shared stream);
    anything else creates a fresh PCG64 stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Derive *count* independent generators from *seed*.

    Independence comes from :meth:`numpy.random.SeedSequence.spawn`; when an
    already-instantiated generator is supplied, its internal bit generator's
    seed sequence is spawned so the parent stream is left untouched.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def stable_seed(*parts: object) -> int:
    """Hash arbitrary labels into a stable 63-bit seed.

    Used by experiment runners so that e.g. ``stable_seed("E5", n, m, rep)``
    always maps the same experiment cell to the same instance stream,
    independent of execution order.
    """
    digest = hashlib.sha256("\x1f".join(repr(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)
