"""Plain-text table rendering for experiment and benchmark harnesses.

The reproduction harness prints the same row/series structure the paper's
claims imply (experiment id, instance parameters, measured quantity, bound,
verdict). Keeping the renderer dependency-free makes every benchmark's
output usable in CI logs and in ``EXPERIMENTS.md`` verbatim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["Table", "format_float"]


def format_float(value: float, digits: int = 4) -> str:
    """Format a float compactly: fixed point for moderate magnitudes,
    scientific notation otherwise, and exact text for ints/NaN/inf."""
    if value is None:  # type: ignore[unreachable]
        return "-"
    if isinstance(value, bool):
        return str(value)
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    if value == int(value) and abs(value) < 10**6:
        return str(int(value))
    if value != 0 and (abs(value) >= 10**6 or abs(value) < 10**-4):
        return f"{value:.{digits}e}"
    return f"{value:.{digits}g}"


@dataclass
class Table:
    """A minimal column-aligned ASCII table.

    >>> t = Table(["n", "ratio"], title="demo")
    >>> t.add_row([4, 1.25])
    >>> print(t.render())  # doctest: +ELLIPSIS
    demo
    ...
    """

    columns: Sequence[str]
    title: str = ""
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, values: Iterable[object]) -> None:
        row = []
        for v in values:
            if isinstance(v, float):
                row.append(format_float(v))
            else:
                row.append(str(v))
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        headers = [str(c) for c in self.columns]
        widths = [len(h) for h in headers]
        for row in self.rows:
            for j, cell in enumerate(row):
                widths[j] = max(widths[j], len(cell))

        def fmt_line(cells: Sequence[str]) -> str:
            return "  ".join(c.ljust(widths[j]) for j, c in enumerate(cells)).rstrip()

        sep = "  ".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt_line(headers))
        lines.append(sep)
        lines.extend(fmt_line(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience alias
        return self.render()
