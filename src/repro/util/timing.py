"""Timing helpers and empirical complexity fits.

The paper states asymptotic complexities for its three algorithms
(O(n^2), O(n^2 m), O(n(log n + m))). The scaling experiments time the
implementations over a geometric grid of sizes and estimate the growth
exponent by least squares on log-log data; :class:`ScalingFit` carries the
exponent plus an R^2 so benchmark tables can report fit quality.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["ScalingFit", "fit_power_law", "time_callable"]


def time_callable(fn: Callable[[], object], *, repeats: int = 3) -> float:
    """Return the minimum wall-clock seconds over *repeats* calls of *fn*.

    The minimum (not the mean) is the standard estimator for the
    interference-free cost of a deterministic computation.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@dataclass(frozen=True)
class ScalingFit:
    """Least-squares power-law fit ``t ~ coeff * x**exponent``."""

    exponent: float
    coeff: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.coeff * float(x) ** self.exponent


def fit_power_law(xs: Sequence[float], ts: Sequence[float]) -> ScalingFit:
    """Fit ``t = c * x**a`` by linear regression on (log x, log t).

    Raises ``ValueError`` for fewer than two points or non-positive data,
    which would make the log transform meaningless.
    """
    x = np.asarray(xs, dtype=np.float64)
    t = np.asarray(ts, dtype=np.float64)
    if x.shape != t.shape or x.ndim != 1 or x.size < 2:
        raise ValueError("need two 1-D arrays of equal length >= 2")
    if np.any(x <= 0) or np.any(t <= 0):
        raise ValueError("power-law fit requires positive sizes and times")
    lx, lt = np.log(x), np.log(t)
    a, b = np.polyfit(lx, lt, 1)
    pred = a * lx + b
    ss_res = float(np.sum((lt - pred) ** 2))
    ss_tot = float(np.sum((lt - lt.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return ScalingFit(exponent=float(a), coeff=float(np.exp(b)), r_squared=r2)
