"""Array-validation helpers shared by the model layer.

These functions normalise user input to contiguous ``float64`` arrays and
raise :class:`repro.errors.ModelError` subclasses with actionable messages.
They are deliberately strict: a routing game with a zero-capacity link or a
belief that does not sum to one is a modelling bug, not a numerical detail.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import BeliefError, DimensionError, ModelError

__all__ = [
    "ATOL",
    "check_positive_array",
    "check_probability_vector",
    "check_probability_matrix",
    "check_shape",
]

#: Absolute tolerance used for probability-sum and equilibrium checks.
ATOL = 1e-9


def check_positive_array(
    values: Sequence[float] | np.ndarray,
    *,
    name: str,
    ndim: int | None = None,
) -> np.ndarray:
    """Return *values* as a contiguous float64 array of strictly positive entries.

    Always copies: callers freeze the result, which must not alias input.
    """
    arr = np.array(values, dtype=np.float64, copy=True, order="C")
    if ndim is not None and arr.ndim != ndim:
        raise DimensionError(f"{name} must be {ndim}-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ModelError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ModelError(f"{name} contains non-finite entries")
    if np.any(arr <= 0.0):
        bad = float(arr.min())
        raise ModelError(f"{name} must be strictly positive everywhere (min={bad!r})")
    return arr


def check_probability_vector(
    values: Sequence[float] | np.ndarray,
    *,
    name: str,
    atol: float = ATOL,
) -> np.ndarray:
    """Return *values* as a float64 probability vector (non-negative, sums to 1)."""
    arr = np.array(values, dtype=np.float64, copy=True, order="C")
    if arr.ndim != 1:
        raise DimensionError(f"{name} must be a vector, got shape {arr.shape}")
    if arr.size == 0:
        raise BeliefError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise BeliefError(f"{name} contains non-finite entries")
    if np.any(arr < -atol):
        raise BeliefError(f"{name} has negative probabilities (min={float(arr.min())!r})")
    total = float(arr.sum())
    if abs(total - 1.0) > max(atol, atol * arr.size):
        raise BeliefError(f"{name} must sum to 1, sums to {total!r}")
    arr = np.clip(arr, 0.0, None)
    return arr / arr.sum()


def check_probability_matrix(
    values: Sequence[Sequence[float]] | np.ndarray,
    *,
    name: str,
    atol: float = ATOL,
) -> np.ndarray:
    """Return *values* as a row-stochastic float64 matrix."""
    arr = np.array(values, dtype=np.float64, copy=True, order="C")
    if arr.ndim != 2:
        raise DimensionError(f"{name} must be a matrix, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise BeliefError(f"{name} contains non-finite entries")
    if np.any(arr < -atol):
        raise BeliefError(f"{name} has negative probabilities (min={float(arr.min())!r})")
    sums = arr.sum(axis=1)
    if np.any(np.abs(sums - 1.0) > max(atol, atol * arr.shape[1])):
        worst = int(np.argmax(np.abs(sums - 1.0)))
        raise BeliefError(
            f"rows of {name} must sum to 1; row {worst} sums to {float(sums[worst])!r}"
        )
    arr = np.clip(arr, 0.0, None)
    return arr / arr.sum(axis=1, keepdims=True)


def check_shape(arr: np.ndarray, shape: tuple[int, ...], *, name: str) -> np.ndarray:
    """Assert that *arr* has exactly the given *shape*."""
    if arr.shape != shape:
        raise DimensionError(f"{name} must have shape {shape}, got {arr.shape}")
    return arr
