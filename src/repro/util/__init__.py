"""Shared utilities: RNG handling, validation, table rendering, timing,
chunked process-pool execution."""

from repro.util.parallel import chunk_ranges, resolve_jobs, run_tasks
from repro.util.rng import as_generator, spawn_generators, stable_seed
from repro.util.tables import Table, format_float
from repro.util.timing import ScalingFit, fit_power_law, time_callable
from repro.util.validation import (
    check_positive_array,
    check_probability_matrix,
    check_probability_vector,
)

__all__ = [
    "chunk_ranges",
    "resolve_jobs",
    "run_tasks",
    "as_generator",
    "spawn_generators",
    "stable_seed",
    "Table",
    "format_float",
    "ScalingFit",
    "fit_power_law",
    "time_callable",
    "check_positive_array",
    "check_probability_matrix",
    "check_probability_vector",
]
