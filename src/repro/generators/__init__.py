"""Reproducible random-instance generators and named workload suites.

Single-instance generators live in :mod:`repro.generators.games`; the
vectorised batch generator (:func:`random_game_batch`, drawing all B
instances of a cell in one RNG pass) is re-exported from
:mod:`repro.batch.generator`.
"""

from repro.batch.generator import random_game_batch
from repro.generators.games import (
    random_game,
    random_kp_game,
    random_symmetric_game,
    random_two_link_game,
    random_uniform_beliefs_game,
    random_weights,
)
from repro.generators.suites import (
    conjecture_grid,
    poa_grid,
    scaling_sizes,
    small_verification_grid,
)

__all__ = [
    "random_game",
    "random_game_batch",
    "random_kp_game",
    "random_symmetric_game",
    "random_two_link_game",
    "random_uniform_beliefs_game",
    "random_weights",
    "conjecture_grid",
    "poa_grid",
    "scaling_sizes",
    "small_verification_grid",
]
