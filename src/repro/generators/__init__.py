"""Reproducible random-instance generators and named workload suites."""

from repro.generators.games import (
    random_game,
    random_kp_game,
    random_symmetric_game,
    random_two_link_game,
    random_uniform_beliefs_game,
    random_weights,
)
from repro.generators.suites import (
    conjecture_grid,
    poa_grid,
    scaling_sizes,
    small_verification_grid,
)

__all__ = [
    "random_game",
    "random_kp_game",
    "random_symmetric_game",
    "random_two_link_game",
    "random_uniform_beliefs_game",
    "random_weights",
    "conjecture_grid",
    "poa_grid",
    "scaling_sizes",
    "small_verification_grid",
]
