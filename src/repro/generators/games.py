"""Random game generators.

Every generator is deterministic given a seed and exposes the knobs the
experiments sweep: number of users/links/states, belief concentration
(how confident users are), weight distribution, and capacity spread.
These are the synthetic stand-ins for the paper's unspecified "numerous
instances" (Section 3.2); DESIGN.md records the substitution.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.errors import ModelError
from repro.model.beliefs import BeliefProfile
from repro.model.game import UncertainRoutingGame
from repro.model.state import StateSpace
from repro.util.rng import RandomState, as_generator

__all__ = [
    "random_weights",
    "random_game",
    "random_two_link_game",
    "random_symmetric_game",
    "random_uniform_beliefs_game",
    "random_kp_game",
]

WeightKind = Literal["uniform", "exponential", "lognormal", "integer"]


def random_weights(
    num_users: int,
    *,
    kind: WeightKind = "uniform",
    seed: RandomState = None,
    batch_size: int | None = None,
) -> np.ndarray:
    """Sample a strictly positive traffic vector (or a stack of them).

    ``uniform`` draws from [0.5, 4); ``exponential`` gives heavy one-sided
    skew; ``lognormal`` gives multiplicative spread (elephant/mice mixes);
    ``integer`` draws small integers (needed by the player-specific
    substrate embedding).

    With *batch_size* the result is a ``(batch_size, num_users)`` block
    drawn in one RNG pass — the single definition of the distribution
    constants shared by the batched generators.
    """
    rng = as_generator(seed)
    if num_users < 2:
        raise ModelError("num_users must be >= 2")
    if batch_size is not None and batch_size < 1:
        raise ModelError("batch_size must be >= 1")
    size = num_users if batch_size is None else (batch_size, num_users)
    if kind == "uniform":
        return rng.uniform(0.5, 4.0, size=size)
    if kind == "exponential":
        return rng.exponential(1.0, size=size) + 0.05
    if kind == "lognormal":
        return rng.lognormal(mean=0.0, sigma=0.75, size=size)
    if kind == "integer":
        return rng.integers(1, 6, size=size).astype(np.float64)
    raise ModelError(f"unknown weight kind {kind!r}")


def random_game(
    num_users: int,
    num_links: int,
    *,
    num_states: int = 4,
    concentration: float = 1.0,
    weight_kind: WeightKind = "uniform",
    cap_low: float = 0.5,
    cap_high: float = 4.0,
    with_initial_traffic: bool = False,
    seed: RandomState = None,
) -> UncertainRoutingGame:
    """A generic instance: random states, Dirichlet beliefs, random weights."""
    rng = as_generator(seed)
    states = StateSpace.random(
        num_states, num_links, low=cap_low, high=cap_high, seed=rng
    )
    beliefs = BeliefProfile.random(
        states, num_users, concentration=concentration, seed=rng
    )
    weights = random_weights(num_users, kind=weight_kind, seed=rng)
    initial = rng.uniform(0.0, 2.0, size=num_links) if with_initial_traffic else None
    return UncertainRoutingGame(weights, beliefs, initial_traffic=initial)


def random_two_link_game(
    num_users: int,
    *,
    with_initial_traffic: bool = False,
    seed: RandomState = None,
    **kwargs,
) -> UncertainRoutingGame:
    """The E1 workload: arbitrary beliefs on m = 2 links, optional ``t``."""
    return random_game(
        num_users,
        2,
        with_initial_traffic=with_initial_traffic,
        seed=seed,
        **kwargs,
    )


def random_symmetric_game(
    num_users: int,
    num_links: int,
    *,
    weight: float = 1.0,
    num_states: int = 4,
    concentration: float = 1.0,
    seed: RandomState = None,
) -> UncertainRoutingGame:
    """The E2 workload: identical weights, arbitrary private beliefs."""
    if weight <= 0:
        raise ModelError("weight must be positive")
    rng = as_generator(seed)
    states = StateSpace.random(num_states, num_links, seed=rng)
    beliefs = BeliefProfile.random(
        states, num_users, concentration=concentration, seed=rng
    )
    return UncertainRoutingGame(np.full(num_users, weight), beliefs)


def random_uniform_beliefs_game(
    num_users: int,
    num_links: int,
    *,
    weight_kind: WeightKind = "uniform",
    with_initial_traffic: bool = False,
    seed: RandomState = None,
) -> UncertainRoutingGame:
    """The E3 workload: each user sees all links equally fast.

    Built directly in reduced form: user ``i``'s effective capacity is a
    single per-user constant ``c_i`` replicated across links.
    """
    rng = as_generator(seed)
    weights = random_weights(num_users, kind=weight_kind, seed=rng)
    per_user = rng.uniform(0.5, 4.0, size=num_users)
    caps = np.repeat(per_user[:, None], num_links, axis=1)
    initial = rng.uniform(0.0, 2.0, size=num_links) if with_initial_traffic else None
    return UncertainRoutingGame.from_capacities(
        weights, caps, initial_traffic=initial
    )


def random_kp_game(
    num_users: int,
    num_links: int,
    *,
    weight_kind: WeightKind = "uniform",
    seed: RandomState = None,
) -> UncertainRoutingGame:
    """A classic KP instance (single certain state, common belief)."""
    rng = as_generator(seed)
    weights = random_weights(num_users, kind=weight_kind, seed=rng)
    caps = rng.uniform(0.5, 4.0, size=num_links)
    return UncertainRoutingGame.kp(weights, caps)
