"""Named workload suites — the parameter grids the experiments sweep.

Collecting the grids here keeps benchmarks, experiments and tests in sync:
when EXPERIMENTS.md reports "the E5 campaign covers the grid below", this
module *is* that grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "GridCell",
    "conjecture_grid",
    "quick_conjecture_grid",
    "small_verification_grid",
    "poa_grid",
    "scaling_sizes",
]


@dataclass(frozen=True)
class GridCell:
    """One cell of an (n, m) sweep with its replication count."""

    num_users: int
    num_links: int
    replications: int


def conjecture_grid(*, replications: int = 40) -> Iterator[GridCell]:
    """The E5 campaign grid: exhaustively checkable (n, m) combinations.

    Mirrors the paper's setting — "small number of users and links" — but
    is explicit and seeded. ``m^n`` stays below ~60k states so existence
    is *decided*, not sampled.
    """
    cells = [
        (2, 2), (2, 3), (2, 4), (2, 5),
        (3, 2), (3, 3), (3, 4), (3, 5),
        (4, 2), (4, 3), (4, 4),
        (5, 2), (5, 3), (5, 4),
        (6, 2), (6, 3),
        (7, 2), (7, 3),
        (8, 2), (8, 3),
        (10, 2),
    ]
    for n, m in cells:
        yield GridCell(n, m, replications)


def quick_conjecture_grid(*, replications: int = 8) -> Iterator[GridCell]:
    """The E5 ``--quick`` smoke grid — the single source of these cells,
    shared by the runner, the frozen-baseline parity test and the
    batched-vs-seed benchmark so the copies cannot drift apart."""
    for n, m in [(2, 2), (3, 3), (4, 2), (5, 3)]:
        yield GridCell(n, m, replications)


def small_verification_grid(*, replications: int = 10) -> Iterator[GridCell]:
    """Games small enough for support enumeration (E7/E9)."""
    cells = [(2, 2), (2, 3), (3, 2), (3, 3), (4, 2)]
    for n, m in cells:
        yield GridCell(n, m, replications)


def poa_grid(*, replications: int = 25) -> Iterator[GridCell]:
    """The E10/E11 sweep: exact OPT via exhaustive search must be feasible."""
    cells = [(2, 2), (3, 2), (3, 3), (4, 2), (4, 3), (5, 2), (5, 3), (6, 2)]
    for n, m in cells:
        yield GridCell(n, m, replications)


def scaling_sizes(algorithm: str) -> list[int]:
    """Problem sizes for the complexity fits of E1-E3."""
    if algorithm == "atwolinks":
        return [32, 64, 128, 256, 512, 1024]
    if algorithm == "asymmetric":
        return [16, 32, 64, 128, 256]
    if algorithm == "auniform":
        return [256, 512, 1024, 2048, 4096, 8192]
    raise KeyError(f"unknown algorithm {algorithm!r}")
