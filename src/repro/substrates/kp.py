"""The KP-model substrate (Koutsoupias & Papadimitriou 1999).

The paper's model strictly generalises the KP-model: with every user
holding the same point-mass belief, effective capacities coincide with
the true capacities and all of Section 2 collapses to the classic game.
This module provides the classic machinery on top of that embedding:

* :func:`kp_game` — build the KP special case as an
  :class:`~repro.model.game.UncertainRoutingGame`;
* :func:`kp_greedy_nash` — the greedy/LPT pure-NE construction for
  related links (Fotakis et al. 2002), which ``Auniform`` adapts;
* :func:`expected_max_congestion` — the KP social cost
  ``E[max_l load_l / c_l]`` for mixed profiles (exact enumeration for
  small games, Monte Carlo beyond), which is *objective* here because all
  users agree on capacities;
* :func:`opt_max_congestion` / :func:`kp_price_of_anarchy` — the classic
  optimum and coordination ratio, for side-by-side comparisons with the
  paper's subjective SC1/SC2 notions.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import AlgorithmDomainError, ModelError
from repro.model.game import UncertainRoutingGame
from repro.model.profiles import (
    AssignmentLike,
    MixedLike,
    PureProfile,
    as_assignment,
    as_mixed_matrix,
    loads_of,
)
from repro.model.social import enumerate_assignments
from repro.util.rng import RandomState, as_generator

__all__ = [
    "kp_game",
    "kp_greedy_nash",
    "expected_max_congestion",
    "opt_max_congestion",
    "kp_price_of_anarchy",
]


def kp_game(
    weights: Sequence[float] | np.ndarray,
    capacities: Sequence[float] | np.ndarray,
    *,
    initial_traffic: Sequence[float] | np.ndarray | None = None,
) -> UncertainRoutingGame:
    """The KP-model as a degenerate uncertain routing game."""
    return UncertainRoutingGame.kp(
        weights, capacities, initial_traffic=initial_traffic
    )


def _require_kp(game: UncertainRoutingGame) -> np.ndarray:
    if not game.is_kp():
        raise AlgorithmDomainError(
            "this routine needs a KP (common point-mass belief) game"
        )
    return game.capacities[0]


def kp_greedy_nash(game: UncertainRoutingGame) -> PureProfile:
    """Greedy pure NE for the KP-model (Fotakis et al. 2002).

    Users are processed in decreasing weight order; each is placed on the
    link minimising its completion latency ``(load_l + w)/c_l``. For
    related links this yields a pure Nash equilibrium.
    """
    caps = _require_kp(game)
    order = np.argsort(-game.weights, kind="stable")
    loads = game.initial_traffic.copy()
    sigma = np.empty(game.num_users, dtype=np.intp)
    for user in order:
        link = int(np.argmin((loads + game.weights[user]) / caps))
        sigma[user] = link
        loads[link] += game.weights[user]
    return PureProfile(sigma, game.num_links)


def expected_max_congestion(
    game: UncertainRoutingGame,
    mixed: MixedLike | AssignmentLike,
    *,
    num_samples: int = 20_000,
    exact_limit: int = 200_000,
    seed: RandomState = None,
) -> float:
    """Classic KP social cost ``E[max_l (t_l + load_l)/c_l]``.

    The expectation is over the users' independent mixed choices. Small
    games (``m^n <= exact_limit``) are evaluated exactly by enumerating
    profiles with their product probabilities; larger games fall back to
    Monte Carlo with *num_samples* draws.
    """
    caps = _require_kp(game)
    if isinstance(mixed, PureProfile):
        arr = mixed.links.astype(np.float64)
    else:
        arr = np.asarray(
            mixed.matrix if hasattr(mixed, "matrix") else mixed, dtype=np.float64
        )
    if arr.ndim == 1:
        sigma = as_assignment(mixed, game.num_users, game.num_links)
        loads = loads_of(sigma, game.weights, game.num_links, game.initial_traffic)
        return float((loads / caps).max())
    p = as_mixed_matrix(mixed, game.num_users, game.num_links)
    n, m = game.num_users, game.num_links
    if m**n <= exact_limit:
        assignments = enumerate_assignments(n, m)
        probs = p[np.arange(n)[None, :], assignments]  # (B, n)
        weight = probs.prod(axis=1)
        loads = np.zeros((assignments.shape[0], m))
        for link in range(m):
            loads[:, link] = (game.weights[None, :] * (assignments == link)).sum(axis=1)
        loads += game.initial_traffic[None, :]
        congestion = (loads / caps[None, :]).max(axis=1)
        return float(np.dot(weight, congestion))
    rng = as_generator(seed)
    if num_samples < 1:
        raise ModelError("num_samples must be >= 1")
    # Sample links per user via inverse-CDF on each row.
    cdf = np.cumsum(p, axis=1)
    draws = rng.random((num_samples, n))
    sampled = (draws[:, :, None] > cdf[None, :, :]).sum(axis=2)
    loads = np.zeros((num_samples, m))
    for link in range(m):
        loads[:, link] = (game.weights[None, :] * (sampled == link)).sum(axis=1)
    loads += game.initial_traffic[None, :]
    return float((loads / caps[None, :]).max(axis=1).mean())


def opt_max_congestion(game: UncertainRoutingGame) -> tuple[float, PureProfile]:
    """Minimum over pure assignments of the objective max congestion."""
    caps = _require_kp(game)
    assignments = enumerate_assignments(game.num_users, game.num_links)
    loads = np.zeros((assignments.shape[0], game.num_links))
    for link in range(game.num_links):
        loads[:, link] = (game.weights[None, :] * (assignments == link)).sum(axis=1)
    loads += game.initial_traffic[None, :]
    congestion = (loads / caps[None, :]).max(axis=1)
    best = int(np.argmin(congestion))
    return float(congestion[best]), PureProfile(assignments[best], game.num_links)


def kp_price_of_anarchy(
    game: UncertainRoutingGame, mixed: MixedLike | AssignmentLike, **kwargs
) -> float:
    """``E[max congestion at profile] / OPT`` — the classic coordination ratio."""
    cost = expected_max_congestion(game, mixed, **kwargs)
    opt, _ = opt_max_congestion(game)
    return cost / opt
