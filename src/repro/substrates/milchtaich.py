"""The Milchtaich separation (experiment E12).

Milchtaich [17] proved that weighted singleton congestion games with
player-specific payoff functions need not possess a pure Nash equilibrium
and exhibited a 3-player/3-link counterexample. The paper under
reproduction observes that this phenomenon *cannot arise in its model*:
for three users the belief game always has a pure NE (Section 3.1),
because its cost functions are multiplicatively separable.

The IPPS paper does not reprint Milchtaich's payoff table, so this module
ships a witness **derived from scratch** by an exact constraint search
(:func:`search_no_pne_instance`): pick, for every one of the 27 pure
profiles, one deviation that must strictly improve; each pick is a strict
inequality between two cost-table entries; together with the monotonicity
chains this forms a partial order that is consistent iff no cycle
contains a strict edge. A satisfying selection was found for weights
``(1, 2, 3)`` and its longest-path labelling gives the integer tables of
:data:`WITNESS_TABLES` — verified to admit **no** pure Nash equilibrium
over all 27 profiles.

For the contrast, :func:`multiplicative_pne_sweep` draws cost tables of
the paper's restricted form ``load / c^l_i`` and confirms every sampled
instance has a pure NE.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import SolverError
from repro.model.social import enumerate_assignments
from repro.substrates.player_specific import PlayerSpecificGame
from repro.util.rng import RandomState, as_generator, spawn_generators

__all__ = [
    "WITNESS_WEIGHTS",
    "WITNESS_TABLES",
    "CounterexampleReport",
    "search_no_pne_instance",
    "canonical_counterexample",
    "multiplicative_pne_sweep",
    "multiplicative_pne_hits",
]

#: Weights of the stored no-PNE witness.
WITNESS_WEIGHTS: tuple[int, ...] = (1, 2, 3)

#: Cost tables (players x links x loads 1..6) of the stored witness,
#: found by the exact constraint search with seed fixed; nondecreasing in
#: the load and admitting no pure NE. Index ``[i][l][L-1]`` is the cost
#: of player ``i`` on link ``l`` at total load ``L``.
WITNESS_TABLES: tuple = (
    ((3, 3, 3, 3, 3, 3), (2, 2, 2, 2, 2, 2), (1, 1, 1, 4, 4, 4)),
    ((1, 4, 4, 4, 4, 4), (1, 1, 3, 3, 3, 3), (1, 1, 2, 2, 2, 2)),
    ((1, 1, 2, 2, 2, 2), (1, 1, 3, 3, 3, 3), (1, 1, 1, 1, 3, 3)),
)


@dataclass(frozen=True)
class CounterexampleReport:
    """A player-specific game without pure NE, plus search metadata."""

    game: PlayerSpecificGame
    tries: int
    seed: int

    def verify(self) -> bool:
        """Re-run the exhaustive check on the stored witness."""
        return not self.game.exists_pure_nash()


def _witness_game() -> PlayerSpecificGame:
    w = np.asarray(WITNESS_WEIGHTS, dtype=np.int64)
    total = int(w.sum())
    n = w.size
    m = len(WITNESS_TABLES[0])
    tables = np.zeros((n, m, total + 1))
    for i in range(n):
        for l in range(m):
            tables[i, l, 1:] = WITNESS_TABLES[i][l]
            tables[i, l, 0] = tables[i, l, 1]
    return PlayerSpecificGame(w, tables)


@lru_cache(maxsize=1)
def canonical_counterexample() -> CounterexampleReport:
    """The stored, verified no-PNE witness (instant)."""
    return CounterexampleReport(game=_witness_game(), tries=0, seed=0)


# --------------------------------------------------------------------- #
# exact constraint search (how the witness was derived)
# --------------------------------------------------------------------- #


def search_no_pne_instance(
    *,
    weights: tuple[int, ...] = WITNESS_WEIGHTS,
    num_links: int = 3,
    time_budget: float = 60.0,
    restart_budget: float = 10.0,
    seed: RandomState = 0,
) -> CounterexampleReport:
    """Exact backtracking search for a no-PNE player-specific game.

    Chooses one strictly-improving deviation per pure profile and checks
    the induced strict partial order on cost-table entries for
    consistency (a strict edge ``a < b`` is infeasible iff a path
    ``b -> a`` already exists). Randomised restarts reshuffle profile and
    option orders. Returns the first consistent selection, materialised
    into integer cost tables by longest-path levelling and *verified*
    against all profiles.

    Raises :class:`~repro.errors.SolverError` when the budget runs out —
    use :func:`canonical_counterexample` for a guaranteed witness.
    """
    rng = as_generator(seed)
    w = np.asarray(weights, dtype=np.int64)
    deadline = time.monotonic() + time_budget
    tries = 0
    while time.monotonic() < deadline:
        tries += 1
        restart_seed = int(rng.integers(2**62))
        remaining = min(restart_budget, deadline - time.monotonic())
        chosen = _search_selection(w, num_links, restart_seed, remaining)
        if chosen is None:
            continue
        tables = _tables_from_selection(w, num_links, chosen)
        game = PlayerSpecificGame(w, tables)
        if not game.exists_pure_nash():
            seed_tag = seed if isinstance(seed, int) else -1
            return CounterexampleReport(game=game, tries=tries, seed=seed_tag)
    raise SolverError(
        f"no counterexample found within {time_budget:.0f}s for weights "
        f"{tuple(int(x) for x in w)} — use canonical_counterexample()"
    )


def _profile_options(w: np.ndarray, m: int) -> list[list[tuple[tuple, tuple]]]:
    """For each pure profile, the candidate strict constraints
    ``cost(alt) < cost(current)`` — one per unilateral deviation."""
    n = w.size
    profiles = []
    for row in enumerate_assignments(n, m):
        loads = np.bincount(row, weights=w, minlength=m).astype(int)
        opts = []
        for i in range(n):
            cur = (i, int(row[i]), int(loads[row[i]]))
            for link in range(m):
                if link == row[i]:
                    continue
                opts.append(((i, link, int(loads[link] + w[i])), cur))
        profiles.append(opts)
    return profiles


def _search_selection(
    w: np.ndarray, m: int, seed: int, time_budget: float
) -> list[tuple[tuple, tuple]] | None:
    """One randomized backtracking run; None on timeout/exhaustion."""
    n = w.size
    total = int(w.sum())
    rng = np.random.default_rng(seed)
    profiles = _profile_options(w, m)
    order = rng.permutation(len(profiles))
    profiles = [profiles[k] for k in order]
    for opts in profiles:
        rng.shuffle(opts)

    succ: dict[tuple, set] = defaultdict(set)
    refcount: dict[tuple, int] = defaultdict(int)
    for i in range(n):
        for link in range(m):
            for load in range(1, total):
                succ[(i, link, load)].add((i, link, load + 1))
                refcount[((i, link, load), (i, link, load + 1))] += 1

    def reachable(src: tuple, dst: tuple) -> bool:
        if src == dst:
            return True
        stack, seen = [src], {src}
        while stack:
            node = stack.pop()
            for nxt in succ[node]:
                if nxt == dst:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    chosen: list = [None] * len(profiles)
    t0 = time.monotonic()

    def forward_ok(k: int) -> bool:
        return all(
            any(not reachable(b, a) for a, b in profiles[j])
            for j in range(k, len(profiles))
        )

    def backtrack(k: int) -> bool:
        if time.monotonic() - t0 > time_budget:
            raise TimeoutError
        if k == len(profiles):
            return True
        for a, b in profiles[k]:
            if reachable(b, a):
                continue
            refcount[(a, b)] += 1
            succ[a].add(b)
            chosen[k] = (a, b)
            if forward_ok(k + 1) and backtrack(k + 1):
                return True
            refcount[(a, b)] -= 1
            if refcount[(a, b)] == 0:
                succ[a].discard(b)
            chosen[k] = None
        return False

    try:
        return list(chosen) if backtrack(0) else None
    except TimeoutError:
        return None


def _tables_from_selection(
    w: np.ndarray, m: int, chosen: list[tuple[tuple, tuple]]
) -> np.ndarray:
    """Longest-path levelling of the strict partial order into tables."""
    import networkx as nx

    n = w.size
    total = int(w.sum())
    g = nx.DiGraph()
    for i in range(n):
        for link in range(m):
            for load in range(1, total):
                g.add_edge((i, link, load), (i, link, load + 1))
    strict = set()
    for a, b in chosen:
        g.add_edge(a, b)
        strict.add((a, b))
    cond = nx.condensation(g)
    mapping = cond.graph["mapping"]
    level: dict[int, int] = {}
    for node in nx.topological_sort(cond):
        lv = 0
        for pred in cond.predecessors(node):
            bump = int(
                any(
                    (a, b) in strict
                    for a in cond.nodes[pred]["members"]
                    for b in cond.nodes[node]["members"]
                )
            )
            lv = max(lv, level[pred] + bump)
        level[node] = lv
    tables = np.zeros((n, m, total + 1))
    for i in range(n):
        for link in range(m):
            for load in range(1, total + 1):
                tables[i, link, load] = 1.0 + level[mapping[(i, link, load)]]
            tables[i, link, 0] = tables[i, link, 1]
    return tables


def multiplicative_pne_sweep(
    *,
    num_instances: int = 200,
    weights: tuple[int, ...] = WITNESS_WEIGHTS,
    num_links: int = 3,
    seed: RandomState = 0,
) -> int:
    """Count sampled *multiplicative* instances possessing a pure NE.

    Cost tables take the paper's form ``load / c^l_i`` with random
    player-specific capacities — the same weights and link count as the
    witness. Returning ``num_instances`` (all of them) reproduces the
    paper's point that Milchtaich's negative result does not transfer to
    the belief model.

    Each instance draws from its own spawned child stream (the library's
    per-rep seeding pattern), so instance ``k`` is reproducible in
    isolation and independent of how many instances ran before it.
    """
    streams = spawn_generators(seed, num_instances)
    w = np.asarray(weights, dtype=np.int64)
    total = int(w.sum())
    loads = np.arange(total + 1, dtype=np.float64)
    hits = 0
    for rng in streams:
        caps = rng.uniform(0.25, 4.0, size=(w.size, num_links))
        tables = loads[None, None, :] / caps[:, :, None]
        game = PlayerSpecificGame(w, tables)
        if game.exists_pure_nash():
            hits += 1
    return hits


def multiplicative_pne_hits(
    seeds,
    *,
    weights: tuple[int, ...] = WITNESS_WEIGHTS,
    num_links: int = 3,
) -> int:
    """Count multiplicative instances with a pure NE, one per seed.

    The campaign-runtime form of :func:`multiplicative_pne_sweep`: the
    caller supplies one independent stream seed per instance (the E12
    kernel passes its chunk's :func:`~repro.util.rng.stable_seed`
    values), so the sweep can be chunked, parallelised and resumed
    without a shared parent stream.
    """
    w = np.asarray(weights, dtype=np.int64)
    total = int(w.sum())
    loads = np.arange(total + 1, dtype=np.float64)
    hits = 0
    for seed in seeds:
        rng = as_generator(int(seed))
        caps = rng.uniform(0.25, 4.0, size=(w.size, num_links))
        tables = loads[None, None, :] / caps[:, :, None]
        game = PlayerSpecificGame(w, tables)
        if game.exists_pure_nash():
            hits += 1
    return hits
