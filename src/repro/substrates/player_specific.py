"""Weighted singleton congestion games with player-specific cost tables.

This is Milchtaich's class [17], of which the paper's model is the
*multiplicatively separable* instance: user ``i``'s cost on link ``l`` is
``load / c^l_i`` — a player-specific positive scaling of a common linear
latency. Milchtaich showed the general class need not have pure NE
(a 3-player counterexample), while the paper proves its multiplicative
subclass does for n = 3 and conjectures it always does. Experiment E12
reproduces that separation on this substrate.

Representation: weights are positive **integers**, so the achievable load
values on a link are the integers ``0..W`` with ``W = sum w_i``. Cost
tables are an ``(n, m, W + 1)`` array, nondecreasing along the load axis;
``cost[i, l, k]`` is what user ``i`` pays on link ``l`` when the total
load there (its own weight included) is ``k``. Integer loads make every
lookup exact — no floating-point grid matching.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import DimensionError, ModelError
from repro.model.game import UncertainRoutingGame
from repro.model.social import enumerate_assignments

__all__ = ["PlayerSpecificGame"]


class PlayerSpecificGame:
    """A weighted singleton congestion game with player-specific costs."""

    __slots__ = ("_weights", "_costs")

    def __init__(
        self,
        weights: Sequence[int] | np.ndarray,
        cost_tables: np.ndarray,
    ) -> None:
        w = np.array(weights, dtype=np.int64, copy=True, order="C")
        if w.ndim != 1 or w.size < 2:
            raise DimensionError("weights must be a vector of length >= 2")
        if np.any(w <= 0):
            raise ModelError("weights must be positive integers")
        costs = np.array(cost_tables, dtype=np.float64, copy=True, order="C")
        total = int(w.sum())
        if costs.ndim != 3 or costs.shape[0] != w.size or costs.shape[2] != total + 1:
            raise DimensionError(
                f"cost_tables must have shape (n, m, {total + 1}), got {costs.shape}"
            )
        if costs.shape[1] < 2:
            raise ModelError("need at least two links")
        if not np.all(np.isfinite(costs)):
            raise ModelError("cost tables contain non-finite entries")
        if np.any(np.diff(costs, axis=2) < 0):
            raise ModelError("cost tables must be nondecreasing in the load")
        self._weights = w
        self._costs = costs
        self._weights.setflags(write=False)
        self._costs.setflags(write=False)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def unweighted(cls, cost_by_count: np.ndarray) -> "PlayerSpecificGame":
        """Milchtaich's original unweighted setting.

        *cost_by_count* has shape ``(n, m, n)`` with entry ``(i, l, k-1)``
        the cost for user ``i`` on link ``l`` shared by ``k`` users. These
        games always possess a pure NE (Milchtaich 1996).
        """
        arr = np.ascontiguousarray(cost_by_count, dtype=np.float64)
        if arr.ndim != 3 or arr.shape[0] != arr.shape[2]:
            raise DimensionError("cost_by_count must have shape (n, m, n)")
        n, m, _ = arr.shape
        tables = np.empty((n, m, n + 1))
        tables[:, :, 0] = arr[:, :, 0]  # load 0 unused; keep monotone
        tables[:, :, 1:] = arr
        return cls(np.ones(n, dtype=np.int64), tables)

    @classmethod
    def from_uncertain_game(cls, game: UncertainRoutingGame) -> "PlayerSpecificGame":
        """Embed an integer-weight uncertain routing game.

        Demonstrates that the paper's model is the multiplicative instance
        of this class: ``cost[i, l, k] = k / c^l_i``. Requires integer
        weights and zero initial traffic.
        """
        w = game.weights
        if np.any(np.abs(w - np.round(w)) > 1e-9):
            raise ModelError("embedding requires integer user weights")
        if np.any(game.initial_traffic > 0):
            raise ModelError("embedding requires zero initial traffic")
        wi = np.round(w).astype(np.int64)
        total = int(wi.sum())
        loads = np.arange(total + 1, dtype=np.float64)
        tables = loads[None, None, :] / game.capacities[:, :, None]
        return cls(wi, tables)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def weights(self) -> np.ndarray:
        return self._weights

    @property
    def num_players(self) -> int:
        return self._weights.size

    @property
    def num_links(self) -> int:
        return self._costs.shape[1]

    @property
    def cost_tables(self) -> np.ndarray:
        return self._costs

    @property
    def total_weight(self) -> int:
        return int(self._weights.sum())

    def is_unweighted(self) -> bool:
        return bool(np.all(self._weights == 1))

    # ------------------------------------------------------------------ #
    # costs and equilibrium structure
    # ------------------------------------------------------------------ #

    def _normalise(self, assignment: Sequence[int] | np.ndarray) -> np.ndarray:
        sigma = np.ascontiguousarray(assignment, dtype=np.intp)
        if sigma.shape != (self.num_players,):
            raise DimensionError(
                f"assignment must have shape ({self.num_players},), got {sigma.shape}"
            )
        if np.any(sigma < 0) or np.any(sigma >= self.num_links):
            raise ModelError("assignment refers to a non-existent link")
        return sigma

    def loads(self, assignment: Sequence[int] | np.ndarray) -> np.ndarray:
        """Integer load per link under a pure assignment."""
        sigma = self._normalise(assignment)
        return np.bincount(
            sigma, weights=self._weights, minlength=self.num_links
        ).astype(np.int64)

    def costs_of(self, assignment: Sequence[int] | np.ndarray) -> np.ndarray:
        """Each player's cost under a pure assignment."""
        sigma = self._normalise(assignment)
        loads = self.loads(sigma)
        players = np.arange(self.num_players)
        return self._costs[players, sigma, loads[sigma]]

    def deviation_costs(self, assignment: Sequence[int] | np.ndarray) -> np.ndarray:
        """``(n, m)`` matrix of hypothetical costs after unilateral moves."""
        sigma = self._normalise(assignment)
        loads = self.loads(sigma)
        n, m = self.num_players, self.num_links
        players = np.arange(n)
        seen = loads[None, :] + self._weights[:, None]
        seen[players, sigma] -= self._weights
        return self._costs[players[:, None], np.arange(m)[None, :], seen]

    def is_pure_nash(
        self, assignment: Sequence[int] | np.ndarray, *, tol: float = 1e-12
    ) -> bool:
        """Whether no player can strictly reduce its cost unilaterally."""
        sigma = self._normalise(assignment)
        dev = self.deviation_costs(sigma)
        current = dev[np.arange(self.num_players), sigma]
        return bool(np.all(dev.min(axis=1) >= current - tol))

    def pure_nash_profiles(self) -> list[tuple[int, ...]]:
        """All pure NE by exhaustive sweep (small games only)."""
        n, m = self.num_players, self.num_links
        if m**n > 1_000_000:
            raise ModelError("game too large for exhaustive enumeration")
        out = []
        for row in enumerate_assignments(n, m):
            if self.is_pure_nash(row):
                out.append(tuple(int(x) for x in row))
        return out

    def exists_pure_nash(self) -> bool:
        """Whether at least one pure NE exists (exhaustive)."""
        n, m = self.num_players, self.num_links
        if m**n > 1_000_000:
            raise ModelError("game too large for exhaustive enumeration")
        for row in enumerate_assignments(n, m):
            if self.is_pure_nash(row):
                return True
        return False

    def best_response_dynamics(
        self,
        start: Sequence[int] | np.ndarray,
        *,
        max_steps: int = 10_000,
    ) -> tuple[np.ndarray, bool, int]:
        """Round-robin best responses; returns (profile, converged, steps)."""
        sigma = self._normalise(start).copy()
        for step in range(max_steps):
            dev = self.deviation_costs(sigma)
            current = dev[np.arange(self.num_players), sigma]
            movers = np.flatnonzero(dev.min(axis=1) < current - 1e-12)
            if movers.size == 0:
                return sigma, True, step
            user = int(movers[0])
            sigma[user] = int(np.argmin(dev[user]))
        return sigma, False, max_steps

    def __repr__(self) -> str:
        return (
            f"PlayerSpecificGame(n={self.num_players}, m={self.num_links}, "
            f"total_weight={self.total_weight})"
        )
