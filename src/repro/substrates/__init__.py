"""Substrates the paper builds on: the KP-model (complete information) and
Milchtaich's player-specific congestion games (the superclass whose
negative result the paper contrasts against)."""

from repro.substrates.kp import (
    expected_max_congestion,
    kp_game,
    kp_greedy_nash,
    kp_price_of_anarchy,
    opt_max_congestion,
)
from repro.substrates.milchtaich import (
    CounterexampleReport,
    canonical_counterexample,
    multiplicative_pne_sweep,
    search_no_pne_instance,
)
from repro.substrates.player_specific import PlayerSpecificGame

__all__ = [
    "expected_max_congestion",
    "kp_game",
    "kp_greedy_nash",
    "kp_price_of_anarchy",
    "opt_max_congestion",
    "CounterexampleReport",
    "canonical_counterexample",
    "multiplicative_pne_sweep",
    "search_no_pne_instance",
    "PlayerSpecificGame",
]
