"""Pure and mixed strategy profiles.

A *pure profile* assigns each user one link: an integer vector of length
``n`` with entries in ``[0, m)``. A *mixed profile* is an ``(n, m)``
row-stochastic matrix ``P`` with ``P[i, l]`` the probability that user
``i`` routes on link ``l`` (the paper's probability matrix).

Both are thin wrappers over NumPy arrays so that the latency engine and
the equilibrium solvers can operate on raw arrays; every function in the
library also accepts plain arrays/sequences and normalises them through
:func:`as_assignment` / :func:`as_mixed_matrix`.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

from repro.errors import DimensionError, ModelError
from repro.util.validation import check_probability_matrix

__all__ = [
    "PureProfile",
    "MixedProfile",
    "AssignmentLike",
    "MixedLike",
    "as_assignment",
    "as_mixed_matrix",
    "loads_of",
    "pure_to_mixed",
    "profile_from_support_sets",
]


class PureProfile:
    """An immutable pure strategies profile ``<l_1, ..., l_n>``."""

    __slots__ = ("_links",)

    def __init__(self, links: Sequence[int] | np.ndarray, num_links: int) -> None:
        # copy=True: the profile freezes its array, which must never alias
        # a caller-owned buffer (dynamics mutate their working assignment).
        arr = np.array(links, dtype=np.intp, copy=True)
        if arr.ndim != 1:
            raise DimensionError(f"assignment must be a vector, got shape {arr.shape}")
        if arr.size == 0:
            raise ModelError("assignment must cover at least one user")
        if num_links < 1:
            raise ModelError("num_links must be >= 1")
        if np.any(arr < 0) or np.any(arr >= num_links):
            raise ModelError(
                f"assignment entries must lie in [0, {num_links}), got "
                f"range [{int(arr.min())}, {int(arr.max())}]"
            )
        self._links = arr
        self._links.setflags(write=False)

    @property
    def links(self) -> np.ndarray:
        """Read-only link index per user."""
        return self._links

    @property
    def num_users(self) -> int:
        return self._links.size

    def link_of(self, user: int) -> int:
        return int(self._links[user])

    def with_move(self, user: int, link: int, num_links: int) -> "PureProfile":
        """The profile obtained when *user* unilaterally moves to *link*."""
        links = self._links.copy()
        links[user] = link
        return PureProfile(links, num_links)

    def users_on(self, link: int) -> np.ndarray:
        """Indices of users currently routing on *link*."""
        return np.flatnonzero(self._links == link)

    def as_tuple(self) -> tuple[int, ...]:
        return tuple(int(x) for x in self._links)

    def __iter__(self) -> Iterable[int]:
        return iter(self.as_tuple())

    def __len__(self) -> int:
        return self._links.size

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PureProfile):
            return bool(np.array_equal(self._links, other._links))
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._links.tobytes())

    def __repr__(self) -> str:
        return f"PureProfile({self.as_tuple()})"


class MixedProfile:
    """An immutable mixed strategies profile — a row-stochastic matrix."""

    __slots__ = ("_matrix",)

    def __init__(self, matrix: Sequence[Sequence[float]] | np.ndarray) -> None:
        self._matrix = check_probability_matrix(matrix, name="mixed profile")
        self._matrix.setflags(write=False)

    @property
    def matrix(self) -> np.ndarray:
        """Read-only ``(n, m)`` probability matrix."""
        return self._matrix

    @property
    def num_users(self) -> int:
        return self._matrix.shape[0]

    @property
    def num_links(self) -> int:
        return self._matrix.shape[1]

    def support_of(self, user: int, *, atol: float = 1e-12) -> np.ndarray:
        """Link indices played with positive probability by *user*."""
        return np.flatnonzero(self._matrix[user] > atol)

    def is_fully_mixed(self, *, atol: float = 1e-12) -> bool:
        """True when every user assigns positive probability to every link."""
        return bool(np.all(self._matrix > atol))

    def is_pure(self, *, atol: float = 1e-12) -> bool:
        """True when every row is (numerically) a point mass."""
        return bool(np.all(np.max(self._matrix, axis=1) >= 1.0 - atol))

    def to_pure(self, *, atol: float = 1e-12) -> PureProfile:
        """Collapse a (numerically) pure matrix into a :class:`PureProfile`."""
        if not self.is_pure(atol=atol):
            raise ModelError("profile is not pure")
        return PureProfile(np.argmax(self._matrix, axis=1), self.num_links)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MixedProfile):
            return bool(np.array_equal(self._matrix, other._matrix))
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._matrix.tobytes())

    def __repr__(self) -> str:
        return f"MixedProfile(n={self.num_users}, m={self.num_links})"


AssignmentLike = Union[PureProfile, Sequence[int], np.ndarray]
MixedLike = Union[MixedProfile, Sequence[Sequence[float]], np.ndarray]


def as_assignment(assignment: AssignmentLike, num_users: int, num_links: int) -> np.ndarray:
    """Normalise *assignment* to a validated intp vector of length *num_users*."""
    if isinstance(assignment, PureProfile):
        arr = assignment.links
    else:
        arr = PureProfile(assignment, num_links).links
    if arr.size != num_users:
        raise DimensionError(
            f"assignment covers {arr.size} users, game has {num_users}"
        )
    if np.any(arr >= num_links):
        raise ModelError("assignment refers to a non-existent link")
    return arr


def as_mixed_matrix(mixed: MixedLike, num_users: int, num_links: int) -> np.ndarray:
    """Normalise *mixed* to a validated ``(num_users, num_links)`` matrix."""
    mat = mixed.matrix if isinstance(mixed, MixedProfile) else MixedProfile(mixed).matrix
    if mat.shape != (num_users, num_links):
        raise DimensionError(
            f"mixed profile has shape {mat.shape}, expected {(num_users, num_links)}"
        )
    return mat


def loads_of(
    assignment: np.ndarray,
    weights: np.ndarray,
    num_links: int,
    initial_traffic: np.ndarray | None = None,
) -> np.ndarray:
    """Per-link traffic induced by a pure assignment (plus initial traffic)."""
    loads = np.bincount(assignment, weights=weights, minlength=num_links).astype(
        np.float64, copy=False
    )
    if initial_traffic is not None:
        loads = loads + initial_traffic
    return loads


def pure_to_mixed(assignment: AssignmentLike, num_users: int, num_links: int) -> MixedProfile:
    """Embed a pure profile as a degenerate mixed profile (one-hot rows)."""
    arr = as_assignment(assignment, num_users, num_links)
    mat = np.zeros((num_users, num_links))
    mat[np.arange(num_users), arr] = 1.0
    return MixedProfile(mat)


def profile_from_support_sets(
    supports: Sequence[Sequence[int]],
    probabilities: Sequence[Sequence[float]],
    num_links: int,
) -> MixedProfile:
    """Assemble a mixed profile from per-user supports and support-local
    probability vectors (used by the support-enumeration solver)."""
    if len(supports) != len(probabilities):
        raise DimensionError("supports and probabilities must align per user")
    n = len(supports)
    mat = np.zeros((n, num_links))
    for i, (supp, probs) in enumerate(zip(supports, probabilities)):
        supp_arr = np.asarray(supp, dtype=np.intp)
        prob_arr = np.asarray(probs, dtype=np.float64)
        if supp_arr.size != prob_arr.size:
            raise DimensionError(f"user {i}: support and probabilities differ in size")
        mat[i, supp_arr] = prob_arr
    return MixedProfile(mat)
