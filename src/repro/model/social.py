"""Social cost, social optimum and coordination ratios (Section 2).

Because every user evaluates the network through its own belief, there is
no objective link latency; the paper therefore defines two *subjective*
social costs over a profile ``P``:

* ``SC1(G, P) = sum_i lambda_{i, b_i}(P)`` — the sum of individual costs;
* ``SC2(G, P) = max_i lambda_{i, b_i}(P)`` — the maximum individual cost;

and the matching optima over *pure* assignments:

* ``OPT1(G) = min_sigma sum_i lambda_{i, b_i}(sigma)``;
* ``OPT2(G) = min_sigma max_i lambda_{i, b_i}(sigma)``.

The coordination ratios (price of anarchy) are ``SCk / OPTk``.

Optima are computed exactly, either by a fully vectorised sweep over all
``m^n`` assignments (small games) or by a branch-and-bound search that
exploits two monotonicity facts: loads only grow as users are added, and a
user's final latency is at least its best-case latency against the current
partial loads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.errors import ModelError, SolverError
from repro.model.game import UncertainRoutingGame
from repro.model.latency import min_expected_latencies, pure_latencies
from repro.model.profiles import (
    AssignmentLike,
    MixedLike,
    MixedProfile,
    PureProfile,
    as_assignment,
)

__all__ = [
    "sc1",
    "sc2",
    "social_costs_of_pure",
    "individual_costs",
    "OptimumResult",
    "optimum",
    "opt1",
    "opt2",
    "coordination_ratios",
    "enumerate_assignments",
    "all_pure_costs",
]

Objective = Literal["sum", "max"]

#: Refuse exhaustive enumeration beyond this many profiles (~1.6e7 doubles).
MAX_EXHAUSTIVE_PROFILES = 2_000_000


def individual_costs(game: UncertainRoutingGame, profile: MixedLike | AssignmentLike) -> np.ndarray:
    """Per-user individual cost ``lambda_{i, b_i}`` for a pure or mixed profile.

    For a pure profile this is the belief-expected latency on the chosen
    link; for a mixed profile it is the minimum expected latency over links
    (eq. 1 of the paper — at a Nash equilibrium this equals the cost on
    every support link).
    """
    if isinstance(profile, MixedProfile):
        return min_expected_latencies(game, profile)
    if isinstance(profile, PureProfile):
        return pure_latencies(game, profile)
    arr = np.asarray(profile, dtype=np.float64)
    if arr.ndim == 2:
        return min_expected_latencies(game, profile)
    return pure_latencies(game, profile)


def sc1(game: UncertainRoutingGame, profile: MixedLike | AssignmentLike) -> float:
    """``SC1`` — sum of the users' individual costs."""
    return float(individual_costs(game, profile).sum())


def sc2(game: UncertainRoutingGame, profile: MixedLike | AssignmentLike) -> float:
    """``SC2`` — maximum of the users' individual costs."""
    return float(individual_costs(game, profile).max())


def social_costs_of_pure(
    game: UncertainRoutingGame, assignment: AssignmentLike
) -> tuple[float, float]:
    """``(SC1, SC2)`` of a pure profile in one latency evaluation."""
    lat = pure_latencies(game, assignment)
    return float(lat.sum()), float(lat.max())


# ---------------------------------------------------------------------- #
# exhaustive machinery
# ---------------------------------------------------------------------- #


def enumerate_assignments(num_users: int, num_links: int) -> np.ndarray:
    """All ``m^n`` pure assignments as an ``(m^n, n)`` intp matrix.

    Assignments are produced in mixed-radix order (user 0 is the most
    significant digit), so row ``r`` encodes ``r`` written base ``m``.
    """
    total = num_links**num_users
    if total > MAX_EXHAUSTIVE_PROFILES:
        raise ModelError(
            f"{num_links}^{num_users} = {total} assignments exceed the "
            f"exhaustive limit of {MAX_EXHAUSTIVE_PROFILES}"
        )
    codes = np.arange(total, dtype=np.int64)
    out = np.empty((total, num_users), dtype=np.intp)
    for i in range(num_users - 1, -1, -1):
        out[:, i] = codes % num_links
        codes //= num_links
    return out


def all_pure_costs(
    game: UncertainRoutingGame, assignments: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Latency matrix for *every* pure assignment, fully vectorised.

    Returns ``(assignments, latencies)`` where ``latencies[r, i]`` is the
    belief-expected latency of user ``i`` under assignment row ``r``. Used
    by the exhaustive optimum and by the pure-NE enumerator.
    """
    if assignments is None:
        assignments = enumerate_assignments(game.num_users, game.num_links)
    sig = np.ascontiguousarray(assignments, dtype=np.intp)
    n, m = game.num_users, game.num_links
    w = game.weights
    # loads[r, l] = t_l + sum_i w_i [sig[r, i] == l]   (one-hot matmul-free)
    loads = np.zeros((sig.shape[0], m))
    for link in range(m):
        loads[:, link] = (w[None, :] * (sig == link)).sum(axis=1)
    loads += game.initial_traffic[None, :]
    rows = np.arange(sig.shape[0])[:, None]
    lat = loads[rows, sig] / game.capacities[np.arange(n)[None, :], sig]
    return sig, lat


@dataclass(frozen=True)
class OptimumResult:
    """An optimal pure assignment and its objective value."""

    value: float
    assignment: PureProfile
    objective: Objective
    method: str

    def __iter__(self):  # allow ``value, sigma = optimum(...)`` unpacking
        return iter((self.value, self.assignment))


def optimum(
    game: UncertainRoutingGame,
    objective: Objective = "sum",
    *,
    method: Literal["auto", "exhaustive", "branch_and_bound"] = "auto",
) -> OptimumResult:
    """Exact social optimum over pure assignments.

    ``method="auto"`` sweeps all assignments when ``m^n`` is small and
    falls back to branch-and-bound otherwise.
    """
    if objective not in ("sum", "max"):
        raise ModelError(f"objective must be 'sum' or 'max', got {objective!r}")
    total = game.num_links**game.num_users
    if method == "auto":
        method = "exhaustive" if total <= 200_000 else "branch_and_bound"
    if method == "exhaustive":
        sig, lat = all_pure_costs(game)
        scores = lat.sum(axis=1) if objective == "sum" else lat.max(axis=1)
        best = int(np.argmin(scores))
        return OptimumResult(
            value=float(scores[best]),
            assignment=PureProfile(sig[best], game.num_links),
            objective=objective,
            method="exhaustive",
        )
    if method == "branch_and_bound":
        value, links = _branch_and_bound(game, objective)
        return OptimumResult(
            value=value,
            assignment=PureProfile(links, game.num_links),
            objective=objective,
            method="branch_and_bound",
        )
    raise ModelError(f"unknown method {method!r}")


def opt1(game: UncertainRoutingGame, **kwargs) -> float:
    """``OPT1(G)`` — minimum sum of individual costs over pure assignments."""
    return optimum(game, "sum", **kwargs).value


def opt2(game: UncertainRoutingGame, **kwargs) -> float:
    """``OPT2(G)`` — minimum maximum individual cost over pure assignments."""
    return optimum(game, "max", **kwargs).value


def coordination_ratios(
    game: UncertainRoutingGame, profile: MixedLike | AssignmentLike
) -> tuple[float, float]:
    """``(SC1/OPT1, SC2/OPT2)`` of a profile — the per-instance PoA terms."""
    costs = individual_costs(game, profile)
    return (
        float(costs.sum()) / opt1(game),
        float(costs.max()) / opt2(game),
    )


# ---------------------------------------------------------------------- #
# branch and bound
# ---------------------------------------------------------------------- #


def _greedy_upper_bound(
    game: UncertainRoutingGame, order: np.ndarray, objective: Objective
) -> tuple[float, np.ndarray]:
    """Greedy completion used as the initial incumbent: place users (largest
    first) on the link minimising the objective increment."""
    m = game.num_links
    loads = game.initial_traffic.copy()
    links = np.empty(game.num_users, dtype=np.intp)
    for i in order:
        cand = (loads + game.weights[i]) / game.capacities[i]
        link = int(np.argmin(cand))
        links[i] = link
        loads[link] += game.weights[i]
    lat = pure_latencies(game, links)
    value = float(lat.sum()) if objective == "sum" else float(lat.max())
    return value, links


def _branch_and_bound(
    game: UncertainRoutingGame, objective: Objective
) -> tuple[float, np.ndarray]:
    """Depth-first branch-and-bound over user placements.

    Users are branched in decreasing weight order (large items first gives
    tight early bounds, as in LPT). The lower bound for a partial
    assignment combines (a) the *current* latencies of already-placed
    users, which only grow, and (b) each remaining user's best-case
    latency against current loads.
    """
    n, m = game.num_users, game.num_links
    w, caps = game.weights, game.capacities
    order = np.argsort(-w, kind="stable")
    best_value, best_links = _greedy_upper_bound(game, order, objective)

    loads = game.initial_traffic.copy()
    links = np.full(n, -1, dtype=np.intp)
    eps = 1e-12

    def lower_bound(depth: int) -> float:
        placed = order[:depth]
        remaining = order[depth:]
        if placed.size:
            cur = loads[links[placed]] / caps[placed, links[placed]]
        else:
            cur = np.zeros(0)
        if remaining.size:
            fut = ((loads[None, :] + w[remaining, None]) / caps[remaining]).min(axis=1)
        else:
            fut = np.zeros(0)
        if objective == "max":
            lo = 0.0
            if cur.size:
                lo = max(lo, float(cur.max()))
            if fut.size:
                lo = max(lo, float(fut.max()))
            return lo
        return float(cur.sum()) + float(fut.sum())

    def dfs(depth: int) -> None:
        nonlocal best_value, best_links
        if depth == n:
            lat = pure_latencies(game, links)
            value = float(lat.sum()) if objective == "sum" else float(lat.max())
            if value < best_value - eps:
                best_value = value
                best_links = links.copy()
            return
        user = order[depth]
        # Try links in order of immediate latency for better incumbents.
        cand = (loads + w[user]) / caps[user]
        for link in np.argsort(cand, kind="stable"):
            links[user] = link
            loads[link] += w[user]
            if lower_bound(depth + 1) < best_value - eps:
                dfs(depth + 1)
            loads[link] -= w[user]
            links[user] = -1

    dfs(0)
    if np.any(best_links < 0):  # pragma: no cover - defensive
        raise SolverError("branch-and-bound failed to produce an assignment")
    return best_value, best_links
