"""Model layer: states, beliefs, games, latencies, profiles, social cost."""

from repro.model.beliefs import (
    Belief,
    BeliefProfile,
    common_belief_profile,
    dirichlet_belief,
    point_mass_belief,
    uniform_belief,
)
from repro.model.game import UncertainRoutingGame
from repro.model.latency import (
    expected_link_latencies,
    min_expected_latencies,
    mixed_latency_matrix,
    pure_latencies,
    pure_latency_of_user,
)
from repro.model.profiles import (
    MixedProfile,
    PureProfile,
    loads_of,
    profile_from_support_sets,
    pure_to_mixed,
)
from repro.model.social import (
    OptimumResult,
    coordination_ratios,
    opt1,
    opt2,
    optimum,
    sc1,
    sc2,
    social_costs_of_pure,
)
from repro.model.state import StateSpace

__all__ = [
    "Belief",
    "BeliefProfile",
    "common_belief_profile",
    "dirichlet_belief",
    "point_mass_belief",
    "uniform_belief",
    "UncertainRoutingGame",
    "expected_link_latencies",
    "min_expected_latencies",
    "mixed_latency_matrix",
    "pure_latencies",
    "pure_latency_of_user",
    "MixedProfile",
    "PureProfile",
    "loads_of",
    "profile_from_support_sets",
    "pure_to_mixed",
    "OptimumResult",
    "coordination_ratios",
    "opt1",
    "opt2",
    "optimum",
    "sc1",
    "sc2",
    "social_costs_of_pure",
    "StateSpace",
]
