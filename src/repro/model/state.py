"""Network states and state spaces (Section 2 of the paper).

A *state* assigns a strictly positive capacity to each of the ``m``
parallel links; the *state space* ``Phi`` is the finite set of states the
network may realize. The paper models uncertainty about which state holds
through per-user beliefs over ``Phi`` (see :mod:`repro.model.beliefs`).

Internally a state space is a dense ``(num_states, m)`` float64 matrix —
row ``phi`` is state ``phi``'s capacity vector — which lets the effective
capacities of every (user, link) pair be computed with one matmul.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import DimensionError, ModelError
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_positive_array

__all__ = ["StateSpace"]


class StateSpace:
    """A finite set of capacity states over ``m`` parallel links.

    Parameters
    ----------
    capacities:
        Array-like of shape ``(num_states, m)``; ``capacities[phi, l]`` is
        the capacity of link ``l`` in state ``phi``. Must be strictly
        positive.
    names:
        Optional human-readable state labels (e.g. ``"congested"``,
        ``"failover"``); defaults to ``"phi0", "phi1", ...``.
    """

    __slots__ = ("_capacities", "_names")

    def __init__(
        self,
        capacities: Sequence[Sequence[float]] | np.ndarray,
        names: Sequence[str] | None = None,
    ) -> None:
        arr = check_positive_array(capacities, name="capacities", ndim=2)
        if arr.shape[1] < 1:
            raise ModelError("state space needs at least one link")
        self._capacities = arr
        self._capacities.setflags(write=False)
        if names is None:
            self._names = tuple(f"phi{i}" for i in range(arr.shape[0]))
        else:
            names = tuple(str(s) for s in names)
            if len(names) != arr.shape[0]:
                raise DimensionError(
                    f"got {len(names)} names for {arr.shape[0]} states"
                )
            if len(set(names)) != len(names):
                raise ModelError("state names must be unique")
            self._names = names

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def single(cls, capacities: Sequence[float] | np.ndarray) -> "StateSpace":
        """A degenerate (certain) state space with one state.

        With a common point-mass belief this recovers the KP-model exactly.
        """
        arr = check_positive_array(capacities, name="capacities", ndim=1)
        return cls(arr[None, :], names=("certain",))

    @classmethod
    def from_states(cls, states: Iterable[Sequence[float]]) -> "StateSpace":
        """Build from an iterable of per-state capacity vectors."""
        rows = [check_positive_array(s, name="state", ndim=1) for s in states]
        if not rows:
            raise ModelError("state space needs at least one state")
        width = rows[0].size
        for r in rows:
            if r.size != width:
                raise DimensionError("all states must have the same number of links")
        return cls(np.stack(rows, axis=0))

    @classmethod
    def random(
        cls,
        num_states: int,
        num_links: int,
        *,
        low: float = 0.5,
        high: float = 4.0,
        seed: RandomState = None,
    ) -> "StateSpace":
        """Sample a state space with capacities uniform in ``[low, high)``."""
        if num_states < 1 or num_links < 1:
            raise ModelError("num_states and num_links must be >= 1")
        if not (0 < low < high):
            raise ModelError("require 0 < low < high")
        rng = as_generator(seed)
        caps = rng.uniform(low, high, size=(num_states, num_links))
        return cls(caps)

    @classmethod
    def perturbations(
        cls,
        base: Sequence[float] | np.ndarray,
        *,
        factors: Sequence[float] = (0.5, 1.0, 2.0),
    ) -> "StateSpace":
        """States obtained by scaling a base capacity vector.

        Models the paper's motivating scenario: the same physical path looks
        faster or slower depending on transient congestion/failures.
        """
        base_arr = check_positive_array(base, name="base", ndim=1)
        fac = check_positive_array(factors, name="factors", ndim=1)
        caps = fac[:, None] * base_arr[None, :]
        names = tuple(f"x{f:g}" for f in fac)
        return cls(caps, names=names)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def capacities(self) -> np.ndarray:
        """Read-only ``(num_states, m)`` capacity matrix."""
        return self._capacities

    @property
    def num_states(self) -> int:
        return self._capacities.shape[0]

    @property
    def num_links(self) -> int:
        return self._capacities.shape[1]

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    def state(self, index: int) -> np.ndarray:
        """Capacity vector of state *index* (read-only view)."""
        return self._capacities[index]

    def index_of(self, name: str) -> int:
        """Index of the state labelled *name*."""
        try:
            return self._names.index(name)
        except ValueError:
            raise KeyError(f"no state named {name!r}") from None

    # ------------------------------------------------------------------ #
    # dunder plumbing
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self.num_states

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StateSpace):
            return NotImplemented
        return (
            self._names == other._names
            and self._capacities.shape == other._capacities.shape
            and bool(np.array_equal(self._capacities, other._capacities))
        )

    def __hash__(self) -> int:
        return hash((self._names, self._capacities.tobytes()))

    def __repr__(self) -> str:
        return f"StateSpace(num_states={self.num_states}, num_links={self.num_links})"
