"""The uncertain routing game ``G = (n, m, w, B)`` (Section 2).

:class:`UncertainRoutingGame` bundles the traffic vector, the belief
profile over a capacity state space, and (as in the paper's two-link
algorithm) an optional vector of *initial* link traffic. On construction
the game precomputes its **reduced form** — the ``(n, m)`` effective
capacity matrix ``C[i, l] = c_i^l`` — through which every latency and
equilibrium computation in the library is expressed.

Any strictly positive ``(n, m)`` matrix is realisable as the reduced form
of some belief game: give the state space one state per user holding that
user's row, and let each user be certain of "their" state. This is what
:meth:`UncertainRoutingGame.from_capacities` does, so the reduced form and
the belief form are interchangeable.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import DimensionError, ModelError
from repro.model.beliefs import Belief, BeliefProfile, point_mass_belief
from repro.model.state import StateSpace
from repro.util.validation import check_positive_array

__all__ = ["UncertainRoutingGame"]


class UncertainRoutingGame:
    """A selfish-routing game on parallel links with capacity uncertainty.

    Parameters
    ----------
    weights:
        Strictly positive traffic vector ``w`` of length ``n`` (``n >= 2``).
    beliefs:
        A :class:`~repro.model.beliefs.BeliefProfile` with one belief per
        user over a shared :class:`~repro.model.state.StateSpace` with
        ``m >= 2`` links.
    initial_traffic:
        Optional non-negative per-link traffic already present on the
        network (the ``t`` vector of the paper's two-link setting).
        Defaults to zero on every link.
    """

    __slots__ = ("_weights", "_beliefs", "_capacities", "_initial_traffic")

    def __init__(
        self,
        weights: Sequence[float] | np.ndarray,
        beliefs: BeliefProfile,
        *,
        initial_traffic: Sequence[float] | np.ndarray | None = None,
    ) -> None:
        w = check_positive_array(weights, name="weights", ndim=1)
        if w.size < 2:
            raise ModelError(f"the model requires n > 1 users, got n={w.size}")
        if beliefs.num_users != w.size:
            raise DimensionError(
                f"{w.size} weights but belief profile covers {beliefs.num_users} users"
            )
        m = beliefs.states.num_links
        if m < 2:
            raise ModelError(f"the model requires m > 1 links, got m={m}")
        if initial_traffic is None:
            t = np.zeros(m)
        else:
            t = np.array(initial_traffic, dtype=np.float64, copy=True, order="C")
            if t.shape != (m,):
                raise DimensionError(
                    f"initial_traffic must have shape ({m},), got {t.shape}"
                )
            if not np.all(np.isfinite(t)) or np.any(t < 0):
                raise ModelError("initial_traffic must be finite and non-negative")
        self._weights = w
        self._beliefs = beliefs
        self._capacities = np.ascontiguousarray(beliefs.effective_capacities())
        self._initial_traffic = t
        for arr in (self._weights, self._capacities, self._initial_traffic):
            arr.setflags(write=False)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_capacities(
        cls,
        weights: Sequence[float] | np.ndarray,
        capacities: Sequence[Sequence[float]] | np.ndarray,
        *,
        initial_traffic: Sequence[float] | np.ndarray | None = None,
    ) -> "UncertainRoutingGame":
        """Build a game directly from its reduced form.

        ``capacities`` is the ``(n, m)`` effective-capacity matrix
        ``C[i, l]``. The canonical realisation uses one state per user:
        state ``i`` carries row ``i`` and user ``i`` is certain of it.
        """
        c = check_positive_array(capacities, name="capacities", ndim=2)
        w = check_positive_array(weights, name="weights", ndim=1)
        if c.shape[0] != w.size:
            raise DimensionError(
                f"capacity matrix has {c.shape[0]} rows for {w.size} users"
            )
        states = StateSpace(c, names=tuple(f"user{i}-view" for i in range(c.shape[0])))
        profile = BeliefProfile(
            states,
            [point_mass_belief(c.shape[0], i) for i in range(c.shape[0])],
        )
        return cls(w, profile, initial_traffic=initial_traffic)

    @classmethod
    def kp(
        cls,
        weights: Sequence[float] | np.ndarray,
        link_capacities: Sequence[float] | np.ndarray,
        *,
        initial_traffic: Sequence[float] | np.ndarray | None = None,
    ) -> "UncertainRoutingGame":
        """The KP-model: a single certain state shared by all users."""
        w = check_positive_array(weights, name="weights", ndim=1)
        states = StateSpace.single(link_capacities)
        profile = BeliefProfile(states, [point_mass_belief(1, 0)] * w.size)
        return cls(w, profile, initial_traffic=initial_traffic)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def num_users(self) -> int:
        """``n`` — number of users."""
        return self._weights.size

    @property
    def num_links(self) -> int:
        """``m`` — number of parallel links."""
        return self._capacities.shape[1]

    @property
    def weights(self) -> np.ndarray:
        """Read-only traffic vector ``w`` of shape ``(n,)``."""
        return self._weights

    @property
    def total_traffic(self) -> float:
        """``T = sum_i w_i``."""
        return float(self._weights.sum())

    @property
    def beliefs(self) -> BeliefProfile:
        """The belief profile ``B``."""
        return self._beliefs

    @property
    def capacities(self) -> np.ndarray:
        """Read-only reduced form: ``(n, m)`` effective capacities ``c_i^l``."""
        return self._capacities

    @property
    def initial_traffic(self) -> np.ndarray:
        """Read-only per-link initial traffic ``t`` of shape ``(m,)``."""
        return self._initial_traffic

    # ------------------------------------------------------------------ #
    # special-case predicates (drive algorithm dispatch)
    # ------------------------------------------------------------------ #

    def is_kp(self, *, atol: float = 1e-12) -> bool:
        """True when all users share a single point-mass belief."""
        return self._beliefs.is_kp(atol=atol)

    def has_common_beliefs(self, *, atol: float = 1e-12) -> bool:
        """True when all users hold the same belief distribution."""
        return self._beliefs.is_common(atol=atol)

    def has_uniform_beliefs(self, *, rtol: float = 1e-9) -> bool:
        """True under the paper's *uniform user beliefs* model: each user
        believes all links have equal capacity, i.e. every row of the
        reduced form is constant across links."""
        c = self._capacities
        return bool(np.all(np.abs(c - c[:, :1]) <= rtol * c[:, :1]))

    def has_symmetric_users(self, *, rtol: float = 1e-12) -> bool:
        """True when all user weights are equal (the Fig. 2 setting)."""
        w = self._weights
        return bool(np.all(np.abs(w - w[0]) <= rtol * abs(w[0])))

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #

    def with_initial_traffic(
        self, initial_traffic: Sequence[float] | np.ndarray
    ) -> "UncertainRoutingGame":
        """A copy of this game with a different initial traffic vector."""
        return UncertainRoutingGame(
            self._weights, self._beliefs, initial_traffic=initial_traffic
        )

    def subgame(self, users: Sequence[int]) -> "UncertainRoutingGame":
        """The restriction of this game to the given users (order kept).

        Used by the recursive algorithms, which peel off one user per level.
        """
        idx = np.asarray(users, dtype=np.intp)
        if idx.size < 2:
            raise ModelError("a subgame still needs at least two users")
        beliefs = BeliefProfile(
            self._beliefs.states,
            [Belief(self._beliefs.matrix[i]) for i in idx],
        )
        return UncertainRoutingGame(
            self._weights[idx], beliefs, initial_traffic=self._initial_traffic
        )

    # ------------------------------------------------------------------ #
    # dunder plumbing
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:
        tags = []
        if self.is_kp():
            tags.append("kp")
        elif self.has_common_beliefs():
            tags.append("common-beliefs")
        if self.has_uniform_beliefs():
            tags.append("uniform-beliefs")
        if self.has_symmetric_users():
            tags.append("symmetric-users")
        suffix = f", {'+'.join(tags)}" if tags else ""
        return (
            f"UncertainRoutingGame(n={self.num_users}, m={self.num_links}{suffix})"
        )
