"""User beliefs over network states (Section 2 of the paper).

A *belief* is a probability distribution over the states of a
:class:`~repro.model.state.StateSpace`; a *belief profile* holds one belief
per user. Beliefs are the source of the model's user-specific payoffs: the
expected latency of user ``i`` on link ``l`` depends on the belief-weighted
harmonic mean of the link's possible capacities,

    c_i^l  =  1 / sum_phi  b_i(phi) / c_phi^l,

the paper's "effective capacity". :meth:`BeliefProfile.effective_capacities`
computes the full ``(n, m)`` matrix with a single matrix product.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import BeliefError, DimensionError
from repro.model.state import StateSpace
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_probability_matrix, check_probability_vector

__all__ = [
    "Belief",
    "BeliefProfile",
    "point_mass_belief",
    "uniform_belief",
    "dirichlet_belief",
    "common_belief_profile",
]


class Belief:
    """A probability distribution over the states of one state space."""

    __slots__ = ("_probs",)

    def __init__(self, probabilities: Sequence[float] | np.ndarray) -> None:
        self._probs = check_probability_vector(probabilities, name="belief")
        self._probs.setflags(write=False)

    @property
    def probabilities(self) -> np.ndarray:
        """Read-only probability vector over states."""
        return self._probs

    @property
    def num_states(self) -> int:
        return self._probs.size

    def probability_of(self, state_index: int) -> float:
        """``b(phi)`` for state index *phi*."""
        return float(self._probs[state_index])

    def support(self) -> np.ndarray:
        """Indices of states with strictly positive probability."""
        return np.flatnonzero(self._probs > 0.0)

    def is_point_mass(self) -> bool:
        """True when the belief is certain about a single state."""
        return bool(np.max(self._probs) == 1.0)

    def expected_inverse_capacities(self, states: StateSpace) -> np.ndarray:
        """``sum_phi b(phi) / c_phi^l`` for every link ``l``."""
        if states.num_states != self.num_states:
            raise DimensionError(
                f"belief over {self.num_states} states applied to a space "
                f"with {states.num_states} states"
            )
        return self._probs @ (1.0 / states.capacities)

    def effective_capacities(self, states: StateSpace) -> np.ndarray:
        """The paper's ``c_i^l`` vector: belief-harmonic capacity per link."""
        return 1.0 / self.expected_inverse_capacities(states)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Belief):
            return NotImplemented
        return bool(np.array_equal(self._probs, other._probs))

    def __hash__(self) -> int:
        return hash(self._probs.tobytes())

    def __repr__(self) -> str:
        return f"Belief({np.array2string(self._probs, precision=4)})"


# ---------------------------------------------------------------------- #
# belief factories
# ---------------------------------------------------------------------- #


def point_mass_belief(num_states: int, state_index: int) -> Belief:
    """Belief certain that state *state_index* holds (the KP-model case)."""
    if not 0 <= state_index < num_states:
        raise BeliefError(
            f"state_index {state_index} out of range for {num_states} states"
        )
    probs = np.zeros(num_states)
    probs[state_index] = 1.0
    return Belief(probs)


def uniform_belief(num_states: int) -> Belief:
    """Maximum-entropy belief: every state equally likely."""
    if num_states < 1:
        raise BeliefError("num_states must be >= 1")
    return Belief(np.full(num_states, 1.0 / num_states))


def dirichlet_belief(
    num_states: int,
    *,
    concentration: float = 1.0,
    seed: RandomState = None,
) -> Belief:
    """Sample a belief from a symmetric Dirichlet distribution.

    ``concentration -> 0`` approaches point masses (confident users);
    ``concentration -> inf`` approaches the uniform belief (ignorant users).
    """
    if num_states < 1:
        raise BeliefError("num_states must be >= 1")
    if concentration <= 0:
        raise BeliefError("concentration must be positive")
    rng = as_generator(seed)
    probs = rng.dirichlet(np.full(num_states, concentration))
    # Dirichlet sampling can produce exact zeros for tiny concentration;
    # nudge to keep the belief's support full, then renormalise.
    probs = np.clip(probs, 1e-15, None)
    return Belief(probs / probs.sum())


class BeliefProfile:
    """One belief per user over a shared state space (the paper's ``B``)."""

    __slots__ = ("_states", "_matrix")

    def __init__(self, states: StateSpace, beliefs: Sequence[Belief]) -> None:
        beliefs = tuple(beliefs)
        if not beliefs:
            raise BeliefError("belief profile needs at least one user")
        for i, b in enumerate(beliefs):
            if b.num_states != states.num_states:
                raise DimensionError(
                    f"user {i} belief covers {b.num_states} states, "
                    f"state space has {states.num_states}"
                )
        self._states = states
        self._matrix = np.stack([b.probabilities for b in beliefs], axis=0)
        self._matrix.setflags(write=False)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_matrix(
        cls, states: StateSpace, matrix: Sequence[Sequence[float]] | np.ndarray
    ) -> "BeliefProfile":
        """Build from an ``(n, num_states)`` row-stochastic matrix."""
        mat = check_probability_matrix(matrix, name="belief matrix")
        if mat.shape[1] != states.num_states:
            raise DimensionError(
                f"belief matrix has {mat.shape[1]} columns for a space "
                f"with {states.num_states} states"
            )
        return cls(states, [Belief(row) for row in mat])

    @classmethod
    def random(
        cls,
        states: StateSpace,
        num_users: int,
        *,
        concentration: float = 1.0,
        seed: RandomState = None,
    ) -> "BeliefProfile":
        """Independent Dirichlet beliefs for *num_users* users."""
        rng = as_generator(seed)
        beliefs = [
            dirichlet_belief(states.num_states, concentration=concentration, seed=rng)
            for _ in range(num_users)
        ]
        return cls(states, beliefs)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def states(self) -> StateSpace:
        return self._states

    @property
    def matrix(self) -> np.ndarray:
        """Read-only ``(n, num_states)`` belief matrix."""
        return self._matrix

    @property
    def num_users(self) -> int:
        return self._matrix.shape[0]

    def belief_of(self, user: int) -> Belief:
        return Belief(self._matrix[user])

    def __len__(self) -> int:
        return self.num_users

    def __iter__(self) -> Iterable[Belief]:
        return (Belief(row) for row in self._matrix)

    # ------------------------------------------------------------------ #
    # semantics
    # ------------------------------------------------------------------ #

    def effective_capacities(self) -> np.ndarray:
        """The ``(n, m)`` matrix ``C[i, l] = c_i^l`` of effective capacities.

        One matmul: ``B @ (1/caps)`` gives the expected inverse capacities,
        whose reciprocal is the belief-harmonic effective capacity.
        """
        inv = self._matrix @ (1.0 / self._states.capacities)
        return 1.0 / inv

    def is_common(self, *, atol: float = 1e-12) -> bool:
        """True when all users share the same belief."""
        return bool(np.all(np.abs(self._matrix - self._matrix[0]) <= atol))

    def is_kp(self, *, atol: float = 1e-12) -> bool:
        """True when the profile collapses to the KP-model: all users put
        probability one on the same state."""
        if not self.is_common(atol=atol):
            return False
        return bool(np.max(self._matrix[0]) >= 1.0 - atol)

    def __repr__(self) -> str:
        return (
            f"BeliefProfile(num_users={self.num_users}, "
            f"num_states={self._states.num_states})"
        )


def common_belief_profile(
    states: StateSpace, num_users: int, belief: Belief
) -> BeliefProfile:
    """All *num_users* users share *belief* (complete-information limit)."""
    if num_users < 1:
        raise BeliefError("num_users must be >= 1")
    return BeliefProfile(states, [belief] * num_users)
