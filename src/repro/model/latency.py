"""The latency engine — vectorised implementations of Section 2's costs.

All computations reduce to the game's ``(n, m)`` effective-capacity matrix
``C`` (see :mod:`repro.model.game`):

* pure profile ``sigma``:  ``lambda_i(sigma) = (t_l + load_l(sigma)) / C[i, l]``
  with ``l = sigma_i`` — the belief-expected latency of user ``i``;
* mixed profile ``P``:     ``lambda^l_i(P) = ((1 - P[i,l]) w_i + t_l + W^l) / C[i, l]``
  with ``W^l = sum_k P[k, l] w_k`` — expectation over states *and* the
  random choices of the other users.

The per-state latencies ``lambda_{i,phi}`` are also provided so tests can
verify the reduction ``E_b[ load / c_phi ] = load / c_eff`` directly.

The pure-profile functions are the ``B = 1`` views of the batched
kernels in :mod:`repro.batch.kernels` — one shared array code path
serves a single game here and a ``(B, n, m)`` stack in the campaign
layer. Everything is NumPy-vectorised; no Python loops over users or
links.
"""

from __future__ import annotations

import numpy as np

from repro.batch.kernels import (
    batch_deviation_latencies,
    batch_loads,
    batch_pure_latencies,
)
from repro.batch.mixed import batch_mixed_latency_matrix
from repro.model.game import UncertainRoutingGame
from repro.model.profiles import (
    AssignmentLike,
    MixedLike,
    as_assignment,
    as_mixed_matrix,
    loads_of,
)

__all__ = [
    "pure_latencies",
    "pure_latency_of_user",
    "pure_latencies_by_state",
    "deviation_latencies",
    "mixed_latency_matrix",
    "min_expected_latencies",
    "expected_link_latencies",
    "expected_loads",
]


def pure_latencies(game: UncertainRoutingGame, assignment: AssignmentLike) -> np.ndarray:
    """Belief-expected latency of every user under a pure profile.

    Returns the length-``n`` vector ``lambda_{i, b_i}(sigma)``.
    """
    sigma = as_assignment(assignment, game.num_users, game.num_links)
    return batch_pure_latencies(
        sigma, game.weights, game.capacities, game.initial_traffic
    )


def pure_latency_of_user(
    game: UncertainRoutingGame, assignment: AssignmentLike, user: int
) -> float:
    """``lambda_{user, b_user}(sigma)`` for a single user."""
    sigma = as_assignment(assignment, game.num_users, game.num_links)
    loads = batch_loads(
        sigma, game.weights, game.num_links, game.initial_traffic
    )
    link = int(sigma[user])
    return float(loads[link] / game.capacities[user, link])


def pure_latencies_by_state(
    game: UncertainRoutingGame, assignment: AssignmentLike
) -> np.ndarray:
    """The raw per-state latencies ``lambda_{i, phi}(sigma)``.

    Returns an ``(n, num_states)`` matrix; its belief-weighted row averages
    equal :func:`pure_latencies` (the identity the reduced form rests on).
    """
    sigma = as_assignment(assignment, game.num_users, game.num_links)
    loads = loads_of(sigma, game.weights, game.num_links, game.initial_traffic)
    caps = game.beliefs.states.capacities  # (num_states, m)
    # latency of user i in state phi = loads[sigma_i] / caps[phi, sigma_i]
    return loads[sigma][:, None] / caps[:, sigma].T


def deviation_latencies(
    game: UncertainRoutingGame, assignment: AssignmentLike
) -> np.ndarray:
    """The ``(n, m)`` matrix of *hypothetical* latencies under a pure profile.

    Entry ``(i, l)`` is the belief-expected latency user ``i`` would incur
    by unilaterally routing on link ``l`` while everyone else stays put:

    * on the current link it equals the current latency;
    * on any other link it is ``(t_l + load_l + w_i) / C[i, l]``.

    This matrix drives Nash checks and best-response computations: user
    ``i`` is satisfied iff its row attains its minimum at ``sigma_i``.
    """
    sigma = as_assignment(assignment, game.num_users, game.num_links)
    return batch_deviation_latencies(
        sigma, game.weights, game.capacities, game.initial_traffic
    )


def expected_loads(game: UncertainRoutingGame, mixed: MixedLike) -> np.ndarray:
    """``W^l + t_l`` — expected traffic per link under a mixed profile."""
    p = as_mixed_matrix(mixed, game.num_users, game.num_links)
    return p.T @ game.weights + game.initial_traffic


def mixed_latency_matrix(game: UncertainRoutingGame, mixed: MixedLike) -> np.ndarray:
    """The ``(n, m)`` matrix ``lambda^l_{i, b_i}(P)`` of Section 2.

    ``lambda^l_i = ((1 - P[i, l]) w_i + t_l + W^l) / C[i, l]`` where
    ``W^l`` is the expected traffic of the *other* users plus user ``i``'s
    own contribution, so subtracting ``P[i, l] w_i`` removes the
    double-count of ``i``'s expected presence.

    The ``B = 1`` view of :func:`repro.batch.mixed.batch_mixed_latency_matrix`
    — the same kernel the batched E7-E11 pipelines call on stacks.
    """
    p = as_mixed_matrix(mixed, game.num_users, game.num_links)
    return batch_mixed_latency_matrix(
        p, game.weights, game.capacities, game.initial_traffic
    )


def expected_link_latencies(
    game: UncertainRoutingGame, mixed: MixedLike
) -> np.ndarray:
    """Alias of :func:`mixed_latency_matrix` kept for symmetry with the
    paper's notation ``lambda^l_{i,b_i}(P)``."""
    return mixed_latency_matrix(game, mixed)


def min_expected_latencies(game: UncertainRoutingGame, mixed: MixedLike) -> np.ndarray:
    """``lambda_{i, b_i}(P) = min_l lambda^l_{i, b_i}(P)`` per user (eq. 1)."""
    return mixed_latency_matrix(game, mixed).min(axis=1)
