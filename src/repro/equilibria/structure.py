"""Structure of the Nash-equilibrium set of a game.

The paper studies single equilibria (a pure one, the fully mixed one);
this module looks at the whole set, which several of its open questions
implicitly range over — how many pure equilibria exist, what supports the
mixed ones use, whether the fully mixed point closes the lattice. Used by
the extended analyses and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.model.game import UncertainRoutingGame
from repro.model.profiles import MixedProfile, PureProfile
from repro.model.social import sc1, sc2
from repro.equilibria.enumeration import pure_nash_profiles
from repro.equilibria.fully_mixed import fully_mixed_candidate
from repro.equilibria.support_enum import enumerate_mixed_nash

__all__ = ["EquilibriumSet", "equilibrium_set"]


@dataclass
class EquilibriumSet:
    """Complete equilibrium census of a small game."""

    game: UncertainRoutingGame
    pure: list[PureProfile] = field(default_factory=list)
    mixed: list[MixedProfile] = field(default_factory=list)
    fully_mixed_exists: bool = False

    @property
    def num_pure(self) -> int:
        return len(self.pure)

    @property
    def num_strictly_mixed(self) -> int:
        return sum(1 for eq in self.mixed if not eq.is_pure(atol=1e-9))

    def support_size_histogram(self) -> dict[int, int]:
        """How many equilibria use supports of each total size.

        Total size ``n`` means pure; ``n * m`` means fully mixed.
        """
        hist: dict[int, int] = {}
        for eq in self.mixed:
            total = int(sum(len(eq.support_of(i)) for i in range(eq.num_users)))
            hist[total] = hist.get(total, 0) + 1
        return hist

    def cost_range_sc1(self) -> tuple[float, float]:
        """(best, worst) SC1 over all equilibria."""
        values = [sc1(self.game, eq) for eq in self.mixed]
        return (min(values), max(values))

    def cost_range_sc2(self) -> tuple[float, float]:
        values = [sc2(self.game, eq) for eq in self.mixed]
        return (min(values), max(values))

    def worst_equilibrium(self, objective: str = "sum") -> MixedProfile:
        """The social-cost-maximising equilibrium (Section 4's object)."""
        cost = sc1 if objective == "sum" else sc2
        return max(self.mixed, key=lambda eq: cost(self.game, eq))

    def best_equilibrium(self, objective: str = "sum") -> MixedProfile:
        cost = sc1 if objective == "sum" else sc2
        return min(self.mixed, key=lambda eq: cost(self.game, eq))


def equilibrium_set(game: UncertainRoutingGame) -> EquilibriumSet:
    """Census the equilibria of a small game.

    Pure equilibria come from the exhaustive sweep; mixed ones from
    support enumeration (which re-finds the pure ones — they are kept in
    ``mixed`` too so cost ranges cover everything); the fully mixed flag
    from the Theorem 4.6 closed form.
    """
    pure = pure_nash_profiles(game)
    mixed = enumerate_mixed_nash(game)
    cand = fully_mixed_candidate(game)
    return EquilibriumSet(
        game=game,
        pure=pure,
        mixed=mixed,
        fully_mixed_exists=cand.exists,
    )
