"""Best- and better-response dynamics with cycle detection.

These dynamics serve three roles in the reproduction:

1. a general-purpose pure-NE solver for games outside the paper's three
   special cases (the fallback used by :func:`repro.equilibria.solve.solve_pure_nash`);
2. the instrument of the Section 3.2 simulation campaign — the paper's
   evidence for Conjecture 3.7 is that dynamics/enumeration never failed
   to locate a pure NE;
3. the cycle detector behind the "no ordinal potential" observation
   (B. Monien): a better-response cycle certifies that the game has no
   ordinal potential function.

Deterministic schedules make revisiting a state a proof of cycling, so
cycle detection is a dictionary lookup on visited profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from repro.errors import ConvergenceError
from repro.model.game import UncertainRoutingGame
from repro.model.latency import deviation_latencies
from repro.model.profiles import AssignmentLike, PureProfile, as_assignment
from repro.util.rng import RandomState, as_generator

__all__ = [
    "DynamicsResult",
    "best_responses",
    "best_response_dynamics",
    "better_response_dynamics",
]

Schedule = Literal["round_robin", "max_regret", "random"]


def best_responses(game: UncertainRoutingGame, assignment: AssignmentLike) -> np.ndarray:
    """Each user's best-response link against the others' current choices.

    Ties break toward the lowest link index (then toward staying put is
    irrelevant because the current link participates in the argmin with
    its exact latency).
    """
    dev = deviation_latencies(game, assignment)
    return np.argmin(dev, axis=1).astype(np.intp)


@dataclass
class DynamicsResult:
    """Outcome of a response dynamic run.

    Attributes
    ----------
    profile:
        The final pure profile (a Nash equilibrium iff ``converged``).
    converged:
        True when no user had a profitable deviation at termination.
    steps:
        Number of accepted improvement moves.
    cycled:
        True when the trajectory revisited a profile (possible only for
        deterministic schedules; certifies a better-/best-response cycle).
    cycle:
        The cyclic segment of the trajectory when ``cycled``.
    history:
        Visited profiles in order (first entry is the start profile).
    """

    profile: PureProfile
    converged: bool
    steps: int
    cycled: bool = False
    cycle: list[PureProfile] = field(default_factory=list)
    history: list[PureProfile] = field(default_factory=list)


def _improvers(
    dev: np.ndarray, sigma: np.ndarray, tol: float
) -> np.ndarray:
    """Users with a strictly improving deviation under tolerance *tol*."""
    current = dev[np.arange(sigma.size), sigma]
    scale = np.maximum(current, 1.0)
    return np.flatnonzero(dev.min(axis=1) < current - tol * scale)


def _run_dynamics(
    game: UncertainRoutingGame,
    start: AssignmentLike | None,
    *,
    mode: Literal["best", "better"],
    schedule: Schedule,
    max_steps: int,
    tol: float,
    seed: RandomState,
    record_history: bool,
    raise_on_budget: bool,
) -> DynamicsResult:
    n, m = game.num_users, game.num_links
    rng = as_generator(seed)
    if start is None:
        sigma = rng.integers(0, m, size=n).astype(np.intp)
    else:
        sigma = as_assignment(start, n, m).copy()

    history: list[PureProfile] = []
    seen: dict[bytes, int] = {}
    deterministic = schedule != "random"

    def snapshot() -> PureProfile:
        return PureProfile(sigma.copy(), m)

    if record_history:
        history.append(snapshot())

    steps = 0
    while steps < max_steps:
        if deterministic:
            key = sigma.tobytes()
            if key in seen:
                # Deterministic revisit => the remaining trajectory cycles.
                start_idx = seen[key]
                cycle = history[start_idx:] if record_history else []
                return DynamicsResult(
                    profile=snapshot(),
                    converged=False,
                    steps=steps,
                    cycled=True,
                    cycle=cycle,
                    history=history,
                )
            seen[key] = len(history) - 1 if record_history else steps

        dev = deviation_latencies(game, sigma)
        movers = _improvers(dev, sigma, tol)
        if movers.size == 0:
            return DynamicsResult(
                profile=snapshot(), converged=True, steps=steps, history=history
            )

        if schedule == "round_robin":
            user = int(movers.min())
        elif schedule == "max_regret":
            current = dev[movers, sigma[movers]]
            regret = current - dev[movers].min(axis=1)
            user = int(movers[int(np.argmax(regret))])
        else:  # random
            user = int(rng.choice(movers))

        row = dev[user]
        if mode == "best":
            target = int(np.argmin(row))
        else:
            current_cost = row[sigma[user]]
            scale = max(current_cost, 1.0)
            better = np.flatnonzero(row < current_cost - tol * scale)
            target = int(better[0]) if deterministic else int(rng.choice(better))

        sigma[user] = target
        steps += 1
        if record_history:
            history.append(snapshot())

    if raise_on_budget:
        raise ConvergenceError(
            f"dynamics did not converge within {max_steps} steps "
            f"(n={n}, m={m}, schedule={schedule})"
        )
    return DynamicsResult(
        profile=snapshot(), converged=False, steps=steps, history=history
    )


def best_response_dynamics(
    game: UncertainRoutingGame,
    start: AssignmentLike | None = None,
    *,
    schedule: Schedule = "round_robin",
    max_steps: int = 100_000,
    tol: float = 1e-9,
    seed: RandomState = None,
    record_history: bool = False,
    raise_on_budget: bool = False,
) -> DynamicsResult:
    """Iterate single-user *best* responses until no user can improve.

    With a deterministic schedule a revisited profile is reported as a
    best-response cycle (``cycled=True``) instead of looping forever.
    """
    return _run_dynamics(
        game,
        start,
        mode="best",
        schedule=schedule,
        max_steps=max_steps,
        tol=tol,
        seed=seed,
        record_history=record_history,
        raise_on_budget=raise_on_budget,
    )


def better_response_dynamics(
    game: UncertainRoutingGame,
    start: AssignmentLike | None = None,
    *,
    schedule: Schedule = "round_robin",
    max_steps: int = 100_000,
    tol: float = 1e-9,
    seed: RandomState = None,
    record_history: bool = False,
    raise_on_budget: bool = False,
) -> DynamicsResult:
    """Iterate single-user *better* responses (first/random improving link).

    Convergence of better-response dynamics from every start is exactly
    the finite-improvement property (FIP); a detected cycle refutes the
    existence of an ordinal potential for the instance.
    """
    return _run_dynamics(
        game,
        start,
        mode="better",
        schedule=schedule,
        max_steps=max_steps,
        tol=tol,
        seed=seed,
        record_history=record_history,
        raise_on_budget=raise_on_budget,
    )
