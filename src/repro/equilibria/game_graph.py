"""Game graphs over pure profiles (Section 3's proof instrument).

The paper defines the *game graph* of an instance: nodes are the pure
states, and there is an edge ``s -> s'`` when a user who is defecting
(unsatisfied) in ``s`` moves and is satisfied in ``s'`` — equivalently, a
defecting user moves to a *best response*. The n=3 existence proof shows
this graph has no cycles reachable by best responses, hence a sink (a
pure NE) exists.

This module materialises two edge sets over the full ``m^n`` state space
of small games:

* the **best-response graph** (the paper's game graph), and
* the **better-response graph** (any strictly improving unilateral move),
  whose acyclicity is exactly the finite improvement property used in the
  ordinal-potential discussion of Section 3.2.

Graphs are :class:`networkx.DiGraph` objects with profile tuples as nodes,
so the standard cycle/condensation toolbox applies directly.
"""

from __future__ import annotations

from typing import Literal

import networkx as nx
import numpy as np

from repro.errors import ModelError
from repro.model.game import UncertainRoutingGame
from repro.model.latency import deviation_latencies
from repro.model.profiles import PureProfile
from repro.model.social import enumerate_assignments

__all__ = [
    "better_response_graph",
    "best_response_graph",
    "find_response_cycle",
    "sink_states",
]

#: Game-graph construction is exhaustive; refuse beyond this many states.
MAX_GRAPH_STATES = 100_000


def _response_graph(
    game: UncertainRoutingGame, kind: Literal["best", "better"], tol: float
) -> nx.DiGraph:
    n, m = game.num_users, game.num_links
    total = m**n
    if total > MAX_GRAPH_STATES:
        raise ModelError(
            f"game graph would have {total} states (limit {MAX_GRAPH_STATES})"
        )
    graph = nx.DiGraph()
    assignments = enumerate_assignments(n, m)
    for row in assignments:
        node = tuple(int(x) for x in row)
        graph.add_node(node)
        dev = deviation_latencies(game, row)
        current = dev[np.arange(n), row]
        scale = np.maximum(current, 1.0)
        for i in range(n):
            improving = np.flatnonzero(dev[i] < current[i] - tol * scale[i])
            if improving.size == 0:
                continue
            if kind == "best":
                best = dev[i].min()
                targets = improving[
                    dev[i, improving] <= best + tol * max(best, 1.0)
                ]
            else:
                targets = improving
            for link in targets:
                succ = list(node)
                succ[i] = int(link)
                graph.add_edge(node, tuple(succ), user=i)
    return graph


def best_response_graph(
    game: UncertainRoutingGame, *, tol: float = 1e-9
) -> nx.DiGraph:
    """The paper's game graph: defecting users move to best responses."""
    return _response_graph(game, "best", tol)


def better_response_graph(
    game: UncertainRoutingGame, *, tol: float = 1e-9
) -> nx.DiGraph:
    """Edges for *every* strictly improving unilateral move."""
    return _response_graph(game, "better", tol)


def find_response_cycle(graph: nx.DiGraph) -> list[tuple[int, ...]] | None:
    """A directed cycle of the response graph, or ``None`` when acyclic.

    A best-response cycle refutes convergence of the paper's defection
    chains; a better-response cycle refutes the ordinal potential.
    """
    try:
        edges = nx.find_cycle(graph, orientation="original")
    except nx.NetworkXNoCycle:
        return None
    return [edge[0] for edge in edges] + [edges[-1][1]]


def sink_states(graph: nx.DiGraph) -> list[PureProfile]:
    """States with no outgoing response edge — exactly the pure NE."""
    sinks = [node for node in graph.nodes if graph.out_degree(node) == 0]
    if not sinks:
        return []
    num_links = 1 + max(max(node) for node in graph.nodes)
    return [PureProfile(np.asarray(node, dtype=np.intp), num_links) for node in sinks]
