"""Exhaustive pure-Nash-equilibrium enumeration for small games.

The Section 3.2 simulation campaign and the n=3 existence claim both rest
on being able to *decide* whether a small game has a pure NE. This module
sweeps all ``m^n`` assignments fully vectorised: for a block of profiles
it asks the shared batched kernel
(:func:`repro.batch.kernels.batch_pure_nash_mask`) for the ``(P, n, m)``
deviation-latency tensor and keeps the rows whose minimum sits on the
diagonal of the chosen links — the single-game sweep is just the
one-game view of the same code path the campaign uses over ``(B, P)``
stacks.

Blocks bound peak memory, so games up to a few million profiles are
checked without allocating the full tensor at once.
"""

from __future__ import annotations

import numpy as np

from repro.batch.kernels import sweep_pure_nash_mask
from repro.errors import ModelError
from repro.model.game import UncertainRoutingGame
from repro.model.profiles import PureProfile
from repro.model.social import MAX_EXHAUSTIVE_PROFILES, enumerate_assignments
from repro.util.parallel import chunk_ranges

__all__ = [
    "pure_nash_mask",
    "pure_nash_profiles",
    "exists_pure_nash",
    "count_pure_nash",
]


def pure_nash_mask(
    game: UncertainRoutingGame,
    assignments: np.ndarray,
    *,
    tol: float = 1e-9,
    block_size: int = 65_536,
) -> np.ndarray:
    """Boolean mask over the rows of *assignments* that are pure NE.

    Vectorised Nash test: a row ``sigma`` is an equilibrium iff for every
    user ``i`` and link ``l``::

        loads[sigma_i] / C[i, sigma_i]  <=  (loads[l] + w_i [l != sigma_i]) / C[i, l]
    """
    sig_all = np.ascontiguousarray(assignments, dtype=np.intp)
    n = game.num_users
    if sig_all.ndim != 2 or sig_all.shape[1] != n:
        raise ModelError(f"assignments must have shape (B, {n})")
    out = np.empty(sig_all.shape[0], dtype=bool)
    for lo, hi in chunk_ranges(sig_all.shape[0], block_size):
        out[lo:hi] = sweep_pure_nash_mask(
            sig_all[lo:hi],
            game.weights[None, :],
            game.capacities[None, :, :],
            game.initial_traffic[None, :],
            tol=tol,
        )[0]
    return out


def pure_nash_profiles(
    game: UncertainRoutingGame, *, tol: float = 1e-9
) -> list[PureProfile]:
    """All pure Nash equilibria of a small game (exhaustive sweep)."""
    total = game.num_links**game.num_users
    if total > MAX_EXHAUSTIVE_PROFILES:
        raise ModelError(
            f"{total} profiles exceed the exhaustive limit "
            f"({MAX_EXHAUSTIVE_PROFILES}); use best-response dynamics instead"
        )
    assignments = enumerate_assignments(game.num_users, game.num_links)
    mask = pure_nash_mask(game, assignments, tol=tol)
    return [PureProfile(row, game.num_links) for row in assignments[mask]]


def exists_pure_nash(game: UncertainRoutingGame, *, tol: float = 1e-9) -> bool:
    """Whether the game possesses at least one pure Nash equilibrium.

    Short-circuits block by block, so a positive answer usually returns
    after inspecting a fraction of the profile space.
    """
    total = game.num_links**game.num_users
    if total > MAX_EXHAUSTIVE_PROFILES:
        raise ModelError(
            f"{total} profiles exceed the exhaustive limit "
            f"({MAX_EXHAUSTIVE_PROFILES}); use best-response dynamics instead"
        )
    assignments = enumerate_assignments(game.num_users, game.num_links)
    block = 65_536
    for lo in range(0, total, block):
        mask = pure_nash_mask(game, assignments[lo : lo + block], tol=tol)
        if mask.any():
            return True
    return False


def count_pure_nash(game: UncertainRoutingGame, *, tol: float = 1e-9) -> int:
    """Number of pure Nash equilibria (exhaustive)."""
    assignments = enumerate_assignments(game.num_users, game.num_links)
    return int(pure_nash_mask(game, assignments, tol=tol).sum())
