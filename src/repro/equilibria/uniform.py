"""Algorithm ``Auniform`` (Figure 3): pure NE under uniform user beliefs.

The *uniform user beliefs* model has every user believing all links have
equal capacity: the reduced form satisfies ``c^l_i = c_i`` for all ``l``.
Latency comparisons across links then reduce to load comparisons, and the
paper adapts the greedy of Fotakis et al. (itself a variant of Graham's
LPT): process users in decreasing weight order, placing each on the link
minimising ``(w_k + t_l) / c_k`` — i.e. the least-loaded link — and add
its weight to that link's initial traffic.

Theorem 3.6 proves the result is a pure Nash equilibrium and bounds the
running time by O(n (log n + m)); the implementation sorts once and keeps
per-link running loads.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlgorithmDomainError
from repro.model.game import UncertainRoutingGame
from repro.model.profiles import PureProfile

__all__ = ["auniform"]


def auniform(game: UncertainRoutingGame) -> PureProfile:
    """Compute a pure Nash equilibrium of a uniform-beliefs game.

    Supports arbitrary initial link traffic ``t``. Raises
    :class:`~repro.errors.AlgorithmDomainError` when some user's effective
    capacities differ across links (the model's defining requirement).
    """
    if not game.has_uniform_beliefs():
        raise AlgorithmDomainError(
            "auniform requires uniform user beliefs "
            "(each user's effective capacity equal on all links)"
        )
    n, m = game.num_users, game.num_links
    w = game.weights
    order = np.argsort(-w, kind="stable")  # decreasing weights, stable ties
    loads = game.initial_traffic.copy()
    sigma = np.empty(n, dtype=np.intp)
    for user in order:
        # (w_u + t_l)/c_u is minimised by the least-loaded link; computing
        # the quotient keeps the code literally Figure 3's step 4(a).
        link = int(np.argmin((w[user] + loads) / game.capacities[user, 0]))
        sigma[user] = link
        loads[link] += w[user]
    return PureProfile(sigma, m)
