"""Algorithm ``Asymmetric`` (Figure 2): pure NE for symmetric users.

The paper's second special case assumes identical weights (the proof takes
``w_i = 1`` without loss of generality, because a common weight scales all
of a user's link latencies equally and so never changes preferences). The
algorithm inserts users one at a time:

* user ``i`` joins the link minimising ``(|N_l| + 1) / c^l_i``;
* the insertion may dissatisfy users on the receiving link only; a chain
  of defections follows the link that just grew (step 3(c)), and by
  Lemma 3.4 every user defects at most once per insertion, so each round
  ends within ``i`` moves.

Total complexity O(n^2 m) (Theorem 3.5). The implementation tracks link
occupancy counts and performs the defection chain exactly as stated: it
repeatedly scans the just-grown link for a defector and moves it to its
best response.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlgorithmDomainError, SolverError
from repro.model.game import UncertainRoutingGame
from repro.model.profiles import PureProfile

__all__ = ["asymmetric"]


def asymmetric(game: UncertainRoutingGame, *, tol: float = 1e-12) -> PureProfile:
    """Compute a pure Nash equilibrium of a symmetric-users game.

    Raises :class:`~repro.errors.AlgorithmDomainError` when weights are not
    all equal or when the game carries initial link traffic (the paper's
    construction and its counting argument assume an empty network).
    """
    if not game.has_symmetric_users():
        raise AlgorithmDomainError("asymmetric requires all user weights equal")
    if np.any(game.initial_traffic > 0):
        raise AlgorithmDomainError(
            "asymmetric does not support initial link traffic"
        )
    n, m = game.num_users, game.num_links
    caps = game.capacities  # (n, m); weights cancel inside comparisons
    counts = np.zeros(m)
    sigma = np.full(n, -1, dtype=np.intp)
    # Per the O(n^2) bound, each insertion round performs at most n moves;
    # the guard below only trips on a correctness bug.
    move_budget_total = 0

    for user in range(n):
        # Step 3(a)-(b): place the new user on its subjectively best link.
        link = int(np.argmin((counts + 1.0) / caps[user]))
        sigma[user] = link
        counts[link] += 1.0
        move_budget_total += 1

        # Step 3(c): defection chain along the link that just grew.
        grown = link
        moves = 0
        while True:
            members = np.flatnonzero(sigma[: user + 1] == grown)
            if members.size == 0:
                break
            # A member k defects iff some other link offers strictly
            # smaller latency: counts[grown]/c > (counts[l'] + 1)/c'.
            current = counts[grown] / caps[members, grown]
            alt = (counts[None, :] + 1.0) / caps[members]
            alt[:, grown] = np.inf  # moving "to the same link" is not a move
            best_alt = alt.min(axis=1)
            defectors = np.flatnonzero(best_alt < current * (1.0 - tol))
            if defectors.size == 0:
                break
            k = int(members[defectors[0]])
            new_link = int(np.argmin(alt[defectors[0]]))
            counts[grown] -= 1.0
            counts[new_link] += 1.0
            sigma[k] = new_link
            grown = new_link
            moves += 1
            if moves > user + 1:
                raise SolverError(
                    "defection chain exceeded the theoretical bound of "
                    f"{user + 1} moves — numerical tolerance too loose?"
                )
        move_budget_total += moves

    return PureProfile(sigma, m)
