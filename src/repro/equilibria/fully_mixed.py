"""Fully mixed Nash equilibria — the closed form of Section 4.

A fully mixed profile assigns every user positive probability on every
link. The paper derives (Lemmas 4.1-4.3) that if a fully mixed NE exists
its probabilities are forced, hence it is unique (Theorem 4.6) and
computable in O(nm) (Corollary 4.7).

The implementation works in linear-algebra form, generalised to carry the
initial link traffic ``t`` used elsewhere in the library (set ``t = 0`` to
recover the paper exactly; the derivation is identical):

* minimum expected latency (Lemma 4.1, generalised):
    ``lambda_i = ((m - 1) w_i + W_tot + sum_l t_l) / S_i``,
  with ``S_i = sum_l C[i, l]``;
* expected link traffic (Lemma 4.2, generalised):
    ``W^l = (sum_i C[i, l] lambda_i - W_tot - n t_l) / (n - 1)``;
* probabilities (Lemma 4.3):
    ``p^l_i = (t_l + W^l + w_i - C[i, l] lambda_i) / w_i``.

Rows of the candidate automatically sum to one (Remark 4.4); the candidate
is the unique fully mixed NE iff every entry lies strictly inside (0, 1)
(Lemma 4.5 / Theorem 4.6). Under uniform beliefs the formula collapses to
``p^l_i = 1/m`` (Theorem 4.8) — a property test pins this down.

Since the batched mixed engine landed, this module is the ``B = 1`` view
of :func:`repro.batch.mixed.batch_fully_mixed_candidate`: the same
kernel evaluates one game here and a ``(B, n, m)`` stack in the E7-E11
experiment layer, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batch.mixed import batch_fully_mixed_candidate
from repro.errors import NotFullyMixedError
from repro.model.game import UncertainRoutingGame
from repro.model.profiles import MixedProfile

__all__ = [
    "FullyMixedResult",
    "fully_mixed_candidate",
    "fully_mixed_nash",
    "has_fully_mixed_nash",
]


@dataclass(frozen=True)
class FullyMixedResult:
    """The closed-form fully mixed candidate and its derived quantities.

    Attributes
    ----------
    probabilities:
        The ``(n, m)`` candidate matrix of Lemma 4.3. Rows sum to one but
        entries may fall outside ``(0, 1)``, in which case no fully mixed
        NE exists (the matrix is still meaningful: Corollary 4.10 uses it
        as the dominating pseudo-profile for the social-cost bound).
    latencies:
        The per-user minimum expected latencies ``lambda_i`` of Lemma 4.1.
    link_traffic:
        The expected link traffic ``W^l`` of Lemma 4.2 (excluding ``t``).
    exists:
        True iff every probability lies strictly within ``(0, 1)``.
    """

    probabilities: np.ndarray
    latencies: np.ndarray
    link_traffic: np.ndarray
    exists: bool

    def profile(self) -> MixedProfile:
        """The candidate as a validated :class:`MixedProfile`.

        Only callable when the candidate is a genuine distribution
        (entries may be negative otherwise).
        """
        return MixedProfile(self.probabilities)


def fully_mixed_candidate(
    game: UncertainRoutingGame, *, boundary_tol: float = 1e-12
) -> FullyMixedResult:
    """Evaluate the closed form of Lemmas 4.1-4.3 in O(nm).

    The ``B = 1`` view of the shared batched kernel — one code path
    serves this single-game API and the stacked E7-E11 sweeps.
    """
    result = batch_fully_mixed_candidate(
        game.weights,
        game.capacities,
        game.initial_traffic,
        boundary_tol=boundary_tol,
    )
    return FullyMixedResult(
        probabilities=result.probabilities,
        latencies=result.latencies,
        link_traffic=result.link_traffic,
        exists=bool(result.exists),
    )


def fully_mixed_nash(game: UncertainRoutingGame) -> MixedProfile:
    """The unique fully mixed Nash equilibrium (Theorem 4.6).

    Raises :class:`~repro.errors.NotFullyMixedError` when the closed-form
    candidate has a coordinate outside ``(0, 1)``, which by Theorem 4.6
    means no fully mixed NE exists.
    """
    result = fully_mixed_candidate(game)
    if not result.exists:
        low = float(result.probabilities.min())
        high = float(result.probabilities.max())
        raise NotFullyMixedError(
            "no fully mixed Nash equilibrium: closed-form probabilities "
            f"span [{low:.6g}, {high:.6g}], which leaves (0, 1)"
        )
    return result.profile()


def has_fully_mixed_nash(game: UncertainRoutingGame) -> bool:
    """Whether the game admits a (then unique) fully mixed NE."""
    return fully_mixed_candidate(game).exists
