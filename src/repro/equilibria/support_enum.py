"""All mixed Nash equilibria of small games by support enumeration.

The paper proves the *fully mixed* NE unique via its forced closed form;
this module provides the independent cross-check used by experiment E7/E9:
enumerate every support profile ``(S_1, ..., S_n)``, solve the linear
indifference system it induces, and keep solutions that verify as Nash.

Why the system is linear and square: writing the equal-latency condition
for user ``i`` on a support link ``l`` expands to

    w_i + t_l + sum_{k != i, l in S_k} w_k p^l_k - C[i, l] lambda_i = 0

(the mover's own probability cancels between the ``(1 - p) w_i`` term and
its contribution to ``W^l``), and together with the ``n`` row-sum
equations this gives exactly ``sum_i |S_i| + n`` linear equations in the
same number of unknowns ``(p^l_i for l in S_i, lambda_i)``.

Complexity is ``(2^m - 1)^n`` supports — strictly a small-game tool, which
is all the verification experiments need.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

import numpy as np

from repro.errors import ModelError
from repro.model.game import UncertainRoutingGame
from repro.model.profiles import MixedProfile
from repro.equilibria.conditions import is_mixed_nash

__all__ = ["enumerate_mixed_nash", "support_profiles"]

#: Refuse enumeration beyond this many support profiles.
MAX_SUPPORT_PROFILES = 300_000


def support_profiles(num_users: int, num_links: int) -> Iterator[tuple[tuple[int, ...], ...]]:
    """Yield every support profile: one non-empty link subset per user."""
    links = range(num_links)
    subsets: list[tuple[int, ...]] = []
    for size in range(1, num_links + 1):
        subsets.extend(itertools.combinations(links, size))
    yield from itertools.product(subsets, repeat=num_users)


def _solve_support(
    game: UncertainRoutingGame,
    supports: Sequence[tuple[int, ...]],
    *,
    tol: float,
) -> np.ndarray | None:
    """Solve the indifference system for one support profile.

    Returns the ``(n, m)`` probability matrix or ``None`` when the system
    is inconsistent/singular or the solution leaves the simplex interior
    required by the support.
    """
    n, m = game.num_users, game.num_links
    w, caps, t = game.weights, game.capacities, game.initial_traffic

    # Variable layout: p-variables first (per user, per support link), then
    # the n lambda variables.
    p_index: dict[tuple[int, int], int] = {}
    for i, supp in enumerate(supports):
        for link in supp:
            p_index[(i, link)] = len(p_index)
    num_p = len(p_index)
    dim = num_p + n

    rows = num_p + n
    a = np.zeros((rows, dim))
    rhs = np.zeros(rows)

    r = 0
    for i, supp in enumerate(supports):
        for link in supp:
            # w_i + t_l + sum_{k != i, l in S_k} w_k p^l_k - C[i,l] lambda_i = 0
            for k, supp_k in enumerate(supports):
                if k != i and link in supp_k:
                    a[r, p_index[(k, link)]] += w[k]
            a[r, num_p + i] = -caps[i, link]
            rhs[r] = -(w[i] + t[link])
            r += 1
    for i, supp in enumerate(supports):
        for link in supp:
            a[r, p_index[(i, link)]] = 1.0
        rhs[r] = 1.0
        r += 1

    try:
        solution, residual, rank, _ = np.linalg.lstsq(a, rhs, rcond=None)
    except np.linalg.LinAlgError:  # pragma: no cover - lstsq rarely raises
        return None
    if rank < dim:
        # Degenerate support system: a continuum may exist; lstsq picks the
        # min-norm representative, which the NE verifier will vet below.
        pass
    if not np.all(np.isfinite(solution)):
        return None
    if np.linalg.norm(a @ solution - rhs) > 1e-7 * max(1.0, np.linalg.norm(rhs)):
        return None

    probs = np.zeros((n, m))
    for (i, link), idx in p_index.items():
        probs[i, link] = solution[idx]
    # Support semantics: strictly positive on support, zero elsewhere.
    for i, supp in enumerate(supports):
        row = probs[i]
        if np.any(row[list(supp)] < tol):
            return None
        if np.any(row < -tol) or np.any(row > 1.0 + 1e-9):
            return None
    # Renormalise away the numerical slack before validation.
    probs = np.clip(probs, 0.0, None)
    sums = probs.sum(axis=1, keepdims=True)
    if np.any(sums <= 0):
        return None
    return probs / sums


def enumerate_mixed_nash(
    game: UncertainRoutingGame,
    *,
    tol: float = 1e-9,
    dedupe_decimals: int = 7,
) -> list[MixedProfile]:
    """Every Nash equilibrium (pure and mixed) of a small game.

    Iterates all support profiles, solves each indifference system, and
    keeps the solutions that pass the full Nash verification (support
    optimality against off-support links included). Equilibria are
    deduplicated by rounding, so boundary solutions reachable from several
    supports appear once.
    """
    n, m = game.num_users, game.num_links
    total = (2**m - 1) ** n
    if total > MAX_SUPPORT_PROFILES:
        raise ModelError(
            f"{total} support profiles exceed the enumeration limit "
            f"({MAX_SUPPORT_PROFILES})"
        )
    found: dict[bytes, MixedProfile] = {}
    for supports in support_profiles(n, m):
        probs = _solve_support(game, supports, tol=tol)
        if probs is None:
            continue
        profile = MixedProfile(probs)
        if not is_mixed_nash(game, profile, tol=1e-7):
            continue
        key = np.round(profile.matrix, dedupe_decimals).tobytes()
        found.setdefault(key, profile)
    return list(found.values())
