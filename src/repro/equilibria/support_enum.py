"""All mixed Nash equilibria of small games by support enumeration.

The paper proves the *fully mixed* NE unique via its forced closed form;
this module provides the independent cross-check used by experiment E7/E9:
enumerate every support profile ``(S_1, ..., S_n)``, solve the linear
indifference system it induces, and keep solutions that verify as Nash.

Why the system is linear and square: writing the equal-latency condition
for user ``i`` on a support link ``l`` expands to

    w_i + t_l + sum_{k != i, l in S_k} w_k p^l_k - C[i, l] lambda_i = 0

(the mover's own probability cancels between the ``(1 - p) w_i`` term and
its contribution to ``W^l``), and together with the ``n`` row-sum
equations this gives exactly ``sum_i |S_i| + n`` linear equations in the
same number of unknowns ``(p^l_i for l in S_i, lambda_i)``.

Complexity is ``(2^m - 1)^n`` supports — strictly a small-game tool, which
is all the verification experiments need.

Execution model: this module is the ``B = 1`` view of
:func:`repro.batch.support.batch_enumerate_mixed_nash`, which assembles
the indifference systems of whole support-profile blocks into stacked
``(B, k, k)`` tensors and factorises them in single
:func:`numpy.linalg.solve` calls; the campaign layer feeds it entire
replication batches at once.
"""

from __future__ import annotations

from repro.batch.support import (
    MAX_SUPPORT_PROFILES,
    batch_enumerate_mixed_nash,
    support_profiles,
)
from repro.model.game import UncertainRoutingGame
from repro.model.profiles import MixedProfile

__all__ = ["enumerate_mixed_nash", "support_profiles", "MAX_SUPPORT_PROFILES"]


def enumerate_mixed_nash(
    game: UncertainRoutingGame,
    *,
    tol: float = 1e-9,
    dedupe_decimals: int = 7,
) -> list[MixedProfile]:
    """Every Nash equilibrium (pure and mixed) of a small game.

    Iterates all support profiles, solves each indifference system, and
    keeps the solutions that pass the full Nash verification (support
    optimality against off-support links included). Equilibria are
    deduplicated by rounding, so boundary solutions reachable from several
    supports appear once.

    The ``B = 1`` view of
    :func:`repro.batch.support.batch_enumerate_mixed_nash` (which also
    raises the :data:`MAX_SUPPORT_PROFILES` guard).
    """
    return batch_enumerate_mixed_nash(
        game.weights[None],
        game.capacities[None],
        game.initial_traffic[None],
        tol=tol,
        dedupe_decimals=dedupe_decimals,
    )[0]
