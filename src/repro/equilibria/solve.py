"""One-stop pure-NE solver with special-case dispatch.

:func:`solve_pure_nash` routes a game to the cheapest applicable method,
mirroring Section 3's structure:

1. ``m == 2``              -> ``Atwolinks``        (Theorem 3.3, O(n^2));
2. uniform user beliefs    -> ``Auniform``         (Theorem 3.6);
3. symmetric users (t = 0) -> ``Asymmetric``       (Theorem 3.5);
4. otherwise               -> best-response dynamics with restarts, and —
   for small games — an exhaustive enumeration fallback.

Step 4 has no termination guarantee in theory (the general existence
question is exactly Conjecture 3.7), but the paper's simulations — and
this library's large regression campaign (experiment E5) — never found an
instance without a pure NE, nor one where restarted dynamics failed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NoEquilibriumError
from repro.model.game import UncertainRoutingGame
from repro.model.profiles import PureProfile
from repro.equilibria.best_response import best_response_dynamics
from repro.equilibria.conditions import is_pure_nash
from repro.equilibria.enumeration import pure_nash_profiles
from repro.equilibria.symmetric import asymmetric
from repro.equilibria.two_links import atwolinks
from repro.equilibria.uniform import auniform
from repro.util.rng import RandomState, as_generator

__all__ = ["SolveReport", "solve_pure_nash"]


@dataclass(frozen=True)
class SolveReport:
    """A pure NE together with the method that produced it."""

    profile: PureProfile
    method: str

    def __iter__(self):
        return iter((self.profile, self.method))


def solve_pure_nash(
    game: UncertainRoutingGame,
    *,
    restarts: int = 32,
    max_steps: int = 200_000,
    seed: RandomState = None,
    verify: bool = True,
) -> SolveReport:
    """Compute a pure Nash equilibrium of *game*.

    Raises :class:`~repro.errors.NoEquilibriumError` only when every
    method fails — for a small game that includes an exhaustive sweep, so
    the exception would constitute a counterexample to Conjecture 3.7.
    """
    import numpy as np

    profile: PureProfile | None = None
    method = ""
    if game.num_links == 2:
        profile, method = atwolinks(game), "atwolinks"
    elif game.has_uniform_beliefs():
        profile, method = auniform(game), "auniform"
    elif game.has_symmetric_users() and not np.any(game.initial_traffic > 0):
        profile, method = asymmetric(game), "asymmetric"

    if profile is not None:
        if verify and not is_pure_nash(game, profile):
            raise NoEquilibriumError(
                f"{method} returned a non-equilibrium profile — "
                "this indicates a bug, please report it"
            )
        return SolveReport(profile, method)

    rng = as_generator(seed)
    for attempt in range(max(restarts, 1)):
        schedule = "round_robin" if attempt % 2 == 0 else "max_regret"
        result = best_response_dynamics(
            game,
            start=None,
            schedule=schedule,
            max_steps=max_steps,
            seed=rng,
        )
        if result.converged:
            return SolveReport(result.profile, f"brd[{schedule}]")

    if game.num_links**game.num_users <= 500_000:
        equilibria = pure_nash_profiles(game)
        if equilibria:
            return SolveReport(equilibria[0], "enumeration")
        raise NoEquilibriumError(
            "exhaustive enumeration found no pure Nash equilibrium: "
            "this instance is a counterexample to Conjecture 3.7"
        )
    raise NoEquilibriumError(
        f"best-response dynamics failed to converge in {restarts} restarts "
        "and the game is too large for exhaustive enumeration"
    )
