"""Nashification: convert any profile into a pure NE without degrading it.

Feldmann et al. [4] (cited in the paper's related work) showed that in
the KP-model any pure strategy profile can be transformed into a pure
Nash equilibrium without increasing the maximum congestion. This module
implements the corresponding procedure for this library's games:

* :func:`nashify_common_beliefs` — the classic guarantee. For common
  beliefs all users agree on every link's congestion ``L_l / c^l``, and
  repeatedly moving a *maximum-congestion* link's user to its best
  response never increases the maximum congestion; the weighted potential
  (:mod:`repro.equilibria.potential`) guarantees termination.
* :func:`nashify` — the general-game variant: plain best-response
  improvement from the given start. Without a potential there is no
  monotonicity guarantee (the subjective SC2 may transiently grow), so
  the function reports the before/after social costs and is used by the
  experiments to measure how much nashification costs under uncertainty.

Both are the ``B = 1`` views of the lockstep kernels in
:mod:`repro.batch.pure` — a single game is nashified by the same code
path that advances a whole ``(B, n, m)`` stack, and the batched
trajectories reproduce these per-game runs move for move.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batch.container import GameBatch
from repro.batch.pure import (
    BatchNashifyResult,
    batch_nashify,
    batch_nashify_common_beliefs,
)
from repro.errors import AlgorithmDomainError
from repro.model.game import UncertainRoutingGame
from repro.model.profiles import AssignmentLike, PureProfile, as_assignment

__all__ = ["NashifyResult", "nashify", "nashify_common_beliefs"]


@dataclass(frozen=True)
class NashifyResult:
    """Before/after record of a nashification run."""

    profile: PureProfile
    steps: int
    sc1_before: float
    sc1_after: float
    sc2_before: float
    sc2_after: float
    max_congestion_before: float
    max_congestion_after: float

    @property
    def preserved_max_congestion(self) -> bool:
        """Whether the classic guarantee held: SC never got worse."""
        return self.max_congestion_after <= self.max_congestion_before * (
            1 + 1e-9
        )


def _as_batch_of_one(
    game: UncertainRoutingGame, start: AssignmentLike
) -> tuple[GameBatch, np.ndarray]:
    sigma = as_assignment(start, game.num_users, game.num_links)
    batch = GameBatch(
        game.weights[None, :],
        game.capacities[None, :, :],
        initial_traffic=game.initial_traffic[None, :],
    )
    return batch, sigma[None, :]


def _unpack(result: BatchNashifyResult, num_links: int) -> NashifyResult:
    return NashifyResult(
        profile=PureProfile(result.profiles[0], num_links),
        steps=int(result.steps[0]),
        sc1_before=float(result.sc1_before[0]),
        sc1_after=float(result.sc1_after[0]),
        sc2_before=float(result.sc2_before[0]),
        sc2_after=float(result.sc2_after[0]),
        max_congestion_before=float(result.max_congestion_before[0]),
        max_congestion_after=float(result.max_congestion_after[0]),
    )


def nashify_common_beliefs(
    game: UncertainRoutingGame,
    start: AssignmentLike,
    *,
    max_steps: int = 100_000,
) -> NashifyResult:
    """Nashify under common beliefs without increasing max congestion.

    Strategy (Feldmann et al.): while some user defects, move a defecting
    user currently sitting on a maximum-congestion link if one exists
    (this can only lower the maximum), otherwise any defector (its target
    link stays below the current maximum, which is untouched). The
    weighted potential decreases on every move, so the procedure
    terminates at a pure NE. The ``B = 1`` view of
    :func:`repro.batch.pure.batch_nashify_common_beliefs`.
    """
    if not game.has_common_beliefs():
        raise AlgorithmDomainError(
            "nashify_common_beliefs requires common beliefs; "
            "use nashify() for general games"
        )
    batch, sigma = _as_batch_of_one(game, start)
    result = batch_nashify_common_beliefs(batch, sigma, max_steps=max_steps)
    return _unpack(result, game.num_links)


def nashify(
    game: UncertainRoutingGame,
    start: AssignmentLike,
    *,
    max_steps: int = 100_000,
) -> NashifyResult:
    """Nashify a general game by best-response improvement from *start*.

    Under distinct beliefs there is no objective congestion all users
    agree on, so no monotonicity guarantee exists; the result records the
    subjective SC1/SC2 and the *average-capacity* congestion before and
    after so experiments can quantify the gap to the classic guarantee.
    The ``B = 1`` view of :func:`repro.batch.pure.batch_nashify`.
    """
    batch, sigma = _as_batch_of_one(game, start)
    result = batch_nashify(batch, sigma, max_steps=max_steps)
    return _unpack(result, game.num_links)
