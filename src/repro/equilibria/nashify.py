"""Nashification: convert any profile into a pure NE without degrading it.

Feldmann et al. [4] (cited in the paper's related work) showed that in
the KP-model any pure strategy profile can be transformed into a pure
Nash equilibrium without increasing the maximum congestion. This module
implements the corresponding procedure for this library's games:

* :func:`nashify_common_beliefs` — the classic guarantee. For common
  beliefs all users agree on every link's congestion ``L_l / c^l``, and
  repeatedly moving a *maximum-congestion* link's user to its best
  response never increases the maximum congestion; the weighted potential
  (:mod:`repro.equilibria.potential`) guarantees termination.
* :func:`nashify` — the general-game variant: plain best-response
  improvement from the given start. Without a potential there is no
  monotonicity guarantee (the subjective SC2 may transiently grow), so
  the function reports the before/after social costs and is used by the
  experiments to measure how much nashification costs under uncertainty.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AlgorithmDomainError, ConvergenceError
from repro.model.game import UncertainRoutingGame
from repro.model.latency import deviation_latencies
from repro.model.profiles import AssignmentLike, PureProfile, as_assignment, loads_of
from repro.model.social import social_costs_of_pure
from repro.equilibria.best_response import best_response_dynamics
from repro.equilibria.conditions import is_pure_nash

__all__ = ["NashifyResult", "nashify", "nashify_common_beliefs"]


@dataclass(frozen=True)
class NashifyResult:
    """Before/after record of a nashification run."""

    profile: PureProfile
    steps: int
    sc1_before: float
    sc1_after: float
    sc2_before: float
    sc2_after: float
    max_congestion_before: float
    max_congestion_after: float

    @property
    def preserved_max_congestion(self) -> bool:
        """Whether the classic guarantee held: SC never got worse."""
        return self.max_congestion_after <= self.max_congestion_before * (
            1 + 1e-9
        )


def _objective_congestion(game: UncertainRoutingGame, sigma: np.ndarray) -> float:
    """Common-beliefs objective congestion ``max_l L_l / c^l``."""
    caps = game.capacities[0]
    loads = loads_of(sigma, game.weights, game.num_links, game.initial_traffic)
    return float((loads / caps).max())


def nashify_common_beliefs(
    game: UncertainRoutingGame,
    start: AssignmentLike,
    *,
    max_steps: int = 100_000,
) -> NashifyResult:
    """Nashify under common beliefs without increasing max congestion.

    Strategy (Feldmann et al.): while some user defects, move a defecting
    user currently sitting on a maximum-congestion link if one exists
    (this can only lower the maximum), otherwise any defector (its target
    link stays below the current maximum, which is untouched). The
    weighted potential decreases on every move, so the procedure
    terminates at a pure NE.
    """
    if not game.has_common_beliefs():
        raise AlgorithmDomainError(
            "nashify_common_beliefs requires common beliefs; "
            "use nashify() for general games"
        )
    sigma = as_assignment(start, game.num_users, game.num_links).copy()
    caps = game.capacities[0]
    sc1_before, sc2_before = social_costs_of_pure(game, sigma)
    congestion_before = _objective_congestion(game, sigma)

    steps = 0
    while steps < max_steps:
        dev = deviation_latencies(game, sigma)
        current = dev[np.arange(game.num_users), sigma]
        scale = np.maximum(current, 1.0)
        movers = np.flatnonzero(dev.min(axis=1) < current - 1e-9 * scale)
        if movers.size == 0:
            break
        loads = loads_of(sigma, game.weights, game.num_links, game.initial_traffic)
        congestion = loads / caps
        worst_links = np.flatnonzero(
            congestion >= congestion.max() * (1 - 1e-12)
        )
        on_worst = movers[np.isin(sigma[movers], worst_links)]
        user = int(on_worst[0]) if on_worst.size else int(movers[0])
        sigma[user] = int(np.argmin(dev[user]))
        steps += 1
    else:
        raise ConvergenceError(
            f"nashification exceeded {max_steps} steps (weights n={game.num_users})"
        )

    profile = PureProfile(sigma, game.num_links)
    sc1_after, sc2_after = social_costs_of_pure(game, profile)
    return NashifyResult(
        profile=profile,
        steps=steps,
        sc1_before=sc1_before,
        sc1_after=sc1_after,
        sc2_before=sc2_before,
        sc2_after=sc2_after,
        max_congestion_before=congestion_before,
        max_congestion_after=_objective_congestion(game, profile.links),
    )


def nashify(
    game: UncertainRoutingGame,
    start: AssignmentLike,
    *,
    max_steps: int = 100_000,
) -> NashifyResult:
    """Nashify a general game by best-response improvement from *start*.

    Under distinct beliefs there is no objective congestion all users
    agree on, so no monotonicity guarantee exists; the result records the
    subjective SC1/SC2 and the *average-capacity* congestion before and
    after so experiments can quantify the gap to the classic guarantee.
    """
    sigma = as_assignment(start, game.num_users, game.num_links)
    sc1_before, sc2_before = social_costs_of_pure(game, sigma)
    # Without common beliefs, measure congestion against per-link mean
    # effective capacities (a fixed observer).
    mean_caps = game.capacities.mean(axis=0)
    loads = loads_of(sigma, game.weights, game.num_links, game.initial_traffic)
    congestion_before = float((loads / mean_caps).max())

    result = best_response_dynamics(
        game, sigma, schedule="max_regret", max_steps=max_steps,
        raise_on_budget=True,
    )
    profile = result.profile
    if not is_pure_nash(game, profile):  # pragma: no cover - defensive
        raise ConvergenceError("dynamics stopped at a non-equilibrium")
    sc1_after, sc2_after = social_costs_of_pure(game, profile)
    loads_after = loads_of(
        profile.links, game.weights, game.num_links, game.initial_traffic
    )
    return NashifyResult(
        profile=profile,
        steps=result.steps,
        sc1_before=sc1_before,
        sc1_after=sc1_after,
        sc2_before=sc2_before,
        sc2_after=sc2_after,
        max_congestion_before=congestion_before,
        max_congestion_after=float((loads_after / mean_caps).max()),
    )
