"""Approximate (epsilon) equilibria.

The paper's related work cites Koutsoupias, Mavronicolas & Spirakis [12]
on approximate equilibria. This module provides the corresponding
notions for the belief model, used by the experiments to quantify "how
far from equilibrium" intermediate profiles are and to round the fully
mixed closed form into a usable profile when it leaves the simplex:

* :func:`epsilon_pure` / :func:`epsilon_mixed` — the *multiplicative*
  epsilon: the smallest ``eps`` such that no user can improve its cost by
  more than a factor ``1 + eps`` by deviating (the standard notion for
  latency games, scale-free across instances);
* :func:`rounded_fully_mixed` — clip-and-renormalise the Theorem 4.6
  candidate onto the simplex interior and report its epsilon; when the
  true fully mixed NE exists the epsilon is ~0, and its growth as the
  candidate leaves (0,1) measures how "almost fully mixed" an instance is;
* :func:`best_epsilon_pure` — the minimum epsilon over all pure profiles
  of a small game (0 iff a pure NE exists, strictly positive otherwise —
  e.g. for the Milchtaich witness embedded via the substrate).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.game import UncertainRoutingGame
from repro.model.latency import deviation_latencies, mixed_latency_matrix
from repro.model.profiles import (
    AssignmentLike,
    MixedLike,
    MixedProfile,
    as_assignment,
    as_mixed_matrix,
)
from repro.model.social import enumerate_assignments
from repro.equilibria.fully_mixed import fully_mixed_candidate

__all__ = [
    "epsilon_pure",
    "epsilon_mixed",
    "RoundedFullyMixed",
    "rounded_fully_mixed",
    "best_epsilon_pure",
]


def epsilon_pure(game: UncertainRoutingGame, assignment: AssignmentLike) -> float:
    """Multiplicative regret of a pure profile.

    ``max_i (lambda_i / min_l lambda_i->l) - 1``; zero exactly at pure NE.
    """
    sigma = as_assignment(assignment, game.num_users, game.num_links)
    dev = deviation_latencies(game, sigma)
    current = dev[np.arange(game.num_users), sigma]
    best = dev.min(axis=1)
    return float(max((current / best).max() - 1.0, 0.0))


def epsilon_mixed(game: UncertainRoutingGame, mixed: MixedLike) -> float:
    """Multiplicative regret of a mixed profile over its support."""
    p = as_mixed_matrix(mixed, game.num_users, game.num_links)
    lat = mixed_latency_matrix(game, p)
    minima = lat.min(axis=1)
    support_worst = np.where(p > 1e-12, lat, -np.inf).max(axis=1)
    return float(max((support_worst / minima).max() - 1.0, 0.0))


@dataclass(frozen=True)
class RoundedFullyMixed:
    """The simplex-projected fully mixed candidate and its quality."""

    profile: MixedProfile
    epsilon: float
    was_interior: bool


def rounded_fully_mixed(
    game: UncertainRoutingGame, *, floor: float = 1e-6
) -> RoundedFullyMixed:
    """Project the Theorem 4.6 candidate onto the simplex interior.

    Entries are clipped to ``[floor, 1]`` and rows renormalised. When the
    candidate was already interior this is (numerically) the exact fully
    mixed NE with epsilon ~ 0; otherwise the epsilon quantifies the
    violation — useful as a diagnostic for "near fully mixed" instances.
    """
    cand = fully_mixed_candidate(game)
    probs = np.clip(cand.probabilities, floor, None)
    probs /= probs.sum(axis=1, keepdims=True)
    profile = MixedProfile(probs)
    return RoundedFullyMixed(
        profile=profile,
        epsilon=epsilon_mixed(game, profile),
        was_interior=cand.exists,
    )


def best_epsilon_pure(game: UncertainRoutingGame) -> tuple[float, AssignmentLike]:
    """Minimum multiplicative epsilon over all pure profiles (exhaustive).

    Zero iff the game has a pure NE. For classes without pure NE (the
    player-specific witness, embedded) this measures how close the best
    profile gets — the natural "price of non-existence".
    """
    assignments = enumerate_assignments(game.num_users, game.num_links)
    best_eps = np.inf
    best_sigma = assignments[0]
    for row in assignments:
        eps = epsilon_pure(game, row)
        if eps < best_eps:
            best_eps = eps
            best_sigma = row
            if best_eps == 0.0:
                break
    return float(best_eps), best_sigma
