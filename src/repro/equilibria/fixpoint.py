"""Single-game fixed-point mixed-equilibrium solving.

The ``B = 1`` view of :func:`repro.batch.fixpoint.batch_fixpoint_mixed_nash`,
living next to :mod:`repro.equilibria.support_enum` as its
beyond-enumeration sibling: where enumeration walks ``(2^m - 1)^n``
supports, the fixed-point iteration converges in a few hundred
``O(n m)`` rounds, so games with tens of users and links stay solvable.
The price is completeness — the solver returns *one* certified
equilibrium (support enumeration returns all of them), and a game may
fail to converge, which here becomes a
:class:`~repro.errors.ConvergenceError` instead of a mask.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.batch.fixpoint import (
    CERT_TOL,
    DEFAULT_BETA_MAX,
    DEFAULT_ETA,
    DEFAULT_MAX_ROUNDS,
    DEFAULT_STALL_ROUNDS,
    DEFAULT_TOL,
    batch_fixpoint_mixed_nash,
)
from repro.errors import ConvergenceError
from repro.model.game import UncertainRoutingGame
from repro.model.profiles import MixedProfile

__all__ = ["FixpointSolution", "fixpoint_mixed_nash"]


@dataclass(frozen=True)
class FixpointSolution:
    """One solved game: the profile plus the solve's provenance.

    ``profile`` is the certified equilibrium (a validated
    :class:`~repro.model.profiles.MixedProfile`); ``residual`` the final
    supported-link excess latency; ``rounds`` the update rounds
    consumed; ``certified`` the oracle verdict at
    :data:`~repro.batch.fixpoint.CERT_TOL` on the raw solver tensor.
    """

    profile: MixedProfile
    residual: float
    rounds: int
    certified: bool


def fixpoint_mixed_nash(
    game: UncertainRoutingGame,
    *,
    tol: float = DEFAULT_TOL,
    eta: float = DEFAULT_ETA,
    beta_max: int = DEFAULT_BETA_MAX,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    stall_rounds: int = DEFAULT_STALL_ROUNDS,
    certify_tol: float = CERT_TOL,
) -> FixpointSolution:
    """One mixed Nash equilibrium of *game* by annealed fixed-point
    iteration.

    Raises :class:`~repro.errors.ConvergenceError` when the iteration
    stalls or exhausts its round budget — the single-game rendering of
    the batch solver's non-converged flag. The returned tensor slice is
    bit-identical to row ``b`` of a batched solve containing this game
    (trajectories are independent of batch-mates).
    """
    result = batch_fixpoint_mixed_nash(
        game.weights[None],
        game.capacities[None],
        game.initial_traffic[None],
        tol=tol,
        eta=eta,
        beta_max=beta_max,
        max_rounds=max_rounds,
        stall_rounds=stall_rounds,
        certify_tol=certify_tol,
    )
    if not bool(result.converged[0]):
        reason = "stalled" if bool(result.stalled[0]) else "round budget exhausted"
        raise ConvergenceError(
            f"fixed-point iteration did not converge ({reason}) after "
            f"{int(result.rounds[0])} rounds; residual "
            f"{float(result.residuals[0]):.3e} > tol {tol:.1e}"
        )
    return FixpointSolution(
        profile=MixedProfile(result.probabilities[0]),
        residual=float(result.residuals[0]),
        rounds=int(result.rounds[0]),
        certified=bool(result.certified[0]),
    )
