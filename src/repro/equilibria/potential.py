"""Potential-function analysis (Section 3.2).

The paper reports two structural negatives for the general model, both of
which this module makes checkable:

* **No exact potential.** By Monderer & Shapley, a game admits an exact
  potential iff every two-player four-cycle of unilateral deviations has
  zero net deviator cost change. :func:`exact_potential_cycle_gap`
  evaluates that cycle sum over sampled (or exhaustively, all) 4-cycles;
  a non-zero gap certifies non-existence.
* **No ordinal potential.** An ordinal potential exists iff the game has
  the finite improvement property, i.e. its better-response graph is
  acyclic. :func:`has_better_response_cycle` searches for a cycle, which
  reproduces B. Monien's observation that the state space of an instance
  of the game contains an improvement cycle.

For contrast, the *common-beliefs* restriction of the model (which covers
the KP-model) is a weighted potential game:
:func:`weighted_potential_common_beliefs` implements

    Phi(sigma) = sum_l (L_l^2 + sum_{i on l} w_i^2) / (2 c^l)

which satisfies ``Phi(s') - Phi(s) = w_i (lambda_i(s') - lambda_i(s))``
for a unilateral move of user ``i`` — so better-response dynamics always
converge there.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import AlgorithmDomainError
from repro.model.game import UncertainRoutingGame
from repro.model.latency import pure_latency_of_user
from repro.model.profiles import AssignmentLike, as_assignment, loads_of
from repro.equilibria.game_graph import (
    MAX_GRAPH_STATES,
    better_response_graph,
    find_response_cycle,
)
from repro.equilibria.best_response import better_response_dynamics
from repro.util.rng import RandomState, as_generator

__all__ = [
    "exact_potential_cycle_gap",
    "has_better_response_cycle",
    "weighted_potential_common_beliefs",
    "verify_weighted_potential",
    "ordinal_potential_symmetric",
    "verify_ordinal_potential_symmetric",
]


def _four_cycle_gap(
    game: UncertainRoutingGame,
    base: np.ndarray,
    i: int,
    j: int,
    links_i: tuple[int, int],
    links_j: tuple[int, int],
) -> float:
    """Net deviator cost change around one two-player four-cycle."""
    a, a2 = links_i
    b, b2 = links_j
    sigma = base.copy()
    sigma[i], sigma[j] = a, b

    total = 0.0
    # move order: i: a->a2, j: b->b2, i: a2->a, j: b2->b
    for user, new_link in ((i, a2), (j, b2), (i, a), (j, b)):
        before = pure_latency_of_user(game, sigma, user)
        sigma[user] = new_link
        after = pure_latency_of_user(game, sigma, user)
        total += after - before
    return total


def exact_potential_cycle_gap(
    game: UncertainRoutingGame,
    *,
    num_samples: int | None = None,
    seed: RandomState = None,
) -> float:
    """Maximum |cycle sum| over two-player four-cycles.

    Zero for every 4-cycle iff the game admits an exact potential
    (Monderer & Shapley 1996, Thm 2.8). With ``num_samples=None`` and a
    small game, all 4-cycles are enumerated; otherwise *num_samples*
    random cycles are evaluated.
    """
    n, m = game.num_users, game.num_links
    pairs = list(itertools.combinations(range(n), 2))
    link_pairs = list(itertools.permutations(range(m), 2))
    exhaustive_count = len(pairs) * len(link_pairs) ** 2 * m ** max(n - 2, 0)

    worst = 0.0
    if num_samples is None and exhaustive_count <= 200_000:
        others = [u for u in range(n)]
        from repro.model.social import enumerate_assignments

        for i, j in pairs:
            rest = [u for u in others if u not in (i, j)]
            if rest:
                rest_assignments = enumerate_assignments(len(rest), m)
            else:
                rest_assignments = np.zeros((1, 0), dtype=np.intp)
            for rest_row in rest_assignments:
                base = np.zeros(n, dtype=np.intp)
                base[rest] = rest_row
                for li in link_pairs:
                    for lj in link_pairs:
                        gap = _four_cycle_gap(game, base, i, j, li, lj)
                        worst = max(worst, abs(gap))
        return worst

    rng = as_generator(seed)
    samples = 1_000 if num_samples is None else int(num_samples)
    for _ in range(samples):
        i, j = rng.choice(n, size=2, replace=False)
        base = rng.integers(0, m, size=n).astype(np.intp)
        li = tuple(rng.choice(m, size=2, replace=False))
        lj = tuple(rng.choice(m, size=2, replace=False))
        gap = _four_cycle_gap(game, base, int(i), int(j), li, lj)
        worst = max(worst, abs(gap))
    return worst


def has_better_response_cycle(
    game: UncertainRoutingGame,
    *,
    restarts: int = 20,
    seed: RandomState = None,
) -> bool:
    """Search for a better-response (improvement) cycle.

    Small games get the exact graph-acyclicity test; larger games are
    probed with deterministic better-response trajectories from random
    starts, whose revisits certify cycles (a ``False`` is then only
    "none found").
    """
    if game.num_links**game.num_users <= MAX_GRAPH_STATES:
        graph = better_response_graph(game)
        return find_response_cycle(graph) is not None
    rng = as_generator(seed)
    for _ in range(restarts):
        start = rng.integers(0, game.num_links, size=game.num_users)
        result = better_response_dynamics(
            game, start, schedule="round_robin", record_history=False
        )
        if result.cycled:
            return True
    return False


def weighted_potential_common_beliefs(
    game: UncertainRoutingGame, assignment: AssignmentLike
) -> float:
    """The weighted potential for common-beliefs games.

    ``Phi(sigma) = sum_l (L_l^2 + sum_{i on l} w_i^2) / (2 c^l)`` with
    ``L_l`` the full load (initial traffic included). A unilateral move of
    user ``i`` changes ``Phi`` by exactly ``w_i`` times the user's latency
    change, so ``Phi`` orders improvement paths and the restricted model
    always has pure NE.
    """
    if not game.has_common_beliefs():
        raise AlgorithmDomainError(
            "the weighted potential requires common beliefs "
            "(all users sharing one effective-capacity row)"
        )
    sigma = as_assignment(assignment, game.num_users, game.num_links)
    w = game.weights
    caps = game.capacities[0]  # common row
    loads = loads_of(sigma, w, game.num_links, game.initial_traffic)
    own = np.bincount(sigma, weights=w**2, minlength=game.num_links)
    return float(((loads**2 + own) / (2.0 * caps)).sum())


def ordinal_potential_symmetric(
    game: UncertainRoutingGame, assignment: AssignmentLike
) -> float:
    """An ordinal potential for the *symmetric users* case — a result this
    reproduction adds on top of the paper.

    With equal weights ``w`` let ``k_l`` be the number of users on link
    ``l`` and define

        Phi(sigma) = sum_l log(k_l!) - sum_i log C[i, sigma_i].

    For a unilateral move of user ``i`` from ``a`` to ``b``::

        Delta Phi = log(k_b + 1) - log(k_a) - (log C[i,b] - log C[i,a])
                  = log lambda_i(after) - log lambda_i(before),

    because ``lambda = w k / C`` and the common weight cancels. So Phi
    strictly decreases exactly on strictly improving moves: the
    symmetric-user game has the finite improvement property, and Monien's
    improvement cycle (Section 3.2) necessarily involves *unequal*
    weights.

    Requires zero initial traffic (loads must be pure counts).
    """
    from scipy.special import gammaln

    if not game.has_symmetric_users():
        raise AlgorithmDomainError(
            "the ordinal potential requires symmetric users (equal weights)"
        )
    if np.any(game.initial_traffic > 0):
        raise AlgorithmDomainError(
            "the ordinal potential requires zero initial traffic"
        )
    sigma = as_assignment(assignment, game.num_users, game.num_links)
    counts = np.bincount(sigma, minlength=game.num_links)
    log_factorials = float(gammaln(counts + 1.0).sum())
    users = np.arange(game.num_users)
    return log_factorials - float(np.log(game.capacities[users, sigma]).sum())


def verify_ordinal_potential_symmetric(
    game: UncertainRoutingGame,
    assignment: AssignmentLike,
    user: int,
    new_link: int,
    *,
    rtol: float = 1e-9,
) -> bool:
    """Check ``Delta Phi = log lambda_after - log lambda_before`` for one move."""
    sigma = as_assignment(assignment, game.num_users, game.num_links).copy()
    phi_before = ordinal_potential_symmetric(game, sigma)
    lat_before = pure_latency_of_user(game, sigma, user)
    sigma[user] = new_link
    phi_after = ordinal_potential_symmetric(game, sigma)
    lat_after = pure_latency_of_user(game, sigma, user)
    lhs = phi_after - phi_before
    rhs = np.log(lat_after) - np.log(lat_before)
    scale = max(abs(lhs), abs(rhs), 1.0)
    return abs(lhs - rhs) <= rtol * scale


def verify_weighted_potential(
    game: UncertainRoutingGame,
    assignment: AssignmentLike,
    user: int,
    new_link: int,
    *,
    rtol: float = 1e-9,
) -> bool:
    """Check ``Delta Phi = w_i * Delta lambda_i`` for one unilateral move."""
    sigma = as_assignment(assignment, game.num_users, game.num_links).copy()
    phi_before = weighted_potential_common_beliefs(game, sigma)
    lat_before = pure_latency_of_user(game, sigma, user)
    sigma[user] = new_link
    phi_after = weighted_potential_common_beliefs(game, sigma)
    lat_after = pure_latency_of_user(game, sigma, user)
    lhs = phi_after - phi_before
    rhs = game.weights[user] * (lat_after - lat_before)
    scale = max(abs(lhs), abs(rhs), 1.0)
    return abs(lhs - rhs) <= rtol * scale
