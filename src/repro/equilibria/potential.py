"""Potential-function analysis (Section 3.2).

The paper reports two structural negatives for the general model, both of
which this module makes checkable:

* **No exact potential.** By Monderer & Shapley, a game admits an exact
  potential iff every two-player four-cycle of unilateral deviations has
  zero net deviator cost change. :func:`exact_potential_cycle_gap`
  evaluates that cycle sum over sampled (or exhaustively, all) 4-cycles;
  a non-zero gap certifies non-existence.
* **No ordinal potential.** An ordinal potential exists iff the game has
  the finite improvement property, i.e. its better-response graph is
  acyclic. :func:`has_better_response_cycle` searches for a cycle, which
  reproduces B. Monien's observation that the state space of an instance
  of the game contains an improvement cycle.

For contrast, the *common-beliefs* restriction of the model (which covers
the KP-model) is a weighted potential game:
:func:`weighted_potential_common_beliefs` implements

    Phi(sigma) = sum_l (L_l^2 + sum_{i on l} w_i^2) / (2 c^l)

which satisfies ``Phi(s') - Phi(s) = w_i (lambda_i(s') - lambda_i(s))``
for a unilateral move of user ``i`` — so better-response dynamics always
converge there.

Every evaluator here is the ``B = 1`` view of a batched kernel in
:mod:`repro.batch.pure`: the potentials and their one-move identity
checks, the four-cycle gap (both the exhaustive enumeration and the
sampled estimate, whose RNG stream is replayed draw for draw), and the
small-game acyclicity test, which delegates to the stacked
response-cycle census instead of materialising a graph object.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.batch.container import GameBatch
from repro.batch.pure import (
    batch_four_cycle_gaps,
    batch_ordinal_potential_symmetric,
    batch_response_cycle_census,
    batch_sampled_cycle_gaps,
    batch_verify_ordinal_potential_symmetric,
    batch_verify_weighted_potential,
    batch_weighted_potential,
    _four_cycle_inputs,
)
from repro.errors import AlgorithmDomainError
from repro.model.game import UncertainRoutingGame
from repro.model.profiles import AssignmentLike, as_assignment
from repro.model.social import enumerate_assignments
from repro.equilibria.game_graph import MAX_GRAPH_STATES
from repro.equilibria.best_response import better_response_dynamics
from repro.util.rng import RandomState, as_generator

__all__ = [
    "exact_potential_cycle_gap",
    "has_better_response_cycle",
    "weighted_potential_common_beliefs",
    "verify_weighted_potential",
    "ordinal_potential_symmetric",
    "verify_ordinal_potential_symmetric",
]


def _batch_of_one(game: UncertainRoutingGame) -> GameBatch:
    return GameBatch(
        game.weights[None, :],
        game.capacities[None, :, :],
        initial_traffic=game.initial_traffic[None, :],
    )


def _exhaustive_cycle_blocks(
    num_users: int, num_links: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """All two-player four-cycles: (pairs, bases, links_i, links_j) rows.

    Enumerates every unordered user pair, every assignment of the
    remaining users, and every ordered link pair for each mover — the
    same cycle set the sequential loop visited (order is irrelevant: the
    caller reduces with ``max``).
    """
    n, m = num_users, num_links
    link_pairs = np.array(
        list(itertools.permutations(range(m), 2)), dtype=np.intp
    )
    lp = link_pairs.shape[0]
    pair_rows = []
    base_rows = []
    for i, j in itertools.combinations(range(n), 2):
        rest = [u for u in range(n) if u not in (i, j)]
        if rest:
            rest_assignments = enumerate_assignments(len(rest), m)
        else:
            rest_assignments = np.zeros((1, 0), dtype=np.intp)
        bases = np.zeros((rest_assignments.shape[0], n), dtype=np.intp)
        bases[:, rest] = rest_assignments
        base_rows.append(bases)
        pair_rows.append(np.broadcast_to([i, j], (bases.shape[0], 2)))
    pairs = np.concatenate(pair_rows)
    bases = np.concatenate(base_rows)
    r = pairs.shape[0]
    # Cross every (pair, base) row with every (li, lj) combination.
    pairs = np.repeat(pairs, lp * lp, axis=0)
    bases = np.repeat(bases, lp * lp, axis=0)
    links_i = np.tile(np.repeat(link_pairs, lp, axis=0), (r, 1))
    links_j = np.tile(np.tile(link_pairs, (lp, 1)), (r, 1))
    return pairs, bases, links_i, links_j


def exact_potential_cycle_gap(
    game: UncertainRoutingGame,
    *,
    num_samples: int | None = None,
    seed: RandomState = None,
) -> float:
    """Maximum |cycle sum| over two-player four-cycles.

    Zero for every 4-cycle iff the game admits an exact potential
    (Monderer & Shapley 1996, Thm 2.8). With ``num_samples=None`` and a
    small game, all 4-cycles are enumerated; otherwise *num_samples*
    random cycles are evaluated. Either way the cycles are walked by the
    batched evaluator :func:`repro.batch.pure.batch_four_cycle_gaps` in
    one vectorised pass.
    """
    n, m = game.num_users, game.num_links
    pairs = list(itertools.combinations(range(n), 2))
    link_pairs = list(itertools.permutations(range(m), 2))
    exhaustive_count = len(pairs) * len(link_pairs) ** 2 * m ** max(n - 2, 0)

    batch = _batch_of_one(game)
    if num_samples is None and exhaustive_count <= 200_000:
        pair_arr, bases, links_i, links_j = _exhaustive_cycle_blocks(n, m)
        sigma0, move_users, move_links = _four_cycle_inputs(
            pair_arr, bases, links_i, links_j
        )
        gaps = batch_four_cycle_gaps(
            batch.weights,
            batch.capacities,
            batch.initial_traffic,
            np.zeros(sigma0.shape[0], dtype=np.intp),
            sigma0,
            move_users,
            move_links,
        )
        return float(np.abs(gaps).max(initial=0.0))

    samples = 1_000 if num_samples is None else int(num_samples)
    worst = batch_sampled_cycle_gaps(
        batch, [as_generator(seed)], num_samples=samples
    )
    return float(worst[0])


def has_better_response_cycle(
    game: UncertainRoutingGame,
    *,
    restarts: int = 20,
    seed: RandomState = None,
) -> bool:
    """Search for a better-response (improvement) cycle.

    Small games get the exact census (the ``B = 1`` view of
    :func:`repro.batch.pure.batch_response_cycle_census`); larger games
    are probed with deterministic better-response trajectories from
    random starts, whose revisits certify cycles (a ``False`` is then
    only "none found").
    """
    if game.num_links**game.num_users <= MAX_GRAPH_STATES:
        return bool(
            batch_response_cycle_census(_batch_of_one(game), kind="better")[0]
        )
    rng = as_generator(seed)
    for _ in range(restarts):
        start = rng.integers(0, game.num_links, size=game.num_users)
        result = better_response_dynamics(
            game, start, schedule="round_robin", record_history=False
        )
        if result.cycled:
            return True
    return False


def weighted_potential_common_beliefs(
    game: UncertainRoutingGame, assignment: AssignmentLike
) -> float:
    """The weighted potential for common-beliefs games.

    ``Phi(sigma) = sum_l (L_l^2 + sum_{i on l} w_i^2) / (2 c^l)`` with
    ``L_l`` the full load (initial traffic included). A unilateral move of
    user ``i`` changes ``Phi`` by exactly ``w_i`` times the user's latency
    change, so ``Phi`` orders improvement paths and the restricted model
    always has pure NE. The ``B = 1`` view of
    :func:`repro.batch.pure.batch_weighted_potential`.
    """
    if not game.has_common_beliefs():
        raise AlgorithmDomainError(
            "the weighted potential requires common beliefs "
            "(all users sharing one effective-capacity row)"
        )
    sigma = as_assignment(assignment, game.num_users, game.num_links)
    return float(batch_weighted_potential(_batch_of_one(game), sigma[None, :])[0])


def ordinal_potential_symmetric(
    game: UncertainRoutingGame, assignment: AssignmentLike
) -> float:
    """An ordinal potential for the *symmetric users* case — a result this
    reproduction adds on top of the paper.

    With equal weights ``w`` let ``k_l`` be the number of users on link
    ``l`` and define

        Phi(sigma) = sum_l log(k_l!) - sum_i log C[i, sigma_i].

    For a unilateral move of user ``i`` from ``a`` to ``b``::

        Delta Phi = log(k_b + 1) - log(k_a) - (log C[i,b] - log C[i,a])
                  = log lambda_i(after) - log lambda_i(before),

    because ``lambda = w k / C`` and the common weight cancels. So Phi
    strictly decreases exactly on strictly improving moves: the
    symmetric-user game has the finite improvement property, and Monien's
    improvement cycle (Section 3.2) necessarily involves *unequal*
    weights.

    Requires zero initial traffic (loads must be pure counts). The
    ``B = 1`` view of
    :func:`repro.batch.pure.batch_ordinal_potential_symmetric`.
    """
    if not game.has_symmetric_users():
        raise AlgorithmDomainError(
            "the ordinal potential requires symmetric users (equal weights)"
        )
    sigma = as_assignment(assignment, game.num_users, game.num_links)
    return float(
        batch_ordinal_potential_symmetric(_batch_of_one(game), sigma[None, :])[0]
    )


def verify_ordinal_potential_symmetric(
    game: UncertainRoutingGame,
    assignment: AssignmentLike,
    user: int,
    new_link: int,
    *,
    rtol: float = 1e-9,
) -> bool:
    """Check ``Delta Phi = log lambda_after - log lambda_before`` for one move."""
    sigma = as_assignment(assignment, game.num_users, game.num_links)
    if not game.has_symmetric_users():
        raise AlgorithmDomainError(
            "the ordinal potential requires symmetric users (equal weights)"
        )
    verdict = batch_verify_ordinal_potential_symmetric(
        _batch_of_one(game),
        sigma[None, :],
        np.asarray([user], dtype=np.intp),
        np.asarray([new_link], dtype=np.intp),
        rtol=rtol,
    )
    return bool(verdict[0])


def verify_weighted_potential(
    game: UncertainRoutingGame,
    assignment: AssignmentLike,
    user: int,
    new_link: int,
    *,
    rtol: float = 1e-9,
) -> bool:
    """Check ``Delta Phi = w_i * Delta lambda_i`` for one unilateral move."""
    if not game.has_common_beliefs():
        raise AlgorithmDomainError(
            "the weighted potential requires common beliefs "
            "(all users sharing one effective-capacity row)"
        )
    sigma = as_assignment(assignment, game.num_users, game.num_links)
    verdict = batch_verify_weighted_potential(
        _batch_of_one(game),
        sigma[None, :],
        np.asarray([user], dtype=np.intp),
        np.asarray([new_link], dtype=np.intp),
        rtol=rtol,
    )
    return bool(verdict[0])
