"""Equilibrium computation: Nash conditions, the paper's algorithms,
best-response dynamics, enumeration, fully mixed equilibria, game graphs
and potential-function analysis."""

from repro.equilibria.approximate import (
    best_epsilon_pure,
    epsilon_mixed,
    epsilon_pure,
    rounded_fully_mixed,
)
from repro.equilibria.best_response import (
    DynamicsResult,
    best_response_dynamics,
    best_responses,
    better_response_dynamics,
)
from repro.equilibria.conditions import (
    deviation_gains,
    epsilon_of_profile,
    is_mixed_nash,
    is_pure_nash,
    mixed_regrets,
    pure_regrets,
)
from repro.equilibria.enumeration import (
    count_pure_nash,
    exists_pure_nash,
    pure_nash_profiles,
)
from repro.equilibria.fully_mixed import (
    FullyMixedResult,
    fully_mixed_candidate,
    fully_mixed_nash,
    has_fully_mixed_nash,
)
from repro.equilibria.game_graph import (
    best_response_graph,
    better_response_graph,
    find_response_cycle,
    sink_states,
)
from repro.equilibria.nashify import NashifyResult, nashify, nashify_common_beliefs
from repro.equilibria.potential import (
    exact_potential_cycle_gap,
    has_better_response_cycle,
    ordinal_potential_symmetric,
    weighted_potential_common_beliefs,
)
from repro.equilibria.fixpoint import FixpointSolution, fixpoint_mixed_nash
from repro.equilibria.solve import solve_pure_nash
from repro.equilibria.structure import EquilibriumSet, equilibrium_set
from repro.equilibria.support_enum import enumerate_mixed_nash
from repro.equilibria.symmetric import asymmetric
from repro.equilibria.two_links import atwolinks, tolerances
from repro.equilibria.uniform import auniform

__all__ = [
    "best_epsilon_pure",
    "epsilon_mixed",
    "epsilon_pure",
    "rounded_fully_mixed",
    "NashifyResult",
    "nashify",
    "nashify_common_beliefs",
    "ordinal_potential_symmetric",
    "EquilibriumSet",
    "equilibrium_set",
    "DynamicsResult",
    "best_response_dynamics",
    "best_responses",
    "better_response_dynamics",
    "deviation_gains",
    "epsilon_of_profile",
    "is_mixed_nash",
    "is_pure_nash",
    "mixed_regrets",
    "pure_regrets",
    "count_pure_nash",
    "exists_pure_nash",
    "pure_nash_profiles",
    "FullyMixedResult",
    "fully_mixed_candidate",
    "fully_mixed_nash",
    "has_fully_mixed_nash",
    "best_response_graph",
    "better_response_graph",
    "find_response_cycle",
    "sink_states",
    "exact_potential_cycle_gap",
    "has_better_response_cycle",
    "weighted_potential_common_beliefs",
    "solve_pure_nash",
    "enumerate_mixed_nash",
    "FixpointSolution",
    "fixpoint_mixed_nash",
    "asymmetric",
    "atwolinks",
    "tolerances",
    "auniform",
]
