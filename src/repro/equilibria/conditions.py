"""Nash-equilibrium conditions for pure and mixed profiles (Section 2).

A probability matrix ``P`` is a Nash equilibrium when every user puts
positive probability only on links whose expected latency attains its
minimum:

    lambda^l_{i,b_i}(P)  = lambda_{i,b_i}(P)   if P[i, l] > 0
    lambda^l_{i,b_i}(P) >= lambda_{i,b_i}(P)   if P[i, l] = 0.

For a pure profile the condition specialises to: no user can strictly
reduce its belief-expected latency by unilaterally switching links.

All checks are tolerance-based (default ``1e-9`` relative to the latency
scale) because effective capacities are floating-point reductions of
belief expectations.
"""

from __future__ import annotations

import numpy as np

from repro.batch.mixed import SUPPORT_ATOL, batch_is_mixed_nash
from repro.model.game import UncertainRoutingGame
from repro.model.latency import deviation_latencies, mixed_latency_matrix
from repro.model.profiles import AssignmentLike, MixedLike, as_assignment, as_mixed_matrix

__all__ = [
    "DEFAULT_TOL",
    "pure_regrets",
    "deviation_gains",
    "is_pure_nash",
    "mixed_regrets",
    "is_mixed_nash",
    "epsilon_of_profile",
]

#: Default tolerance for equilibrium tests.
DEFAULT_TOL = 1e-9


def deviation_gains(game: UncertainRoutingGame, assignment: AssignmentLike) -> np.ndarray:
    """The ``(n, m)`` matrix of latency *changes* available to each user.

    Entry ``(i, l)`` is ``lambda_i(sigma with i -> l) - lambda_i(sigma)``;
    negative entries are profitable unilateral deviations.
    """
    sigma = as_assignment(assignment, game.num_users, game.num_links)
    dev = deviation_latencies(game, assignment)
    current = dev[np.arange(game.num_users), sigma]
    return dev - current[:, None]


def pure_regrets(game: UncertainRoutingGame, assignment: AssignmentLike) -> np.ndarray:
    """Per-user regret: current latency minus best achievable latency.

    A profile is a pure Nash equilibrium iff every regret is (numerically)
    zero; the vector doubles as the defecting-user indicator of Section 3.
    """
    gains = deviation_gains(game, assignment)
    return np.maximum(-gains.min(axis=1), 0.0)


def is_pure_nash(
    game: UncertainRoutingGame,
    assignment: AssignmentLike,
    *,
    tol: float = DEFAULT_TOL,
) -> bool:
    """True when no user can strictly improve by a unilateral move."""
    dev = deviation_latencies(game, assignment)
    sigma = as_assignment(assignment, game.num_users, game.num_links)
    current = dev[np.arange(game.num_users), sigma]
    scale = np.maximum(current, 1.0)
    return bool(np.all(dev.min(axis=1) >= current - tol * scale))


def mixed_regrets(game: UncertainRoutingGame, mixed: MixedLike) -> np.ndarray:
    """Per-user regret of a mixed profile.

    For user ``i`` this is ``max_{l in support(i)} lambda^l_i - min_l
    lambda^l_i``: how far the worst supported link is from optimal. Zero
    for every user exactly characterises a mixed Nash equilibrium.
    """
    p = as_mixed_matrix(mixed, game.num_users, game.num_links)
    lat = mixed_latency_matrix(game, p)
    minima = lat.min(axis=1)
    support_worst = np.where(p > SUPPORT_ATOL, lat, -np.inf).max(axis=1)
    return np.maximum(support_worst - minima, 0.0)


def is_mixed_nash(
    game: UncertainRoutingGame,
    mixed: MixedLike,
    *,
    tol: float = DEFAULT_TOL,
) -> bool:
    """True when the support-optimality condition holds for every user.

    The ``B = 1`` view of :func:`repro.batch.mixed.batch_is_mixed_nash`.
    """
    p = as_mixed_matrix(mixed, game.num_users, game.num_links)
    return bool(
        batch_is_mixed_nash(
            p, game.weights, game.capacities, game.initial_traffic, tol=tol
        )
    )


def epsilon_of_profile(
    game: UncertainRoutingGame, profile: MixedLike | AssignmentLike
) -> float:
    """The additive epsilon for which the profile is an epsilon-NE
    (the maximum regret across users)."""
    if hasattr(profile, "links"):  # PureProfile
        return float(pure_regrets(game, profile).max())
    arr = np.asarray(
        profile.matrix if hasattr(profile, "matrix") else profile, dtype=np.float64
    )
    if arr.ndim == 2:
        return float(mixed_regrets(game, profile).max())
    return float(pure_regrets(game, profile).max())
