"""Algorithm ``Atwolinks`` (Figure 1): pure NE for two links in O(n^2).

The paper's Definition 3.1 associates with each user ``i`` and link ``j``
a *tolerance* ``alpha^j_i`` — the largest total load on link ``j`` that
user ``i`` accepts while routing there, given that the remaining load
``T - alpha^j_i`` sits on the other link. Solving the defining balance
equation yields the closed form of Figure 1:

    alpha^j_i = (c^1_i c^2_i / (c^1_i + c^2_i))
                * ((t_{j+1} + T + w_i) / c^{j+1}_i  -  t_j / c^j_i)

(indices mod 2). Lemma 3.2 shows the tolerance exactly captures the Nash
condition, and the greedy "place the most tolerant user on its preferred
link, then recurse with that link's initial traffic increased" is proven
to return a pure Nash equilibrium (Theorem 3.3).

The recursion is implemented iteratively: each round recomputes the
remaining users' tolerances against the updated initial traffic ``t`` and
the shrunken total ``T``, which is the O(n) work of the O(n^2) bound.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlgorithmDomainError
from repro.model.game import UncertainRoutingGame
from repro.model.profiles import PureProfile

__all__ = ["tolerances", "atwolinks"]


def tolerances(
    game: UncertainRoutingGame,
    *,
    initial_traffic: np.ndarray | None = None,
    total_traffic: float | None = None,
    users: np.ndarray | None = None,
) -> np.ndarray:
    """Tolerance matrix ``alpha[u, j]`` of Definition 3.1.

    Parameters mirror the recursion of Figure 1: *initial_traffic* and
    *total_traffic* default to the game's own ``t`` and ``T``; *users*
    restricts the computation to a subset (rows are returned in the order
    given).
    """
    if game.num_links != 2:
        raise AlgorithmDomainError(
            f"tolerances are defined for m=2 links, game has m={game.num_links}"
        )
    t = game.initial_traffic if initial_traffic is None else np.asarray(initial_traffic, dtype=np.float64)
    T = game.total_traffic if total_traffic is None else float(total_traffic)
    idx = np.arange(game.num_users) if users is None else np.asarray(users, dtype=np.intp)
    c = game.capacities[idx]  # (k, 2)
    w = game.weights[idx]  # (k,)
    harmonic = (c[:, 0] * c[:, 1]) / (c[:, 0] + c[:, 1])  # c1*c2/(c1+c2)
    alpha = np.empty((idx.size, 2))
    for j in (0, 1):
        other = 1 - j
        alpha[:, j] = harmonic * ((t[other] + T + w) / c[:, other] - t[j] / c[:, j])
    return alpha


def atwolinks(game: UncertainRoutingGame) -> PureProfile:
    """Compute a pure Nash equilibrium of a two-link game (Theorem 3.3).

    Supports arbitrary initial link traffic ``t`` (taken from the game).
    Runs in O(n^2): n rounds, each recomputing the O(n) tolerance matrix
    of the remaining users.
    """
    if game.num_links != 2:
        raise AlgorithmDomainError(
            f"atwolinks requires m=2 links, game has m={game.num_links}"
        )
    n = game.num_users
    w = game.weights
    t = game.initial_traffic.copy()
    remaining = np.arange(n)
    T = game.total_traffic
    sigma = np.empty(n, dtype=np.intp)

    while remaining.size > 0:
        alpha = tolerances(
            game, initial_traffic=t, total_traffic=T, users=remaining
        )
        preferred = np.argmax(alpha, axis=1)  # each user's preferred link
        best_alpha = alpha[np.arange(remaining.size), preferred]
        pick = int(np.argmax(best_alpha))  # user with the highest tolerance
        user = int(remaining[pick])
        link = int(preferred[pick])
        sigma[user] = link
        t[link] += w[user]
        T -= w[user]
        remaining = np.delete(remaining, pick)

    return PureProfile(sigma, 2)
