"""repro — reproduction of *Network Uncertainty in Selfish Routing*
(Georgiou, Pavlides & Philippou; IPPS 2006).

The library models selfish routing of ``n`` users over ``m`` parallel
links when users hold private probabilistic *beliefs* about the links'
capacities, and implements everything the paper builds or cites:

* the model layer — states, beliefs, games, latencies, social costs;
* the paper's three pure-NE algorithms (``Atwolinks``, ``Asymmetric``,
  ``Auniform``) plus enumeration and best-response dynamics;
* fully mixed Nash equilibria in closed form, with uniqueness and
  worst-case (social-cost-maximising) verification;
* the price-of-anarchy bounds of Theorems 4.13/4.14;
* the substrates: the KP-model and Milchtaich's player-specific games;
* the experiment harness (E1-E12) regenerating every checkable artefact;
* the batched game engine (:mod:`repro.batch`) — B instances stacked
  into ``(B, n, m)`` tensors, with vectorised kernels, lockstep
  best-response dynamics and stacked support enumeration; the
  single-game APIs are its ``B = 1`` views;
* the campaign runtime (:mod:`repro.runtime`) — declarative
  :class:`~repro.runtime.spec.SweepSpec` campaigns, a chunked
  process-pool scheduler, and an append-only JSONL result store with
  checkpoint/resume.

Quickstart::

    import numpy as np
    from repro import StateSpace, BeliefProfile, UncertainRoutingGame
    from repro import solve_pure_nash, fully_mixed_nash

    states = StateSpace([[1.0, 2.0], [2.0, 1.0]])
    beliefs = BeliefProfile.from_matrix(states, [[0.9, 0.1], [0.2, 0.8]])
    game = UncertainRoutingGame([1.0, 2.0], beliefs)
    profile, method = solve_pure_nash(game)
"""

from repro.errors import (
    AlgorithmDomainError,
    BeliefError,
    ConvergenceError,
    DimensionError,
    ModelError,
    NoEquilibriumError,
    NotFullyMixedError,
    ReproError,
    SolverError,
)
from repro.model import (
    Belief,
    BeliefProfile,
    MixedProfile,
    OptimumResult,
    PureProfile,
    StateSpace,
    UncertainRoutingGame,
    common_belief_profile,
    coordination_ratios,
    dirichlet_belief,
    opt1,
    opt2,
    optimum,
    point_mass_belief,
    sc1,
    sc2,
    uniform_belief,
)
from repro.equilibria import (
    asymmetric,
    atwolinks,
    auniform,
    best_response_dynamics,
    better_response_dynamics,
    count_pure_nash,
    enumerate_mixed_nash,
    exists_pure_nash,
    fully_mixed_candidate,
    fully_mixed_nash,
    has_fully_mixed_nash,
    is_mixed_nash,
    is_pure_nash,
    pure_nash_profiles,
    solve_pure_nash,
)
from repro.analysis import (
    poa_bound_general,
    poa_bound_uniform,
    run_conjecture_campaign,
    verify_fmne_dominance,
)
from repro.batch import (
    BatchDynamicsResult,
    GameBatch,
    batch_best_response_dynamics,
    batch_better_response_dynamics,
    batch_count_pure_nash,
    batch_deviation_latencies,
    batch_exists_pure_nash,
    batch_loads,
    batch_pure_latencies,
    batch_pure_nash_mask,
    batch_empirical_ratios,
    batch_fully_mixed_candidate,
    batch_is_mixed_nash,
    batch_min_expected_latencies,
    batch_mixed_latency_matrix,
    batch_poa_bound_general,
    batch_poa_bound_uniform,
    batch_social_optima,
    batch_enumerate_mixed_nash,
    random_game_batch,
)
from repro.runtime import ResultStore, SweepResult, SweepSpec, run_sweep
from repro.substrates import PlayerSpecificGame, kp_game

__version__ = "1.0.0"

__all__ = [
    # errors
    "AlgorithmDomainError",
    "BeliefError",
    "ConvergenceError",
    "DimensionError",
    "ModelError",
    "NoEquilibriumError",
    "NotFullyMixedError",
    "ReproError",
    "SolverError",
    # model
    "Belief",
    "BeliefProfile",
    "MixedProfile",
    "OptimumResult",
    "PureProfile",
    "StateSpace",
    "UncertainRoutingGame",
    "common_belief_profile",
    "coordination_ratios",
    "dirichlet_belief",
    "opt1",
    "opt2",
    "optimum",
    "point_mass_belief",
    "sc1",
    "sc2",
    "uniform_belief",
    # equilibria
    "asymmetric",
    "atwolinks",
    "auniform",
    "best_response_dynamics",
    "better_response_dynamics",
    "count_pure_nash",
    "enumerate_mixed_nash",
    "exists_pure_nash",
    "fully_mixed_candidate",
    "fully_mixed_nash",
    "has_fully_mixed_nash",
    "is_mixed_nash",
    "is_pure_nash",
    "pure_nash_profiles",
    "solve_pure_nash",
    # analysis
    "poa_bound_general",
    "poa_bound_uniform",
    "run_conjecture_campaign",
    "verify_fmne_dominance",
    # batch engine
    "BatchDynamicsResult",
    "GameBatch",
    "batch_best_response_dynamics",
    "batch_better_response_dynamics",
    "batch_count_pure_nash",
    "batch_deviation_latencies",
    "batch_exists_pure_nash",
    "batch_loads",
    "batch_pure_latencies",
    "batch_pure_nash_mask",
    "batch_empirical_ratios",
    "batch_fully_mixed_candidate",
    "batch_is_mixed_nash",
    "batch_min_expected_latencies",
    "batch_mixed_latency_matrix",
    "batch_poa_bound_general",
    "batch_poa_bound_uniform",
    "batch_social_optima",
    "batch_enumerate_mixed_nash",
    "random_game_batch",
    # campaign runtime
    "ResultStore",
    "SweepResult",
    "SweepSpec",
    "run_sweep",
    # substrates
    "PlayerSpecificGame",
    "kp_game",
    "__version__",
]
