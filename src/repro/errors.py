"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without catching programming errors.
The finer-grained subclasses distinguish the three failure domains a
routing-game computation can hit: malformed model data, an algorithm
invoked outside its validity domain, and a solver that terminated without
producing the promised object.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelError",
    "DimensionError",
    "BeliefError",
    "AlgorithmDomainError",
    "BackendError",
    "StoreMergeError",
    "SolverError",
    "NoEquilibriumError",
    "NotFullyMixedError",
    "ConvergenceError",
]


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ModelError(ReproError, ValueError):
    """Model data is malformed (non-positive traffic, bad capacities, ...)."""


class DimensionError(ModelError):
    """Array shapes are inconsistent with the declared (n, m, |Phi|)."""


class BeliefError(ModelError):
    """A belief vector is not a probability distribution over states."""


class AlgorithmDomainError(ReproError, ValueError):
    """A special-case algorithm was invoked on a game outside its domain.

    Examples: :func:`repro.equilibria.two_links.atwolinks` on a game with
    ``m != 2``; :func:`repro.equilibria.uniform.auniform` on a game whose
    beliefs are not uniform across links.
    """


class BackendError(ReproError, ValueError):
    """An array backend is unknown, unavailable, or mismatched.

    Raised when resolving a backend name that is not registered (the
    message lists the registered choices), when a registered backend's
    optional dependency is missing (e.g. ``numba`` without the
    ``repro[jit]`` extra), and when a campaign resume targets a result
    store produced under a different backend.
    """


class StoreMergeError(ReproError, ValueError):
    """Merging shard result stores failed.

    Raised when two shards disagree about the same chunk key (their
    canonical records differ — see ``docs/STORE_FORMAT.md`` for the
    conflict rules), when there is nothing to merge, or when the merge
    destination would be overwritten without ``force``.
    """


class SolverError(ReproError, RuntimeError):
    """A solver terminated without producing the promised object."""


class NoEquilibriumError(SolverError):
    """No equilibrium of the requested kind exists for the instance."""


class NotFullyMixedError(NoEquilibriumError):
    """The closed-form fully mixed profile has a coordinate outside (0, 1),
    so no fully mixed Nash equilibrium exists (Theorem 4.6)."""


class ConvergenceError(SolverError):
    """An iterative dynamic exceeded its step budget without converging."""
