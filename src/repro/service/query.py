"""Equilibrium queries: request validation, digests, the batched solver.

One query describes one uncertain-routing game by its reduced form —
``weights`` ``(n,)``, effective ``capacities`` ``(n, m)`` and optional
``initial_traffic`` ``(m,)`` — or by any of the model's standard
sugar forms (``link_capacities`` for a KP instance, ``states`` +
``beliefs`` for an explicit belief profile, reduced exactly like the
model layer). The answer is everything the paper can say about a small
game:

* the pure-strategy side — exhaustive pure-NE census plus one concrete
  pure equilibrium found by nashification from the all-on-link-0 start,
  with its before/after social costs (Section 3);
* the fully mixed closed form of Lemmas 4.1-4.3 with its interiority
  verdict (Section 4);
* the exact social optima ``OPT1``/``OPT2`` and the worst empirical
  coordination ratios over all equilibria;
* the Theorem 4.13/4.14 price-of-anarchy bounds (4.13 only where the
  uniform-beliefs premise holds).

:func:`solve_requests` is the single solver seam: it groups arbitrary
mixed-shape request lists into per-shape :class:`GameBatch` stacks
(:meth:`GameBatch.from_requests`) and answers each stack with one pass
of the batched kernels, so a coalesced batch of ``B`` concurrent
queries costs one kernel invocation, not ``B``. Every response is
bit-identical to what the direct ``B = 1`` APIs (`repro.equilibria`,
`repro.analysis.poa`, `repro.model.social`) return for the same game —
the batch kernels' parity contract, pinned by ``tests/test_service.py``.

:func:`solve_fixpoint_requests` is the second solver seam behind the
same callable signature: the iterative fixed-point mixed-equilibrium
solver (:func:`repro.batch.fixpoint.batch_fixpoint_mixed_nash`) for
games past the exhaustive census width. A fixpoint query skips the
``MAX_SERVICE_PROFILES`` guard — beyond-enumeration width is its whole
point — and its response carries the solve's provenance (converged /
stalled / certified / rounds / residual) instead of the census; the
profile is returned only when the iteration converged, so every
answer is either oracle-certified or explicitly flagged.

Wire format: requests, responses and the content digests the cache is
keyed on all use the canonical JSON encoding of
:mod:`repro.runtime.store` (``canonical_dumps``/``canonical_payload``
— ``repr``-shortest floats, the ``{"__nonfinite__": ...}`` sentinel
for ``inf``/``nan``), the same encoding campaign result stores are
written in. The shared format is specified, with doctested examples,
in ``docs/STORE_FORMAT.md``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.batch.container import GameBatch
from repro.batch.fixpoint import DEFAULT_MAX_ROUNDS, batch_fixpoint_mixed_nash
from repro.batch.mixed import batch_fully_mixed_candidate
from repro.batch.poa import (
    batch_empirical_ratios,
    batch_poa_bound_general,
    batch_poa_bound_uniform,
)
from repro.batch.pure import batch_nashify
from repro.errors import ConvergenceError
from repro.runtime.store import canonical_dumps, canonical_payload

__all__ = [
    "MAX_SERVICE_PROFILES",
    "EquilibriumRequest",
    "RequestError",
    "game_digest",
    "solve_batch",
    "solve_fixpoint_batch",
    "solve_fixpoint_requests",
    "solve_requests",
]

#: Largest ``m^n`` a query may ask for — the single-game optimum's
#: exhaustive/branch-and-bound cutover (see
#: :func:`repro.analysis.poa.empirical_coordination_ratios`). Below it
#: the batched and sequential paths are bit-identical; above it the
#: census would not fit a low-latency request/response cycle anyway.
MAX_SERVICE_PROFILES = 200_000

#: Start profile for the nashification leg: every user on link 0 — the
#: deterministic worst-ish start the examples use, chosen so repeated
#: queries for the same game replay the same trajectory.
_START_LINK = 0


class RequestError(ValueError):
    """A malformed or out-of-contract query payload."""


def game_digest(
    weights: np.ndarray,
    capacities: np.ndarray,
    initial_traffic: np.ndarray,
) -> str:
    """Content address of a game's reduced form.

    SHA-256 over the canonical JSON of the three arrays. JSON floats use
    ``repr`` shortest round-trip formatting — lossless for float64 — so
    two games share a digest iff their reduced forms are bit-identical,
    which is exactly the equivalence class every solver output is a
    function of.
    """
    doc = canonical_dumps(
        {
            "weights": np.asarray(weights, dtype=np.float64).tolist(),
            "capacities": np.asarray(capacities, dtype=np.float64).tolist(),
            "initial_traffic": np.asarray(
                initial_traffic, dtype=np.float64
            ).tolist(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


def _as_array(
    payload: Mapping[str, Any], key: str, ndim: int
) -> np.ndarray:
    try:
        arr = np.asarray(payload[key], dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise RequestError(f"{key!r} is not numeric: {exc}") from exc
    if arr.ndim != ndim:
        raise RequestError(
            f"{key!r} must be {ndim}-dimensional, got shape {arr.shape}"
        )
    if not np.all(np.isfinite(arr)):
        raise RequestError(f"{key!r} must be finite")
    return arr


@dataclass(frozen=True)
class EquilibriumRequest:
    """One validated game query, addressed by its reduced-form digest."""

    weights: np.ndarray
    capacities: np.ndarray
    initial_traffic: np.ndarray
    digest: str

    @classmethod
    def from_arrays(
        cls,
        weights: np.ndarray,
        capacities: np.ndarray,
        initial_traffic: np.ndarray | None = None,
        *,
        check_width: bool = True,
    ) -> "EquilibriumRequest":
        """Validate a reduced form (via the ``GameBatch`` invariants).

        ``check_width=False`` skips the ``MAX_SERVICE_PROFILES`` census
        guard — the fixpoint op's spelling, whose solver never
        enumerates pure profiles.
        """
        w = np.asarray(weights, dtype=np.float64)
        caps = np.asarray(capacities, dtype=np.float64)
        if caps.ndim != 2:
            raise RequestError(
                f"capacities must be an (n, m) matrix, got shape {caps.shape}"
            )
        t = (
            np.zeros(caps.shape[1])
            if initial_traffic is None
            else np.asarray(initial_traffic, dtype=np.float64)
        )
        try:
            batch = GameBatch(w[None], caps[None], initial_traffic=t[None])
        except (IndexError, ValueError) as exc:  # Model/DimensionError too
            raise RequestError(str(exc)) from exc
        n, m = batch.num_users, batch.num_links
        if check_width and m**n > MAX_SERVICE_PROFILES:
            raise RequestError(
                f"game has {m}^{n} = {m**n} pure profiles; the service "
                f"serves exhaustively-checkable games "
                f"(<= {MAX_SERVICE_PROFILES})"
            )
        w, caps, t = batch.weights[0], batch.capacities[0], batch.initial_traffic[0]
        return cls(
            weights=w,
            capacities=caps,
            initial_traffic=t,
            digest=game_digest(w, caps, t),
        )

    @classmethod
    def from_payload(
        cls,
        payload: Mapping[str, Any],
        *,
        check_width: bool = True,
    ) -> "EquilibriumRequest":
        """Parse a wire-format query.

        Exactly one capacity spelling is required:

        * ``capacities`` — the ``(n, m)`` reduced form, used verbatim;
        * ``link_capacities`` — ``(m,)`` certain capacities: a KP
          instance, reduced like ``UncertainRoutingGame.kp`` (the
          point-mass belief's double reciprocal, replicated per user);
        * ``states`` ``(S, m)`` + ``beliefs`` ``(n, S)`` — an explicit
          belief profile, reduced to belief-harmonic effective
          capacities exactly like the model layer.

        ``weights`` ``(n,)`` is always required; ``initial_traffic``
        ``(m,)`` is optional and defaults to zeros.
        """
        if not isinstance(payload, Mapping):
            raise RequestError("query must be a JSON object")
        if "weights" not in payload:
            raise RequestError("query needs 'weights'")
        weights = _as_array(payload, "weights", 1)
        spellings = [
            key
            for key in ("capacities", "link_capacities", "states")
            if key in payload
        ]
        if len(spellings) != 1:
            raise RequestError(
                "query needs exactly one of 'capacities', "
                "'link_capacities', or 'states' + 'beliefs'"
            )
        if "capacities" in payload:
            capacities = _as_array(payload, "capacities", 2)
        elif "link_capacities" in payload:
            links = _as_array(payload, "link_capacities", 1)
            if np.any(links <= 0.0):
                raise RequestError("'link_capacities' must be positive")
            # The KP reduction routes through the point-mass belief's
            # harmonic mean: 1 / (1 / c) is not a float identity, and
            # digest-level parity with UncertainRoutingGame.kp needs it.
            reduced = 1.0 / (1.0 / links)
            capacities = np.repeat(reduced[None, :], weights.size, axis=0)
        else:
            if "beliefs" not in payload:
                raise RequestError("'states' also needs 'beliefs'")
            states = _as_array(payload, "states", 2)
            beliefs = _as_array(payload, "beliefs", 2)
            if np.any(states <= 0.0):
                raise RequestError("'states' capacities must be positive")
            if np.any(beliefs < 0.0):
                raise RequestError("'beliefs' must be non-negative")
            if beliefs.shape[1] != states.shape[0]:
                raise RequestError(
                    f"'beliefs' covers {beliefs.shape[1]} states, "
                    f"'states' defines {states.shape[0]}"
                )
            sums = beliefs.sum(axis=1, keepdims=True)
            if np.any(np.abs(sums - 1.0) > 1e-9):
                raise RequestError("each user's beliefs must sum to 1")
            # The model's belief-harmonic reduction (normalise, then
            # the expected-inverse-capacity reciprocal).
            capacities = 1.0 / ((beliefs / sums) @ (1.0 / states))
        initial_traffic = (
            _as_array(payload, "initial_traffic", 1)
            if "initial_traffic" in payload
            else None
        )
        return cls.from_arrays(
            weights, capacities, initial_traffic, check_width=check_width
        )


def _nashify_records(batch: GameBatch) -> list[dict[str, Any] | None]:
    """Per-game nashification records from one lockstep run.

    A game that exhausts the step budget (no pure NE reachable by
    best response — unobserved in the paper's families, cf. Conjecture
    3.7) must not poison its batch-mates: on a batch-level
    :class:`ConvergenceError` the stack is re-run game by game and only
    the offending games report ``None``.
    """
    start = np.full((len(batch), batch.num_users), _START_LINK, dtype=np.intp)
    try:
        results = [batch_nashify(batch, start)]
        slices = [(results[0], range(len(batch)))]
    except ConvergenceError:
        slices = []
        for index in range(len(batch)):
            sub = batch.subbatch([index])
            try:
                slices.append((batch_nashify(sub, start[:1]), [index]))
            except ConvergenceError:
                slices.append((None, [index]))
    records: list[dict[str, Any] | None] = [None] * len(batch)
    for result, indices in slices:
        if result is None:
            continue
        for row, index in enumerate(indices):
            records[index] = {
                "assignment": result.profiles[row].tolist(),
                "steps": int(result.steps[row]),
                "sc1_before": float(result.sc1_before[row]),
                "sc1": float(result.sc1_after[row]),
                "sc2_before": float(result.sc2_before[row]),
                "sc2": float(result.sc2_after[row]),
                "max_congestion_before": float(
                    result.max_congestion_before[row]
                ),
                "max_congestion": float(result.max_congestion_after[row]),
            }
    return records


def _uniform_beliefs_mask(
    capacities: np.ndarray, *, rtol: float = 1e-9
) -> np.ndarray:
    """Per-game ``has_uniform_beliefs`` verdicts (the Theorem 4.13
    premise), replicating the single-game predicate's tolerance."""
    first = capacities[:, :, :1]
    return np.all(np.abs(capacities - first) <= rtol * first, axis=(1, 2))


def solve_batch(
    batch: GameBatch, digests: Sequence[str] | None = None
) -> list[dict[str, Any]]:
    """Answer one same-shape stack of queries with one kernel pass.

    Returns one JSON-canonical response dict per game (already passed
    through :func:`repro.runtime.store.canonical_payload`, so a cached
    response and a freshly computed one are indistinguishable objects).
    """
    n, m = batch.num_users, batch.num_links
    if digests is None:
        digests = [
            game_digest(
                batch.weights[i], batch.capacities[i], batch.initial_traffic[i]
            )
            for i in range(len(batch))
        ]
    ratios = batch_empirical_ratios(batch)
    fm = batch_fully_mixed_candidate(
        batch.weights, batch.capacities, batch.initial_traffic
    )
    nash = _nashify_records(batch)
    bound_general = batch_poa_bound_general(batch.capacities)
    bound_uniform = batch_poa_bound_uniform(batch.capacities)
    uniform = _uniform_beliefs_mask(batch.capacities)

    responses = []
    for b in range(len(batch)):
        fm_exists = bool(fm.exists[b])
        num_equilibria = int(ratios.num_equilibria[b])
        num_pure = num_equilibria - int(fm_exists)
        response = {
            "digest": digests[b],
            "num_users": n,
            "num_links": m,
            "pure": {
                "num_pure": num_pure,
                "exists": num_pure > 0,
                "nashify": nash[b],
            },
            "fully_mixed": {
                "exists": fm_exists,
                "probabilities": fm.probabilities[b].tolist(),
                "latencies": fm.latencies[b].tolist(),
                "link_traffic": fm.link_traffic[b].tolist(),
            },
            "social": {
                "opt1": float(ratios.opt1[b]),
                "opt2": float(ratios.opt2[b]),
            },
            "poa": {
                "bound_general": float(bound_general[b]),
                "bound_uniform": (
                    float(bound_uniform[b]) if bool(uniform[b]) else None
                ),
                "ratio_sc1": float(ratios.ratio_sc1[b]),
                "ratio_sc2": float(ratios.ratio_sc2[b]),
                "num_equilibria": num_equilibria,
            },
        }
        responses.append(canonical_payload(response))
    return responses


def solve_requests(
    requests: Sequence[EquilibriumRequest],
) -> list[dict[str, Any]]:
    """Solve a mixed-shape request list via per-shape sub-batches.

    The dynamic batcher's solver seam: requests are grouped with
    :meth:`GameBatch.from_requests` and each shape's stack takes one
    pass of the batched kernels; responses come back in request order.
    """
    out: list[dict[str, Any] | None] = [None] * len(requests)
    for batch, indices in GameBatch.from_requests(requests):
        responses = solve_batch(
            batch, digests=[requests[i].digest for i in indices]
        )
        for index, response in zip(indices, responses):
            out[index] = response
    return out  # type: ignore[return-value]


def solve_fixpoint_batch(
    batch: GameBatch,
    digests: Sequence[str] | None = None,
    *,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> list[dict[str, Any]]:
    """Answer one same-shape stack of fixpoint queries with one solve.

    Per game: the solve's provenance (``converged`` / ``stalled`` /
    ``certified`` / ``rounds`` / ``residual``) plus the equilibrium
    ``probabilities`` — ``None`` when the iteration did not converge,
    so a client can always tell a certified profile from a flagged
    failure. Responses are JSON-canonical (cache-indistinguishable
    from replays), and each game's answer is bit-identical to its
    ``B = 1`` solve — trajectories ignore batch-mates.
    """
    if digests is None:
        digests = [
            game_digest(
                batch.weights[i], batch.capacities[i], batch.initial_traffic[i]
            )
            for i in range(len(batch))
        ]
    result = batch_fixpoint_mixed_nash(
        batch.weights,
        batch.capacities,
        batch.initial_traffic,
        max_rounds=max_rounds,
    )
    responses = []
    for b in range(len(batch)):
        converged = bool(result.converged[b])
        response = {
            "digest": digests[b],
            "num_users": batch.num_users,
            "num_links": batch.num_links,
            "converged": converged,
            "stalled": bool(result.stalled[b]),
            "certified": bool(result.certified[b]),
            "rounds": int(result.rounds[b]),
            "residual": float(result.residuals[b]),
            "probabilities": (
                result.probabilities[b].tolist() if converged else None
            ),
        }
        responses.append(canonical_payload(response))
    return responses


def solve_fixpoint_requests(
    requests: Sequence[EquilibriumRequest],
    *,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> list[dict[str, Any]]:
    """The fixpoint op's solver seam — same shape as
    :func:`solve_requests`, so the same dynamic batcher drives it."""
    out: list[dict[str, Any] | None] = [None] * len(requests)
    for batch, indices in GameBatch.from_requests(requests):
        responses = solve_fixpoint_batch(
            batch,
            digests=[requests[i].digest for i in indices],
            max_rounds=max_rounds,
        )
        for index, response in zip(indices, responses):
            out[index] = response
    return out  # type: ignore[return-value]
