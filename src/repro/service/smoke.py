"""CI smoke driver: burst a running service, gate on cache hits.

``python -m repro.service.smoke --port P`` connects to an already
running :class:`~repro.service.server.EquilibriumServer`, pipelines a
concurrent burst of solve queries in which every game appears twice
(so the content-addressed cache *must* hit), then verifies:

* every response is well-formed and the duplicate answers are
  identical objects field for field;
* the server's cache-hit counter is positive and at least one batch
  coalesced more than one game;
* ``--shutdown`` (the CI default) stops the server cleanly so the
  supervising shell can ``wait`` on its exit code.

Exit status 0 means the service round trip, the dynamic batcher and
the cache all did their jobs; any assertion failure is a non-zero exit
for CI to trip on.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Sequence

from repro.batch.container import GameBatch
from repro.service.client import ServiceClient
from repro.util.rng import stable_seed

__all__ = ["main"]


def _burst_queries(games: int) -> list[dict]:
    """*games* distinct small games across a few shapes."""
    shapes = [(3, 3), (4, 3), (3, 4)]
    queries: list[dict] = []
    for index in range(games):
        n, m = shapes[index % len(shapes)]
        seed = stable_seed("service-smoke", n, m, index)
        batch = GameBatch.from_seeds([seed], n, m)
        queries.append(
            {
                "weights": batch.weights[0].tolist(),
                "capacities": batch.capacities[0].tolist(),
            }
        )
    return queries


async def _run(host: str, port: int, games: int, shutdown: bool) -> int:
    client = await ServiceClient.connect(host, port)
    try:
        if not await client.ping():
            print("smoke: server did not answer ping", file=sys.stderr)
            return 1
        # Wave 1: a pipelined concurrent burst — exercises the dynamic
        # batcher. Wave 2: the same queries again after wave 1 fully
        # completed — every answer must now come from the cache.
        queries = _burst_queries(games)
        results = await client.solve_many(queries)
        repeated = await client.solve_many(queries)
        for first, second in zip(results, repeated):
            if first != second:
                print("smoke: repeated query answers differ", file=sys.stderr)
                return 1
        digests = {result["digest"] for result in results}
        if len(digests) != len(queries):
            print(
                f"smoke: expected {len(queries)} distinct digests, "
                f"got {len(digests)}",
                file=sys.stderr,
            )
            return 1
        stats = await client.stats()
        cache_hits = stats["cache"]["hits"]
        if cache_hits < len(queries):
            print(
                f"smoke: expected >= {len(queries)} cache hits, "
                f"got {cache_hits}",
                file=sys.stderr,
            )
            return 1
        if stats["batched_games"] <= stats["batches"]:
            print(
                "smoke: no batch coalesced more than one game "
                f"({stats['batched_games']} games in {stats['batches']} "
                "batches)",
                file=sys.stderr,
            )
            return 1
        info = await client.info()
        print(
            f"smoke ok: {len(results) + len(repeated)} responses, "
            f"{stats['batches']} batches ({stats['batched_games']} games), "
            f"{cache_hits} cache hits, {stats['coalesced']} coalesced, "
            f"backend {info['backend']}"
        )
        if shutdown:
            await client.shutdown()
        return 0
    finally:
        await client.close()


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.smoke",
        description="fire a concurrent burst at a running equilibrium "
        "service and gate on its batching/cache counters",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--games",
        type=int,
        default=24,
        help="distinct games in the burst (each is queried twice)",
    )
    parser.add_argument(
        "--no-shutdown",
        action="store_true",
        help="leave the server running after the burst",
    )
    args = parser.parse_args(argv)
    return asyncio.run(
        _run(args.host, args.port, args.games, not args.no_shutdown)
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
