"""The equilibrium service: a JSON-lines asyncio TCP server.

Stdlib-only (``asyncio.start_server``) so the service runs wherever the
library does; the protocol is newline-delimited JSON, one object per
line, serialised with the runtime store's canonical encoder
(:func:`repro.runtime.store.canonical_dumps` — ``repr`` floats, the
non-finite sentinel) so a response byte-stream is exactly the store's
canonical form of the same payload.

Request objects carry an ``op`` (default ``"solve"``) and an optional
``id`` echoed back verbatim, so clients may pipeline any number of
requests per connection and match the (possibly reordered) responses:

* ``{"op": "solve", "id": 7, "weights": [...], "capacities": [[...]]}``
  → ``{"id": 7, "ok": true, "result": {...}}`` — the full equilibrium
  answer (see :mod:`repro.service.query` for request spellings and the
  response schema);
* ``{"op": "fixpoint", ...}`` — same request spellings, answered by the
  iterative fixed-point solver instead of the exhaustive census, so
  games past the ``MAX_SERVICE_PROFILES`` width are accepted; the
  result carries the certified profile or an explicit
  non-convergence flag;
* ``{"op": "stats"}`` → batcher/cache counters;
* ``{"op": "info"}`` → deployment facts: the array backend solving the
  queries and which backends this host could offer;
* ``{"op": "ping"}`` → liveness;
* ``{"op": "shutdown"}`` → acknowledges, then gracefully stops the
  server (drains in-flight batches first).

Every ``solve`` line becomes its own task, so one pipelining connection
generates genuinely concurrent requests for the
:class:`~repro.service.batcher.DynamicBatcher` to coalesce; malformed
lines produce ``{"ok": false, "error": ...}`` instead of killing the
connection.
"""

from __future__ import annotations

import asyncio
import functools
import json
from typing import Any

from repro.batch.backend import available_backends, get_backend
from repro.batch.fixpoint import DEFAULT_MAX_ROUNDS
from repro.runtime.store import canonical_dumps, canonical_loads
from repro.service.batcher import DynamicBatcher, Solver
from repro.service.cache import ResultCache
from repro.service.query import (
    EquilibriumRequest,
    RequestError,
    solve_fixpoint_requests,
    solve_requests,
)

__all__ = ["EquilibriumServer"]


class EquilibriumServer:
    """A long-lived equilibrium-query service on one asyncio loop."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_batch: int = 64,
        max_delay_ms: float = 2.0,
        cache_size: int = 1024,
        solver: Solver = solve_requests,
        fixpoint_solver: Solver | None = None,
        fixpoint_max_rounds: int = DEFAULT_MAX_ROUNDS,
    ) -> None:
        self.host = host
        self.port = port
        self.cache = ResultCache(cache_size)
        self.batcher = DynamicBatcher(
            solver,
            max_batch=max_batch,
            max_delay_ms=max_delay_ms,
            cache=self.cache,
        )
        # The fixpoint op gets its own batcher and cache: both ops key
        # responses by the same reduced-form digest, so sharing a cache
        # would hand a census answer to a fixpoint query (and vice
        # versa) whenever the same game hits both ops.
        if fixpoint_solver is None:
            fixpoint_solver = functools.partial(
                solve_fixpoint_requests, max_rounds=fixpoint_max_rounds
            )
        self.fixpoint_cache = ResultCache(cache_size)
        self.fixpoint_batcher = DynamicBatcher(
            fixpoint_solver,
            max_batch=max_batch,
            max_delay_ms=max_delay_ms,
            cache=self.fixpoint_cache,
        )
        self._server: asyncio.base_events.Server | None = None
        self._shutdown = asyncio.Event()
        self._handlers: dict[asyncio.Task, asyncio.StreamWriter] = {}
        self.connections = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind and start accepting connections (port 0 picks a free one)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` op (or :meth:`close`) arrives."""
        await self._shutdown.wait()
        await self.close()

    async def close(self) -> None:
        """Stop accepting, drain in-flight batches, release the socket."""
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Nudge lingering connections to EOF so their handlers finish
        # (instead of being cancelled mid-read at loop teardown).
        for writer in self._handlers.values():
            writer.close()
        if self._handlers:
            await asyncio.gather(
                *tuple(self._handlers), return_exceptions=True
            )
        await self.batcher.close()
        await self.fixpoint_batcher.close()

    def stats(self) -> dict[str, Any]:
        return {
            "connections": self.connections,
            "backend": get_backend().name,
            **self.batcher.stats(),
            "fixpoint": self.fixpoint_batcher.stats(),
        }

    def info(self) -> dict[str, Any]:
        """Deployment facts: which backend answers, what the host offers."""
        return {
            "backend": get_backend().name,
            "backends": available_backends(),
        }

    # ------------------------------------------------------------------ #
    # protocol
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        handler = asyncio.current_task()
        if handler is not None:
            self._handlers[handler] = writer
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()

        async def respond(response: dict[str, Any]) -> None:
            async with write_lock:
                writer.write(canonical_dumps(response).encode("utf-8") + b"\n")
                await writer.drain()

        async def handle_line(raw: bytes) -> None:
            await respond(await self._dispatch(raw))

        try:
            while not reader.at_eof():
                raw = await reader.readline()
                if not raw:
                    break
                task = asyncio.ensure_future(handle_line(raw))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tuple(tasks), return_exceptions=True)
        except ConnectionError:
            pass
        finally:
            if handler is not None:
                self._handlers.pop(handler, None)
            for task in tasks:
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _dispatch(self, raw: bytes) -> dict[str, Any]:
        try:
            message = canonical_loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return {"ok": False, "error": f"invalid JSON: {exc}"}
        if not isinstance(message, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        envelope: dict[str, Any] = {}
        if "id" in message:
            envelope["id"] = message["id"]
        op = message.get("op", "solve")
        if op in ("solve", "fixpoint"):
            batcher = self.batcher if op == "solve" else self.fixpoint_batcher
            try:
                request = EquilibriumRequest.from_payload(
                    message, check_width=op == "solve"
                )
                result = await batcher.submit(request)
            except RequestError as exc:
                return {**envelope, "ok": False, "error": str(exc)}
            except Exception as exc:  # noqa: BLE001 - solver failure
                return {
                    **envelope,
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            return {**envelope, "ok": True, "result": result}
        if op == "stats":
            return {**envelope, "ok": True, "stats": self.stats()}
        if op == "info":
            return {**envelope, "ok": True, "info": self.info()}
        if op == "ping":
            return {**envelope, "ok": True, "pong": True}
        if op == "shutdown":
            self._shutdown.set()
            return {**envelope, "ok": True, "stopping": True}
        return {**envelope, "ok": False, "error": f"unknown op {op!r}"}
