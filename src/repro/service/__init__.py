"""Equilibrium-as-a-service — the async query layer over the batch engine.

The batch engine (PRs 1-4) runs offline campaigns; this package serves
*online* single-game queries at inference-server shape:

* :mod:`repro.service.query`   — request validation, reduced-form
  digests, and the batched solver seams: mixed-shape request lists
  become per-shape :class:`GameBatch` stacks and one kernel pass
  answers each stack — `solve_requests` for the exhaustive census,
  `solve_fixpoint_requests` for the iterative fixed-point solver at
  beyond-enumeration widths (the ``fixpoint`` op);
* :mod:`repro.service.cache`   — content-addressed LRU of completed
  responses (repeat traffic is O(hash));
* :mod:`repro.service.batcher` — dynamic batching: concurrent requests
  coalesce into a window that flushes on ``max_batch`` or
  ``max_delay_ms``, whichever first, with in-flight digest ride-along;
* :mod:`repro.service.server`  — the JSON-lines asyncio TCP server
  (``repro-experiments serve``);
* :mod:`repro.service.client`  — a pipelining asyncio client;
* :mod:`repro.service.smoke`   — the CI smoke driver (burst, cache-hit
  gate, clean shutdown).

Every response is bit-identical to the direct ``B = 1`` single-game
APIs for the same game — the batched kernels' parity contract extended
to the wire (``tests/test_service.py`` pins it differentially, cache
hits and mixed-shape concurrent loads included).
"""

from repro.service.batcher import DynamicBatcher
from repro.service.cache import ResultCache
from repro.service.client import ServiceClient
from repro.service.query import (
    MAX_SERVICE_PROFILES,
    EquilibriumRequest,
    RequestError,
    game_digest,
    solve_batch,
    solve_fixpoint_batch,
    solve_fixpoint_requests,
    solve_requests,
)
from repro.service.server import EquilibriumServer

__all__ = [
    "MAX_SERVICE_PROFILES",
    "DynamicBatcher",
    "EquilibriumRequest",
    "EquilibriumServer",
    "RequestError",
    "ResultCache",
    "ServiceClient",
    "game_digest",
    "solve_batch",
    "solve_fixpoint_batch",
    "solve_fixpoint_requests",
    "solve_requests",
]
