"""Inference-server-style dynamic batching for equilibrium queries.

Concurrent :meth:`DynamicBatcher.submit` calls coalesce into one
pending window that flushes to the solver when either trigger fires,
whichever comes first:

* **size** — ``max_batch`` distinct games are waiting;
* **deadline** — ``max_delay_ms`` elapsed since the window opened
  (the first request's arrival), so a lone request never waits longer
  than the deadline.

A flush hands the whole window to the solver seam
(:func:`repro.service.query.solve_requests` by default), which stacks
it into per-shape :class:`~repro.batch.container.GameBatch` sub-batches
— one kernel pass per shape instead of one per request. Three
de-duplication layers keep repeated traffic O(hash):

1. completed responses come from the content-addressed
   :class:`~repro.service.cache.ResultCache` (when attached);
2. a query whose digest is already waiting or solving rides the
   in-flight computation instead of enqueueing a duplicate game;
3. only then does a digest claim a slot in the pending window.

The solver runs synchronously inside the flush task: the kernels are
CPU-bound NumPy, so handing them to a thread would only add latency
jitter while the event loop keeps accepting requests between flushes
(new arrivals buffer in the transport until the pass completes — the
standard single-worker inference-server shape).
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Sequence

from repro.service.cache import ResultCache
from repro.service.query import EquilibriumRequest, solve_requests

__all__ = ["DynamicBatcher"]

#: The solver seam: mixed-shape requests in, per-request responses out.
Solver = Callable[[Sequence[EquilibriumRequest]], "list[dict[str, Any]]"]


class DynamicBatcher:
    """Coalesce concurrent queries into batched solver passes."""

    def __init__(
        self,
        solver: Solver = solve_requests,
        *,
        max_batch: int = 64,
        max_delay_ms: float = 2.0,
        cache: ResultCache | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_ms < 0:
            raise ValueError(
                f"max_delay_ms must be >= 0, got {max_delay_ms}"
            )
        self._solver = solver
        self.max_batch = int(max_batch)
        self.max_delay_ms = float(max_delay_ms)
        self.cache = cache
        self._pending: list[EquilibriumRequest] = []
        #: digest -> futures awaiting it (pending *or* mid-flush).
        self._waiters: dict[str, list[asyncio.Future]] = {}
        self._deadline: asyncio.TimerHandle | None = None
        self._flushes: set[asyncio.Task] = set()
        self._closed = False
        # Counters for the ``stats`` op / benchmarks.
        self.requests = 0
        self.coalesced = 0
        self.batches = 0
        self.batched_games = 0
        self.size_flushes = 0
        self.deadline_flushes = 0

    async def submit(self, request: EquilibriumRequest) -> dict[str, Any]:
        """Resolve one query: cache, in-flight ride-along, or batch."""
        if self._closed:
            raise RuntimeError("batcher is closed")
        self.requests += 1
        if self.cache is not None:
            cached = self.cache.get(request.digest)
            if cached is not None:
                return cached
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        waiters = self._waiters.get(request.digest)
        if waiters is not None:
            self.coalesced += 1
            waiters.append(future)
            return await future
        self._waiters[request.digest] = [future]
        self._pending.append(request)
        if len(self._pending) >= self.max_batch:
            self._flush("size")
        elif self._deadline is None:
            self._deadline = loop.call_later(
                self.max_delay_ms / 1000.0, self._flush, "deadline"
            )
        return await future

    def _flush(self, trigger: str) -> None:
        """Move the pending window into a solver task."""
        if self._deadline is not None:
            self._deadline.cancel()
            self._deadline = None
        window, self._pending = self._pending, []
        if not window:
            return
        self.batches += 1
        self.batched_games += len(window)
        if trigger == "size":
            self.size_flushes += 1
        else:
            self.deadline_flushes += 1
        task = asyncio.get_running_loop().create_task(self._solve(window))
        self._flushes.add(task)
        task.add_done_callback(self._flushes.discard)

    async def _solve(self, window: list[EquilibriumRequest]) -> None:
        try:
            responses = self._solver(window)
        except Exception as exc:  # noqa: BLE001 - forwarded to every waiter
            for request in window:
                for future in self._waiters.pop(request.digest, []):
                    if not future.done():
                        future.set_exception(exc)
            return
        for request, response in zip(window, responses):
            if self.cache is not None:
                self.cache.put(request.digest, response)
            for future in self._waiters.pop(request.digest, []):
                if not future.done():
                    future.set_result(response)

    async def close(self) -> None:
        """Flush any open window and wait for in-flight passes."""
        self._closed = True
        self._flush("size")
        while self._flushes:
            await asyncio.gather(*tuple(self._flushes), return_exceptions=True)

    def stats(self) -> dict[str, Any]:
        """Counter snapshot (cache counters ride along when attached)."""
        out: dict[str, Any] = {
            "requests": self.requests,
            "coalesced": self.coalesced,
            "batches": self.batches,
            "batched_games": self.batched_games,
            "size_flushes": self.size_flushes,
            "deadline_flushes": self.deadline_flushes,
            "pending": len(self._pending),
        }
        if self.cache is not None:
            out["cache"] = self.cache.stats()
        return out
