"""A minimal asyncio client for the JSON-lines equilibrium service.

Speaks the :mod:`repro.service.server` protocol: one JSON object per
line, optional ``id`` correlation. :meth:`ServiceClient.solve_many`
pipelines a whole burst on one connection — all request lines go out
before any response is awaited, which is what makes a single client
generate the concurrent load the server's dynamic batcher coalesces.

Used by the differential tests, ``benchmarks/bench_service.py`` and the
CI smoke driver (:mod:`repro.service.smoke`); it is also a reasonable
starting point for real integrations.
"""

from __future__ import annotations

import asyncio
from typing import Any, Sequence

from repro.runtime.store import canonical_dumps, canonical_loads

__all__ = ["ServiceClient"]


class ServiceClient:
    """One connection to an :class:`EquilibriumServer`."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0

    @classmethod
    async def connect(
        cls, host: str = "127.0.0.1", port: int = 0
    ) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except ConnectionError:
            pass

    # ------------------------------------------------------------------ #
    # protocol helpers
    # ------------------------------------------------------------------ #

    async def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """One message, one response (no pipelining)."""
        self._writer.write(canonical_dumps(message).encode("utf-8") + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return canonical_loads(line.decode("utf-8"))

    async def solve(self, query: dict[str, Any]) -> dict[str, Any]:
        """Solve one game; raises :class:`RuntimeError` on service errors."""
        response = await self.request({"op": "solve", **query})
        if not response.get("ok"):
            raise RuntimeError(response.get("error", "service error"))
        return response["result"]

    async def solve_many(
        self, queries: Sequence[dict[str, Any]]
    ) -> list[dict[str, Any]]:
        """Pipeline a burst of solves; results come back in query order.

        All lines are written before any response is read, so the burst
        arrives at the server as concurrent requests — the load shape
        the dynamic batcher exists for. Service-level errors surface as
        :class:`RuntimeError` carrying the first failure.
        """
        ids = []
        for query in queries:
            self._next_id += 1
            ids.append(self._next_id)
            message = {"op": "solve", "id": self._next_id, **query}
            self._writer.write(
                canonical_dumps(message).encode("utf-8") + b"\n"
            )
        await self._writer.drain()
        by_id: dict[int, dict[str, Any]] = {}
        while len(by_id) < len(ids):
            line = await self._reader.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            response = canonical_loads(line.decode("utf-8"))
            by_id[response["id"]] = response
        results = []
        for request_id in ids:
            response = by_id[request_id]
            if not response.get("ok"):
                raise RuntimeError(response.get("error", "service error"))
            results.append(response["result"])
        return results

    async def stats(self) -> dict[str, Any]:
        response = await self.request({"op": "stats"})
        if not response.get("ok"):
            raise RuntimeError(response.get("error", "service error"))
        return response["stats"]

    async def info(self) -> dict[str, Any]:
        response = await self.request({"op": "info"})
        if not response.get("ok"):
            raise RuntimeError(response.get("error", "service error"))
        return response["info"]

    async def ping(self) -> bool:
        return bool((await self.request({"op": "ping"})).get("pong"))

    async def shutdown(self) -> None:
        await self.request({"op": "shutdown"})
