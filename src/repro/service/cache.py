"""Content-addressed LRU cache of completed equilibrium responses.

Keys are reduced-form digests (:func:`repro.service.query.game_digest`):
every solver output is a pure function of the reduced form, so a digest
hit *is* the answer — a repeated query at millions-of-users traffic
costs one hash and one dict lookup, never a kernel pass. Values are the
JSON-canonical response dicts the solver produced, returned by
reference (responses are treated as immutable once built).

The cache is deliberately loop-confined: the service is a single
asyncio event loop, so plain dict operations need no locking. Counters
(`hits`/`misses`/`evictions`) feed the server's ``stats`` op and the CI
smoke gate.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

__all__ = ["ResultCache"]


class ResultCache:
    """A bounded LRU mapping ``digest -> response``.

    ``maxsize <= 0`` disables caching entirely (every ``get`` misses,
    ``put`` is a no-op) — the semantics the CLI's ``--cache-size 0``
    promises.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        self.maxsize = int(maxsize)
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, digest: str) -> Any | None:
        """The cached response for *digest*, or ``None`` on a miss."""
        entry = self._entries.get(digest)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(digest)
        self.hits += 1
        return entry

    def put(self, digest: str, response: Any) -> None:
        """Insert (or refresh) a completed response."""
        if self.maxsize <= 0:
            return
        if digest in self._entries:
            self._entries.move_to_end(digest)
        self._entries[digest] = response
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def stats(self) -> dict[str, int]:
        """Counter snapshot for the ``stats`` op and the smoke gate."""
        return {
            "size": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
