"""NumPy reference vs numba JIT backend (the backend-seam gate).

Times the branch-heavy kernels the JIT backend exists for, at
campaign-representative widths, under both registered CPU backends:

* ``numpy`` — the bit-parity reference: generic kernel compositions
  (blocked one-hot census sweeps, the flattened Kahn peel, the lockstep
  nashification stepper);
* ``numba`` — the fused per-game loops of
  :mod:`repro.batch._numba_backend` behind the same public kernels.

Both backends must agree verdict for verdict before any timing is
trusted (the tier-1 differential suite pins the same contract on random
games). The >= 2x gates then hold the JIT backend to its reason for
existing; their timings land in ``BENCH_trajectory.json`` next to the
batched-vs-seed gates, so the per-backend performance history is
tracked per commit.

On hosts without the ``[jit]`` extra the module skips with a visible
reason — the gates certify an optional accelerator, not the reference.
"""

from __future__ import annotations

import numpy as np
import pytest
from _timing import _timed

from repro.batch.backend import available_backends, use_backend
from repro.batch.container import GameBatch
from repro.batch.kernels import batch_count_pure_nash, batch_exists_pure_nash
from repro.batch.pure import (
    batch_nashify_common_beliefs,
    batch_response_cycle_census,
)
from repro.util.rng import as_generator, stable_seed

pytestmark = pytest.mark.skipif(
    not available_backends().get("numba", False),
    reason="numba not installed — JIT backend gates need the "
    "'repro-network-uncertainty[jit]' extra",
)

LABEL = "bench-backend"

CENSUS_B, CENSUS_N, CENSUS_M = 48, 8, 3
NASHIFY_B, NASHIFY_N, NASHIFY_M = 192, 10, 4


def _census_batch() -> GameBatch:
    seeds = [stable_seed(LABEL, "census", i) for i in range(CENSUS_B)]
    return GameBatch.from_seeds(seeds, CENSUS_N, CENSUS_M)


def _nashify_inputs() -> tuple[GameBatch, np.ndarray]:
    seeds = [stable_seed(LABEL, "nashify", i) for i in range(NASHIFY_B)]
    batch = GameBatch.from_seeds_kp(seeds, NASHIFY_N, NASHIFY_M)
    starts = as_generator(stable_seed(LABEL, "starts")).integers(
        0, NASHIFY_M, size=(NASHIFY_B, NASHIFY_N)
    )
    return batch, starts


def census_pass(batch: GameBatch) -> tuple:
    """One full census sweep: counts, existence, cycle verdicts."""
    return (
        batch_count_pure_nash(batch),
        batch_exists_pure_nash(batch),
        batch_response_cycle_census(batch, kind="best"),
    )


def nashify_pass(batch: GameBatch, starts: np.ndarray):
    return batch_nashify_common_beliefs(batch, starts)


def test_backend_census_speedup_at_least_2x(report, trajectory):
    """Acceptance gate: the JIT ``m^n`` census >= 2x the NumPy sweep."""
    batch = _census_batch()
    with use_backend("numpy"):
        reference = census_pass(batch)
    with use_backend("numba"):
        # First call JIT-compiles the kernels; it doubles as the
        # differential check, so timing below measures steady state.
        jit = census_pass(batch)
    for ref, got in zip(reference, jit):
        np.testing.assert_array_equal(got, ref)

    with use_backend("numba"):
        jit_times = [_timed(lambda: census_pass(batch)) for _ in range(5)]
    with use_backend("numpy"):
        numpy_times = [_timed(lambda: census_pass(batch)) for _ in range(3)]
    jit_s, numpy_s = min(jit_times), min(numpy_times)
    ratio = numpy_s / jit_s
    report.append(
        f"[backend] m^n census (B={CENSUS_B}, n={CENSUS_N}, m={CENSUS_M}): "
        f"numba {jit_s * 1e3:.2f} ms, numpy {numpy_s * 1e3:.2f} ms, "
        f"speedup {ratio:.1f}x"
    )
    trajectory.record("backend-census", jit_times, numpy_times)
    assert ratio >= 2.0, f"JIT census only {ratio:.2f}x faster than numpy"


def test_backend_nashify_speedup_at_least_2x(report, trajectory):
    """Acceptance gate: the JIT nashification stepper >= 2x lockstep."""
    batch, starts = _nashify_inputs()
    with use_backend("numpy"):
        reference = nashify_pass(batch, starts)
    with use_backend("numba"):
        jit = nashify_pass(batch, starts)  # compiles + certifies
    np.testing.assert_array_equal(jit.profiles, reference.profiles)
    np.testing.assert_array_equal(jit.steps, reference.steps)
    np.testing.assert_allclose(
        jit.max_congestion_after, reference.max_congestion_after, rtol=1e-12
    )

    with use_backend("numba"):
        jit_times = [
            _timed(lambda: nashify_pass(batch, starts)) for _ in range(5)
        ]
    with use_backend("numpy"):
        numpy_times = [
            _timed(lambda: nashify_pass(batch, starts)) for _ in range(3)
        ]
    jit_s, numpy_s = min(jit_times), min(numpy_times)
    ratio = numpy_s / jit_s
    report.append(
        f"[backend] lockstep nashification (B={NASHIFY_B}, n={NASHIFY_N}, "
        f"m={NASHIFY_M}): numba {jit_s * 1e3:.2f} ms, numpy "
        f"{numpy_s * 1e3:.2f} ms, speedup {ratio:.1f}x"
    )
    trajectory.record("backend-nashify", jit_times, numpy_times)
    assert ratio >= 2.0, f"JIT nashification only {ratio:.2f}x faster"
