"""E6 — Section 3.2: potential-function structure benchmarks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.cycles import search_improvement_cycle_instance
from repro.equilibria.potential import (
    exact_potential_cycle_gap,
    ordinal_potential_symmetric,
    weighted_potential_common_beliefs,
)
from repro.generators.games import random_game, random_kp_game, random_symmetric_game
from repro.util.rng import stable_seed


def test_exact_potential_gap_exhaustive(benchmark):
    game = random_game(3, 3, seed=stable_seed("bench-e6", "gap"))
    gap = benchmark(lambda: exact_potential_cycle_gap(game))
    assert gap > 1e-9  # no exact potential


def test_weighted_potential_evaluation(benchmark):
    game = random_kp_game(64, 8, seed=stable_seed("bench-e6", "wp"))
    sigma = np.arange(64) % 8
    value = benchmark(lambda: weighted_potential_common_beliefs(game, sigma))
    assert value > 0


def test_ordinal_potential_evaluation(benchmark):
    game = random_symmetric_game(64, 8, seed=stable_seed("bench-e6", "op"))
    sigma = np.arange(64) % 8
    value = benchmark(lambda: ordinal_potential_symmetric(game, sigma))
    assert np.isfinite(value)


def test_e6_cycle_search(benchmark, report):
    result = benchmark.pedantic(
        lambda: search_improvement_cycle_instance(
            max_cycle_length=4, weight_draws=6, max_cycles=2_000, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    assert not result.found  # length-4 cycles provably unrealisable
    report.append(
        f"[E6] improvement-cycle search: {result.cycles_tested} shapes "
        "tested, none realisable (length <= 4; see EXPERIMENTS.md for the "
        "exhaustive length-6 run)"
    )
