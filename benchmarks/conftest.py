"""Shared benchmark configuration.

Each ``bench_*.py`` module regenerates one experiment row of DESIGN.md's
index (E1-E12). Benchmarks measure the core computation with
pytest-benchmark; the series the paper's claims imply (correctness
verdicts, ratios vs bounds, scaling exponents) are printed once per
session by the reporting fixtures so that
``pytest benchmarks/ --benchmark-only -s`` emits the EXPERIMENTS.md rows.

The ``trajectory`` fixture additionally collects the speedup gates'
structured timings (per-bench median/min seconds and the speedup factor
each ``test_*speedup*`` asserts on) and, when ``BENCH_TRAJECTORY_PATH``
is set, writes them as one JSON document at session end — the artifact
CI's ``bench.yml`` workflow uploads per commit so the performance
trajectory of the batched engines is tracked instead of being implied.
"""

from __future__ import annotations

import json
import os
import statistics
from pathlib import Path

import pytest


@pytest.fixture(scope="session")
def report():
    """Collect human-readable harness lines and print them at the end."""
    lines: list[str] = []
    yield lines
    if lines:
        print("\n" + "\n".join(lines))


class TrajectoryRecorder:
    """Structured sink for the speedup gates' timing measurements."""

    def __init__(self) -> None:
        self.entries: list[dict] = []

    def record(
        self,
        name: str,
        batched_seconds: list[float],
        seed_seconds: list[float],
    ) -> None:
        """Record one gate's repeat timings (seconds per full pass).

        The stored ``speedup`` uses the same min-over-repeats estimator
        the gates assert on; medians ride along for trend plots that
        prefer a noise-resistant center.
        """
        self.entries.append(
            {
                "name": name,
                "batched_median_s": statistics.median(batched_seconds),
                "batched_min_s": min(batched_seconds),
                "seed_median_s": statistics.median(seed_seconds),
                "seed_min_s": min(seed_seconds),
                "speedup": min(seed_seconds) / min(batched_seconds),
                "repeats": [len(batched_seconds), len(seed_seconds)],
            }
        )


@pytest.fixture(scope="session")
def trajectory():
    """Collect speedup-gate timings; write them when CI asks for them."""
    recorder = TrajectoryRecorder()
    yield recorder
    path = os.environ.get("BENCH_TRAJECTORY_PATH")
    if path and recorder.entries:
        payload = {
            "commit": os.environ.get("GITHUB_SHA"),
            "ref": os.environ.get("GITHUB_REF"),
            "run_id": os.environ.get("GITHUB_RUN_ID"),
            "benches": recorder.entries,
        }
        Path(path).write_text(json.dumps(payload, indent=1) + "\n")
