"""Shared benchmark configuration.

Each ``bench_*.py`` module regenerates one experiment row of DESIGN.md's
index (E1-E12). Benchmarks measure the core computation with
pytest-benchmark; the series the paper's claims imply (correctness
verdicts, ratios vs bounds, scaling exponents) are printed once per
session by the reporting fixtures so that
``pytest benchmarks/ --benchmark-only -s`` emits the EXPERIMENTS.md rows.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def report():
    """Collect human-readable harness lines and print them at the end."""
    lines: list[str] = []
    yield lines
    if lines:
        print("\n" + "\n".join(lines))
