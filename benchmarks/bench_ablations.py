"""Ablations for the design choices DESIGN.md calls out.

* exhaustive vs branch-and-bound social optimum — when does pruning win?
* best-response schedules — round-robin vs max-regret vs random;
* enumeration block size — the memory/speed knob of the vectorised
  pure-NE sweep;
* special-case algorithms vs the generic dynamics on their own domains.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.equilibria.best_response import best_response_dynamics
from repro.equilibria.enumeration import pure_nash_mask
from repro.equilibria.two_links import atwolinks
from repro.equilibria.uniform import auniform
from repro.model.social import enumerate_assignments, optimum
from repro.generators.games import (
    random_game,
    random_two_link_game,
    random_uniform_beliefs_game,
)
from repro.util.rng import stable_seed


@pytest.mark.parametrize("method", ["exhaustive", "branch_and_bound"])
def test_optimum_method_small(benchmark, method):
    """n=8, m=3: 6561 profiles — exhaustive vectorisation vs pruning."""
    game = random_game(8, 3, seed=stable_seed("bench-abl", "opt"))
    result = benchmark.pedantic(
        lambda: optimum(game, "sum", method=method), rounds=2, iterations=1
    )
    assert result.value > 0


def test_optimum_bb_large(benchmark):
    """n=14, m=3: ~4.8M profiles — exhaustive is out, B&B must carry."""
    game = random_game(14, 3, seed=stable_seed("bench-abl", "optL"))
    result = benchmark.pedantic(
        lambda: optimum(game, "max", method="branch_and_bound"),
        rounds=1,
        iterations=1,
    )
    assert result.value > 0


@pytest.mark.parametrize("schedule", ["round_robin", "max_regret", "random"])
def test_brd_schedule(benchmark, schedule):
    game = random_game(10, 4, seed=stable_seed("bench-abl", "brd"))
    result = benchmark(
        lambda: best_response_dynamics(game, seed=0, schedule=schedule)
    )
    assert result.converged


@pytest.mark.parametrize("block", [1024, 16384, 131072])
def test_enumeration_block_size(benchmark, block):
    game = random_game(8, 3, seed=stable_seed("bench-abl", "blk"))
    assignments = enumerate_assignments(8, 3)
    mask = benchmark(
        lambda: pure_nash_mask(game, assignments, block_size=block)
    )
    assert mask.any()


def test_special_case_vs_generic_two_links(benchmark, report):
    """Atwolinks vs generic dynamics on the same m=2 instances."""
    games = [
        random_two_link_game(64, seed=stable_seed("bench-abl2", rep))
        for rep in range(5)
    ]

    def special():
        return [atwolinks(g) for g in games]

    profiles = benchmark.pedantic(special, rounds=3, iterations=1)
    assert len(profiles) == 5
    import time

    t0 = time.perf_counter()
    for g in games:
        assert best_response_dynamics(g, seed=0).converged
    generic = time.perf_counter() - t0
    report.append(
        f"[ablation] m=2: Atwolinks on 5x n=64 games vs generic BRD "
        f"({generic * 1000:.1f} ms for BRD; see benchmark table for Atwolinks)"
    )


def test_special_case_vs_generic_uniform(benchmark):
    game = random_uniform_beliefs_game(512, 8, seed=stable_seed("bench-abl3", 0))
    profile = benchmark(lambda: auniform(game))
    assert profile.num_users == 512
