"""Batched vs per-instance mixed/PoA throughput (the mixed-engine gate).

Measures the Section 4 pipeline two ways:

* ``batched`` — the :mod:`repro.batch.mixed` / :mod:`repro.batch.poa`
  kernels driven exactly as the E7-E11 runners drive them (stacked
  ``GameBatch`` per cell, closed-form candidates, Nash verdicts, bounds,
  optima and ratios in whole-stack kernel calls);
* ``looped``  — the pipeline exactly as it existed before the batched
  mixed engine, vendored verbatim from the pre-batch code in
  ``benchmarks/mixed_seed_baseline.py`` (per-game closed form, per-game
  ``m^n`` sweeps for pure NE and both optima, per-equilibrium cost
  loops). Using today's single-game APIs instead would fold this PR's
  own single-game refactors into the baseline and understate the gain.

Both produce bit-identical results (asserted before timing; the frozen
``tests/data/mixed_seed_baseline.json`` pins the same contract in the
tier-1 suite). The >= 5x gate runs the *pipeline*: the E7-width
closed-form FMNE verification sweep plus the E10-width PoA study
(``poa_grid``, 25 replications per cell — the campaign's standard
width). The FMNE half alone sits near the parity-locked per-instance
RNG floor (~4-5x: both sides must replay every instance's RNG stream
draw for draw), which the report line records for transparency; the PoA
half, where batching removes three per-game ``m^n`` sweeps and the
per-equilibrium Python loop, clears 5x on its own.
"""

from __future__ import annotations

import numpy as np
import pytest
from _timing import _timed
from mixed_seed_baseline import (
    seed_fmne_closed_form_sweep,
    seed_poa_study,
)

from repro.analysis.poa import poa_study
from repro.batch import (
    GameBatch,
    batch_empirical_ratios,
    batch_fully_mixed_candidate,
    batch_is_mixed_nash,
    normalize_rows,
    random_game_batch,
)
from repro.generators.suites import poa_grid, small_verification_grid
from repro.util.rng import stable_seed

E7_GRID = list(small_verification_grid(replications=12))
E10_GRID = list(poa_grid())
LABEL = "bench-mixed"


def batched_fmne_closed_form_sweep(grid, *, label=LABEL):
    """The batched counterpart of ``seed_fmne_closed_form_sweep``."""
    out = []
    for cell in grid:
        seeds = [
            stable_seed(label, cell.num_users, cell.num_links, rep)
            for rep in range(cell.replications)
        ]
        batch = GameBatch.from_seeds(seeds, cell.num_users, cell.num_links)
        fm = batch_fully_mixed_candidate(batch.weights, batch.capacities)
        idx = np.flatnonzero(fm.exists)
        if idx.size == 0:
            out.append((0, 0))
            continue
        nash = batch_is_mixed_nash(
            normalize_rows(fm.probabilities[idx]),
            batch.weights[idx],
            batch.capacities[idx],
            tol=1e-7,
        )
        out.append((int(idx.size), int(nash.sum())))
    return out


def _observation_dicts(observations):
    return [
        {
            "n": o.num_users, "m": o.num_links,
            "ratio_sc1": o.ratio_sc1, "ratio_sc2": o.ratio_sc2,
            "bound": o.bound, "num_equilibria": o.num_equilibria,
        }
        for o in observations
    ]


def test_mixed_speedup_at_least_5x(report, trajectory):
    """Acceptance gate: batched mixed+PoA pipeline >= 5x the seed loop."""
    # The vendored seed pipeline must agree with the batched engine bit
    # for bit, otherwise the timing comparison is meaningless.
    assert batched_fmne_closed_form_sweep(E7_GRID) == seed_fmne_closed_form_sweep(
        E7_GRID, label=LABEL
    )
    assert _observation_dicts(
        poa_study(E10_GRID, uniform_beliefs=False, label=LABEL)
    ) == seed_poa_study(E10_GRID, uniform_beliefs=False, label=LABEL)

    def batched_pipeline():
        batched_fmne_closed_form_sweep(E7_GRID)
        poa_study(E10_GRID, uniform_beliefs=False, label=LABEL)

    def looped_pipeline():
        seed_fmne_closed_form_sweep(E7_GRID, label=LABEL)
        seed_poa_study(E10_GRID, uniform_beliefs=False, label=LABEL)

    batched_times = [_timed(batched_pipeline) for _ in range(8)]
    looped_times = [_timed(looped_pipeline) for _ in range(3)]
    trajectory.record("mixed-pipeline", batched_times, looped_times)
    batched, looped = min(batched_times), min(looped_times)
    ratio = looped / batched

    fmne_b = min(_timed(lambda: batched_fmne_closed_form_sweep(E7_GRID)) for _ in range(8))
    fmne_l = min(
        _timed(lambda: seed_fmne_closed_form_sweep(E7_GRID, label=LABEL))
        for _ in range(3)
    )
    poa_b = min(
        _timed(lambda: poa_study(E10_GRID, uniform_beliefs=False, label=LABEL))
        for _ in range(8)
    )
    poa_l = min(
        _timed(lambda: seed_poa_study(E10_GRID, uniform_beliefs=False, label=LABEL))
        for _ in range(3)
    )
    report.append(
        f"[mixed] pipeline (E7 x12 + E10 x25 widths): batched "
        f"{batched * 1e3:.2f} ms, seed loop {looped * 1e3:.2f} ms, "
        f"speedup {ratio:.1f}x (PoA {poa_l / poa_b:.1f}x, closed-form FMNE "
        f"{fmne_l / fmne_b:.1f}x over the per-instance RNG floor)"
    )
    assert ratio >= 5.0, f"batched mixed pipeline only {ratio:.2f}x faster"
    assert poa_l / poa_b >= 5.0, f"batched PoA study only {poa_l / poa_b:.2f}x faster"


def test_poa_study_batched(benchmark):
    observations = benchmark(
        lambda: poa_study(E10_GRID, uniform_beliefs=False, label=LABEL)
    )
    assert all(o.ratio_sc1 <= o.bound * (1 + 1e-9) for o in observations)


def test_poa_study_looped(benchmark):
    observations = benchmark(
        lambda: seed_poa_study(E10_GRID, uniform_beliefs=False, label=LABEL)
    )
    assert all(o["ratio_sc1"] <= o["bound"] * (1 + 1e-9) for o in observations)


@pytest.mark.parametrize("batch_size", [64, 1024, 8192])
def test_batch_fully_mixed_candidate(benchmark, batch_size):
    """Closed-form throughput per stack width (n=4, m=3)."""
    batch = random_game_batch(batch_size, 4, 3, seed=11)
    fm = benchmark(
        lambda: batch_fully_mixed_candidate(batch.weights, batch.capacities)
    )
    assert fm.probabilities.shape == (batch_size, 4, 3)


@pytest.mark.parametrize("batch_size", [64, 512])
def test_batch_empirical_ratios(benchmark, batch_size):
    """Full anarchy pipeline (NE sweep + optima + ratios) per width."""
    batch = random_game_batch(batch_size, 4, 3, seed=12)
    result = benchmark(lambda: batch_empirical_ratios(batch))
    assert result.ratio_sc1.shape == (batch_size,)


def test_from_seeds_uniform_beliefs_generation(benchmark):
    """Seed-parity uniform-beliefs generation throughput (1000 games)."""
    seeds = [stable_seed("bench-ub", i) for i in range(1000)]
    batch = benchmark(lambda: GameBatch.from_seeds_uniform_beliefs(seeds, 4, 3))
    assert len(batch) == 1000
